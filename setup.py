from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Distributed symmetry-breaking with improved vertex-averaged "
        "complexity (Barenboim & Tzur, SPAA 2018): LOCAL-model simulator, "
        "algorithms, baselines and benchmarks"
    ),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis", "scipy"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)

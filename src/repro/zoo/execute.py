"""The one execution seam: ``execute(spec, graph, ...)``.

Before this module existed every caller re-wired the same concerns by
hand: the CLI stacked ``obs.session`` / fault sessions / validator lookups
around its lambda tables, the fault harness had its own copy, and bench
scripts a third.  :func:`execute` threads all of it through one pipeline:

* **engine selection** -- ``engine="fast"`` (default) or ``"reference"``
  runs the driver under :func:`repro.runtime.engine_session`, so the
  spec-driven path can replay any algorithm on the executable
  specification engine without touching driver code;
* **observability** -- ``trace`` records the run's typed event stream to
  a JSONL file (``repro inspect`` reads it back), ``profile`` attaches a
  :class:`repro.obs.PhaseProfiler`;
* **fault injection** -- ``faults`` compiles a
  :class:`repro.faults.FaultPlan` into a seeded injector for the run and
  reports who crashed; the non-termination watchdog is caught and
  surfaced as :attr:`Execution.watchdog` instead of a traceback;
* **validation** -- :meth:`Execution.validate` picks the full validator
  on clean runs and the survivor-restricted safety check under an active
  fault plan, both keyed by the spec's problem kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.zoo.checks import full_validator, survivor_check
from repro.zoo.registry import get
from repro.zoo.spec import ENGINES, MODES, AlgorithmSpec


@dataclass
class Execution:
    """What one :func:`execute` call produced."""

    spec: AlgorithmSpec
    engine: str
    mode: str = "sync"
    result: Any = None
    crashed: tuple[int, ...] = ()
    plan: Any = None  # the FaultPlan actually injected, or None
    profiler: Any = None  # PhaseProfiler when profile=True
    watchdog: Exception | None = None  # RoundLimitExceeded, if it fired
    error: BaseException | None = None  # captured driver exception
    manifest: Any = None  # RunManifest, always built (see telemetry)

    @property
    def completed(self) -> bool:
        return self.watchdog is None and self.error is None

    @property
    def faulted(self) -> bool:
        """Whether a non-empty fault plan was injected into the run."""
        return self.plan is not None

    def alive(self, g) -> set[int]:
        """The surviving vertices of ``g`` under this execution."""
        return set(g.vertices()) - set(self.crashed)

    def validate(self, g) -> str:
        """Validate the solution; returns a one-line summary.

        Fault-free runs get the full problem validator; runs under an
        active fault plan get the survivor-restricted safety check
        (completeness around crashed vertices is legitimately lost).
        Raises :class:`repro.verify.VerificationError` on failure and
        ``RuntimeError`` when there is no result to validate.
        """
        if not self.completed:
            raise RuntimeError(
                f"cannot validate a run that did not complete "
                f"({'watchdog fired' if self.watchdog else self.error})"
            )
        if not self.faulted:
            return full_validator(self.spec.problem)(g, self.result)
        alive = self.alive(g)
        survivor_check(self.spec.problem)(g, self.result, alive)
        return (
            f"survivor-safety OK on {len(alive)}/{g.n} surviving vertices "
            f"(crashed: {sorted(self.crashed) if self.crashed else 'none'})"
        )


def execute(
    spec: AlgorithmSpec | str,
    graph,
    a: int | None = None,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    *,
    baseline: bool = False,
    engine: str = "fast",
    mode: str = "sync",
    delays=None,
    shards: int | None = None,
    partitioner: str = "range",
    faults=None,
    trace: str | None = None,
    trace_meta: dict | None = None,
    profile: bool = False,
    capture_errors: bool = False,
) -> Execution:
    """Run one registered algorithm through the unified pipeline.

    Parameters
    ----------
    spec:
        An :class:`AlgorithmSpec` or a registry name.
    graph, a, ids, seed:
        The uniform driver surface: instance, arboricity bound, ID
        assignment (``None`` = identity), randomness seed.
    baseline:
        Run the spec's worst-case baseline driver instead of the
        averaged algorithm.
    engine:
        ``"fast"`` (default) or ``"reference"`` -- selects the round
        engine for every network the driver builds.
    mode:
        ``"sync"`` (default, the global-round barrier) or ``"async"``
        (the event-queue scheduler of
        :mod:`repro.runtime.async_sched`: per-edge delivery times, no
        global round).  Outputs and round counts are mode-invariant;
        async runs additionally report virtual-time metrics on results
        that carry a ``times`` field.  Requires the fast engine and no
        shards.
    delays:
        A :class:`repro.runtime.async_sched.DelaySpec` selecting the
        link-delay distribution for ``mode="async"`` (``None`` = fixed
        unit delays).  Rejected in sync mode.
    shards:
        Run the bulk driver sharded across this many worker processes
        (:func:`repro.runtime.shard_session`); requires
        ``engine="bulk"``.  ``shards=1`` still exercises the full
        sharded executor.
    partitioner:
        Vertex partitioner for sharded runs: ``"range"`` (equal vertex
        counts, default) or ``"edge"`` (balanced adjacency mass).
    faults:
        A :class:`repro.faults.FaultPlan` to inject (``None`` or an
        empty plan = fault-free).
    trace:
        Path for a JSONL event trace (``repro inspect`` reads it).
    trace_meta:
        Extra metadata for the trace header (merged over the defaults).
    profile:
        Attach a per-phase engine profiler (``.profiler.report()``).
    capture_errors:
        Return driver exceptions on :attr:`Execution.error` instead of
        raising (the fault harness classifies them as ``error``
        outcomes).  The non-termination watchdog is always captured.
    """
    if isinstance(spec, str):
        spec = get(spec)
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    if mode == "async" and engine != "fast":
        raise ValueError(
            f"mode='async' runs on the fast engine only (the event-queue "
            f"scheduler replaces the round loop), got engine={engine!r}"
        )
    if mode == "sync" and delays is not None:
        raise ValueError(
            "delays is an async-mode parameter; sync runs have no "
            "link-delay model"
        )

    from repro import obs
    from repro.runtime import RoundLimitExceeded, engine_session

    driver = (spec.baseline if baseline else spec.driver)
    if driver is None:
        raise ValueError(f"spec {spec.name!r} declares no baseline")
    run = driver.resolve()

    plan = faults
    if plan is not None and plan.empty:
        plan = None

    if shards is not None and engine != "bulk":
        raise ValueError(
            f"shards={shards} requires engine='bulk' (sharding is a bulk-"
            f"engine execution mode), got engine={engine!r}"
        )
    if engine == "bulk":
        if not spec.bulk_capable or baseline:
            from repro.zoo.registry import all_specs

            capable = [s.name for s in all_specs() if s.bulk_capable]
            what = f"the {spec.name!r} baseline" if baseline else repr(spec.name)
            raise ValueError(
                f"{what} has no bulk driver; engine='bulk' is available "
                f"for: {capable}"
            )
        # Fault plans are fine on the bulk engine: every bulk driver
        # delegates to its sharded twin's fault-aware kernel (with or
        # without a shard session), which re-derives the adversary from
        # the pure counter-based draws; only duplicate/delay plans are
        # rejected (BulkUnsupported) for lack of a receiver-side replay.

    sinks = []
    if trace:
        meta = {
            "algo": spec.name + (":baseline" if baseline else ""),
            "engine": engine,
            "n": graph.n,
            "seed": seed,
        }
        meta.update(trace_meta or {})
        sinks.append(obs.JsonlSink(trace, meta=meta))
    profiler = obs.PhaseProfiler() if profile else None

    ex = Execution(
        spec=spec, engine=engine, mode=mode, plan=plan, profiler=profiler
    )

    def _drive():
        injector = plan.injector() if plan is not None else None
        try:
            if injector is not None:
                from repro import faults as flt

                with flt.session(injector):
                    ex.result = run(graph, a, ids, seed)
            else:
                ex.result = run(graph, a, ids, seed)
        except RoundLimitExceeded as e:
            ex.watchdog = e
        except Exception as e:  # noqa: BLE001 - classification is the point
            if not capture_errors:
                raise
            ex.error = e
        finally:
            if injector is not None:
                ex.crashed = tuple(sorted(injector.crashed))

    # Drivers build their networks internally, so both the engine
    # override and the obs sinks ride process-wide sessions for the
    # duration of this one call.
    from contextlib import ExitStack
    from time import perf_counter

    t0 = perf_counter()
    with ExitStack() as stack:
        stack.enter_context(engine_session(engine))
        if mode != "sync":
            from repro.runtime import mode_session

            stack.enter_context(mode_session(mode, delays=delays))
        if shards is not None:
            from repro.runtime import shard_session

            stack.enter_context(shard_session(shards, partitioner))
        if sinks or profiler is not None:
            stack.enter_context(obs.session(*sinks, profiler=profiler))
        _drive()
    wall = perf_counter() - t0

    # Every execution gets a manifest; runs that wrote a trace also get
    # it persisted next to the trace (<trace>.manifest.jsonl) so
    # `repro inspect` can read it back.
    from repro.obs import telemetry

    timing: dict = {"wall_s": round(wall, 6)}
    if profiler is not None:
        timing.update(profiler.full_dict())
    metrics_digest: dict = {}
    m = getattr(ex.result, "metrics", None)
    if m is not None:
        metrics_digest = {
            "rounds": len(m.active_trace),
            "vertex_averaged": m.vertex_averaged,
            "worst_case": m.worst_case,
            "total_messages": m.total_messages,
        }
    t = getattr(ex.result, "times", None)
    if t is not None:
        metrics_digest["vertex_averaged_time"] = t.vertex_averaged_time
        metrics_digest["worst_case_time"] = t.worst_case_time
        metrics_digest["averaged_output_time"] = t.averaged_output_time
    if ex.crashed:
        metrics_digest["crashed"] = len(ex.crashed)
    status = "ok" if ex.completed else ("watchdog" if ex.watchdog else "error")
    ex.manifest = telemetry.build_manifest(
        spec,
        n=graph.n,
        seed=seed,
        workload=(trace_meta or {}).get("workload", ""),
        engine=engine,
        mode=mode,
        delays=delays,
        shards=shards or 0,
        partitioner=partitioner if shards is not None else "",
        baseline=baseline,
        plan=plan,
        graph=graph,
        timing=timing,
        metrics=metrics_digest,
        status=status,
    )
    if trace:
        telemetry.write_manifest(ex.manifest, telemetry.manifest_path(trace))
    return ex

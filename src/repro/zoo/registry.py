"""The algorithm registry: one :class:`AlgorithmSpec` per zoo member.

This module is the single source of truth the CLI (``run`` / ``compare`` /
``list``), the fault fuzzer, the bench tables and the test
parametrizations all derive from.  Adding an algorithm to the repo is a
one-spec change here; everything downstream -- fuzz coverage, the
``repro list`` table, paper-table rendering, registry-completeness tests
-- picks it up automatically.

Views
-----
``all_specs()`` / ``names()`` / ``get(name)``
    The whole registry.
``with_baseline()``
    Specs that declare a worst-case baseline (the ``repro compare``
    population).
``crash_safe()``
    Specs that participate in crash-stop fault fuzzing (the ``repro fuzz``
    population and the ``--smoke`` CI gate).
``randomized()`` / ``by_problem(kind)`` / ``by_table(table)``
    Taxonomy slices (Table 1 = coloring rows, Table 2 = MIS /
    edge-coloring / matching).

``check_registry()`` is the consistency gate behind ``repro list
--check``: it cross-checks the registry against the public driver
exports, the validator tables, the CLI parser and the fuzz population,
so zoo drift (the bug this module replaces: ``ka2``, ``one-plus-eta`` and
``aloglogn`` were registered in the CLI but never fuzzed) can not recur
silently.
"""

from __future__ import annotations

from typing import Iterator

from repro.zoo.checks import FULL_VALIDATORS, SURVIVOR_CHECKS
from repro.zoo.spec import AlgorithmSpec, DriverRef, PaperRow

_D = DriverRef.make

#: worst-case baselines shared across rows
_ARB_LINIAL_WC = _D("run_arb_linial_worstcase")
_ARB_COLOR_WC = _D("run_arb_color_worstcase")

_SPECS: tuple[AlgorithmSpec, ...] = (
    AlgorithmSpec(
        name="partition",
        problem="partition",
        driver=_D("run_partition"),
        baseline=_D("run_worstcase_forest_decomposition"),
        paper_row=PaperRow(
            row="S6.1",
            label="H-partition, O(1) avg vs Theta(log n) worst",
            ref="Theorem 6.3",
        ),
        bulk_capable=True,
    ),
    AlgorithmSpec(
        name="luby-mis",
        problem="mis",
        driver=_D("run_luby_mis", passes_a=False, passes_seed=True),
        randomized=True,
        # crash-stop faults degrade gracefully (survivors still form an
        # independent set among themselves); drop plans are NOT safe --
        # a lost MIS announcement can yield adjacent winners
        crash_safe=True,
        bulk_capable=True,
    ),
    AlgorithmSpec(
        name="a2logn",
        problem="coloring",
        driver=_D("run_a2logn_coloring"),
        baseline=_ARB_LINIAL_WC,
        paper_row=PaperRow(
            row="T1.R4",
            label="O(a^2 log n) colors, O(1) avg",
            ref="Section 7.2",
            table=1,
        ),
    ),
    AlgorithmSpec(
        name="a2",
        problem="coloring",
        driver=_D("run_a2_coloring"),
        baseline=_ARB_LINIAL_WC,
        paper_row=PaperRow(
            row="S7.3",
            label="O(a^2) colors, O(log log n) avg",
            ref="Section 7.3",
        ),
    ),
    AlgorithmSpec(
        name="oa",
        problem="coloring",
        driver=_D("run_oa_coloring"),
        baseline=_ARB_COLOR_WC,
        paper_row=PaperRow(
            row="S7.4",
            label="O(a) colors, O(a log log n) avg",
            ref="Section 7.4",
        ),
    ),
    AlgorithmSpec(
        name="ka2",
        problem="coloring",
        driver=_D("run_ka2_coloring"),
        baseline=_ARB_LINIAL_WC,
        paper_row=PaperRow(
            row="T1.R6",
            label="O(a^2 log* n) colors, O(log* n) avg (k = rho(n))",
            ref="Corollary 7.14",
            table=1,
        ),
    ),
    AlgorithmSpec(
        name="ka",
        problem="coloring",
        driver=_D("run_ka_coloring"),
        baseline=_ARB_COLOR_WC,
        paper_row=PaperRow(
            row="T1.R2",
            label="O(a log* n) colors, O(a log* n) avg (k = rho(n))",
            ref="Corollary 7.17",
            table=1,
        ),
    ),
    AlgorithmSpec(
        name="one-plus-eta",
        problem="coloring",
        driver=_D("run_one_plus_eta_coloring"),
        paper_row=PaperRow(
            row="T1.R3",
            label="O(a^(1+eta)) colors, O(log a log log n) avg",
            ref="Theorem 7.21",
            table=1,
        ),
    ),
    AlgorithmSpec(
        name="delta-plus-one",
        problem="coloring",
        driver=_D("run_delta_plus_one_coloring"),
        baseline=_D("run_delta_plus_one_worstcase", passes_a=False),
        paper_row=PaperRow(
            row="T1.R7",
            label="Delta+1 colors, extension framework avg",
            ref="Section 8 (Det.)",
            table=1,
        ),
    ),
    AlgorithmSpec(
        name="rand-delta-plus-one",
        problem="coloring",
        driver=_D("run_rand_delta_plus_one", passes_a=False, passes_seed=True),
        paper_row=PaperRow(
            row="T1.R8",
            label="Delta+1 colors, O(1) avg w.h.p.",
            ref="Theorem 9.1",
            table=1,
        ),
        randomized=True,
    ),
    AlgorithmSpec(
        name="aloglogn",
        problem="coloring",
        driver=_D("run_aloglogn_coloring", passes_seed=True),
        baseline=_ARB_COLOR_WC,
        paper_row=PaperRow(
            row="T1.R9",
            label="O(a log log n) colors, O(1) avg w.h.p.",
            ref="Theorem 9.2",
            table=1,
        ),
        randomized=True,
    ),
    AlgorithmSpec(
        name="mis",
        problem="mis",
        driver=_D("run_mis"),
        baseline=_D("run_mis", params={"worstcase_schedule": True}),
        paper_row=PaperRow(
            row="T2.R1",
            label="MIS in O(a + log* n) avg",
            ref="Section 8.4",
            table=2,
        ),
    ),
    AlgorithmSpec(
        name="edge-coloring",
        problem="edge-coloring",
        driver=_D("run_edge_coloring"),
        baseline=_D("run_edge_coloring", params={"worstcase_schedule": True}),
        paper_row=PaperRow(
            row="T2.R2",
            label="(2 Delta - 1)-edge-coloring in O(a + log* n) avg",
            ref="Corollary 8.6",
            table=2,
        ),
    ),
    AlgorithmSpec(
        name="matching",
        problem="matching",
        driver=_D("run_maximal_matching"),
        baseline=_D(
            "run_maximal_matching", params={"worstcase_schedule": True}
        ),
        paper_row=PaperRow(
            row="T2.R3",
            label="maximal matching in O(a + log* n) avg",
            ref="Section 8",
            table=2,
        ),
    ),
    AlgorithmSpec(
        name="leader-election",
        problem="leader-election",
        driver=_D("run_leader_election", passes_a=False, passes_seed=True),
        paper_row=PaperRow(
            row="S2.LE",
            label="ring leader election, Theta(n) worst vs O(log n) avg output",
            ref="Feuilloley [12], Sections 2-3",
        ),
        # Hirschberg-Sinclair needs an oriented ring: probes, echoes and
        # the elected token all travel successor-wards
        workloads=("ring",),
        # crash-safe in the safety sense: a broken ring stops the token
        # (watchdog non-termination, an accepted fuzz outcome) but can
        # never elect two leaders
        crash_safe=True,
    ),
    AlgorithmSpec(
        name="consensus",
        problem="consensus",
        driver=_D("run_consensus", passes_a=False, passes_seed=True),
        paper_row=PaperRow(
            row="S2.BC",
            label="crash-tolerant binary consensus, Theta(n) worst vs O(1) avg output",
            ref="flood-min (related work)",
        ),
        randomized=True,  # input bits are drawn from the seed
        crash_safe=True,
    ),
)

_REGISTRY: dict[str, AlgorithmSpec] = {}
for _s in _SPECS:
    if _s.name in _REGISTRY:
        raise ValueError(f"duplicate algorithm spec {_s.name!r}")
    _REGISTRY[_s.name] = _s


# ---------------------------------------------------------------------------
# views
# ---------------------------------------------------------------------------

def all_specs() -> tuple[AlgorithmSpec, ...]:
    """Every registered spec, in name order."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def names() -> tuple[str, ...]:
    """All registered algorithm names, sorted."""
    return tuple(sorted(_REGISTRY))


def get(name: str) -> AlgorithmSpec:
    """Look a spec up by name; KeyError lists the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def with_baseline() -> tuple[AlgorithmSpec, ...]:
    """Specs with a worst-case baseline (the ``compare`` population)."""
    return tuple(s for s in all_specs() if s.has_baseline)


def crash_safe() -> tuple[AlgorithmSpec, ...]:
    """Specs fuzzed under crash-stop fault plans (the ``fuzz`` population)."""
    return tuple(s for s in all_specs() if s.crash_safe)


def randomized() -> tuple[AlgorithmSpec, ...]:
    return tuple(s for s in all_specs() if s.randomized)


def by_problem(problem: str) -> tuple[AlgorithmSpec, ...]:
    return tuple(s for s in all_specs() if s.problem == problem)


def by_table(table: int) -> tuple[AlgorithmSpec, ...]:
    """The paper-table rows, in row order (``T1.R2`` before ``T1.R6``)."""
    rows = [
        s
        for s in all_specs()
        if s.paper_row is not None and s.paper_row.table == table
    ]
    rows.sort(key=lambda s: s.paper_row.row)
    return tuple(rows)


def register(spec: AlgorithmSpec) -> None:
    """Register an additional spec (tests; plugins)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"algorithm {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def unregister(name: str) -> None:
    """Remove a spec added via :func:`register` (test cleanup)."""
    del _REGISTRY[name]


def __iter__() -> Iterator[AlgorithmSpec]:  # pragma: no cover - convenience
    return iter(all_specs())


# ---------------------------------------------------------------------------
# consistency gate (`repro list --check`)
# ---------------------------------------------------------------------------

#: public ``run_*`` drivers deliberately *not* registered, with the reason.
#: Anything exported from ``repro`` that is neither referenced by a spec
#: nor listed here fails ``check_registry()``.
EXEMPT_DRIVERS: dict[str, str] = {
    "run_parallelized_forest_decomposition": (
        "Section 7.1 building block; `partition` is its registered face"
    ),
    "run_defective_coloring": "subroutine of the Section 7.8 algorithms",
    "run_arbdefective_coloring": "subroutine of the Section 7.8 algorithms",
    "run_legal_coloring": "subroutine of `one-plus-eta` (Procedure Legal-Coloring)",
    "run_linial_coloring": "classic reference; no averaged partner row",
    "run_ring_three_coloring": "Cole-Vishkin reference (bench-only)",
}


def check_registry() -> list[str]:
    """Cross-check the registry against every derived surface.

    Returns a list of human-readable problems (empty = consistent).
    Checked invariants:

    1. every spec's driver (and baseline) resolves to a public callable;
    2. every spec's problem kind has a full validator and a
       survivor-safety check;
    3. every public ``run_*`` export of ``repro`` is referenced by some
       spec or explicitly exempted (no unregistered drivers, no stale
       exemptions);
    4. the CLI parser's algorithm choices equal the registry (no CLI
       drift);
    5. the fuzz population equals ``crash_safe()`` (no fuzz drift -- the
       historical ``ka2``/``one-plus-eta``/``aloglogn`` gap);
    6. paper-row tables are 1, 2 or None and row ids are unique;
    7. ``bulk_capable`` flags mirror ``repro.core.bulk.BULK_DRIVERS``
       exactly, every bulk-driver entry names a public export, and the
       zoo's engine tuple matches the runtime's;
    8. every ``workloads`` restriction names real bench workloads, and
       the zoo's execution-mode tuple matches the scheduler's.
    """
    import repro

    problems: list[str] = []
    referenced: set[str] = set()
    rows_seen: dict[str, str] = {}

    for spec in all_specs():
        for role, ref in (("driver", spec.driver), ("baseline", spec.baseline)):
            if ref is None:
                continue
            if ref.fn is None:
                referenced.add(ref.func)
                if not callable(getattr(repro, ref.func, None)):
                    problems.append(
                        f"{spec.name}: {role} {ref.func!r} is not exported "
                        "from repro"
                    )
        if spec.problem not in FULL_VALIDATORS:
            problems.append(
                f"{spec.name}: problem {spec.problem!r} has no full validator"
            )
        if spec.crash_safe and spec.problem not in SURVIVOR_CHECKS:
            problems.append(
                f"{spec.name}: crash-safe but problem {spec.problem!r} has "
                "no survivor-safety check"
            )
        row = spec.paper_row
        if row is not None:
            if row.table not in (None, 1, 2):
                problems.append(
                    f"{spec.name}: paper table must be 1, 2 or None, "
                    f"got {row.table!r}"
                )
            if row.row in rows_seen:
                problems.append(
                    f"{spec.name}: paper row {row.row!r} already used by "
                    f"{rows_seen[row.row]!r}"
                )
            rows_seen[row.row] = spec.name

    exported = {x for x in repro.__all__ if x.startswith("run_")}
    for func in sorted(exported - referenced - set(EXEMPT_DRIVERS)):
        problems.append(
            f"driver {func!r} is exported from repro but neither registered "
            "nor exempted (add a spec or an EXEMPT_DRIVERS entry)"
        )
    for func in sorted(set(EXEMPT_DRIVERS) - exported):
        problems.append(
            f"exemption for {func!r} is stale: not exported from repro"
        )
    for func in sorted(set(EXEMPT_DRIVERS) & referenced):
        problems.append(
            f"exemption for {func!r} is stale: a spec references it"
        )

    # CLI drift: the parser's `run` choices must be exactly the registry.
    from repro.cli import build_parser

    parser = build_parser()
    run_choices = None
    for action in parser._subparsers._group_actions[0].choices["run"]._actions:
        if action.dest == "algorithm":
            run_choices = tuple(action.choices)
    if run_choices != names():
        problems.append(
            f"CLI `run` choices {run_choices!r} != registry names {names()!r}"
        )

    # fuzz drift: the sampled population must be exactly crash_safe().
    from repro.faults import fuzz as _fuzz

    fuzz_pop = tuple(_fuzz.default_population())
    expected = tuple(s.name for s in crash_safe())
    if fuzz_pop != expected:
        problems.append(
            f"fuzz population {fuzz_pop!r} != crash-safe registry "
            f"view {expected!r}"
        )

    # bulk drift: the bulk_capable flags must mirror the columnar-driver
    # registry, and the zoo's engine list must match the runtime's.
    from repro.core.bulk import BULK_DRIVERS
    from repro.runtime.network import ENGINES as _RUNTIME_ENGINES
    from repro.zoo.spec import ENGINES as _ZOO_ENGINES

    if _ZOO_ENGINES != _RUNTIME_ENGINES:
        problems.append(
            f"zoo ENGINES {_ZOO_ENGINES!r} != runtime ENGINES "
            f"{_RUNTIME_ENGINES!r}"
        )
    for spec in all_specs():
        has_bulk = (
            spec.driver.fn is None and spec.driver.func in BULK_DRIVERS
        )
        if spec.bulk_capable and not has_bulk:
            problems.append(
                f"{spec.name}: flagged bulk_capable but driver "
                f"{spec.driver.func!r} has no core.bulk.BULK_DRIVERS entry"
            )
        if has_bulk and not spec.bulk_capable:
            problems.append(
                f"{spec.name}: driver {spec.driver.func!r} has a bulk twin "
                "but the spec is not flagged bulk_capable"
            )
    for func in sorted(set(BULK_DRIVERS) - exported):
        problems.append(
            f"bulk driver entry {func!r} does not name a public repro export"
        )

    # workload drift: topology restrictions must name real bench
    # workloads, and the zoo's mode tuple must match the scheduler's.
    from repro.bench.workloads import WORKLOADS
    from repro.runtime.scheduler import MODES as _RUNTIME_MODES
    from repro.zoo.spec import MODES as _ZOO_MODES

    if _ZOO_MODES != _RUNTIME_MODES:
        problems.append(
            f"zoo MODES {_ZOO_MODES!r} != scheduler MODES {_RUNTIME_MODES!r}"
        )
    for spec in all_specs():
        for wl in spec.workloads:
            if wl not in WORKLOADS:
                problems.append(
                    f"{spec.name}: workload restriction {wl!r} is not a "
                    "registered bench workload"
                )
    return problems

"""Problem-kind keyed validation: full validators and survivor checks.

Two check families, both selected by :attr:`AlgorithmSpec.problem` rather
than per-algorithm wiring:

* **Full validators** assert the complete problem definition (propriety
  *and* maximality/completeness) on the whole graph and return a one-line
  human summary.  These guard every fault-free ``repro run``.
* **Survivor checks** assert only the *safety* half restricted to the
  surviving (non-crashed) subgraph -- a crash adversary legitimately
  destroys completeness (an MIS cannot stay maximal around a dead
  vertex), so the fault harness checks proper coloring among survivors,
  independence, matching disjointness, and the H-partition degree bound.
  These moved here verbatim from ``repro.faults.harness``; the harness
  now imports them through the registry.
"""

from __future__ import annotations

from typing import Callable

from repro import verify
from repro.verify import VerificationError

# ---------------------------------------------------------------------------
# full validators (fault-free runs): validate(g, res) -> summary line
# ---------------------------------------------------------------------------

def _validate_coloring(g, res) -> str:
    verify.assert_proper_coloring(g, res.colors)
    return f"proper coloring, {res.colors_used} colors (bound {res.palette_bound})"


def _validate_mis(g, res) -> str:
    verify.assert_maximal_independent_set(g, res.mis)
    return f"maximal independent set, |I| = {len(res.mis)}"


def _validate_matching(g, res) -> str:
    verify.assert_maximal_matching(g, res.matching)
    return f"maximal matching, |M| = {len(res.matching)}"


def _validate_edge_coloring(g, res) -> str:
    verify.assert_proper_edge_coloring(g, res.edge_colors)
    return f"proper edge coloring, {res.colors_used} colors (bound {res.palette_bound})"


def _validate_partition(g, res) -> str:
    verify.assert_h_partition(g, res.h_index, res.A)
    return f"H-partition into {res.num_sets} sets (A = {res.A})"


def _validate_leader_election(g, res) -> str:
    outputs = res.outputs
    for v in g.vertices():
        if outputs.get(v) not in ("leader", "non-leader"):
            raise VerificationError(
                f"vertex {v} has no leader-election output "
                f"(got {outputs.get(v)!r})"
            )
    leaders = [v for v, out in outputs.items() if out == "leader"]
    if len(leaders) != 1:
        raise VerificationError(
            f"expected exactly one leader, got {sorted(leaders)}"
        )
    if leaders[0] != res.leader:
        raise VerificationError(
            f"result names leader {res.leader} but vertex {leaders[0]} "
            "output 'leader'"
        )
    return f"unique leader {res.leader} elected on ring of {g.n}"


def _validate_consensus(g, res) -> str:
    decisions, values = res.decisions, res.values
    for v in g.vertices():
        if decisions.get(v) not in (0, 1):
            raise VerificationError(
                f"vertex {v} has no binary decision (got {decisions.get(v)!r})"
            )
    comps = g.connected_components()
    for comp in comps:
        # fault-free flood-min decides exactly the component minimum
        want = min(values[v] for v in comp)
        for v in comp:
            if decisions[v] != want:
                raise VerificationError(
                    f"vertex {v} decided {decisions[v]} but its component's "
                    f"input minimum is {want}"
                )
    zeros = sum(1 for v in g.vertices() if decisions[v] == 0)
    return (
        f"consensus on {len(comps)} component(s): "
        f"{zeros} decided 0, {g.n - zeros} decided 1"
    )


#: problem kind -> full validator; the kind taxonomy is closed, so this
#: table is total over PROBLEM_KINDS (pinned by tests/zoo)
FULL_VALIDATORS: dict[str, Callable] = {
    "coloring": _validate_coloring,
    "mis": _validate_mis,
    "matching": _validate_matching,
    "edge-coloring": _validate_edge_coloring,
    "partition": _validate_partition,
    "leader-election": _validate_leader_election,
    "consensus": _validate_consensus,
}


# ---------------------------------------------------------------------------
# survivor-subgraph safety checks: check(g, res, alive) -> None | raise
# ---------------------------------------------------------------------------

def check_vertex_coloring(g, res, alive: set[int]) -> None:
    colors = res.colors
    for v in alive:
        if v not in colors:
            raise VerificationError(
                f"surviving vertex {v} terminated without a color"
            )
    for u, v in g.edges():
        if u in alive and v in alive and colors[u] == colors[v]:
            raise VerificationError(
                f"surviving neighbors {u} and {v} share color {colors[u]!r}"
            )


def check_partition(g, res, alive: set[int]) -> None:
    for v in alive:
        if v not in res.h_index:
            raise VerificationError(
                f"surviving vertex {v} terminated without an H-index"
            )
    verify.assert_h_partition(g, res.h_index, res.A, subset=alive)


def check_mis(g, res, alive: set[int]) -> None:
    mis = res.mis
    for v in alive:
        if v not in res.in_mis:
            raise VerificationError(
                f"surviving vertex {v} terminated without an MIS decision"
            )
    for u, v in g.edges():
        if u in alive and v in alive and u in mis and v in mis:
            raise VerificationError(
                f"surviving MIS vertices {u} and {v} are adjacent"
            )


def check_matching(g, res, alive: set[int]) -> None:
    seen: dict[int, tuple[int, int]] = {}
    for e in res.matching:
        u, v = e
        if not g.has_edge(u, v):
            raise VerificationError(f"matching edge {e} is not in G")
        for x in (u, v):
            if x in alive and x in seen:
                raise VerificationError(
                    f"surviving vertex {x} is matched twice: {seen[x]} and {e}"
                )
            seen[x] = e


def check_edge_coloring(g, res, alive: set[int]) -> None:
    from repro.graphs.graph import canonical_edge

    ec = res.edge_colors
    # adjacent survivor-survivor edges must have distinct colors
    for v in alive:
        by_color: dict[int, tuple[int, int]] = {}
        for u in g.neighbors(v):
            if u not in alive:
                continue
            e = canonical_edge(u, v)
            c = ec.get(e)
            if c is None:
                raise VerificationError(f"surviving edge {e} has no color")
            if c in by_color:
                raise VerificationError(
                    f"edges {by_color[c]} and {e} at surviving vertex {v} "
                    f"share color {c}"
                )
            by_color[c] = e


def check_leader_election(g, res, alive: set[int]) -> None:
    """Safety half of leader election: no two surviving leaders.

    Completing at all under a crash is rare (the token must tour every
    ring vertex), but when it happens the survivors must not disagree on
    who leads, and every surviving vertex must have fixed an output.
    """
    outputs = res.outputs
    leaders = []
    for v in alive:
        out = outputs.get(v)
        if out not in ("leader", "non-leader"):
            raise VerificationError(
                f"surviving vertex {v} has no leader-election output "
                f"(got {out!r})"
            )
        if out == "leader":
            leaders.append(v)
    if len(leaders) > 1:
        raise VerificationError(
            f"multiple surviving leaders: {sorted(leaders)}"
        )


def check_consensus(g, res, alive: set[int]) -> None:
    """Safety half of binary consensus among crash-stop survivors.

    Agreement per connected component of the *surviving* subgraph (a
    crash may disconnect survivors, and disconnected groups legitimately
    diverge), and validity against the *original* component's inputs: a
    crashed vertex's zero may have propagated before the crash, but no
    value outside the component's input set can ever be decided.
    """
    decisions, values = res.decisions, res.values
    for v in alive:
        if decisions.get(v) not in (0, 1):
            raise VerificationError(
                f"surviving vertex {v} has no binary decision "
                f"(got {decisions.get(v)!r})"
            )
    # inputs available within each component of the original graph
    full_inputs: dict[int, set[int]] = {}
    for comp in g.connected_components():
        inputs = {values[v] for v in comp}
        for v in comp:
            full_inputs[v] = inputs
    # agreement on each connected component of the surviving subgraph
    seen: set[int] = set()
    for root in sorted(alive):
        if root in seen:
            continue
        stack, comp = [root], [root]
        seen.add(root)
        while stack:
            u = stack.pop()
            for w in g.neighbors(u):
                if w in alive and w not in seen:
                    seen.add(w)
                    stack.append(w)
                    comp.append(w)
        want = decisions[root]
        for v in comp:
            if decisions[v] != want:
                raise VerificationError(
                    f"surviving vertices {root} and {v} are connected but "
                    f"decided {want} and {decisions[v]}"
                )
        if want not in full_inputs[root]:
            raise VerificationError(
                f"component of {root} decided {want}, which no vertex of "
                "its original component had as input"
            )


#: problem kind -> survivor-restricted safety check
SURVIVOR_CHECKS: dict[str, Callable] = {
    "coloring": check_vertex_coloring,
    "mis": check_mis,
    "matching": check_matching,
    "edge-coloring": check_edge_coloring,
    "partition": check_partition,
    "leader-election": check_leader_election,
    "consensus": check_consensus,
}


def full_validator(problem: str) -> Callable:
    """The whole-graph validator for a problem kind."""
    return FULL_VALIDATORS[problem]


def survivor_check(problem: str) -> Callable:
    """The survivor-subgraph safety check for a problem kind."""
    return SURVIVOR_CHECKS[problem]

"""Declarative algorithm specifications.

An :class:`AlgorithmSpec` is the single registration point for one
algorithm of the paper's zoo: which driver runs it, which problem it
solves (and therefore which validator and survivor-safety check apply),
which worst-case baseline it is compared against, and where it lives in
the paper (Table 1/2 row, theorem reference).  The registry in
:mod:`repro.zoo.registry` holds one spec per algorithm; every consumer --
the CLI, the fault fuzzer, the bench tables, the test parametrizations --
derives its view from the registry instead of keeping its own list.

Drivers are referenced *by name* (attributes of the top-level ``repro``
package) and resolved lazily: importing the full algorithm stack at spec
definition time would recreate the import cycle the old
``faults.harness.zoo()`` lazy dict existed to avoid
(``repro -> runtime -> faults``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

#: the problem taxonomy of the paper's result tables (Table 1 is all
#: vertex coloring; Table 2 is MIS / edge-coloring / matching; the
#: H-partition of Section 6 underlies them all), plus the related-work
#: rows that motivate the averaged *output* measure: ring leader
#: election (Feuilloley [12]) and crash-tolerant binary consensus
PROBLEM_KINDS = (
    "coloring",
    "edge-coloring",
    "mis",
    "matching",
    "partition",
    "leader-election",
    "consensus",
)

#: engines `execute()` accepts (see repro.runtime.engine_session);
#: kept in sync with ``repro.runtime.ENGINES`` (check_registry verifies)
ENGINES = ("fast", "reference", "bulk")

#: execution modes `execute()` accepts (see repro.runtime.mode_session):
#: the synchronous global-round barrier or the event-driven asynchronous
#: executor; kept in sync with ``repro.runtime.scheduler.MODES``
#: (check_registry verifies)
MODES = ("sync", "async")


@dataclass(frozen=True)
class PaperRow:
    """Where an algorithm lives in the paper.

    ``table`` is 1 or 2 for the headline result tables, ``None`` for
    section-level results that the tables build on (Procedure Partition,
    the intermediate colorings of Sections 7.3/7.4).  ``row`` is the
    DESIGN.md experiment index (``T1.R5``) or a section reference
    (``S6.1``); ``ref`` is the theorem/corollary the row reproduces.
    """

    row: str
    label: str
    ref: str
    table: int | None = None

    def cite(self) -> str:
        """Short citable id: ``"T1.R5 (Theorem 7.13)"``."""
        return f"{self.row} ({self.ref})"


@dataclass(frozen=True)
class DriverRef:
    """A lazily-resolved reference to a driver callable.

    ``func`` names an attribute of the top-level ``repro`` package;
    ``params`` are frozen default kwargs (e.g. ``worstcase_schedule=True``
    for the Table 2 baselines).  ``passes_a`` / ``passes_seed`` record
    which of the uniform ``(graph, a, ids, seed)`` call surface the
    underlying driver actually accepts.  ``fn`` bypasses the name lookup
    (tests inject broken drivers through it).
    """

    func: str = ""
    params: tuple[tuple[str, Any], ...] = ()
    passes_a: bool = True
    passes_seed: bool = False
    fn: Callable | None = field(default=None, repr=False, compare=False)

    @staticmethod
    def make(
        func: str = "",
        params: Mapping[str, Any] | None = None,
        passes_a: bool = True,
        passes_seed: bool = False,
        fn: Callable | None = None,
    ) -> "DriverRef":
        return DriverRef(
            func=func,
            params=tuple(sorted((params or {}).items())),
            passes_a=passes_a,
            passes_seed=passes_seed,
            fn=fn,
        )

    def resolve(self) -> Callable:
        """The uniform ``driver(graph, a, ids, seed)`` callable."""
        if self.fn is not None:
            target = self.fn
        else:
            import repro

            try:
                target = getattr(repro, self.func)
            except AttributeError:
                raise AttributeError(
                    f"driver {self.func!r} is not exported from repro"
                ) from None
        extra = dict(self.params)
        passes_a, passes_seed = self.passes_a, self.passes_seed

        def driver(g, a, ids, seed):
            kwargs = dict(extra)
            if passes_a:
                kwargs["a"] = a
            if passes_seed:
                kwargs["seed"] = seed
            return target(g, ids=ids, **kwargs)

        return driver


@dataclass(frozen=True)
class AlgorithmSpec:
    """One declarative row of the algorithm zoo.

    Fields
    ------
    name:
        The CLI / fuzzer / bench name (kebab-case).
    problem:
        One of :data:`PROBLEM_KINDS`; selects the full validator and the
        survivor-restricted safety check (see :mod:`repro.zoo.checks`).
    driver:
        The vertex-averaged algorithm itself.
    baseline:
        The worst-case-schedule driver the paper row compares against
        (``None`` when the paper states no baseline; such specs are
        excluded from ``repro compare``).
    paper_row:
        Table/row/theorem anchor (see :class:`PaperRow`).
    randomized:
        Whether the driver draws randomness (its seed matters).
    crash_safe:
        Whether the algorithm participates in crash-stop fault fuzzing:
        survivor-subgraph safety is expected to hold under any crash-only
        plan (the ``repro fuzz --smoke`` CI gate).  The flag exists so an
        algorithm with documented crash-unsafety can opt out *visibly*
        (e.g. ``luby-mis``, whose bulk twin rejects fault injection).
    bulk_capable:
        Whether the driver has a columnar twin in
        ``repro.core.bulk.BULK_DRIVERS`` and therefore runs under
        ``execute(engine="bulk")``.  ``check_registry`` fails on any
        drift between this flag and the driver registry.  Bulk-capable
        or not, fault plans never combine with the bulk engine.
    workloads:
        Bench-workload names the algorithm is restricted to, or ``()``
        for "any workload".  Topology-bound algorithms (ring leader
        election) declare their topology here *once*; the fuzzer's case
        sampler and the test parametrizations honor the restriction, and
        ``check_registry`` fails on names missing from the bench
        registry.
    """

    name: str
    problem: str
    driver: DriverRef
    baseline: DriverRef | None = None
    paper_row: PaperRow | None = None
    randomized: bool = False
    crash_safe: bool = True
    bulk_capable: bool = False
    workloads: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.problem not in PROBLEM_KINDS:
            raise ValueError(
                f"unknown problem kind {self.problem!r} for spec "
                f"{self.name!r}; expected one of {PROBLEM_KINDS}"
            )

    @property
    def has_baseline(self) -> bool:
        return self.baseline is not None

    def run(self, g, a, ids: Sequence[int] | None, seed: int):
        """Run the averaged driver on the uniform call surface."""
        return self.driver.resolve()(g, a, ids, seed)

    def run_baseline(self, g, a, ids: Sequence[int] | None, seed: int):
        """Run the worst-case baseline driver."""
        if self.baseline is None:
            raise ValueError(f"spec {self.name!r} declares no baseline")
        return self.baseline.resolve()(g, a, ids, seed)

    def describe_row(self) -> str:
        """The paper anchor, or ``-`` when the spec has none."""
        return self.paper_row.cite() if self.paper_row else "-"

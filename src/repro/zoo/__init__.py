"""``repro.zoo``: the declarative algorithm registry and its one
execution pipeline.

The paper's results are *per-problem rows* (Table 1: vertex colorings;
Table 2: MIS, edge-coloring, matching).  This package encodes that
taxonomy once:

* :mod:`repro.zoo.spec` -- :class:`AlgorithmSpec`: driver, problem kind,
  worst-case baseline, paper row (table / row id / theorem), randomized
  and crash-safety flags, default parameters.
* :mod:`repro.zoo.registry` -- one spec per algorithm, typed views
  (:func:`all_specs`, :func:`with_baseline`, :func:`crash_safe`,
  :func:`by_problem`, :func:`by_table`) and the :func:`check_registry`
  consistency gate (``repro list --check``).
* :mod:`repro.zoo.checks` -- full validators and survivor-restricted
  safety checks keyed by problem kind.
* :mod:`repro.zoo.execute` -- :func:`execute`: engine selection, obs
  sinks, fault plans and validation threaded through a single seam.

Every consumer (CLI, fuzzer, bench tables, test parametrizations)
derives its algorithm list from here; see ``docs/architecture.md``.
"""

from repro.zoo.checks import (
    FULL_VALIDATORS,
    SURVIVOR_CHECKS,
    full_validator,
    survivor_check,
)
from repro.zoo.execute import Execution, execute
from repro.zoo.registry import (
    EXEMPT_DRIVERS,
    all_specs,
    by_problem,
    by_table,
    check_registry,
    crash_safe,
    get,
    names,
    randomized,
    register,
    unregister,
    with_baseline,
)
from repro.zoo.spec import (
    ENGINES,
    PROBLEM_KINDS,
    AlgorithmSpec,
    DriverRef,
    PaperRow,
)

__all__ = [
    "ENGINES",
    "EXEMPT_DRIVERS",
    "FULL_VALIDATORS",
    "PROBLEM_KINDS",
    "SURVIVOR_CHECKS",
    "AlgorithmSpec",
    "DriverRef",
    "Execution",
    "PaperRow",
    "all_specs",
    "by_problem",
    "by_table",
    "check_registry",
    "crash_safe",
    "execute",
    "full_validator",
    "get",
    "names",
    "randomized",
    "register",
    "survivor_check",
    "unregister",
    "with_baseline",
]

"""Wall-clock phase profiling for the round engines.

:class:`PhaseProfiler` accumulates seconds per named phase.  The engines
time three sections of every round when a profiler rides on the bus
(``EventBus(..., profiler=PhaseProfiler())``):

* ``deliver`` -- fanning out last round's termination notices (and, in
  the fast engine, the active-neighbor-list maintenance that rides on
  them);
* ``step`` -- advancing the vertex generators.  The fast engine routes
  messages *inside* this section (at ``ctx.send`` time), the reference
  engine routes ``_outgoing`` batches here too, so ``step`` is the bulk
  of both engines' work;
* ``route`` -- end-of-round bookkeeping: dropping mail addressed to
  vertices that terminated this round, and rotating (fast) or swapping
  (reference) the mail buffers.

Profiling is independent of event emission: a profiler on a bus whose
only sink is a :class:`~repro.obs.sinks.NullSink` still collects timings
while the event machinery stays disabled.  The per-round cost is six
``perf_counter`` calls, which is why the hooks are per-round, not
per-vertex.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter


class PhaseProfiler:
    """Accumulate wall-clock seconds (and hit counts) per phase."""

    __slots__ = ("seconds", "counts")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def add(self, phase: str, dt: float) -> None:
        """Record ``dt`` seconds spent in ``phase`` (one hit)."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + dt
        self.counts[phase] = self.counts.get(phase, 0) + 1

    @contextmanager
    def section(self, phase: str):
        """Context-manager convenience for non-hot-path call sites."""
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add(phase, perf_counter() - t0)

    def total(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> dict[str, dict[str, float]]:
        """``{phase: {"seconds": s, "count": k, "share": s/total}}``."""
        total = self.total()
        return {
            phase: {
                "seconds": secs,
                "count": self.counts.get(phase, 0),
                "share": (secs / total) if total else 0.0,
            }
            for phase, secs in self.seconds.items()
        }

    def report(self) -> str:
        """A small aligned table of phase timings, largest first."""
        if not self.seconds:
            return "no phases recorded"
        total = self.total()
        lines = [f"{'phase':<10} {'seconds':>10} {'rounds':>8} {'share':>7}"]
        for phase, secs in sorted(
            self.seconds.items(), key=lambda kv: -kv[1]
        ):
            share = (secs / total * 100.0) if total else 0.0
            lines.append(
                f"{phase:<10} {secs:>10.4f} {self.counts.get(phase, 0):>8} "
                f"{share:>6.1f}%"
            )
        lines.append(f"{'total':<10} {total:>10.4f}")
        return "\n".join(lines)

    def reset(self) -> None:
        self.seconds.clear()
        self.counts.clear()

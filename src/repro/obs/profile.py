"""Wall-clock phase profiling for the round engines.

:class:`PhaseProfiler` accumulates seconds per named phase.  The
generator engines time three sections of every round when a profiler
rides on the bus (``EventBus(..., profiler=PhaseProfiler())``):

* ``deliver`` -- fanning out last round's termination notices (and, in
  the fast engine, the active-neighbor-list maintenance that rides on
  them);
* ``step`` -- advancing the vertex generators.  The fast engine routes
  messages *inside* this section (at ``ctx.send`` time), the reference
  engine routes ``_outgoing`` batches here too, so ``step`` is the bulk
  of both engines' work;
* ``route`` -- end-of-round bookkeeping: dropping mail addressed to
  vertices that terminated this round, and rotating (fast) or swapping
  (reference) the mail buffers.

The columnar bulk engine times ``kernel`` (its vectorized round loop)
and ``finalize`` (deriving events and metrics from the final arrays),
via :func:`repro.runtime.bulk.profiled`.

Sharded runs additionally fill **per-shard slots**: each worker of the
sharded BSP executor reports its own (``compute``, ``barrier``,
``allreduce``, ``publish``) seconds through a shared-memory timing
block, and the parent merges them via :meth:`PhaseProfiler.record_shard`
into a per-shard x per-phase breakdown -- rendered by
:meth:`shard_report` / ``repro inspect --timeline``.

Profiling is independent of event emission: a profiler on a bus whose
only sink is a :class:`~repro.obs.sinks.NullSink` still collects timings
while the event machinery stays disabled.  The per-round cost is six
``perf_counter`` calls, which is why the hooks are per-round, not
per-vertex.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

#: preferred column order for the per-shard table (the sharded executor's
#: phase names); phases outside this list render after it, alphabetically
PREFERRED_SHARD_PHASES = ("compute", "barrier", "allreduce", "publish")


class PhaseProfiler:
    """Accumulate wall-clock seconds (and hit counts) per phase.

    Two independent stores: the flat per-phase totals the round engines
    fill (``seconds`` / ``counts``), and the per-shard slots a sharded
    run's workers fill (``shard_seconds`` / ``shard_counts``, keyed by
    shard index then phase).
    """

    __slots__ = ("seconds", "counts", "shard_seconds", "shard_counts")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.shard_seconds: dict[int, dict[str, float]] = {}
        self.shard_counts: dict[int, dict[str, int]] = {}

    def add(self, phase: str, dt: float) -> None:
        """Record ``dt`` seconds spent in ``phase`` (one hit)."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + dt
        self.counts[phase] = self.counts.get(phase, 0) + 1

    @contextmanager
    def section(self, phase: str):
        """Context-manager convenience for non-hot-path call sites."""
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add(phase, perf_counter() - t0)

    def record_shard(
        self, shard: int, phase: str, seconds: float, count: int = 1
    ) -> None:
        """Merge ``seconds`` / ``count`` into shard ``shard``'s ``phase`` slot.

        Called by the parent of a sharded run after collecting the
        workers' shared-memory timing block; also usable directly in
        tests.  Zero-count slots are skipped so phases a worker never
        entered don't clutter the table.
        """
        if count <= 0 and seconds == 0.0:
            return
        secs = self.shard_seconds.setdefault(shard, {})
        secs[phase] = secs.get(phase, 0.0) + seconds
        cnts = self.shard_counts.setdefault(shard, {})
        cnts[phase] = cnts.get(phase, 0) + count

    def shard_phases(self) -> list[str]:
        """Phase names across all shards, preferred-order first."""
        present: set[str] = set()
        for secs in self.shard_seconds.values():
            present.update(secs)
        ordered = [p for p in PREFERRED_SHARD_PHASES if p in present]
        ordered += sorted(present.difference(PREFERRED_SHARD_PHASES))
        return ordered

    def total(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> dict[str, dict[str, float]]:
        """``{phase: {"seconds": s, "count": k, "share": s/total}}``."""
        total = self.total()
        return {
            phase: {
                "seconds": secs,
                "count": self.counts.get(phase, 0),
                "share": (secs / total) if total else 0.0,
            }
            for phase, secs in self.seconds.items()
        }

    def full_dict(self) -> dict:
        """Manifest-friendly snapshot: flat phases plus per-shard slots.

        Unlike :meth:`as_dict` (whose shape is pinned by callers), this
        nests both stores: ``{"total_s", "phases": as_dict(),
        "shards": {"0": {phase: {"seconds", "count"}}, ...}}``.  Shard
        keys are strings so the dict survives a JSON round-trip
        unchanged.
        """
        out: dict = {"total_s": self.total(), "phases": self.as_dict()}
        if self.shard_seconds:
            out["shards"] = {
                str(idx): {
                    phase: {
                        "seconds": secs,
                        "count": self.shard_counts.get(idx, {}).get(phase, 0),
                    }
                    for phase, secs in sorted(per_shard.items())
                }
                for idx, per_shard in sorted(self.shard_seconds.items())
            }
        return out

    def report(self) -> str:
        """A small aligned table of phase timings, largest first."""
        if not self.seconds and not self.shard_seconds:
            return "no phases recorded"
        lines: list[str] = []
        if self.seconds:
            total = self.total()
            lines.append(
                f"{'phase':<10} {'seconds':>10} {'rounds':>8} {'share':>7}"
            )
            for phase, secs in sorted(
                self.seconds.items(), key=lambda kv: -kv[1]
            ):
                share = (secs / total * 100.0) if total else 0.0
                lines.append(
                    f"{phase:<10} {secs:>10.4f} "
                    f"{self.counts.get(phase, 0):>8} {share:>6.1f}%"
                )
            lines.append(f"{'total':<10} {total:>10.4f}")
        if self.shard_seconds:
            if lines:
                lines.append("")
            lines.append(self.shard_report())
        return "\n".join(lines)

    def shard_report(self) -> str:
        """Per-shard x per-phase seconds table (one row per shard)."""
        if not self.shard_seconds:
            return "no shard phases recorded"
        phases = self.shard_phases()
        header = f"{'shard':>5}"
        for phase in phases:
            header += f" {phase:>10}"
        header += f" {'total':>10}"
        lines = [header]
        col_sums = {p: 0.0 for p in phases}
        for idx in sorted(self.shard_seconds):
            secs = self.shard_seconds[idx]
            row = f"{idx:>5}"
            row_total = 0.0
            for phase in phases:
                v = secs.get(phase, 0.0)
                col_sums[phase] += v
                row_total += v
                row += f" {v:>10.4f}"
            row += f" {row_total:>10.4f}"
            lines.append(row)
        if len(self.shard_seconds) > 1:
            row = f"{'sum':>5}"
            for phase in phases:
                row += f" {col_sums[phase]:>10.4f}"
            row += f" {sum(col_sums.values()):>10.4f}"
            lines.append(row)
        return "\n".join(lines)

    def reset(self) -> None:
        self.seconds.clear()
        self.counts.clear()
        self.shard_seconds.clear()
        self.shard_counts.clear()

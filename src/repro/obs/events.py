"""Typed engine events and the :class:`EventBus` that routes them.

The round engines (:class:`repro.runtime.network.SyncNetwork` and the
reference specification) narrate an execution as a stream of small, typed
events: one ``round_start``/``round_end`` pair per round, one ``send`` per
``ctx.send`` call, one ``broadcast`` per ``ctx.broadcast`` call (carrying
the receiver count, not one event per receiver), ``commit`` and ``halt``
per vertex, and ``drop`` when messages addressed to a vertex that
terminated in the sending round are discarded.

Both engines emit *identical* event streams for the same execution -- the
differential suite in ``tests/runtime/test_equivalence.py`` enforces it --
so an event trace is an engine-independent record of a run.

Events carry only small integers (round numbers, vertex indices, message
counts), never payloads, so they serialise to JSONL losslessly via
:meth:`Event.to_record` / :func:`from_record`.

Cost model: when no sink is live the engines never construct an event
(the bus is simply not wired into the contexts), so instrumentation with
a :class:`~repro.obs.sinks.NullSink` -- or no bus at all -- costs one
branch per call site.  See ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar

#: bump when the JSONL record layout changes incompatibly
SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class Event:
    """Base class: every event happens during one 1-based round."""

    kind: ClassVar[str] = "?"

    round: int

    def to_record(self) -> dict[str, Any]:
        """A JSON-safe dict representation (``ev`` holds the kind)."""
        rec: dict[str, Any] = {"ev": self.kind}
        for f in fields(self):
            rec[f.name] = getattr(self, f.name)
        return rec


@dataclass(frozen=True, slots=True)
class RoundStart(Event):
    """A round begins with ``active`` vertices still running (n_i)."""

    kind: ClassVar[str] = "round_start"
    active: int


@dataclass(frozen=True, slots=True)
class RoundEnd(Event):
    """A round ended.

    ``msgs`` is the engine's per-round traffic (routed messages minus
    same-round drops, plus one halt notice per terminating vertex --
    exactly ``RoundMetrics.messages_per_round``), ``receivers`` the number
    of distinct vertices with a non-empty inbox for the next round, and
    ``halts`` the number of vertices that terminated this round.
    """

    kind: ClassVar[str] = "round_end"
    msgs: int
    receivers: int
    halts: int


@dataclass(frozen=True, slots=True)
class Send(Event):
    """``ctx.send``: one payload routed from ``src`` to neighbor ``dst``."""

    kind: ClassVar[str] = "send"
    src: int
    dst: int


@dataclass(frozen=True, slots=True)
class Broadcast(Event):
    """``ctx.broadcast``: ``msgs`` copies routed to the active neighbors
    of ``src`` (only emitted when at least one neighbor is active)."""

    kind: ClassVar[str] = "broadcast"
    src: int
    msgs: int


@dataclass(frozen=True, slots=True)
class RoundSends(Event):
    """Aggregate of one round's program sends: ``msgs`` copies routed by
    all ``ctx.send`` / ``ctx.broadcast`` calls this round combined.

    This is the coarse-grained alternative to per-``send``/``broadcast``
    events: the bulk engine emits one ``round_sends`` per round instead of
    O(messages) events, so tracing a million-vertex run stays O(rounds).
    :class:`~repro.obs.collect.MetricsCollector` accepts either
    granularity (a ``round_sends`` record is authoritative for its round,
    so mixed streams are never double-counted).
    """

    kind: ClassVar[str] = "round_sends"
    msgs: int


@dataclass(frozen=True, slots=True)
class Commit(Event):
    """Vertex ``v`` fixed its output (``ctx.commit``) this round."""

    kind: ClassVar[str] = "commit"
    v: int


@dataclass(frozen=True, slots=True)
class Halt(Event):
    """Vertex ``v`` terminated this round; its running time r(v)."""

    kind: ClassVar[str] = "halt"
    v: int


@dataclass(frozen=True, slots=True)
class Drop(Event):
    """``msgs`` messages addressed to ``dst`` were discarded because
    ``dst`` terminated in the same round they were sent."""

    kind: ClassVar[str] = "drop"
    dst: int
    msgs: int


@dataclass(frozen=True, slots=True)
class FaultCrash(Event):
    """The adversary crash-stopped vertex ``v`` at the start of this
    round: it performs no further computation and announces nothing
    (:mod:`repro.faults`)."""

    kind: ClassVar[str] = "fault_crash"
    v: int


@dataclass(frozen=True, slots=True)
class FaultDrop(Event):
    """The adversary dropped one copy routed from ``src`` to ``dst``."""

    kind: ClassVar[str] = "fault_drop"
    src: int
    dst: int


@dataclass(frozen=True, slots=True)
class FaultDup(Event):
    """The adversary duplicated one copy from ``src`` to ``dst`` (one
    extra copy delivered alongside the original)."""

    kind: ClassVar[str] = "fault_dup"
    src: int
    dst: int


@dataclass(frozen=True, slots=True)
class FaultDelay(Event):
    """The adversary delayed one copy from ``src`` to ``dst`` by
    ``delay`` extra rounds beyond the normal next-round delivery."""

    kind: ClassVar[str] = "fault_delay"
    src: int
    dst: int
    delay: int


@dataclass(frozen=True, slots=True)
class Delivery(Event):
    """Asynchronous-mode token delivery: the round-``round`` token on the
    directed edge ``src -> dst`` arrived at virtual time ``t``.

    Only the event-queue scheduler (:mod:`repro.runtime.async_sched`)
    emits these -- the synchronous barrier has no per-edge delivery times.
    ``round`` is the *sender's* local round; the receiver observes the
    token's payloads during its local round ``round + 1``.
    """

    kind: ClassVar[str] = "delivery"
    src: int
    dst: int
    t: float


@dataclass(frozen=True, slots=True)
class WorkerLost(Event):
    """The sharded executor detected worker process ``shard`` dead
    (SIGKILL, OOM-kill, ...); ``round`` is the newest consistent
    checkpoint round at diagnosis time (0 when none).  Emitted only on
    the anomaly path — routine runs carry no executor events, so traces
    stay engine-identical."""

    kind: ClassVar[str] = "worker_lost"
    shard: int


@dataclass(frozen=True, slots=True)
class WorkerRestart(Event):
    """The executor restarted the worker group from the checkpoint at
    ``round``; this is restart ``attempt`` (1-based)."""

    kind: ClassVar[str] = "worker_restart"
    attempt: int


@dataclass(frozen=True, slots=True)
class Checkpoint(Event):
    """The executor is resuming ``shards`` workers from the consistent
    per-round checkpoint taken at ``round`` (anomaly path only; routine
    checkpoints are not narrated)."""

    kind: ClassVar[str] = "checkpoint"
    shards: int


#: kind string -> event class, for deserialisation
EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        RoundStart,
        RoundEnd,
        Send,
        Broadcast,
        RoundSends,
        Commit,
        Halt,
        Drop,
        FaultCrash,
        FaultDrop,
        FaultDup,
        FaultDelay,
        Delivery,
        WorkerLost,
        WorkerRestart,
        Checkpoint,
    )
}


def from_record(rec: dict[str, Any]) -> Event | None:
    """Rebuild an :class:`Event` from a ``to_record`` dict.

    Returns ``None`` for records of unknown kind (e.g. the ``meta``
    header line a :class:`~repro.obs.sinks.JsonlSink` writes), so loaders
    can skip them without special-casing.
    """
    cls = EVENT_TYPES.get(rec.get("ev", ""))
    if cls is None:
        return None
    kwargs = {f.name: rec[f.name] for f in fields(cls)}
    return cls(**kwargs)


class EventBus:
    """Fan-out of engine events to pluggable sinks.

    The bus partitions its sinks into *live* ones (``sink.live`` true) and
    inert ones; :attr:`active` is false when no sink is live, and the
    engines use that to skip event construction entirely -- a bus holding
    only a :class:`~repro.obs.sinks.NullSink` therefore costs (almost)
    nothing.  An optional :class:`~repro.obs.profile.PhaseProfiler` rides
    along independently of event emission: profiling works even on an
    inactive bus.
    """

    __slots__ = ("sinks", "profiler", "_live")

    def __init__(self, *sinks, profiler=None) -> None:
        self.sinks = tuple(sinks)
        self.profiler = profiler
        self._live = tuple(s for s in self.sinks if getattr(s, "live", True))

    @property
    def active(self) -> bool:
        """Whether any sink actually consumes events."""
        return bool(self._live)

    def emit(self, event: Event) -> None:
        for sink in self._live:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(type(s).__name__ for s in self.sinks)
        return f"EventBus({names}, active={self.active})"

"""Event sinks: where the engines' event streams go.

Three built-ins cover the observability spectrum:

* :class:`NullSink` -- consumes nothing; attaching it leaves the bus
  inactive, so the engines skip event construction entirely and the
  instrumented run stays within the ``repro.bench.baseline`` overhead
  gate (< 5% of the uninstrumented path).
* :class:`MemorySink` -- buffers the typed events in a list, for tests
  and for in-process analysis (the differential equivalence suite
  compares two of these).
* :class:`JsonlSink` -- streams ``Event.to_record()`` dicts as JSON
  lines, prefixed with one ``{"ev": "meta", ...}`` header recording the
  schema version and caller-supplied run metadata.  The files it writes
  are what ``repro inspect`` loads.  The sink is crash-safe: it flushes
  the header immediately and then every :data:`JsonlSink.FLUSH_EVERY`
  events, so a run killed mid-write (OOM, SIGKILL, power loss) leaves a
  trace whose loss is bounded to the last partial batch -- and at most
  the final line of the file can be torn, which
  :func:`repro.obs.report.load_records` tolerates.

The aggregating sink lives in :mod:`repro.obs.collect`
(:class:`~repro.obs.collect.MetricsCollector`) and the trace-building
sink in :mod:`repro.runtime.trace`
(:class:`~repro.runtime.trace.TraceRecorder`).
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.obs.events import SCHEMA_VERSION, Event


class Sink:
    """Base sink: receives every event the bus considers it live for."""

    #: inert sinks set this false; the bus then never calls ``emit``
    live: bool = True

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; idempotent."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(Sink):
    """A sink that wants nothing: the near-zero-cost default.

    Because ``live`` is false the bus reports itself inactive, the
    engines never wire contexts to it, and no event object is ever
    constructed -- the entire instrumentation layer reduces to a handful
    of per-round branch checks.
    """

    live = False

    def emit(self, event: Event) -> None:  # pragma: no cover - never called
        pass


class MemorySink(Sink):
    """Buffer the typed events in order, in memory."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def by_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        self.events.clear()


class JsonlSink(Sink):
    """Stream events to a JSONL file (one compact JSON object per line).

    Parameters
    ----------
    path_or_fh:
        A filesystem path (opened for writing) or an already-open text
        file handle (not closed by :meth:`close`).
    meta:
        Extra key/values for the header record, e.g. the algorithm name,
        workload, n and seed -- ``repro inspect`` prints them back.
    """

    #: events per flush batch.  Small enough that a killed run loses at
    #: most a batch of trailing events, large enough that the flush cost
    #: stays invisible next to JSON encoding.
    FLUSH_EVERY = 64

    def __init__(self, path_or_fh: str | IO[str], meta: dict[str, Any] | None = None) -> None:
        if isinstance(path_or_fh, str):
            self._fh: IO[str] | None = open(path_or_fh, "w")
            self._owns = True
        else:
            self._fh = path_or_fh
            self._owns = False
        self._pending = 0
        header: dict[str, Any] = {"ev": "meta", "schema": SCHEMA_VERSION}
        if meta:
            header.update(meta)
        # The header flushes immediately: even a trace killed in round 1
        # identifies its run.
        self._write(header)
        self._fh.flush()

    def _write(self, rec: dict[str, Any]) -> None:
        self._fh.write(json.dumps(rec, separators=(",", ":")) + "\n")

    def emit(self, event: Event) -> None:
        self._write(event.to_record())
        self._pending += 1
        if self._pending >= self.FLUSH_EVERY:
            self._fh.flush()
            self._pending = 0

    def close(self) -> None:
        """Flush and release the handle; safe to call repeatedly."""
        if self._fh is None:
            return
        fh, self._fh = self._fh, None
        fh.flush()
        if self._owns:
            fh.close()

"""Offline analysis of JSONL event traces: the ``repro inspect`` backend.

A trace file (written by :class:`repro.obs.sinks.JsonlSink`) holds one
``meta`` header line followed by the event records of one or more engine
executions back to back (an algorithm driver may run several networks).
:func:`segment_records` splits the stream at round-counter resets, and
:class:`RunReport` replays each segment into its own
:class:`~repro.obs.collect.MetricsCollector`.

Renderers:

* :func:`narrative` -- the per-round "what happened when" log, the event
  -stream analogue of :meth:`repro.runtime.trace.Trace.narrative`;
* :func:`decay_table` -- the active-vertex decay curve n_i with per-round
  ratios, i.e. the measured shape Lemma 6.1 bounds;
* :func:`diff` -- engine-vs-engine (or run-vs-run) comparison of two
  traces, reporting the first diverging round and per-quantity deltas.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.collect import MetricsCollector
from repro.obs.events import Event, from_record


def load_records(path: str) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read a JSONL trace: ``(meta_header, event_records)``.

    Blank lines are skipped; the first ``meta`` record becomes the header
    (an empty dict if the file has none, e.g. a hand-built trace).

    A *torn final line* -- the signature of a writer killed mid-``write``
    (:class:`~repro.obs.sinks.JsonlSink` flushes per batch, so only the
    last line can be incomplete) -- is tolerated: the partial record is
    discarded and ``meta["_truncated"]`` is set ``True`` so downstream
    renderers can flag the trace as salvaged.  Malformed JSON anywhere
    *before* the final line is real corruption and still raises.
    """
    meta: dict[str, Any] = {}
    records: list[dict[str, Any]] = []
    with open(path) as fh:
        lines = [ln.strip() for ln in fh]
    lines = [(i, ln) for i, ln in enumerate(lines, start=1) if ln]
    for pos, (lineno, line) in enumerate(lines):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            if pos == len(lines) - 1:
                meta["_truncated"] = True
                break
            raise ValueError(
                f"{path}:{lineno}: corrupt trace record (not the final "
                f"line, so not a torn write): {line[:80]!r}"
            ) from None
        if rec.get("ev") == "meta" and not meta:
            meta = rec
        else:
            records.append(rec)
    return meta, records


def segment_records(records: list[dict[str, Any]]) -> list[list[dict[str, Any]]]:
    """Split a record stream into one segment per engine execution.

    A new segment starts at every ``round_start`` whose round number does
    not exceed the previous ``round_start``'s (the engines count rounds
    strictly upward within one execution).
    """
    segments: list[list[dict[str, Any]]] = []
    current: list[dict[str, Any]] = []
    last_start = 0
    for rec in records:
        if rec.get("ev") == "round_start":
            rnd = rec.get("round", 0)
            if current and rnd <= last_start:
                segments.append(current)
                current = []
            last_start = rnd
        current.append(rec)
    if current:
        segments.append(current)
    return segments


def collectors_from_records(
    records: list[dict[str, Any]],
) -> list[MetricsCollector]:
    """One replayed :class:`MetricsCollector` per execution segment."""
    collectors = []
    for segment in segment_records(records):
        events = [e for e in map(from_record, segment) if e is not None]
        collectors.append(MetricsCollector().replay(events))
    return collectors


class RunReport:
    """A loaded trace: header metadata plus one collector per execution."""

    def __init__(
        self, meta: dict[str, Any], collectors: list[MetricsCollector]
    ) -> None:
        self.meta = meta
        self.collectors = collectors

    @classmethod
    def from_path(cls, path: str) -> "RunReport":
        meta, records = load_records(path)
        return cls(meta, collectors_from_records(records))

    @property
    def main(self) -> MetricsCollector:
        """The largest execution in the trace (by vertices terminated)."""
        if not self.collectors:
            return MetricsCollector()
        return max(self.collectors, key=lambda c: (c.n, c.rounds))

    def describe_meta(self) -> str:
        skip = {"ev", "schema", "_truncated"}
        pairs = [f"{k}={v}" for k, v in self.meta.items() if k not in skip]
        text = " ".join(pairs) if pairs else "(no metadata)"
        if self.meta.get("_truncated"):
            text += " (TRUNCATED: torn final line discarded)"
        return text


# ---------------------------------------------------------------------------
# renderers
# ---------------------------------------------------------------------------


def narrative(col: MetricsCollector, limit: int = 50) -> str:
    """Per-round log: active vertices, traffic, commits, terminations."""
    lines = []
    rounds = col.rounds
    for i in range(min(rounds, limit)):
        parts = [f"round {i + 1:4d}:"]
        if i < len(col.active):
            parts.append(f"{col.active[i]} active")
        sent = col.sent[i] if i < len(col.sent) else 0
        if sent:
            parts.append(f"{sent} msgs")
        dropped = col.dropped[i] if i < len(col.dropped) else 0
        if dropped:
            parts.append(f"{dropped} dropped")
        committed = col.committed[i] if i < len(col.committed) else []
        if committed:
            parts.append(f"{len(committed)} committed")
        terms = col.terminations_per_round()
        terminated = terms[i] if i < len(terms) else 0
        if terminated:
            parts.append(f"{terminated} terminated")
        crashes = col.crashes[i] if i < len(col.crashes) else []
        if crashes:
            shown = ",".join(f"v{v}" for v in crashes[:6])
            more = f"+{len(crashes) - 6}" if len(crashes) > 6 else ""
            parts.append(f"CRASH {shown}{more}")
        fdrop = col.fault_drops[i] if i < len(col.fault_drops) else 0
        if fdrop:
            parts.append(f"{fdrop} msg-dropped")
        fdup = col.fault_dups[i] if i < len(col.fault_dups) else 0
        if fdup:
            parts.append(f"{fdup} msg-duplicated")
        fdelay = col.fault_delays[i] if i < len(col.fault_delays) else 0
        if fdelay:
            parts.append(f"{fdelay} msg-delayed")
        if len(parts) == 2:
            parts.append("idle")
        lines.append(" ".join(parts))
    if rounds > limit:
        lines.append(f"... ({rounds - limit} more rounds)")
    return "\n".join(lines)


def decay_table(col: MetricsCollector, limit: int = 40) -> str:
    """The measured active-vertex decay curve with per-round ratios."""
    a = col.decay_curve()
    if not a:
        return "no rounds recorded"
    lines = [f"{'round':>6} {'n_i':>8} {'ratio':>7}"]
    for i, n_i in enumerate(a[:limit]):
        ratio = f"{a[i] / a[i - 1]:.3f}" if i and a[i - 1] else "-"
        lines.append(f"{i + 1:>6} {n_i:>8} {ratio:>7}")
    if len(a) > limit:
        lines.append(f"... ({len(a) - limit} more rounds)")
    shape = col.check_decay(warmup=2, ratio=0.5)
    lines.append(
        "shape: monotone non-increasing, ratio <= 1/2 after 2 warm-up "
        f"rounds: {'yes' if shape else 'no'}"
    )
    return "\n".join(lines)


def _per_round_rows(col: MetricsCollector) -> list[tuple[int, int, int, int]]:
    terms = col.terminations_per_round()
    rows = []
    for i in range(col.rounds):
        rows.append(
            (
                col.active[i] if i < len(col.active) else 0,
                col.sent[i] if i < len(col.sent) else 0,
                len(col.committed[i]) if i < len(col.committed) else 0,
                terms[i] if i < len(terms) else 0,
            )
        )
    return rows


def diff(
    a: MetricsCollector,
    b: MetricsCollector,
    label_a: str = "A",
    label_b: str = "B",
    max_rows: int = 10,
) -> tuple[bool, str]:
    """Compare two executions round by round.

    Returns ``(identical, rendered_report)``.  Two executions are
    *identical* when their per-round (active, sent, committed,
    terminated) quadruples -- and hence their aggregate statistics --
    agree; this is the check ``repro inspect --diff`` uses to confirm the
    fast and reference engines replayed the same run.
    """
    rows_a = _per_round_rows(a)
    rows_b = _per_round_rows(b)
    lines = [
        f"{label_a}: {a.summary()}",
        f"{label_b}: {b.summary()}",
    ]
    divergences = []
    for i in range(max(len(rows_a), len(rows_b))):
        ra = rows_a[i] if i < len(rows_a) else None
        rb = rows_b[i] if i < len(rows_b) else None
        if ra != rb:
            divergences.append((i + 1, ra, rb))
    if not divergences:
        lines.append(
            f"identical: {len(rows_a)} rounds, per-round "
            "(active, sent, committed, terminated) all agree"
        )
        return True, "\n".join(lines)
    lines.append(f"DIVERGENT: {len(divergences)} rounds differ")
    for rnd, ra, rb in divergences[:max_rows]:
        lines.append(
            f"  round {rnd}: {label_a}={_fmt_row(ra)} {label_b}={_fmt_row(rb)}"
        )
    if len(divergences) > max_rows:
        lines.append(f"  ... ({len(divergences) - max_rows} more)")
    return False, "\n".join(lines)


def _fmt_row(row: tuple[int, int, int, int] | None) -> str:
    if row is None:
        return "(absent)"
    return f"(active={row[0]}, sent={row[1]}, committed={row[2]}, terminated={row[3]})"

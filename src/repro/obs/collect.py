"""The aggregating sink: per-vertex and per-round statistics from events.

:class:`MetricsCollector` consumes one execution's event stream and
accumulates exactly the distributions the paper's statements are about:

* the per-vertex termination-round histogram (the distribution whose mean
  is the vertex-averaged complexity T-bar and whose max is the worst-case
  complexity T);
* the active-vertex decay curve n_1, n_2, ... whose exponential decay is
  Lemma 6.1 -- :meth:`check_decay` tests the shape directly (monotone
  non-increasing, per-round ratio below a bound after a warm-up);
* message-volume counters, split into *sent* (what ``ctx.send`` /
  ``ctx.broadcast`` routed) and *delivered* (the engine's per-round
  traffic including halt notices, net of same-round drops);
* inbox-occupancy: how many distinct vertices receive mail each round and
  the mean pending messages per such receiver.

The collector accepts both tracing granularities: the per-call
``send``/``broadcast``/``halt`` events the generator engines emit, and
the aggregate ``round_sends`` / ``round_end.halts`` records the bulk
engine emits (one event per round instead of O(messages)).  A
``round_sends`` record is *authoritative* for its round -- individual
send/broadcast events for the same round are ignored -- so replaying a
mixed stream never double-counts message totals.  Termination counts
merge the two granularities **per round**: a round's per-vertex ``halt``
records win when present, and rounds carrying only the aggregate
``round_end.halts`` count fall back to it -- a stream that switches
granularity between rounds still yields exact histogram totals, with
every vertex counted exactly once.

The collector assumes a single execution (rounds arriving in increasing
order); :func:`repro.obs.report.segment_records` splits multi-run JSONL
files before replaying them into one collector per execution.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.events import Event
from repro.obs.sinks import Sink


def _grow(lst: list[int], upto: int) -> None:
    while len(lst) < upto:
        lst.append(0)


class MetricsCollector(Sink):
    """Aggregate an event stream into per-vertex / per-round statistics."""

    def __init__(self) -> None:
        #: n_i per round (index 0 = round 1), from ``round_start``
        self.active: list[int] = []
        #: messages routed by programs per round (``send`` + ``broadcast``)
        self.sent: list[int] = []
        #: engine traffic per round (= RoundMetrics.messages_per_round)
        self.delivered: list[int] = []
        #: distinct vertices receiving mail for the next round
        self.receivers: list[int] = []
        #: messages dropped per round (receiver terminated same round)
        self.dropped: list[int] = []
        #: aggregate terminations per round (``round_end.halts``) -- the
        #: only termination record an aggregate-granularity trace carries
        self.halts: list[int] = []
        #: rounds whose ``sent`` total came from an authoritative
        #: ``round_sends`` record (per-call events for them are ignored)
        self._agg_sent_rounds: set[int] = set()
        #: terminating vertices per round, in engine order
        self.terminated: list[list[int]] = []
        #: committing vertices per round, in engine order
        self.committed: list[list[int]] = []
        #: vertex -> termination round (r(v))
        self.termination_round: dict[int, int] = {}
        #: vertex -> commit round (Feuilloley's first definition)
        self.commit_round: dict[int, int] = {}
        #: adversary-crashed vertices per round (``fault_crash``)
        self.crashes: list[list[int]] = []
        #: vertex -> round the adversary crashed it
        self.crash_round: dict[int, int] = {}
        #: per-round injected message faults: drops / duplications / delays
        self.fault_drops: list[int] = []
        self.fault_dups: list[int] = []
        self.fault_delays: list[int] = []

    # ------------------------------------------------------------------
    # sink interface
    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        kind = event.kind
        rnd = event.round
        if kind == "round_start":
            _grow(self.active, rnd - 1)
            self.active.append(event.active)
        elif kind == "send":
            if rnd not in self._agg_sent_rounds:
                _grow(self.sent, rnd)
                self.sent[rnd - 1] += 1
        elif kind == "broadcast":
            if rnd not in self._agg_sent_rounds:
                _grow(self.sent, rnd)
                self.sent[rnd - 1] += event.msgs
        elif kind == "round_sends":
            # authoritative per-round aggregate: overwrite whatever the
            # per-call events contributed and stop counting them
            _grow(self.sent, rnd)
            self.sent[rnd - 1] = event.msgs
            self._agg_sent_rounds.add(rnd)
        elif kind == "halt":
            while len(self.terminated) < rnd:
                self.terminated.append([])
            self.terminated[rnd - 1].append(event.v)
            self.termination_round[event.v] = rnd
        elif kind == "commit":
            while len(self.committed) < rnd:
                self.committed.append([])
            self.committed[rnd - 1].append(event.v)
            self.commit_round[event.v] = rnd
        elif kind == "drop":
            _grow(self.dropped, rnd)
            self.dropped[rnd - 1] += event.msgs
        elif kind == "round_end":
            _grow(self.delivered, rnd)
            self.delivered[rnd - 1] = event.msgs
            _grow(self.receivers, rnd)
            self.receivers[rnd - 1] = event.receivers
            _grow(self.halts, rnd)
            self.halts[rnd - 1] = event.halts
        elif kind == "fault_crash":
            while len(self.crashes) < rnd:
                self.crashes.append([])
            self.crashes[rnd - 1].append(event.v)
            self.crash_round[event.v] = rnd
        elif kind == "fault_drop":
            _grow(self.fault_drops, rnd)
            self.fault_drops[rnd - 1] += 1
        elif kind == "fault_dup":
            _grow(self.fault_dups, rnd)
            self.fault_dups[rnd - 1] += 1
        elif kind == "fault_delay":
            _grow(self.fault_delays, rnd)
            self.fault_delays[rnd - 1] += 1

    def replay(self, events: Iterable[Event]) -> "MetricsCollector":
        """Feed an iterable of events through the collector; returns self."""
        for ev in events:
            self.emit(ev)
        return self

    # ------------------------------------------------------------------
    # per-vertex distributions
    # ------------------------------------------------------------------
    def _halts_per_round(self) -> list[int]:
        """Per-round termination counts, merging granularities per round.

        A round's per-vertex ``halt`` records are authoritative when
        present (they duplicate ``round_end.halts`` in generator-engine
        traces); rounds carrying only the aggregate count fall back to
        it.  Per-round precedence keeps a stream that switches
        granularity *between* rounds exact: nothing double-counted,
        nothing lost.
        """
        length = max(len(self.terminated), len(self.halts))
        out = []
        for r in range(length):
            pv = self.terminated[r] if r < len(self.terminated) else []
            if pv:
                out.append(len(pv))
            else:
                out.append(self.halts[r] if r < len(self.halts) else 0)
        return out

    @property
    def n(self) -> int:
        """Number of vertices observed terminating."""
        return sum(self._halts_per_round())

    @property
    def rounds(self) -> int:
        """Number of rounds the execution ran."""
        return len(self.active)

    def round_histogram(self) -> dict[int, int]:
        """Termination round -> how many vertices finished there."""
        return {r + 1: h for r, h in enumerate(self._halts_per_round()) if h}

    def vertex_averaged(self) -> float:
        """T-bar: mean termination round over the observed vertices."""
        halts = self._halts_per_round()
        total = sum(halts)
        if not total:
            return 0.0
        return sum((r + 1) * h for r, h in enumerate(halts)) / total

    def worst_case(self) -> int:
        """T: max termination round over the observed vertices."""
        return max(
            (r + 1 for r, h in enumerate(self._halts_per_round()) if h),
            default=0,
        )

    def terminations_per_round(self) -> list[int]:
        return self._halts_per_round()

    def commits_per_round(self) -> list[int]:
        return [len(vs) for vs in self.committed]

    # ------------------------------------------------------------------
    # decay curve (Lemma 6.1)
    # ------------------------------------------------------------------
    def decay_curve(self) -> list[int]:
        """n_1, n_2, ...: active vertices at the start of each round."""
        return list(self.active)

    def decay_ratios(self) -> list[float]:
        """n_{i+1} / n_i for consecutive rounds (0.0 once n_i hits 0)."""
        a = self.active
        return [
            (a[i + 1] / a[i]) if a[i] else 0.0 for i in range(len(a) - 1)
        ]

    def check_decay(self, warmup: int = 0, ratio: float = 0.5) -> bool:
        """Does the curve have Lemma 6.1's shape?

        True iff the active counts are monotone non-increasing over the
        whole execution *and* every per-round ratio n_{i+1}/n_i after the
        first ``warmup`` transitions is at most ``ratio`` (Lemma 6.1 with
        eps gives ratio 2/(2+eps); the default 1/2 is eps = 2).
        """
        a = self.active
        for i in range(len(a) - 1):
            if a[i + 1] > a[i]:
                return False
        for i, r in enumerate(self.decay_ratios()):
            if i >= warmup and r > ratio + 1e-12:
                return False
        return True

    # ------------------------------------------------------------------
    # message volume and inbox occupancy
    # ------------------------------------------------------------------
    def total_sent(self) -> int:
        return sum(self.sent)

    def total_delivered(self) -> int:
        return sum(self.delivered)

    def total_dropped(self) -> int:
        return sum(self.dropped)

    def inbox_occupancy(self) -> list[float]:
        """Mean pending messages per receiving vertex, per round.

        ``receivers[i]`` counts the distinct inboxes holding mail for
        round i + 2; the occupancy divides the engine's routed volume
        (sent minus same-round drops) across them.
        """
        out = []
        for i, recv in enumerate(self.receivers):
            if not recv:
                out.append(0.0)
                continue
            routed = (self.sent[i] if i < len(self.sent) else 0) - (
                self.dropped[i] if i < len(self.dropped) else 0
            )
            out.append(routed / recv)
        return out

    # ------------------------------------------------------------------
    # injected faults (the repro.faults adversary)
    # ------------------------------------------------------------------
    @property
    def faulted(self) -> bool:
        """True when the trace contains any adversary activity."""
        return bool(
            self.crash_round
            or any(self.fault_drops)
            or any(self.fault_dups)
            or any(self.fault_delays)
        )

    def total_crashed(self) -> int:
        return len(self.crash_round)

    def fault_summary(self) -> str:
        """One-line digest of the injected faults (empty if none)."""
        if not self.faulted:
            return ""
        return (
            f"crashed={self.total_crashed()} "
            f"msg-drops={sum(self.fault_drops)} "
            f"msg-dups={sum(self.fault_dups)} "
            f"msg-delays={sum(self.fault_delays)}"
        )

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line digest mirroring ``RoundMetrics.summary``."""
        line = (
            f"n={self.n} rounds={self.rounds} "
            f"avg={self.vertex_averaged():.3f} worst={self.worst_case()} "
            f"sent={self.total_sent()} delivered={self.total_delivered()} "
            f"dropped={self.total_dropped()}"
        )
        if self.faulted:
            line += f" | faults: {self.fault_summary()}"
        return line

"""Shard-aware telemetry: metrics registry, exporters, and run manifests.

This module is the structured side of the observability stack.  The
event layer (:mod:`repro.obs.events` / :mod:`repro.obs.sinks`) records
*what happened*; telemetry condenses it into three artifacts external
tooling can consume:

* a **metrics registry** -- typed counters / gauges / histograms with
  JSON and Prometheus text exporters.  The registry keeps whole
  distributions, not just scalars: the per-vertex termination-round
  histogram it builds from a :class:`~repro.obs.collect.MetricsCollector`
  is exactly the distribution whose mean is the paper's vertex-averaged
  complexity T-bar and whose max is the worst-case complexity T, so the
  Lemma 6.1 decay story survives export instead of collapsing to a mean;

* a **run manifest** -- one JSON record per ``zoo.execute()`` capturing
  the run's identity (spec hash, workload, n, seed, fault-plan hash),
  its mechanics (engine, shard count, partitioner, env/dtype info), and
  a digest of its results (timing, metrics).  The identity fields are
  folded into a stable content-address :attr:`RunManifest.key` -- the
  lookup key the sweep server (ROADMAP item 5) needs: two runs with the
  same key are the same experiment and may share a cached result;

* a **timeline renderer** -- :func:`render_timeline` turns the
  per-shard x per-phase breakdown recorded by the cross-process
  :class:`~repro.obs.profile.PhaseProfiler` into the table
  ``repro inspect --timeline`` prints.

Manifests are written as JSON *lines* appended to
``<trace>.manifest.jsonl`` next to the event trace, and the reader
(:func:`read_manifests`) mirrors :func:`repro.obs.report.load_records`'s
crash tolerance: a torn final line (the writer died mid-record) is
discarded and flagged, while corruption earlier in the file is a hard
error.
"""

from __future__ import annotations

import hashlib
import json
import platform
import re
import sys
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

MANIFEST_SCHEMA = 1

#: manifest files sit next to the trace: ``<trace>.manifest.jsonl``
MANIFEST_SUFFIX = ".manifest.jsonl"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _canonical(obj: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace, repr for strays."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)


def _digest(obj: Any) -> str:
    return hashlib.sha256(_canonical(obj).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class Metric:
    """Base for the three typed metrics.  Names follow the Prometheus
    grammar (``[a-zA-Z_:][a-zA-Z0-9_:]*``) so the text exporter never
    produces an unparseable exposition."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.help = help
        self.labels: dict[str, str] = dict(labels or {})

    def _label_str(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(
            f'{k}="{_escape_label(v)}"' for k, v in sorted(self.labels.items())
        )
        return "{" + inner + "}"

    def as_dict(self) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError

    def prometheus_lines(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError


def _escape_label(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace(
        "\n", r"\n"
    )


class Counter(Metric):
    """Monotonically increasing total (messages sent, faults injected)."""

    kind = "counter"

    def __init__(self, name, help="", labels=None) -> None:
        super().__init__(name, help, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def as_dict(self) -> dict:
        return {"kind": self.kind, "labels": self.labels, "value": self.value}

    def prometheus_lines(self) -> list[str]:
        return [f"{self.name}{self._label_str()} {_fmt(self.value)}"]


class Gauge(Metric):
    """A point-in-time value that may move either way (rounds, T-bar)."""

    kind = "gauge"

    def __init__(self, name, help="", labels=None) -> None:
        super().__init__(name, help, labels)
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def as_dict(self) -> dict:
        return {"kind": self.kind, "labels": self.labels, "value": self.value}

    def prometheus_lines(self) -> list[str]:
        return [f"{self.name}{self._label_str()} {_fmt(self.value)}"]


class Histogram(Metric):
    """Exact-value histogram: observation -> count.

    The round domain is tiny (termination rounds are small integers), so
    the histogram stores exact observed values instead of fixed bucket
    edges -- no precision is lost, and the Prometheus exporter derives
    cumulative ``_bucket{le=...}`` samples from the sorted value set.
    """

    kind = "histogram"

    def __init__(self, name, help="", labels=None) -> None:
        super().__init__(name, help, labels)
        self.buckets: dict[float, int] = {}
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` (bulk-friendly)."""
        if count < 0:
            raise ValueError("observation count must be >= 0")
        if count == 0:
            return
        key = float(value)
        self.buckets[key] = self.buckets.get(key, 0) + count
        self.sum += value * count
        self.count += count

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Exact quantile over the observed values (q in [0, 1])."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for value in sorted(self.buckets):
            seen += self.buckets[value]
            if seen >= target:
                return value
        return max(self.buckets)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "labels": self.labels,
            "buckets": {
                _fmt(v): c for v, c in sorted(self.buckets.items())
            },
            "sum": self.sum,
            "count": self.count,
        }

    def prometheus_lines(self) -> list[str]:
        lines = []
        cumulative = 0
        base = dict(self.labels)
        for value in sorted(self.buckets):
            cumulative += self.buckets[value]
            labels = {**base, "le": _fmt(value)}
            inner = ",".join(
                f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
            )
            lines.append(f"{self.name}_bucket{{{inner}}} {cumulative}")
        inf_labels = {**base, "le": "+Inf"}
        inner = ",".join(
            f'{k}="{_escape_label(v)}"' for k, v in sorted(inf_labels.items())
        )
        lines.append(f"{self.name}_bucket{{{inner}}} {self.count}")
        suffix = self._label_str()
        lines.append(f"{self.name}_sum{suffix} {_fmt(self.sum)}")
        lines.append(f"{self.name}_count{suffix} {self.count}")
        return lines


def _fmt(value: float) -> str:
    """Render numbers without a trailing ``.0`` for integral values."""
    if isinstance(value, bool):  # bools are ints; be explicit
        return str(int(value))
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


_METRIC_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of typed metrics with two exporters.

    Metrics are keyed by ``(name, sorted label items)``; asking for an
    existing key with a different kind is a :class:`TypeError` -- the
    exposition format forbids one name carrying two types.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, Metric] = {}

    def _get_or_create(self, cls, name, help, labels) -> Metric:
        key = (name, tuple(sorted((labels or {}).items())))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        metric = cls(name, help, labels)
        self._metrics[key] = metric
        return metric

    def counter(self, name, help="", labels=None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name, help="", labels=None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name, help="", labels=None) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """``{name: [sample, ...]}`` -- one entry per label set."""
        out: dict[str, list] = {}
        for metric in self:
            out.setdefault(metric.name, []).append(metric.as_dict())
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (``# HELP`` / ``# TYPE`` + samples)."""
        by_name: dict[str, list[Metric]] = {}
        for metric in self:
            by_name.setdefault(metric.name, []).append(metric)
        lines: list[str] = []
        for name in sorted(by_name):
            group = by_name[name]
            help_text = next((m.help for m in group if m.help), "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {group[0].kind}")
            for metric in group:
                lines.extend(metric.prometheus_lines())
        return "\n".join(lines) + "\n"


def registry_from_collector(
    col,
    registry: MetricsRegistry | None = None,
    labels: Mapping[str, str] | None = None,
) -> MetricsRegistry:
    """Bridge a :class:`~repro.obs.collect.MetricsCollector` into metrics.

    Besides the scalar aggregates, this exports the full per-vertex
    termination-round distribution as ``repro_termination_round`` -- its
    ``_sum / _count`` is the vertex-averaged complexity T-bar and its
    top bucket edge the worst case T, so downstream dashboards can plot
    Lemma 6.1's distribution rather than a single mean.
    """
    reg = registry if registry is not None else MetricsRegistry()
    reg.counter(
        "repro_messages_sent_total",
        "messages routed by programs (send + broadcast)",
        labels,
    ).inc(col.total_sent())
    reg.counter(
        "repro_messages_delivered_total",
        "engine traffic incl. halt notices, net of same-round drops",
        labels,
    ).inc(col.total_delivered())
    reg.counter(
        "repro_messages_dropped_total",
        "messages dropped because the receiver terminated same round",
        labels,
    ).inc(col.total_dropped())
    reg.gauge("repro_vertices", "vertices observed terminating", labels).set(
        col.n
    )
    reg.gauge("repro_rounds", "rounds the execution ran", labels).set(
        col.rounds
    )
    reg.gauge(
        "repro_vertex_averaged_rounds",
        "T-bar: mean termination round (Barenboim-Tzur vertex-averaged)",
        labels,
    ).set(col.vertex_averaged())
    reg.gauge(
        "repro_worst_case_rounds", "T: max termination round", labels
    ).set(col.worst_case())
    hist = reg.histogram(
        "repro_termination_round",
        "per-vertex termination round r(v); mean = T-bar, max = T",
        labels,
    )
    for rnd, count in sorted(col.round_histogram().items()):
        hist.observe(rnd, count)
    if col.faulted:
        reg.counter(
            "repro_fault_crashes_total", "adversary-crashed vertices", labels
        ).inc(col.total_crashed())
        reg.counter(
            "repro_fault_msg_drops_total", "adversary-dropped messages", labels
        ).inc(sum(col.fault_drops))
        reg.counter(
            "repro_fault_msg_dups_total",
            "adversary-duplicated messages",
            labels,
        ).inc(sum(col.fault_dups))
        reg.counter(
            "repro_fault_msg_delays_total",
            "adversary-delayed messages",
            labels,
        ).inc(sum(col.fault_delays))
    return reg


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def spec_fingerprint(spec, baseline: bool = False) -> str:
    """Stable hash of an :class:`~repro.zoo.spec.AlgorithmSpec`'s identity.

    Covers what the algorithm *is* (name, problem, the driver function
    actually run -- the averaged one or, with ``baseline=True``, the
    worst-case baseline -- and its bound params, randomization), not
    presentation fields like the paper citation: a doc edit must not
    invalidate cached results.
    """
    driver = spec.baseline if baseline else spec.driver
    return _digest(
        {
            "name": spec.name,
            "problem": spec.problem,
            "baseline": baseline,
            "driver": driver.func,
            "params": list(driver.params),
            "passes_a": driver.passes_a,
            "passes_seed": driver.passes_seed,
            "randomized": spec.randomized,
        }
    )


def plan_fingerprint(plan) -> str:
    """Stable hash of a :class:`~repro.faults.plan.FaultPlan` (via its
    canonical ``to_dict``); empty string for no/empty plan."""
    if plan is None or plan.empty:
        return ""
    return _digest(plan.to_dict())


def runtime_env(graph=None) -> dict:
    """Interpreter / platform / dtype info for the manifest ``env`` block."""
    env: dict[str, Any] = {
        "python": platform.python_version(),
        "platform": sys.platform,
        "machine": platform.machine(),
    }
    try:
        import numpy

        env["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is baked in
        pass
    if graph is not None:
        # report which CSR index dtypes the run materialised without
        # forcing a build: peek at the graph's cache
        cached = getattr(graph, "_csr", None)
        if cached:
            env["csr_dtypes"] = sorted(cached)
    return env


# ----------------------------------------------------------------------
# run manifests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunManifest:
    """One run's identity, mechanics, and result digest.

    The **identity** fields (spec_hash, workload, n, seed,
    fault_plan_hash) are folded into :attr:`key` -- the content address:
    stable across repeat runs of the same experiment, different whenever
    any identity field differs.  Mechanics (engine, shards, env) and
    results (timing, metrics, status) are recorded but deliberately kept
    *out* of the key: all engines are pinned bit-identical, so the same
    experiment on a different engine or shard count is the same result.

    The execution *mode* straddles the line: outputs and round counts
    are mode-invariant (the async executor is an alpha-synchronizer),
    but an async run additionally measures virtual time under a specific
    link-delay model, so ``mode`` and ``delays`` join the identity
    **only when the mode is not "sync"** -- every key minted before the
    mode existed, and every future sync key, is byte-for-byte stable.
    """

    algo: str
    spec_hash: str
    workload: str
    n: int
    seed: int
    fault_plan_hash: str = ""
    engine: str = "fast"
    mode: str = "sync"
    delays: dict = field(default_factory=dict)
    shards: int = 0
    partitioner: str = ""
    baseline: bool = False
    env: dict = field(default_factory=dict)
    timing: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    status: str = "ok"
    schema: int = MANIFEST_SCHEMA

    @property
    def key(self) -> str:
        """sha256 content address over the identity fields only."""
        ident = {
            "spec": self.spec_hash,
            "workload": self.workload,
            "n": self.n,
            "seed": self.seed,
            "faults": self.fault_plan_hash,
        }
        if self.mode != "sync":
            ident["mode"] = self.mode
            ident["delays"] = self.delays
        return _digest(ident)

    def to_record(self) -> dict:
        return {
            "ev": "manifest",
            "schema": self.schema,
            "key": self.key,
            "algo": self.algo,
            "spec_hash": self.spec_hash,
            "workload": self.workload,
            "n": self.n,
            "seed": self.seed,
            "fault_plan_hash": self.fault_plan_hash,
            "engine": self.engine,
            "mode": self.mode,
            "delays": self.delays,
            "shards": self.shards,
            "partitioner": self.partitioner,
            "baseline": self.baseline,
            "env": self.env,
            "timing": self.timing,
            "metrics": self.metrics,
            "status": self.status,
        }

    @classmethod
    def from_record(cls, rec: Mapping) -> "RunManifest":
        return cls(
            algo=rec["algo"],
            spec_hash=rec["spec_hash"],
            workload=rec["workload"],
            n=rec["n"],
            seed=rec["seed"],
            fault_plan_hash=rec.get("fault_plan_hash", ""),
            engine=rec.get("engine", "fast"),
            mode=rec.get("mode", "sync"),
            delays=dict(rec.get("delays", {})),
            shards=rec.get("shards", 0),
            partitioner=rec.get("partitioner", ""),
            baseline=rec.get("baseline", False),
            env=dict(rec.get("env", {})),
            timing=dict(rec.get("timing", {})),
            metrics=dict(rec.get("metrics", {})),
            status=rec.get("status", "ok"),
            schema=rec.get("schema", MANIFEST_SCHEMA),
        )


def build_manifest(
    spec,
    *,
    n: int,
    seed: int,
    workload: str = "",
    engine: str = "fast",
    mode: str = "sync",
    delays=None,
    shards: int = 0,
    partitioner: str = "",
    baseline: bool = False,
    plan=None,
    graph=None,
    timing: Mapping | None = None,
    metrics: Mapping | None = None,
    status: str = "ok",
) -> RunManifest:
    """Assemble a :class:`RunManifest` from ``zoo.execute()``'s inputs.

    ``delays`` accepts the :class:`~repro.runtime.async_sched.DelaySpec`
    object itself (canonicalized via its ``to_dict``) or an
    already-serialized mapping.
    """
    if delays is None:
        delays_dict: dict = {}
    elif isinstance(delays, Mapping):
        delays_dict = dict(delays)
    else:
        delays_dict = delays.to_dict()
    return RunManifest(
        algo=spec.name + (":baseline" if baseline else ""),
        spec_hash=spec_fingerprint(spec, baseline=baseline),
        workload=workload or "",
        n=n,
        seed=seed,
        fault_plan_hash=plan_fingerprint(plan),
        engine=engine,
        mode=mode,
        delays=delays_dict,
        shards=shards,
        partitioner=partitioner,
        baseline=baseline,
        env=runtime_env(graph),
        timing=dict(timing or {}),
        metrics=dict(metrics or {}),
        status=status,
    )


def manifest_path(trace_path: str) -> str:
    """Where the manifest for a trace lives: ``<trace>.manifest.jsonl``."""
    return f"{trace_path}{MANIFEST_SUFFIX}"


def write_manifest(manifest: RunManifest, path: str) -> str:
    """Append one compact JSON line to ``path`` (flushed immediately).

    Appending (not truncating) makes re-runs against the same trace path
    accumulate a history; :func:`read_manifests` returns them in order.
    """
    line = json.dumps(
        manifest.to_record(), sort_keys=True, separators=(",", ":")
    )
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()
    return path


def read_manifests(path: str) -> tuple[list[dict], bool]:
    """Read manifest records; tolerate a torn final line.

    Returns ``(records, truncated)``.  Mirroring
    :func:`repro.obs.report.load_records`: a final line that does not
    parse is taken as a write interrupted by a crash and discarded
    (``truncated`` = True); an unparseable line *before* the end means
    real corruption and raises :class:`ValueError`.
    """
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    records: list[dict] = []
    truncated = False
    for i, line in enumerate(lines):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                truncated = True
                break
            raise ValueError(
                f"{path}: corrupt manifest record on line {i + 1}"
            ) from None
        if isinstance(rec, dict):
            records.append(rec)
    return records, truncated


def latest_manifest(path: str) -> dict | None:
    """The most recent manifest record in ``path`` (None if empty)."""
    records, _ = read_manifests(path)
    return records[-1] if records else None


# ----------------------------------------------------------------------
# timeline renderer
# ----------------------------------------------------------------------
def render_timeline(timing: Mapping) -> str:
    """Render a manifest's ``timing`` block as the ``--timeline`` table.

    ``timing`` is the shape :meth:`PhaseProfiler.full_dict` produces
    (after a JSON round-trip): flat engine phases under ``"phases"``,
    per-shard slots under ``"shards"``, wall-clock under ``"wall_s"``.
    """
    lines: list[str] = []
    wall = timing.get("wall_s")
    if wall is not None:
        lines.append(f"wall      {float(wall):>10.4f} s")
    phases = timing.get("phases") or {}
    if phases:
        total = sum(p.get("seconds", 0.0) for p in phases.values())
        lines.append(
            f"{'phase':<10} {'seconds':>10} {'count':>8} {'share':>7}"
        )
        for name, p in sorted(
            phases.items(), key=lambda kv: -kv[1].get("seconds", 0.0)
        ):
            secs = p.get("seconds", 0.0)
            share = (secs / total * 100.0) if total else 0.0
            lines.append(
                f"{name:<10} {secs:>10.4f} {p.get('count', 0):>8} "
                f"{share:>6.1f}%"
            )
    shards = timing.get("shards") or {}
    if shards:
        from repro.obs.profile import PhaseProfiler

        prof = PhaseProfiler()
        for idx, per_shard in shards.items():
            for phase, slot in per_shard.items():
                prof.record_shard(
                    int(idx),
                    phase,
                    float(slot.get("seconds", 0.0)),
                    int(slot.get("count", 0)) or 1,
                )
        if lines:
            lines.append("")
        lines.append(prof.shard_report())
    if not lines:
        return "no timing recorded (run with --profile)"
    return "\n".join(lines)

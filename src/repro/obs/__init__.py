"""``repro.obs``: the unified instrumentation layer.

One substrate observes everything the engines do: typed events on an
:class:`EventBus` (:mod:`repro.obs.events`), pluggable sinks
(:mod:`repro.obs.sinks` -- JSONL file, in-memory, aggregating
:class:`MetricsCollector`, near-zero-cost :class:`NullSink`), wall-clock
phase profiling (:mod:`repro.obs.profile`), offline trace analysis
backing the ``repro inspect`` CLI (:mod:`repro.obs.report`), and the
structured telemetry layer (:mod:`repro.obs.telemetry`: typed metrics
with JSON / Prometheus exporters, run manifests with a stable content
address, and the ``--timeline`` renderer).

Attaching a bus
---------------
Both engines accept ``bus=`` on :meth:`~repro.runtime.network.SyncNetwork
.run`.  Because algorithm drivers construct their networks internally,
there is also a process-wide *default bus* the engines fall back to::

    from repro import obs

    with obs.capture("trace.jsonl", meta={"algo": "partition"}):
        repro.run_partition(g, a=3)          # events land in trace.jsonl

    with obs.collecting() as col:
        repro.run_partition(g, a=3)
    col.check_decay(warmup=2, ratio=0.5)     # Lemma 6.1 shape, measured

The default bus is plain module state, not a thread-local: install it
from the driving thread before fanning out work, or pass ``bus=``
explicitly per engine.  When no bus is installed (the normal state) the
engines skip all event construction; ``repro.bench.baseline`` gates the
instrumented-but-null-sink path to within 5% of that.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.collect import MetricsCollector
from repro.obs.events import (
    SCHEMA_VERSION,
    Broadcast,
    Commit,
    Drop,
    Event,
    EventBus,
    Halt,
    RoundEnd,
    RoundSends,
    RoundStart,
    Send,
    from_record,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.report import RunReport
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, Sink
from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunManifest,
    registry_from_collector,
    render_timeline,
)

__all__ = [
    "SCHEMA_VERSION",
    "Broadcast",
    "Commit",
    "Counter",
    "Drop",
    "Event",
    "EventBus",
    "Gauge",
    "Halt",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsCollector",
    "MetricsRegistry",
    "NullSink",
    "PhaseProfiler",
    "RoundEnd",
    "RoundSends",
    "RoundStart",
    "RunManifest",
    "RunReport",
    "Send",
    "Sink",
    "capture",
    "collecting",
    "current",
    "from_record",
    "install",
    "registry_from_collector",
    "render_timeline",
    "session",
]

#: the process-wide default bus the engines fall back to (usually None)
_default_bus: EventBus | None = None


def install(bus: EventBus | None) -> EventBus | None:
    """Set the default bus; returns the previous one (for restoring)."""
    global _default_bus
    previous = _default_bus
    _default_bus = bus
    return previous


def current() -> EventBus | None:
    """The currently-installed default bus, if any."""
    return _default_bus


@contextmanager
def session(*sinks: Sink, profiler: PhaseProfiler | None = None) -> Iterator[EventBus]:
    """Install an :class:`EventBus` over ``sinks`` for the ``with`` body.

    The previous default bus is restored and the sinks closed on exit.
    """
    bus = EventBus(*sinks, profiler=profiler)
    previous = install(bus)
    try:
        yield bus
    finally:
        install(previous)
        bus.close()


@contextmanager
def capture(
    path: str,
    meta: dict[str, Any] | None = None,
    profiler: PhaseProfiler | None = None,
) -> Iterator[EventBus]:
    """Record every engine event in the ``with`` body to a JSONL file."""
    with session(JsonlSink(path, meta=meta), profiler=profiler) as bus:
        yield bus


@contextmanager
def collecting(
    profiler: PhaseProfiler | None = None,
) -> Iterator[MetricsCollector]:
    """Aggregate every engine event in the ``with`` body in memory."""
    collector = MetricsCollector()
    with session(collector, profiler=profiler):
        yield collector

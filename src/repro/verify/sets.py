"""Validators for maximal independent sets and maximal matchings
(problem definitions: Section 5 of the paper)."""

from __future__ import annotations

from typing import Collection

from repro.graphs.graph import Graph, canonical_edge
from repro.verify.colorings import VerificationError


def assert_maximal_independent_set(g: Graph, mis: Collection[int]) -> None:
    """I is independent (no edge inside) and maximal (every outside vertex
    has a neighbor inside)."""
    s = set(mis)
    for v in s:
        if not 0 <= v < g.n:
            raise VerificationError(f"MIS contains non-vertex {v}")
    for u, v in g.edges():
        if u in s and v in s:
            raise VerificationError(f"MIS contains adjacent vertices {u}, {v}")
    for v in g.vertices():
        if v in s:
            continue
        if not any(u in s for u in g.neighbors(v)):
            raise VerificationError(
                f"vertex {v} is outside the MIS but has no MIS neighbor"
            )


def assert_maximal_matching(g: Graph, matching: Collection[tuple[int, int]]) -> None:
    """M is a matching (pairwise vertex-disjoint edges of G) and maximal
    (every edge of G intersects M)."""
    edges = [canonical_edge(u, v) for u, v in matching]
    if len(set(edges)) != len(edges):
        raise VerificationError("matching contains a repeated edge")
    matched: set[int] = set()
    for u, v in edges:
        if not g.has_edge(u, v):
            raise VerificationError(f"matching edge ({u}, {v}) is not in G")
        if u in matched or v in matched:
            raise VerificationError(
                f"matching edges intersect at ({u}, {v})"
            )
        matched.add(u)
        matched.add(v)
    for u, v in g.edges():
        if u not in matched and v not in matched:
            raise VerificationError(
                f"edge ({u}, {v}) could be added: matching is not maximal"
            )

"""Validators for the paper's structural objects: H-partitions (Section 6.1),
forest decompositions (Section 7.1), acyclic orientations (Section 5) and
arbdefective colorings (Section 7.8)."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.graphs.graph import Graph, canonical_edge
from repro.graphs.arboricity import arboricity_exact
from repro.graphs.orientation import Orientation
from repro.verify.colorings import VerificationError


def assert_h_partition(
    g: Graph,
    h_index: Mapping[int, int],
    degree_bound: float,
    subset: set[int] | None = None,
) -> None:
    """An H-partition H_1, ..., H_ell (Procedure Partition's output): every
    vertex belongs to exactly one H-set, and every vertex in H_i has at most
    ``degree_bound`` neighbors in H_i u H_{i+1} u ... (within ``subset`` if
    given, else the whole graph)."""
    vertices = subset if subset is not None else set(g.vertices())
    for v in vertices:
        if v not in h_index:
            raise VerificationError(f"vertex {v} was never assigned an H-set")
        if h_index[v] < 1:
            raise VerificationError(f"vertex {v} has invalid H-index {h_index[v]}")
    for v in vertices:
        i = h_index[v]
        later = sum(
            1
            for u in g.neighbors(v)
            if u in vertices and h_index[u] >= i
        )
        if later > degree_bound:
            raise VerificationError(
                f"vertex {v} in H_{i} has {later} neighbors in "
                f"H_{i} u H_{i+1} u ... > bound {degree_bound}"
            )


def assert_acyclic_orientation(
    o: Orientation,
    max_out_degree: int | None = None,
    max_length: int | None = None,
    require_total: bool = True,
) -> None:
    """The orientation is acyclic, with optional out-degree/length bounds."""
    if require_total and not o.is_total():
        raise VerificationError(
            f"orientation covers {o.num_oriented()} of {o.graph.m} edges"
        )
    if not o.is_acyclic():
        raise VerificationError("orientation contains a directed cycle")
    if max_out_degree is not None:
        d = o.max_out_degree()
        if d > max_out_degree:
            raise VerificationError(
                f"orientation out-degree {d} > bound {max_out_degree}"
            )
    if max_length is not None:
        ln = o.length()
        if ln > max_length:
            raise VerificationError(f"orientation length {ln} > bound {max_length}")


def assert_forest_decomposition(
    g: Graph,
    labels: Mapping[tuple[int, int], int],
    max_forests: int | None = None,
    orientation: Orientation | None = None,
) -> None:
    """The edge labelling partitions E into forests F_1, ..., F_k.

    If an orientation is supplied, additionally checks the defining local
    property: each vertex has at most one *outgoing* edge per label (each
    forest is a rooted pseudo-forest of out-edges -- Procedure
    Forest-Decomposition labels each vertex's out-edges distinctly).
    """
    for e in g.edges():
        if e not in labels:
            raise VerificationError(f"edge {e} has no forest label")
    by_label: dict[int, list[tuple[int, int]]] = {}
    for e, lab in labels.items():
        by_label.setdefault(lab, []).append(e)
    if max_forests is not None and len(by_label) > max_forests:
        raise VerificationError(
            f"decomposition uses {len(by_label)} forests, allowed {max_forests}"
        )
    for lab, edges in by_label.items():
        sub = Graph(g.n, edges)
        if not sub.is_forest():
            raise VerificationError(f"label {lab} does not induce a forest")
    if orientation is not None:
        for v in g.vertices():
            seen: set[int] = set()
            for p in orientation.parents(v):
                lab = labels[canonical_edge(v, p)]
                if lab in seen:
                    raise VerificationError(
                        f"vertex {v} has two outgoing edges labelled {lab}"
                    )
                seen.add(lab)


def assert_arbdefective_coloring(
    g: Graph,
    coloring: Mapping[int, int],
    max_arboricity: int,
    max_colors: int | None = None,
) -> None:
    """A b-arbdefective c-coloring: the subgraph induced by each color class
    has arboricity at most b (Section 7.8).  Exact arboricity check --
    intended for test-sized graphs."""
    classes: dict[int, list[int]] = {}
    for v in g.vertices():
        if v not in coloring:
            raise VerificationError(f"vertex {v} has no arbdefective color")
        classes.setdefault(coloring[v], []).append(v)
    if max_colors is not None and len(classes) > max_colors:
        raise VerificationError(
            f"arbdefective coloring uses {len(classes)} colors, allowed {max_colors}"
        )
    for c, vs in classes.items():
        sub, _ = g.subgraph(vs)
        arb = arboricity_exact(sub)
        if arb > max_arboricity:
            raise VerificationError(
                f"color class {c} induces arboricity {arb} > bound {max_arboricity}"
            )


def assert_partition_covers(
    n: int, parts: Sequence[Sequence[int]], what: str = "partition"
) -> None:
    """The parts are disjoint and cover 0..n-1."""
    seen: set[int] = set()
    total = 0
    for part in parts:
        for v in part:
            if v in seen:
                raise VerificationError(f"{what}: vertex {v} appears twice")
            seen.add(v)
        total += len(part)
    if total != n or len(seen) != n:
        raise VerificationError(f"{what}: covers {len(seen)} of {n} vertices")

"""Solution validators for every problem the paper solves.

Each validator raises :class:`VerificationError` with a precise witness on
failure and returns silently on success; ``check_*`` variants return bools.
Tests and benchmarks validate every produced solution.
"""

from repro.verify.colorings import (
    VerificationError,
    assert_proper_coloring,
    assert_proper_edge_coloring,
    assert_list_coloring,
    assert_defective_coloring,
    color_count,
    defect_of,
)
from repro.verify.sets import (
    assert_maximal_independent_set,
    assert_maximal_matching,
)
from repro.verify.structures import (
    assert_forest_decomposition,
    assert_h_partition,
    assert_acyclic_orientation,
    assert_arbdefective_coloring,
)

__all__ = [
    "VerificationError",
    "assert_proper_coloring",
    "assert_proper_edge_coloring",
    "assert_list_coloring",
    "assert_defective_coloring",
    "assert_maximal_independent_set",
    "assert_maximal_matching",
    "assert_forest_decomposition",
    "assert_h_partition",
    "assert_acyclic_orientation",
    "assert_arbdefective_coloring",
    "color_count",
    "defect_of",
]

"""Validators for vertex colorings, edge colorings, list colorings and
defective colorings (problem definitions: Section 5 of the paper)."""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.graphs.graph import Graph, canonical_edge


class VerificationError(AssertionError):
    """A solution violates its specification; the message carries a witness."""


def _require_total(g: Graph, coloring: Mapping[int, Hashable], what: str) -> None:
    missing = [v for v in g.vertices() if v not in coloring or coloring[v] is None]
    if missing:
        raise VerificationError(f"{what}: vertices without a color: {missing[:10]}")


def assert_proper_coloring(
    g: Graph,
    coloring: Mapping[int, Hashable],
    max_colors: int | None = None,
) -> None:
    """Every vertex colored; no edge monochromatic; optionally at most
    ``max_colors`` distinct colors used."""
    _require_total(g, coloring, "proper coloring")
    for u, v in g.edges():
        if coloring[u] == coloring[v]:
            raise VerificationError(
                f"edge ({u}, {v}) is monochromatic with color {coloring[u]!r}"
            )
    if max_colors is not None:
        used = len(set(coloring[v] for v in g.vertices()))
        if used > max_colors:
            raise VerificationError(
                f"coloring uses {used} colors, allowed at most {max_colors}"
            )


def assert_list_coloring(
    g: Graph,
    coloring: Mapping[int, Hashable],
    lists: Mapping[int, set],
) -> None:
    """A proper coloring where each vertex's color comes from its list."""
    assert_proper_coloring(g, coloring)
    for v in g.vertices():
        if coloring[v] not in lists[v]:
            raise VerificationError(
                f"vertex {v} colored {coloring[v]!r}, not in its list"
            )


def assert_proper_edge_coloring(
    g: Graph,
    coloring: Mapping[tuple[int, int], Hashable],
    max_colors: int | None = None,
) -> None:
    """Every edge colored; edges sharing an endpoint get distinct colors."""
    for e in g.edges():
        if e not in coloring or coloring[e] is None:
            raise VerificationError(f"edge {e} has no color")
    for v in g.vertices():
        seen: dict[Hashable, tuple[int, int]] = {}
        for u in g.neighbors(v):
            e = canonical_edge(u, v)
            c = coloring[e]
            if c in seen:
                raise VerificationError(
                    f"edges {seen[c]} and {e} share endpoint {v} and color {c!r}"
                )
            seen[c] = e
    if max_colors is not None:
        used = len(set(coloring[e] for e in g.edges()))
        if used > max_colors:
            raise VerificationError(
                f"edge coloring uses {used} colors, allowed at most {max_colors}"
            )


def defect_of(g: Graph, coloring: Mapping[int, Hashable], v: int) -> int:
    """The defect of v: number of neighbors sharing v's color."""
    c = coloring[v]
    return sum(1 for u in g.neighbors(v) if coloring[u] == c)


def assert_defective_coloring(
    g: Graph,
    coloring: Mapping[int, Hashable],
    max_defect: int,
    max_colors: int | None = None,
) -> None:
    """A d-defective coloring: every vertex has at most ``max_defect``
    same-colored neighbors (Section 7.8)."""
    _require_total(g, coloring, "defective coloring")
    for v in g.vertices():
        d = defect_of(g, coloring, v)
        if d > max_defect:
            raise VerificationError(
                f"vertex {v} has defect {d} > allowed {max_defect}"
            )
    if max_colors is not None:
        used = len(set(coloring[v] for v in g.vertices()))
        if used > max_colors:
            raise VerificationError(
                f"defective coloring uses {used} colors, allowed {max_colors}"
            )


def color_count(coloring: Mapping[Hashable, Hashable]) -> int:
    """The number of distinct colors used."""
    return len(set(coloring.values()))

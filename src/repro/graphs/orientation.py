"""Edge orientations (Section 5 of the paper).

An orientation assigns a direction to every (or some) edge of an undirected
graph.  The paper's algorithms produce *acyclic* orientations and reason
about two parameters:

* the **out-degree**: the maximum number of edges directed away from any
  vertex (the forest-decomposition machinery guarantees out-degree
  ``A = (2 + eps) a``), and
* the **length**: the number of edges on the longest directed path (which
  bounds the running time of the "wait for your parents" recoloring waves).

For an edge oriented ``u -> v``, ``v`` is the *parent* of ``u`` and ``u`` is
the *child* of ``v`` -- matching the paper's convention.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

from repro.graphs.graph import Graph, canonical_edge


class Orientation:
    """A (possibly partial) orientation of the edges of a graph.

    Stored as a mapping from canonical edge ``(min, max)`` to its *head*
    (the endpoint the edge points towards).
    """

    __slots__ = ("graph", "_head")

    def __init__(self, graph: Graph, head_of: Mapping[tuple[int, int], int] | None = None):
        self.graph = graph
        self._head: dict[tuple[int, int], int] = {}
        if head_of:
            for e, h in head_of.items():
                self.orient(e[0], e[1], h)

    # ------------------------------------------------------------------
    def orient(self, u: int, v: int, head: int) -> None:
        """Orient the edge {u, v} towards ``head`` (which must be u or v)."""
        e = canonical_edge(u, v)
        if not self.graph.has_edge(u, v):
            raise ValueError(f"({u}, {v}) is not an edge")
        if head not in e:
            raise ValueError(f"head {head} is not an endpoint of {e}")
        self._head[e] = head

    def head(self, u: int, v: int) -> int | None:
        """The head of edge {u, v}, or None if unoriented."""
        return self._head.get(canonical_edge(u, v))

    def is_oriented(self, u: int, v: int) -> bool:
        return canonical_edge(u, v) in self._head

    def oriented_edges(self) -> Iterable[tuple[int, int]]:
        """All oriented edges as (tail, head) pairs."""
        for (a, b), h in self._head.items():
            yield ((b, a) if h == a else (a, b))

    def num_oriented(self) -> int:
        return len(self._head)

    def is_total(self) -> bool:
        """Whether every edge of the graph is oriented."""
        return len(self._head) == self.graph.m

    # ------------------------------------------------------------------
    def parents(self, v: int) -> list[int]:
        """Neighbors that edges of v point *towards* (v's out-neighbors)."""
        out = []
        for u in self.graph.neighbors(v):
            h = self._head.get(canonical_edge(u, v))
            if h == u:
                out.append(u)
        return out

    def children(self, v: int) -> list[int]:
        """Neighbors whose edges point towards v (v's in-neighbors)."""
        out = []
        for u in self.graph.neighbors(v):
            h = self._head.get(canonical_edge(u, v))
            if h == v:
                out.append(u)
        return out

    def out_degree(self, v: int) -> int:
        return len(self.parents(v))

    def max_out_degree(self) -> int:
        """The out-degree of the orientation (paper: mu-out-degree)."""
        if self.graph.n == 0:
            return 0
        return max(self.out_degree(v) for v in self.graph.vertices())

    # ------------------------------------------------------------------
    def _out_adj(self) -> list[list[int]]:
        adj: list[list[int]] = [[] for _ in range(self.graph.n)]
        for tail, head in self.oriented_edges():
            adj[tail].append(head)
        return adj

    def is_acyclic(self) -> bool:
        """Whether the oriented part contains no consistently oriented cycle
        (Kahn's algorithm on the directed subgraph)."""
        n = self.graph.n
        adj = self._out_adj()
        indeg = [0] * n
        for v in range(n):
            for u in adj[v]:
                indeg[u] += 1
        queue = deque(v for v in range(n) if indeg[v] == 0)
        seen = 0
        while queue:
            v = queue.popleft()
            seen += 1
            for u in adj[v]:
                indeg[u] -= 1
                if indeg[u] == 0:
                    queue.append(u)
        return seen == n

    def length(self) -> int:
        """The length of the longest directed path (edges), for acyclic
        orientations.  Raises ValueError on cyclic orientations."""
        n = self.graph.n
        adj = self._out_adj()
        indeg = [0] * n
        for v in range(n):
            for u in adj[v]:
                indeg[u] += 1
        queue = deque(v for v in range(n) if indeg[v] == 0)
        dist = [0] * n
        seen = 0
        best = 0
        while queue:
            v = queue.popleft()
            seen += 1
            for u in adj[v]:
                if dist[v] + 1 > dist[u]:
                    dist[u] = dist[v] + 1
                    best = max(best, dist[u])
                indeg[u] -= 1
                if indeg[u] == 0:
                    queue.append(u)
        if seen != n:
            raise ValueError("orientation contains a directed cycle")
        return best


def orientation_from_parent_lists(
    g: Graph, parents: Mapping[int, Iterable[int]]
) -> Orientation:
    """Build an orientation from per-vertex parent lists (the form in which
    the distributed programs report their local orientation decisions)."""
    o = Orientation(g)
    for v, ps in parents.items():
        for p in ps:
            o.orient(v, p, p)
    return o


def orientation_by_order(g: Graph, rank: Mapping[int, int] | list[int]) -> Orientation:
    """Orient every edge towards the endpoint of higher rank (e.g. higher
    color or higher ID).  Always acyclic when ranks are distinct per edge."""
    o = Orientation(g)
    get = rank.__getitem__
    for u, v in g.edges():
        ru, rv = get(u), get(v)
        if ru == rv:
            raise ValueError(f"rank tie on edge ({u}, {v})")
        o.orient(u, v, v if rv > ru else u)
    return o

"""Workload generators: the graph families the paper's claims quantify over.

The paper's results are parameterised by the number of vertices ``n``, the
arboricity ``a`` and the maximum degree ``Delta``.  The generators here cover:

* the *constant-arboricity* families the introduction motivates (rings,
  trees, planar grids, graphs of bounded genus stand-ins),
* *prescribed-arboricity* families built as unions of random spanning
  forests (arboricity <= a by construction; tests verify it is close to a),
* *high-degree, low-arboricity* families (star forests, caterpillars) where
  the paper's a-vs-Delta separation is largest, and
* general graphs (G(n, p), random regular) for the Delta+1 results.

All randomised generators take an explicit ``seed`` and are deterministic
given it.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.graphs.graph import Graph, canonical_edge

# ---------------------------------------------------------------------------
# Deterministic families
# ---------------------------------------------------------------------------


def ring(n: int) -> Graph:
    """The n-cycle C_n (arboricity 2, Delta = 2).  Requires n >= 3."""
    if n < 3:
        raise ValueError("a ring needs at least 3 vertices")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def path(n: int) -> Graph:
    """The n-vertex path P_n (a tree; arboricity 1)."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def star(n: int) -> Graph:
    """A star with one hub and n-1 leaves (arboricity 1, Delta = n-1)."""
    return Graph(n, [(0, i) for i in range(1, n)])


def complete(n: int) -> Graph:
    """K_n (arboricity ceil(n/2))."""
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def complete_bipartite(p: int, q: int) -> Graph:
    """K_{p,q} (arboricity ceil(pq / (p+q-1)))."""
    return Graph(p + q, [(i, p + j) for i in range(p) for j in range(q)])


def binary_tree(n: int) -> Graph:
    """The complete-binary-tree-shaped tree on n vertices (heap layout)."""
    return Graph(n, [((i - 1) // 2, i) for i in range(1, n)])


def kary_tree(n: int, k: int) -> Graph:
    """The complete k-ary tree on n vertices (heap layout).

    With branching k > A = (2+eps)a this is the canonical *slow-peeling*
    workload: Procedure Partition removes exactly one leaf layer per round
    (internal vertices keep degree k+1 > A until their children leave), so
    the H-partition has Theta(log_k n) sets while the arboricity stays 1 --
    the worst-case/averaged gap in its purest form.
    """
    if k < 1:
        raise ValueError("branching factor must be >= 1")
    return Graph(n, [((i - 1) // k, i) for i in range(1, n)])


def grid(rows: int, cols: int) -> Graph:
    """The rows x cols planar grid (arboricity 2, Delta <= 4)."""
    n = rows * cols
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(n, edges)


def triangular_grid(rows: int, cols: int) -> Graph:
    """Grid plus one diagonal per cell: planar, arboricity <= 3, Delta <= 6."""
    n = rows * cols
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
            if c + 1 < cols and r + 1 < rows:
                edges.append((v, v + cols + 1))
    return Graph(n, edges)


def hypercube(dim: int) -> Graph:
    """The dim-dimensional hypercube Q_dim (n = 2^dim, Delta = dim)."""
    n = 1 << dim
    edges = [(v, v ^ (1 << b)) for v in range(n) for b in range(dim) if v < v ^ (1 << b)]
    return Graph(n, edges)


def caterpillar(spine: int, legs: int) -> Graph:
    """A caterpillar tree: a spine path where every spine vertex carries
    ``legs`` pendant leaves.  Arboricity 1, Delta = legs + 2."""
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for s in range(spine):
        for _ in range(legs):
            edges.append((s, nxt))
            nxt += 1
    return Graph(nxt, edges)


def star_forest(stars: int, leaves: int) -> Graph:
    """A disjoint union of ``stars`` stars with ``leaves`` leaves each.
    Arboricity 1, Delta = leaves: maximal a-vs-Delta separation."""
    edges = []
    per = leaves + 1
    for s in range(stars):
        hub = s * per
        edges.extend((hub, hub + i) for i in range(1, per))
    return Graph(stars * per, edges)


# ---------------------------------------------------------------------------
# Randomised families
# ---------------------------------------------------------------------------


def random_tree(n: int, seed: int = 0, attachment: str = "uniform") -> Graph:
    """A random tree via random attachment.

    ``attachment='uniform'`` attaches vertex i to a uniformly random earlier
    vertex (random recursive tree, Delta = O(log n) w.h.p.).
    ``attachment='preferential'`` biases towards high-degree vertices
    (heavier-tailed degrees).
    """
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = []
    endpoints: list[int] = [0]
    for v in range(1, n):
        if attachment == "uniform":
            u = rng.randrange(v)
        elif attachment == "preferential":
            u = rng.choice(endpoints)
        else:
            raise ValueError(f"unknown attachment {attachment!r}")
        edges.append((u, v))
        endpoints.append(u)
        endpoints.append(v)
    return Graph(n, edges)


def random_forest(n: int, trees: int, seed: int = 0) -> Graph:
    """A uniform-attachment forest on n vertices with ``trees`` components."""
    if not 1 <= trees <= max(n, 1):
        raise ValueError("component count out of range")
    rng = random.Random(seed)
    roots = list(range(trees))
    edges = []
    for v in range(trees, n):
        edges.append((rng.randrange(v), v))
    return Graph(n, edges) if n else Graph(0)


def union_of_forests(n: int, a: int, seed: int = 0, density: float = 1.0) -> Graph:
    """A graph with arboricity <= a, built as the union of ``a`` independent
    random spanning forests on a shared vertex set.

    ``density`` in (0, 1] keeps that fraction of each forest's edges.  With
    density 1 the graph has close to a*(n-1) edges, so its Nash-Williams
    density is close to a: the prescribed arboricity is essentially tight
    (verified by tests).  This is the canonical bounded-arboricity workload
    for Tables 1-2.
    """
    if a < 1:
        raise ValueError("arboricity must be >= 1")
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    for _ in range(a):
        perm = list(range(n))
        rng.shuffle(perm)
        for i in range(1, n):
            if density < 1.0 and rng.random() > density:
                continue
            u = perm[rng.randrange(i)]
            v = perm[i]
            edges.add(canonical_edge(u, v))
    return Graph(n, edges)


def forest_union_csr(n: int, a: int, seed: int = 0, dtype: str = "auto") -> Graph:
    """A prescribed-arboricity forest union built columnar, CSR-direct.

    Numpy-vectorised sibling of :func:`union_of_forests` for graphs too
    large for the Python object layer (n >= 10^6): each of the ``a``
    forests attaches ``perm[i]`` to ``perm[j]`` for a random ``j < i``
    under an independent permutation, duplicates across forests are
    collapsed, and the result is handed to :meth:`Graph.from_csr`
    without ever materialising per-vertex tuples.  Arboricity <= a by
    construction; the edge sample differs from ``union_of_forests`` at
    equal seeds (different RNG), so treat the two as distinct workloads.

    ``dtype`` is forwarded to :func:`repro.graphs.graph.csr_index_dtype`
    ("auto" stores int32 CSR whenever n and 2m fit).
    """
    import numpy as np

    from repro.graphs.graph import csr_index_dtype

    if a < 1:
        raise ValueError("arboricity must be >= 1")
    if n < 2:
        return Graph(n)
    rng = np.random.default_rng(seed)
    lo_parts = []
    hi_parts = []
    for _ in range(a):
        perm = rng.permutation(n)
        j = (rng.random(n - 1) * np.arange(1, n)).astype(np.int64)
        u = perm[j]
        v = perm[1:]
        lo_parts.append(np.minimum(u, v))
        hi_parts.append(np.maximum(u, v))
    lo = np.concatenate(lo_parts)
    hi = np.concatenate(hi_parts)
    codes = np.unique(lo.astype(np.int64) * n + hi)
    lo = codes // n
    hi = codes % n
    src = np.concatenate((lo, hi))
    dst = np.concatenate((hi, lo))
    order = np.lexsort((dst, src))
    want = csr_index_dtype(n, src.size, dtype)
    offsets = np.zeros(n + 1, dtype=want)
    offsets[1:] = np.cumsum(np.bincount(src, minlength=n)).astype(want)
    indices = dst[order].astype(want)
    return Graph.from_csr(offsets, indices)


def permutation_ids(n: int, seed: int = 0):
    """A random permutation ID assignment as an int64 numpy array.

    Vectorised sibling of :func:`random_ids` for columnar runs at
    n >= 10^6 (the Python-list shuffle is the bottleneck there).  Uses
    numpy's Generator, so the permutation differs from ``random_ids`` at
    equal seeds.
    """
    import numpy as np

    return np.random.default_rng(seed).permutation(n).astype(np.int64)


def gnp(n: int, p: float, seed: int = 0) -> Graph:
    """Erdos-Renyi G(n, p) via geometric skipping (O(m) expected time)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = random.Random(seed)
    edges = []
    if p > 0:
        import math

        log_q = math.log1p(-p) if p < 1.0 else None
        limit = float(n) * n + 1  # a skip beyond every remaining pair
        v, w = 1, -1
        while v < n:
            if p >= 1.0:
                w += 1
            else:
                gap = math.log(1.0 - rng.random()) / log_q
                if gap >= limit:
                    break
                w += 1 + int(gap)
            while w >= v and v < n:
                w -= v
                v += 1
            if v < n:
                edges.append((w, v))
    return Graph(n, edges)


def random_regular(n: int, d: int, seed: int = 0, retries: int = 200) -> Graph:
    """An (approximately) d-regular simple graph via the configuration model
    with rejection of self-loops/multi-edges.  ``n * d`` must be even."""
    if (n * d) % 2 != 0:
        raise ValueError("n * d must be even")
    rng = random.Random(seed)
    for _ in range(retries):
        stubs = [v for v in range(n) for _ in range(d)]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or canonical_edge(u, v) in edges:
                ok = False
                break
            edges.add(canonical_edge(u, v))
        if ok:
            return Graph(n, edges)
    # Fall back to a near-regular graph: drop conflicting stubs.
    stubs = [v for v in range(n) for _ in range(d)]
    rng.shuffle(stubs)
    edges = set()
    for i in range(0, len(stubs), 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            edges.add(canonical_edge(u, v))
    return Graph(n, edges)


def planted_partition_ring(n: int, chords: int, seed: int = 0) -> Graph:
    """A ring with ``chords`` random chords: still arboricity <= 3 when
    chords <= n, but with shortcuts that exercise non-local structure."""
    rng = random.Random(seed)
    g_edges = [(i, (i + 1) % n) for i in range(n)]
    for _ in range(chords):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            g_edges.append((u, v))
    return Graph(n, g_edges)


def disjoint_union(graphs: Iterable[Graph]) -> Graph:
    """The disjoint union of several graphs (vertex-shifted)."""
    edges: list[tuple[int, int]] = []
    offset = 0
    for g in graphs:
        edges.extend((u + offset, v + offset) for u, v in g.edges())
        offset += g.n
    return Graph(offset, edges)


# ---------------------------------------------------------------------------
# ID assignments
# ---------------------------------------------------------------------------


def sequential_ids(n: int) -> list[int]:
    """The identity ID assignment (vertex v has ID v)."""
    return list(range(n))


def random_ids(n: int, seed: int = 0, id_space: int | None = None) -> list[int]:
    """Distinct IDs drawn as a random subset of ``range(id_space)``.

    The vertex-averaged measure maximizes over ID assignments; benchmarks
    approximate the max by sampling several random assignments.  By default
    the ID space is ``n`` (a permutation); a larger space stresses the
    palette machinery, whose color counts depend on the ID range.
    """
    rng = random.Random(seed)
    if id_space is None:
        ids = list(range(n))
        rng.shuffle(ids)
        return ids
    if id_space < n:
        raise ValueError("ID space smaller than vertex count")
    return rng.sample(range(id_space), n)


def adversarial_ids_descending_degree(g: Graph) -> list[int]:
    """Give the highest IDs to the highest-degree vertices.

    For orientation-by-ID algorithms this concentrates out-edges at hubs,
    a (mildly) adversarial assignment used in robustness tests.
    """
    order = sorted(g.vertices(), key=lambda v: (g.degree(v), v))
    ids = [0] * g.n
    for rank, v in enumerate(order):
        ids[v] = rank
    return ids

"""Descriptive graph statistics used by reports, examples and diagnostics."""

from __future__ import annotations

from collections import Counter, deque
from typing import Mapping

from repro.graphs.graph import Graph


def degree_histogram(g: Graph) -> dict[int, int]:
    """degree -> number of vertices with that degree."""
    return dict(Counter(g.degree_sequence()))


def average_degree(g: Graph) -> float:
    """2m / n (0.0 for the empty graph)."""
    return 2.0 * g.m / g.n if g.n else 0.0


def global_density(g: Graph) -> float:
    """The Nash-Williams density m / (n - 1) of the whole graph: a lower
    bound witness for the arboricity."""
    return g.m / (g.n - 1) if g.n > 1 else 0.0


def bfs_distances(g: Graph, source: int) -> dict[int, int]:
    """Hop distances from ``source`` to every reachable vertex."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in g.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def eccentricity(g: Graph, v: int) -> int:
    """The greatest distance from v within its component."""
    return max(bfs_distances(g, v).values(), default=0)


def diameter_lower_bound(g: Graph, sweeps: int = 2) -> int:
    """A double-sweep BFS lower bound on the diameter (exact on trees):
    start anywhere, jump to the farthest vertex, repeat."""
    if g.n == 0:
        return 0
    best = 0
    for comp in g.connected_components():
        v = comp[0]
        for _ in range(max(sweeps, 1)):
            dist = bfs_distances(g, v)
            far, d = max(dist.items(), key=lambda kv: (kv[1], -kv[0]))
            best = max(best, d)
            v = far
    return best


def diameter_exact(g: Graph) -> int:
    """Exact diameter by all-pairs BFS (test-sized graphs; infinite
    components are measured separately and the max is returned)."""
    best = 0
    for v in g.vertices():
        ecc = eccentricity(g, v)
        best = max(best, ecc)
    return best


def summarize(g: Graph) -> Mapping[str, object]:
    """A one-look summary used by diagnostics."""
    from repro.graphs.arboricity import degeneracy

    return {
        "n": g.n,
        "m": g.m,
        "max_degree": g.max_degree(),
        "avg_degree": round(average_degree(g), 3),
        "density": round(global_density(g), 3),
        "degeneracy": degeneracy(g),
        "components": len(g.connected_components()),
        "diameter_lb": diameter_lower_bound(g),
    }

"""Static graph substrate for the LOCAL-model simulator.

This package provides the communication-network representation used by every
algorithm in :mod:`repro`: an immutable undirected :class:`Graph`, workload
generators for the graph families the paper quantifies over, exact and
approximate arboricity machinery (Nash-Williams / degeneracy), and edge
orientation utilities.
"""

from repro.graphs.graph import Graph
from repro.graphs.orientation import Orientation
from repro.graphs import generators
from repro.graphs.arboricity import (
    arboricity_exact,
    arboricity_upper_bound,
    degeneracy,
    nash_williams_lower_bound,
    partition_into_forests,
)

__all__ = [
    "Graph",
    "Orientation",
    "generators",
    "arboricity_exact",
    "arboricity_upper_bound",
    "degeneracy",
    "nash_williams_lower_bound",
    "partition_into_forests",
]

"""Arboricity machinery.

The arboricity ``a(G)`` is the minimum number of forests that the edge set of
``G`` can be partitioned into.  Every algorithm in the paper is parameterised
by ``a``; by the Nash-Williams theorem

    a(G) = max over subgraphs H with >= 2 vertices of ceil(m_H / (n_H - 1)).

This module provides:

* :func:`degeneracy` -- the core number d(G); ``a <= d <= 2a - 1``, computed
  in O(n + m) and used as the cheap upper bound for large graphs,
* :func:`nash_williams_lower_bound` -- ceil(m_H / (n_H - 1)) maximised over
  connected components and cores (a cheap lower bound),
* :func:`partition_into_forests` -- an exact decision procedure via the
  Edmonds matroid-union augmenting algorithm on k graphic matroids, which
  also *returns* the forest partition (so the generators' prescribed
  arboricity can be certified), and
* :func:`arboricity_exact` -- exact arboricity by searching k between the
  bounds.

The exact routine is polynomial but intended for verification-sized graphs
(thousands of edges); benchmarks on large graphs use the prescribed
arboricity of the generator or the degeneracy bound.
"""

from __future__ import annotations

from collections import deque
from math import ceil

from repro.graphs.graph import Graph, canonical_edge


def degeneracy(g: Graph) -> int:
    """The degeneracy (maximum core number) of ``g``, via the linear-time
    bucket-queue peeling algorithm.

    Satisfies ``a(G) <= degeneracy(G) <= 2 a(G) - 1``.
    """
    n = g.n
    if n == 0:
        return 0
    deg = g.degree_sequence()
    max_deg = max(deg) if deg else 0
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[deg[v]].append(v)
    removed = [False] * n
    best = 0
    cur = 0
    for _ in range(n):
        while cur <= max_deg and not buckets[cur]:
            cur += 1
        # ``cur`` may have been lowered below the true minimum by decrements;
        # rewind is handled by resetting to the decremented value below.
        v = None
        while buckets[cur]:
            cand = buckets[cur].pop()
            if not removed[cand] and deg[cand] == cur:
                v = cand
                break
        if v is None:
            continue
        best = max(best, cur)
        removed[v] = True
        for u in g.neighbors(v):
            if not removed[u]:
                deg[u] -= 1
                buckets[deg[u]].append(u)
                if deg[u] < cur:
                    cur = deg[u]
    return best


def degeneracy_ordering(g: Graph) -> list[int]:
    """A vertex elimination order realising the degeneracy: each vertex has
    at most ``degeneracy(g)`` neighbors later in the order."""
    n = g.n
    deg = g.degree_sequence()
    removed = [False] * n
    order: list[int] = []
    import heapq

    heap = [(deg[v], v) for v in range(n)]
    heapq.heapify(heap)
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != deg[v]:
            continue
        removed[v] = True
        order.append(v)
        for u in g.neighbors(v):
            if not removed[u]:
                deg[u] -= 1
                heapq.heappush(heap, (deg[u], u))
    return order


def nash_williams_lower_bound(g: Graph) -> int:
    """A lower bound on the arboricity: the Nash-Williams density of the
    whole graph, of each connected component, and of each k-core."""
    if g.m == 0:
        return 0
    best = 1
    # Whole components.
    for comp in g.connected_components():
        if len(comp) < 2:
            continue
        keep = set(comp)
        m_h = sum(1 for u, v in g.edges() if u in keep and v in keep)
        best = max(best, ceil(m_h / (len(comp) - 1)))
    # Cores: peel along a degeneracy ordering and measure the density of
    # every suffix (each suffix is an induced subgraph).
    order = degeneracy_ordering(g)
    alive = set(g.vertices())
    m_alive = g.m
    for v in order:
        m_alive -= sum(1 for u in g.neighbors(v) if u in alive and u != v)
        alive.discard(v)
        if len(alive) >= 2 and m_alive > 0:
            best = max(best, ceil(m_alive / (len(alive) - 1)))
    return best


class _ForestSet:
    """k edge-disjoint forests over a shared vertex set, supporting the
    exchange operations of the matroid-union augmenting algorithm."""

    def __init__(self, n: int, k: int) -> None:
        self.n = n
        self.k = k
        # adjacency per forest: forest index -> vertex -> set of neighbors
        self.adj: list[dict[int, set[int]]] = [dict() for _ in range(k)]

    def _nbrs(self, j: int, v: int) -> set[int]:
        return self.adj[j].setdefault(v, set())

    def add(self, j: int, e: tuple[int, int]) -> None:
        u, v = e
        self._nbrs(j, u).add(v)
        self._nbrs(j, v).add(u)

    def remove(self, j: int, e: tuple[int, int]) -> None:
        u, v = e
        self.adj[j][u].discard(v)
        self.adj[j][v].discard(u)

    def tree_path(self, j: int, s: int, t: int) -> list[tuple[int, int]] | None:
        """The unique path from s to t in forest j (as canonical edges), or
        None if s and t are in different components."""
        if s == t:
            return []
        parent: dict[int, int] = {s: s}
        queue = deque([s])
        while queue:
            v = queue.popleft()
            for u in self.adj[j].get(v, ()):
                if u not in parent:
                    parent[u] = v
                    if u == t:
                        path = []
                        while u != s:
                            path.append(canonical_edge(u, parent[u]))
                            u = parent[u]
                        return path
                    queue.append(u)
        return None

    def independent_with(self, j: int, e: tuple[int, int]) -> bool:
        """Whether forest j stays a forest after adding e (endpoints in
        different components)."""
        u, v = e
        if not self.adj[j].get(u) or not self.adj[j].get(v):
            return True
        return self.tree_path(j, u, v) is None


def partition_into_forests(
    g: Graph, k: int, max_steps: int | None = None
) -> list[list[tuple[int, int]]] | None:
    """Partition the edges of ``g`` into at most ``k`` forests, or return
    ``None`` if impossible (i.e. iff ``a(G) > k``).

    Implements the Edmonds matroid-union augmenting algorithm for k graphic
    matroids: edges are inserted one at a time; when a new edge closes a
    cycle in every forest, a BFS over the exchange graph finds a sequence of
    swaps that frees a slot.  If no augmenting sequence exists the edge set
    is dependent in the union matroid and stays dependent forever, so the
    whole partition is infeasible.
    """
    if k < 1:
        return None if g.m else [[] for _ in range(max(k, 0))]
    forests = _ForestSet(g.n, k)
    owner: dict[tuple[int, int], int] = {}

    for e0 in g.edges():
        # Fast path: direct insertion.
        placed = False
        for j in range(k):
            if forests.independent_with(j, e0):
                forests.add(j, e0)
                owner[e0] = j
                placed = True
                break
        if placed:
            continue
        # Exchange-graph BFS from e0.
        parent_edge: dict[tuple[int, int], tuple[int, int] | None] = {e0: None}
        insert_forest: dict[tuple[int, int], int] = {}
        queue = deque([e0])
        goal: tuple[int, int] | None = None
        steps = 0
        while queue and goal is None:
            x = queue.popleft()
            for j in range(k):
                if x in owner and owner[x] == j:
                    continue
                u, v = x
                cycle = forests.tree_path(j, u, v)
                if cycle is None:
                    goal = x
                    insert_forest[x] = j
                    break
                for f in cycle:
                    if f not in parent_edge:
                        parent_edge[f] = x
                        # remember which forest the arc x -> f refers to:
                        # f currently lives in j == owner[f] by construction.
                        queue.append(f)
                steps += 1
                if max_steps is not None and steps > max_steps:
                    raise RuntimeError("matroid partition exceeded step budget")
        if goal is None:
            return None
        # Apply the augmenting sequence: goal moves into its free forest;
        # walking back, each predecessor takes the vacated slot.
        x = goal
        dest = insert_forest[goal]
        while x is not None:
            prev = parent_edge[x]
            old = owner.get(x)
            if old is not None:
                forests.remove(old, x)
            forests.add(dest, x)
            owner[x] = dest
            dest = old  # the slot x vacated
            x = prev
    out: list[list[tuple[int, int]]] = [[] for _ in range(k)]
    for e, j in owner.items():
        out[j].append(e)
    return [sorted(f) for f in out]


def arboricity_exact(g: Graph) -> int:
    """The exact arboricity via matroid-union search between the
    Nash-Williams lower bound and the degeneracy upper bound."""
    if g.m == 0:
        return 0
    lo = max(1, nash_williams_lower_bound(g))
    hi = max(lo, degeneracy(g))
    for k in range(lo, hi + 1):
        if partition_into_forests(g, k) is not None:
            return k
    return hi  # unreachable: degeneracy always suffices


def arboricity_upper_bound(g: Graph) -> int:
    """A cheap arboricity upper bound: the degeneracy (a <= d <= 2a - 1).
    For the empty graph this is 0."""
    return degeneracy(g)


def known_or_estimated_arboricity(g: Graph, exact_limit: int = 4000) -> int:
    """The paper assumes vertices know ``a``.  Drivers use the exact value on
    small graphs and the degeneracy upper bound (a valid substitute: all the
    algorithms remain correct when run with any upper bound on ``a``) on
    large ones."""
    if g.m == 0:
        return 1
    if g.m <= exact_limit:
        return arboricity_exact(g)
    return max(1, degeneracy(g))

"""Immutable undirected graphs.

The network graph ``G = (V, E)`` of the distributed message-passing model.
Vertices are the integers ``0 .. n-1``; symmetry-breaking identifiers (the
``ID`` assignment ``I`` over which the vertex-averaged complexity measure
maximizes) are stored separately, so the same topology can be re-run under
many ID assignments.

The representation is optimised for the access pattern of the round
simulator: ``neighbors(v)`` is a tuple lookup, ``degree(v)`` is O(1), and
edge-set membership is O(1) via per-vertex frozensets.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

#: largest value an int32 CSR array can address (offsets run to 2m,
#: indices to n - 1)
INT32_MAX = 2**31 - 1


def canonical_edge(u: int, v: int) -> tuple[int, int]:
    """Return the canonical ``(min, max)`` form of the undirected edge."""
    return (u, v) if u < v else (v, u)


def csr_index_dtype(n: int, m2: int, dtype: str = "auto"):
    """Resolve a CSR dtype request to a concrete numpy dtype.

    ``"auto"`` selects int32 when both the vertex ids (up to ``n - 1``)
    and the offset values (up to ``m2 = 2m``) fit, int64 otherwise --
    halving the columnar layout's footprint for every graph below ~2^31
    directed edges, which is what makes the n = 10^7 sweep cell fit in
    cache-friendly memory.  Forcing ``"int32"`` on an oversized graph is
    a loud error, never a silent overflow.
    """
    import numpy as np

    fits32 = n <= INT32_MAX and m2 <= INT32_MAX
    if dtype == "auto":
        return np.dtype(np.int32) if fits32 else np.dtype(np.int64)
    if dtype == "int32":
        if not fits32:
            raise ValueError(
                f"int32 CSR forced on an oversized graph: n={n}, 2m={m2} "
                f"exceed the int32 range ({INT32_MAX}); use dtype='auto' "
                "or dtype='int64'"
            )
        return np.dtype(np.int32)
    if dtype == "int64":
        return np.dtype(np.int64)
    raise ValueError(
        f"unknown CSR dtype {dtype!r}; expected 'auto', 'int32' or 'int64'"
    )


class Graph:
    """An immutable, simple, undirected graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops are rejected; duplicate
        edges (in either orientation) are collapsed.
    """

    __slots__ = ("_n", "_adj", "_adj_sets", "_edges", "_m", "_csr", "_csr_rows")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self._n = n
        self._csr = {}
        self._csr_rows = None
        adj: list[list[int]] = [[] for _ in range(n)]
        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at vertex {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
            e = canonical_edge(u, v)
            if e in seen:
                continue
            seen.add(e)
            adj[u].append(v)
            adj[v].append(u)
        self._adj: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(nbrs)) for nbrs in adj
        )
        self._adj_sets: tuple[frozenset[int], ...] = tuple(
            frozenset(nbrs) for nbrs in self._adj
        )
        self._edges: tuple[tuple[int, int], ...] = tuple(sorted(seen))
        self._m = len(self._edges)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def vertices(self) -> range:
        """The vertex set as a range object."""
        return range(self._n)

    def edges(self) -> tuple[tuple[int, int], ...]:
        """All edges in canonical ``(min, max)`` form, sorted."""
        self._materialize_objects()
        return self._edges

    def neighbors(self, v: int) -> tuple[int, ...]:
        """The sorted neighbors of ``v``."""
        self._materialize_objects()
        return self._adj[v]

    def neighbor_set(self, v: int) -> frozenset[int]:
        """The neighbors of ``v`` as a frozenset (O(1) membership)."""
        self._materialize_objects()
        return self._adj_sets[v]

    def degree(self, v: int) -> int:
        """deg(v): the number of edges incident on ``v``."""
        if self._adj is None:
            offsets, _ = self.csr()
            return int(offsets[v + 1] - offsets[v])
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        self._materialize_objects()
        return v in self._adj_sets[u]

    def max_degree(self) -> int:
        """Delta(G), the maximum degree (0 for the empty graph)."""
        if self._n == 0:
            return 0
        if self._adj is None:
            import numpy as np

            offsets, _ = self.csr()
            return int(np.max(np.diff(offsets)))
        return max(len(nbrs) for nbrs in self._adj)

    def degree_sequence(self) -> list[int]:
        """All vertex degrees, indexed by vertex."""
        if self._adj is None:
            import numpy as np

            offsets, _ = self.csr()
            return np.diff(offsets).tolist()
        return [len(nbrs) for nbrs in self._adj]

    # ------------------------------------------------------------------
    # CSR adjacency view (the round engine's fast path)
    # ------------------------------------------------------------------
    def csr(self, dtype: str = "int64"):
        """The adjacency structure in CSR form: ``(offsets, indices)``.

        ``offsets`` is an array of length ``n + 1`` and ``indices`` an
        array of length ``2m``; the neighbors of ``v`` are
        ``indices[offsets[v]:offsets[v+1]]``, sorted ascending.  Built
        lazily on first use and cached per index dtype for the lifetime
        of the graph (the graph is immutable), so repeated executions
        over the same topology share one flat adjacency encoding.

        ``dtype`` selects the index width: ``"int64"`` (the default,
        always valid), ``"int32"`` (loud :class:`ValueError` if ``n`` or
        ``2m`` exceed the int32 range), or ``"auto"`` (int32 when it
        fits, int64 otherwise — see :func:`csr_index_dtype`).
        """
        import numpy as np

        want = csr_index_dtype(self._n, 2 * self._m, dtype)
        cached = self._csr.get(want.name)
        if cached is not None:
            return cached
        if self._csr:
            # Cast an already-built view rather than rebuilding from the
            # object layer (which may not exist for from_csr graphs).
            offsets, indices = next(iter(self._csr.values()))
            view = (offsets.astype(want), indices.astype(want))
        else:
            offsets = np.zeros(self._n + 1, dtype=want)
            if self._n:
                offsets[1:] = np.cumsum(
                    np.fromiter(
                        (len(nbrs) for nbrs in self._adj),
                        dtype=want,
                        count=self._n,
                    )
                )
            indices = np.fromiter(
                (u for nbrs in self._adj for u in nbrs),
                dtype=want,
                count=2 * self._m,
            )
            view = (offsets, indices)
        self._csr[want.name] = view
        return view

    def csr_rows(self) -> list[list[int]]:
        """Per-vertex neighbor rows sliced out of :meth:`csr`.

        A cached list-of-lists mirror of the CSR arrays holding plain
        Python ints, which is what the engine's object-level loops
        (broadcast fan-out, halt-notice delivery) iterate: indexing
        containers with native ints is markedly faster than with numpy
        scalars.  The rows are shared -- callers must treat them as
        immutable and copy before mutating.
        """
        if self._csr_rows is None:
            offsets, indices = self.csr()
            off = offsets.tolist()
            idx = indices.tolist()
            self._csr_rows = [
                idx[off[v] : off[v + 1]] for v in range(self._n)
            ]
        return self._csr_rows

    @classmethod
    def from_csr(cls, offsets, indices) -> "Graph":
        """Build a graph directly from CSR arrays, skipping the object layer.

        ``offsets`` must be non-decreasing with ``offsets[0] == 0`` and
        ``offsets[-1] == len(indices)``; ``indices`` holds both
        orientations of every edge with each row sorted ascending (the
        invariants :meth:`csr` guarantees).  The Python-object adjacency
        (tuples, frozensets, the edge list) is materialised lazily only
        if an object-level accessor is called, so columnar-only pipelines
        can hold an n = 10^7 graph in a few hundred MB instead of tens of
        GB of tuples.
        """
        import numpy as np

        offsets = np.ascontiguousarray(offsets)
        indices = np.ascontiguousarray(indices)
        if offsets.ndim != 1 or offsets.size < 1 or offsets[0] != 0:
            raise ValueError("offsets must be 1-D with offsets[0] == 0")
        n = offsets.size - 1
        if int(offsets[-1]) != indices.size:
            raise ValueError(
                f"offsets[-1]={int(offsets[-1])} does not match "
                f"len(indices)={indices.size}"
            )
        if indices.size % 2:
            raise ValueError("indices must hold both orientations (even length)")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError(f"indices out of range for n={n}")
        g = cls.__new__(cls)
        g._n = n
        g._m = indices.size // 2
        g._adj = None
        g._adj_sets = None
        g._edges = None
        g._csr_rows = None
        g._csr = {np.dtype(offsets.dtype).name: (offsets, indices)}
        return g

    def _materialize_objects(self) -> None:
        """Build the Python-object adjacency layer from CSR if absent."""
        if self._adj is not None:
            return
        rows = self.csr_rows()
        self._adj = tuple(tuple(r) for r in rows)
        self._adj_sets = tuple(frozenset(r) for r in rows)
        self._edges = tuple(
            (v, u) for v in range(self._n) for u in self._adj[v] if v < u
        )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[int]) -> tuple["Graph", dict[int, int]]:
        """The subgraph induced by ``vertices``.

        Returns the induced graph (re-indexed ``0..k-1``) together with the
        mapping from original vertex to new index.
        """
        self._materialize_objects()
        vs = sorted(set(vertices))
        index = {v: i for i, v in enumerate(vs)}
        keep = set(vs)
        edges = [
            (index[u], index[v])
            for u, v in self._edges
            if u in keep and v in keep
        ]
        return Graph(len(vs), edges), index

    def edge_subgraph_degrees(self, vertices: Iterable[int]) -> dict[int, int]:
        """Degrees of ``vertices`` inside the induced subgraph, without
        materialising it."""
        self._materialize_objects()
        keep = set(vertices)
        return {
            v: sum(1 for u in self._adj[v] if u in keep) for v in keep
        }

    def line_graph_neighbors(self, edge: tuple[int, int]) -> list[tuple[int, int]]:
        """Edges adjacent to ``edge`` in the line graph (sharing an endpoint)."""
        self._materialize_objects()
        u, v = edge
        out: list[tuple[int, int]] = []
        for w in self._adj[u]:
            if w != v:
                out.append(canonical_edge(u, w))
        for w in self._adj[v]:
            if w != u:
                out.append(canonical_edge(v, w))
        return out

    def connected_components(self) -> list[list[int]]:
        """Connected components as sorted vertex lists (iterative DFS)."""
        self._materialize_objects()
        seen = [False] * self._n
        comps: list[list[int]] = []
        for s in range(self._n):
            if seen[s]:
                continue
            stack = [s]
            seen[s] = True
            comp = []
            while stack:
                v = stack.pop()
                comp.append(v)
                for u in self._adj[v]:
                    if not seen[u]:
                        seen[u] = True
                        stack.append(u)
            comps.append(sorted(comp))
        return comps

    def is_forest(self) -> bool:
        """Whether the graph is acyclic (a forest)."""
        return self._m == self._n - len(self.connected_components())

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, g) -> "Graph":
        """Build from a :mod:`networkx` graph with arbitrary hashable nodes.

        Nodes are relabelled ``0..n-1`` in sorted-by-string order.
        """
        nodes = sorted(g.nodes(), key=str)
        index = {node: i for i, node in enumerate(nodes)}
        return cls(len(nodes), ((index[u], index[v]) for u, v in g.edges()))

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph`."""
        import networkx as nx

        self._materialize_objects()
        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self._edges)
        return g

    @classmethod
    def from_adjacency(cls, adj: Mapping[int, Sequence[int]] | Sequence[Sequence[int]]) -> "Graph":
        """Build from an adjacency mapping or list."""
        if isinstance(adj, Mapping):
            n = (max(adj) + 1) if adj else 0
            items: Iterator[tuple[int, Sequence[int]]] = iter(adj.items())
        else:
            n = len(adj)
            items = iter(enumerate(adj))
        edges = []
        for v, nbrs in items:
            n = max(n, v + 1, *(u + 1 for u in nbrs)) if nbrs else max(n, v + 1)
            for u in nbrs:
                edges.append((v, u))
        return cls(n, edges)

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        self._materialize_objects()
        other._materialize_objects()
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        self._materialize_objects()
        return hash((self._n, self._edges))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"


# ----------------------------------------------------------------------
# Shard partitioners
# ----------------------------------------------------------------------
# A partitioner maps (graph, shards) to a list of ``shards + 1``
# ascending vertex bounds; shard ``i`` owns the contiguous CSR range
# ``bounds[i]:bounds[i+1]``.  Contiguity is load-bearing for the sharded
# executor: per-shard ``np.flatnonzero`` concatenated in shard order
# equals the global one, which keeps watchdog summaries and outputs in
# the exact order the unsharded bulk drivers produce.


def range_partition(graph: "Graph", shards: int) -> list[int]:
    """Vertex-balanced contiguous bounds: shard sizes differ by <= 1."""
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    n = graph.n
    return [(i * n) // shards for i in range(shards + 1)]


def edge_balanced_partition(graph: "Graph", shards: int) -> list[int]:
    """Contiguous bounds balancing directed-edge (CSR row) mass.

    Cuts the offsets array at even fractions of ``2m`` so each shard
    scans roughly the same number of adjacency entries per round --
    better than :func:`range_partition` on skewed degree sequences.
    """
    import numpy as np

    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    offsets, _ = graph.csr()
    n = graph.n
    total = int(offsets[-1])
    bounds = [0]
    for i in range(1, shards):
        target = (i * total) // shards
        cut = int(np.searchsorted(offsets, target, side="left"))
        bounds.append(min(max(cut, bounds[-1]), n))
    bounds.append(n)
    return bounds


PARTITIONERS = {
    "range": range_partition,
    "edge": edge_balanced_partition,
}

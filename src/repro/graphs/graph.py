"""Immutable undirected graphs.

The network graph ``G = (V, E)`` of the distributed message-passing model.
Vertices are the integers ``0 .. n-1``; symmetry-breaking identifiers (the
``ID`` assignment ``I`` over which the vertex-averaged complexity measure
maximizes) are stored separately, so the same topology can be re-run under
many ID assignments.

The representation is optimised for the access pattern of the round
simulator: ``neighbors(v)`` is a tuple lookup, ``degree(v)`` is O(1), and
edge-set membership is O(1) via per-vertex frozensets.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence


def canonical_edge(u: int, v: int) -> tuple[int, int]:
    """Return the canonical ``(min, max)`` form of the undirected edge."""
    return (u, v) if u < v else (v, u)


class Graph:
    """An immutable, simple, undirected graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops are rejected; duplicate
        edges (in either orientation) are collapsed.
    """

    __slots__ = ("_n", "_adj", "_adj_sets", "_edges", "_m", "_csr", "_csr_rows")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self._n = n
        self._csr = None
        self._csr_rows = None
        adj: list[list[int]] = [[] for _ in range(n)]
        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at vertex {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
            e = canonical_edge(u, v)
            if e in seen:
                continue
            seen.add(e)
            adj[u].append(v)
            adj[v].append(u)
        self._adj: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(nbrs)) for nbrs in adj
        )
        self._adj_sets: tuple[frozenset[int], ...] = tuple(
            frozenset(nbrs) for nbrs in self._adj
        )
        self._edges: tuple[tuple[int, int], ...] = tuple(sorted(seen))
        self._m = len(self._edges)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def vertices(self) -> range:
        """The vertex set as a range object."""
        return range(self._n)

    def edges(self) -> tuple[tuple[int, int], ...]:
        """All edges in canonical ``(min, max)`` form, sorted."""
        return self._edges

    def neighbors(self, v: int) -> tuple[int, ...]:
        """The sorted neighbors of ``v``."""
        return self._adj[v]

    def neighbor_set(self, v: int) -> frozenset[int]:
        """The neighbors of ``v`` as a frozenset (O(1) membership)."""
        return self._adj_sets[v]

    def degree(self, v: int) -> int:
        """deg(v): the number of edges incident on ``v``."""
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return v in self._adj_sets[u]

    def max_degree(self) -> int:
        """Delta(G), the maximum degree (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return max(len(nbrs) for nbrs in self._adj)

    def degree_sequence(self) -> list[int]:
        """All vertex degrees, indexed by vertex."""
        return [len(nbrs) for nbrs in self._adj]

    # ------------------------------------------------------------------
    # CSR adjacency view (the round engine's fast path)
    # ------------------------------------------------------------------
    def csr(self):
        """The adjacency structure in CSR form: ``(offsets, indices)``.

        ``offsets`` is an ``int64`` array of length ``n + 1`` and
        ``indices`` an ``int64`` array of length ``2m``; the neighbors of
        ``v`` are ``indices[offsets[v]:offsets[v+1]]``, sorted ascending.
        Built lazily on first use and cached for the lifetime of the graph
        (the graph is immutable), so repeated executions over the same
        topology share one flat adjacency encoding.
        """
        if self._csr is None:
            import numpy as np

            offsets = np.zeros(self._n + 1, dtype=np.int64)
            if self._n:
                offsets[1:] = np.cumsum(
                    np.fromiter(
                        (len(nbrs) for nbrs in self._adj),
                        dtype=np.int64,
                        count=self._n,
                    )
                )
            indices = np.fromiter(
                (u for nbrs in self._adj for u in nbrs),
                dtype=np.int64,
                count=2 * self._m,
            )
            self._csr = (offsets, indices)
        return self._csr

    def csr_rows(self) -> list[list[int]]:
        """Per-vertex neighbor rows sliced out of :meth:`csr`.

        A cached list-of-lists mirror of the CSR arrays holding plain
        Python ints, which is what the engine's object-level loops
        (broadcast fan-out, halt-notice delivery) iterate: indexing
        containers with native ints is markedly faster than with numpy
        scalars.  The rows are shared -- callers must treat them as
        immutable and copy before mutating.
        """
        if self._csr_rows is None:
            offsets, indices = self.csr()
            off = offsets.tolist()
            idx = indices.tolist()
            self._csr_rows = [
                idx[off[v] : off[v + 1]] for v in range(self._n)
            ]
        return self._csr_rows

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[int]) -> tuple["Graph", dict[int, int]]:
        """The subgraph induced by ``vertices``.

        Returns the induced graph (re-indexed ``0..k-1``) together with the
        mapping from original vertex to new index.
        """
        vs = sorted(set(vertices))
        index = {v: i for i, v in enumerate(vs)}
        keep = set(vs)
        edges = [
            (index[u], index[v])
            for u, v in self._edges
            if u in keep and v in keep
        ]
        return Graph(len(vs), edges), index

    def edge_subgraph_degrees(self, vertices: Iterable[int]) -> dict[int, int]:
        """Degrees of ``vertices`` inside the induced subgraph, without
        materialising it."""
        keep = set(vertices)
        return {
            v: sum(1 for u in self._adj[v] if u in keep) for v in keep
        }

    def line_graph_neighbors(self, edge: tuple[int, int]) -> list[tuple[int, int]]:
        """Edges adjacent to ``edge`` in the line graph (sharing an endpoint)."""
        u, v = edge
        out: list[tuple[int, int]] = []
        for w in self._adj[u]:
            if w != v:
                out.append(canonical_edge(u, w))
        for w in self._adj[v]:
            if w != u:
                out.append(canonical_edge(v, w))
        return out

    def connected_components(self) -> list[list[int]]:
        """Connected components as sorted vertex lists (iterative DFS)."""
        seen = [False] * self._n
        comps: list[list[int]] = []
        for s in range(self._n):
            if seen[s]:
                continue
            stack = [s]
            seen[s] = True
            comp = []
            while stack:
                v = stack.pop()
                comp.append(v)
                for u in self._adj[v]:
                    if not seen[u]:
                        seen[u] = True
                        stack.append(u)
            comps.append(sorted(comp))
        return comps

    def is_forest(self) -> bool:
        """Whether the graph is acyclic (a forest)."""
        return self._m == self._n - len(self.connected_components())

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, g) -> "Graph":
        """Build from a :mod:`networkx` graph with arbitrary hashable nodes.

        Nodes are relabelled ``0..n-1`` in sorted-by-string order.
        """
        nodes = sorted(g.nodes(), key=str)
        index = {node: i for i, node in enumerate(nodes)}
        return cls(len(nodes), ((index[u], index[v]) for u, v in g.edges()))

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph`."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self._edges)
        return g

    @classmethod
    def from_adjacency(cls, adj: Mapping[int, Sequence[int]] | Sequence[Sequence[int]]) -> "Graph":
        """Build from an adjacency mapping or list."""
        if isinstance(adj, Mapping):
            n = (max(adj) + 1) if adj else 0
            items: Iterator[tuple[int, Sequence[int]]] = iter(adj.items())
        else:
            n = len(adj)
            items = iter(enumerate(adj))
        edges = []
        for v, nbrs in items:
            n = max(n, v + 1, *(u + 1 for u in nbrs)) if nbrs else max(n, v + 1)
            for u in nbrs:
                edges.append((v, u))
        return cls(n, edges)

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"

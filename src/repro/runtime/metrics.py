"""Round accounting: the quantities the paper's theorems bound.

For an execution of algorithm A on graph G under ID assignment I, the paper
defines r_{G,I,A}(v) as the number of rounds until vertex v terminates, and

    vertex-averaged complexity  T-bar = (1/n) * sum_v r(v)
    worst-case complexity       T     = max_v r(v)
    RoundSum(V)                       = sum_v r(v)

plus the active-vertex counts n_i (the number of vertices still active in
round i), whose exponential decay (Lemma 6.1) powers every result.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RoundMetrics:
    """Aggregate round statistics of one execution."""

    #: rounds-until-termination per vertex, indexed by vertex
    rounds: tuple[int, ...]
    #: n_i: number of vertices active during round i (index 0 = round 1)
    active_trace: tuple[int, ...] = field(default=())
    #: total messages sent per round (index 0 = round 1)
    messages_per_round: tuple[int, ...] = field(default=())

    @property
    def n(self) -> int:
        return len(self.rounds)

    @property
    def round_sum(self) -> int:
        """RoundSum(V) = sum of rounds over all vertices."""
        return sum(self.rounds)

    @property
    def vertex_averaged(self) -> float:
        """T-bar(G) = RoundSum(V) / n (0.0 for the empty graph)."""
        if not self.rounds:
            return 0.0
        return self.round_sum / len(self.rounds)

    @property
    def worst_case(self) -> int:
        """T(G) = max_v r(v) (0 for the empty graph)."""
        return max(self.rounds, default=0)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_per_round)

    def quantile(self, q: float) -> int:
        """The q-quantile of per-vertex round counts (e.g. the median
        running time, which the averaged measure is a proxy for)."""
        if not self.rounds:
            return 0
        ordered = sorted(self.rounds)
        idx = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[idx]

    def terminated_by(self, r: int) -> int:
        """How many vertices have terminated by the end of round r."""
        return sum(1 for x in self.rounds if x <= r)

    def check_active_trace(self) -> bool:
        """Internal consistency: n_i must equal the number of vertices with
        r(v) >= i, and RoundSum must equal sum_i n_i (Equation 1)."""
        for i, n_i in enumerate(self.active_trace, start=1):
            if n_i != sum(1 for x in self.rounds if x >= i):
                return False
        return sum(self.active_trace) == self.round_sum

    def summary(self) -> str:
        return (
            f"n={self.n} avg={self.vertex_averaged:.3f} "
            f"worst={self.worst_case} roundsum={self.round_sum} "
            f"msgs={self.total_messages}"
        )


@dataclass(frozen=True)
class TimeMetrics:
    """Virtual-time accounting of one *asynchronous* execution.

    The event-queue scheduler (:mod:`repro.runtime.async_sched`) assigns
    every token a seeded per-edge delivery time; a vertex's completion
    time t(v) is the virtual time at which it executed its final local
    round (its crash point, for adversary-crashed vertices).  Times are
    *normalized* to round-equivalents by ``1 + t / mean_delay`` so they
    are comparable with round counts: under the degenerate fixed
    unit-delay distribution the normalized completion time of a vertex on
    a critical chain equals its synchronous round count exactly (round 1
    executes at t = 0, hence the ``1 +``).

    ``output_times`` is the commit-definition analogue (Feuilloley's
    first definition): the time the vertex *fixed* its output, which is
    its commit time when the program called ``ctx.commit`` earlier.
    """

    #: virtual completion time per vertex, indexed by vertex
    times: tuple[float, ...]
    #: virtual time at which each vertex's output was fixed
    output_times: tuple[float, ...] = field(default=())
    #: mean link delay of the distribution the run used (normalization)
    mean_delay: float = 1.0

    @property
    def n(self) -> int:
        return len(self.times)

    def _normalize(self, ts: tuple[float, ...]) -> tuple[float, ...]:
        m = self.mean_delay or 1.0
        return tuple(1.0 + t / m for t in ts)

    @property
    def normalized_times(self) -> tuple[float, ...]:
        """Per-vertex completion times in round-equivalents."""
        return self._normalize(self.times)

    @property
    def vertex_averaged_time(self) -> float:
        """T-bar over virtual time: mean normalized completion time."""
        if not self.times:
            return 0.0
        return sum(self.normalized_times) / len(self.times)

    @property
    def worst_case_time(self) -> float:
        """Max normalized completion time (0.0 for the empty graph)."""
        return max(self.normalized_times, default=0.0)

    @property
    def averaged_output_time(self) -> float:
        """Vertex-averaged normalized *output* time -- the asynchronous
        analogue of the commit-based averaged measure."""
        ts = self.output_times or self.times
        if not ts:
            return 0.0
        return sum(self._normalize(ts)) / len(ts)

    def summary(self) -> str:
        return (
            f"n={self.n} avg-time={self.vertex_averaged_time:.3f} "
            f"worst-time={self.worst_case_time:.3f} "
            f"avg-output-time={self.averaged_output_time:.3f} "
            f"(mean delay {self.mean_delay:g})"
        )


def merge_metrics(parts: list[RoundMetrics]) -> RoundMetrics:
    """Combine metrics of executions on disjoint vertex sets (used when an
    algorithm is run independently per connected component)."""
    rounds: list[int] = []
    depth = max((len(p.active_trace) for p in parts), default=0)
    active = [0] * depth
    msgs_depth = max((len(p.messages_per_round) for p in parts), default=0)
    msgs = [0] * msgs_depth
    for p in parts:
        rounds.extend(p.rounds)
        for i, x in enumerate(p.active_trace):
            active[i] += x
        for i, x in enumerate(p.messages_per_round):
            msgs[i] += x
    return RoundMetrics(tuple(rounds), tuple(active), tuple(msgs))

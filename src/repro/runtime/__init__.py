"""Synchronous LOCAL-model runtime.

This package simulates the static, synchronous message-passing model of
Section 1.1 of the paper: all processors operate in parallel in synchronous
rounds, exchanging messages of unbounded size with their neighbors.  A
vertex's *running time* is the round in which it terminates; per the paper's
variant of the model (Section 2), a terminating vertex transmits its final
output once to all neighbors and then performs no further computation or
communication.

Vertex programs are written as generator coroutines: one ``yield`` per
communication round (see :mod:`repro.runtime.program`).
"""

from repro.runtime.async_sched import DELAY_DISTS, DelaySpec, run_async
from repro.runtime.bulk import BulkUnsupported, bulk_broadcast_kernel
from repro.runtime.context import Context, RouterState
from repro.runtime.network import (
    ENGINES,
    MaxRoundsExceeded,
    RoundLimitExceeded,
    RunResult,
    SyncNetwork,
    current_engine,
    default_max_rounds,
    engine_session,
)
from repro.runtime.metrics import RoundMetrics, TimeMetrics
from repro.runtime.program import wait_rounds, wait_until_round
from repro.runtime.scheduler import (
    MODES,
    SyncBarrierScheduler,
    current_mode,
    mode_session,
)
from repro.runtime.reference import ReferenceSyncNetwork
from repro.runtime.shard import (
    ShardError,
    ShardSession,
    ShardTimeout,
    current_shards,
    shard_session,
)
from repro.runtime.trace import Trace, TraceRecorder

__all__ = [
    "BulkUnsupported",
    "Context",
    "DELAY_DISTS",
    "DelaySpec",
    "ENGINES",
    "MODES",
    "MaxRoundsExceeded",
    "ReferenceSyncNetwork",
    "RoundLimitExceeded",
    "RoundMetrics",
    "RouterState",
    "RunResult",
    "ShardError",
    "ShardSession",
    "ShardTimeout",
    "SyncBarrierScheduler",
    "SyncNetwork",
    "TimeMetrics",
    "Trace",
    "TraceRecorder",
    "bulk_broadcast_kernel",
    "current_engine",
    "current_mode",
    "current_shards",
    "default_max_rounds",
    "engine_session",
    "mode_session",
    "run_async",
    "shard_session",
    "wait_rounds",
    "wait_until_round",
]

"""Execution tracing: per-round observability of a run.

:class:`TraceRecorder` wraps a program factory and records, per round,
which vertices terminated and how many messages each vertex sent, yielding
a round-by-round narrative (the "what happened when" view that complements
the aggregate :class:`repro.runtime.metrics.RoundMetrics`).  Used by tests
asserting fine-grained schedule properties and by diagnostic tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.runtime.context import Context


@dataclass
class RoundRecord:
    """What happened during one round."""

    round: int
    terminated: list[int] = field(default_factory=list)
    committed: list[int] = field(default_factory=list)
    messages: int = 0


@dataclass
class Trace:
    """A round-by-round record of an execution."""

    records: list[RoundRecord] = field(default_factory=list)

    def record(self, rnd: int) -> RoundRecord:
        while len(self.records) < rnd:
            self.records.append(RoundRecord(round=len(self.records) + 1))
        return self.records[rnd - 1]

    def termination_rounds(self) -> dict[int, int]:
        out = {}
        for rec in self.records:
            for v in rec.terminated:
                out[v] = rec.round
        return out

    def terminations_per_round(self) -> list[int]:
        return [len(rec.terminated) for rec in self.records]

    def messages_per_round(self) -> list[int]:
        return [rec.messages for rec in self.records]

    def narrative(self, limit: int = 50) -> str:
        """A human-readable per-round log (truncated to ``limit`` rounds)."""
        lines = []
        for rec in self.records[:limit]:
            parts = [f"round {rec.round:4d}:"]
            if rec.messages:
                parts.append(f"{rec.messages} msgs")
            if rec.committed:
                parts.append(f"{len(rec.committed)} committed")
            if rec.terminated:
                parts.append(f"{len(rec.terminated)} terminated")
            if len(parts) == 1:
                parts.append("idle")
            lines.append(" ".join(parts))
        if len(self.records) > limit:
            lines.append(f"... ({len(self.records) - limit} more rounds)")
        return "\n".join(lines)


def traced(
    program: Callable[[Context], Generator[None, None, Any]], trace: Trace
) -> Callable[[Context], Generator[None, None, Any]]:
    """Wrap a program factory so each vertex reports into ``trace``."""

    def wrapper(ctx: Context):
        gen = program(ctx)
        committed_seen = False
        try:
            while True:
                next(gen)
                rec = trace.record(ctx.round)
                # messages this vertex sent during the round, counted the
                # same way under the fast engine (which routes at send
                # time) and the reference engine (which batches _outgoing)
                rec.messages += ctx._sent_round
                if not committed_seen and ctx.committed:
                    rec.committed.append(ctx.v)
                    committed_seen = True
                yield
        except StopIteration as stop:
            rec = trace.record(ctx.round)
            rec.messages += ctx._sent_round
            if not committed_seen and ctx.committed:
                rec.committed.append(ctx.v)
            rec.terminated.append(ctx.v)
            return stop.value

    return wrapper

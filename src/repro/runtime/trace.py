"""Execution tracing: per-round observability of a run.

A :class:`Trace` is the round-by-round narrative (the "what happened
when" view that complements the aggregate
:class:`repro.runtime.metrics.RoundMetrics`): which vertices terminated
or committed each round, and how many messages the programs sent.

Two ways to build one:

* :class:`TraceRecorder` -- a thin :class:`repro.obs.EventBus` sink; the
  preferred path.  Attach it to a run and the engines' event stream
  fills the trace::

      rec = TraceRecorder()
      SyncNetwork(g).run(program, bus=EventBus(rec))
      print(rec.trace.narrative())

* :func:`traced` -- the legacy program-factory wrapper, kept for
  backwards compatibility but **deprecated**: it intercepts every vertex
  generator, costs a wrapper frame per vertex per round, and only sees
  what the wrapper can observe.  The sink path costs nothing when not
  attached and shares the engines' single instrumentation substrate.

Message counts: a trace counts what the *programs sent* (``ctx.send`` /
``ctx.broadcast`` payloads actually routed), which differs from
``RoundMetrics.messages_per_round`` -- the engine's delivered traffic --
by same-round drops and halt notices.  Both builders agree on this
definition, and the differential suite pins them to each other.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.obs.events import Event
from repro.obs.sinks import Sink
from repro.runtime.context import Context


@dataclass
class RoundRecord:
    """What happened during one round."""

    round: int
    terminated: list[int] = field(default_factory=list)
    committed: list[int] = field(default_factory=list)
    messages: int = 0


@dataclass
class Trace:
    """A round-by-round record of an execution."""

    records: list[RoundRecord] = field(default_factory=list)

    def record(self, rnd: int) -> RoundRecord:
        """The record for 1-based round ``rnd``, creating it (and any
        earlier missing rounds) on first access.

        Records are stored densely at index ``rnd - 1`` with ``round``
        always ``index + 1``, so out-of-order access can neither gap nor
        duplicate the sequence; a non-positive round is rejected rather
        than silently aliasing the last record (``records[-1]``, the bug
        the old unchecked indexing had).
        """
        if rnd < 1:
            raise ValueError(f"rounds are 1-based, got {rnd}")
        records = self.records
        while len(records) < rnd:
            records.append(RoundRecord(round=len(records) + 1))
        return records[rnd - 1]

    def termination_rounds(self) -> dict[int, int]:
        out = {}
        for rec in self.records:
            for v in rec.terminated:
                out[v] = rec.round
        return out

    def terminations_per_round(self) -> list[int]:
        return [len(rec.terminated) for rec in self.records]

    def messages_per_round(self) -> list[int]:
        return [rec.messages for rec in self.records]

    def narrative(self, limit: int = 50) -> str:
        """A human-readable per-round log (truncated to ``limit`` rounds)."""
        lines = []
        for rec in self.records[:limit]:
            parts = [f"round {rec.round:4d}:"]
            if rec.messages:
                parts.append(f"{rec.messages} msgs")
            if rec.committed:
                parts.append(f"{len(rec.committed)} committed")
            if rec.terminated:
                parts.append(f"{len(rec.terminated)} terminated")
            if len(parts) == 1:
                parts.append("idle")
            lines.append(" ".join(parts))
        if len(self.records) > limit:
            lines.append(f"... ({len(self.records) - limit} more rounds)")
        return "\n".join(lines)


class TraceRecorder(Sink):
    """An :class:`repro.obs.EventBus` sink that builds a :class:`Trace`.

    Consumes the engines' typed events -- ``round_start`` creates the
    round's record, ``send``/``broadcast`` accumulate the per-round
    message count, ``commit`` and ``halt`` append the vertex in engine
    order -- producing exactly the trace :func:`traced` used to build by
    wrapping every program generator, without touching the programs.
    """

    def __init__(self, trace: Trace | None = None) -> None:
        self.trace = trace if trace is not None else Trace()

    def emit(self, event: Event) -> None:
        kind = event.kind
        if kind == "round_start":
            self.trace.record(event.round)
        elif kind == "broadcast":
            self.trace.record(event.round).messages += event.msgs
        elif kind == "send":
            self.trace.record(event.round).messages += 1
        elif kind == "halt":
            self.trace.record(event.round).terminated.append(event.v)
        elif kind == "commit":
            self.trace.record(event.round).committed.append(event.v)


def traced(
    program: Callable[[Context], Generator[None, None, Any]], trace: Trace
) -> Callable[[Context], Generator[None, None, Any]]:
    """Wrap a program factory so each vertex reports into ``trace``.

    .. deprecated::
        Attach a :class:`TraceRecorder` sink to the run's
        :class:`repro.obs.EventBus` instead; the wrapper path adds a
        generator frame per vertex per round and exists only for
        backwards compatibility.
    """
    warnings.warn(
        "traced() is deprecated; attach a TraceRecorder sink to an "
        "EventBus (SyncNetwork.run(bus=...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )

    def wrapper(ctx: Context):
        gen = program(ctx)
        committed_seen = False
        try:
            while True:
                next(gen)
                rec = trace.record(ctx.round)
                # messages this vertex sent during the round, counted the
                # same way under the fast engine (which routes at send
                # time) and the reference engine (which batches _outgoing)
                rec.messages += ctx._sent_round
                if not committed_seen and ctx.committed:
                    rec.committed.append(ctx.v)
                    committed_seen = True
                yield
        except StopIteration as stop:
            rec = trace.record(ctx.round)
            rec.messages += ctx._sent_round
            if not committed_seen and ctx.committed:
                rec.committed.append(ctx.v)
            rec.terminated.append(ctx.v)
            return stop.value

    return wrapper

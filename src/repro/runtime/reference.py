"""The reference round engine: the executable specification.

This is the original, straightforward implementation of the synchronous
round semantics (per-round dicts, explicit ``_outgoing`` routing), kept
verbatim except for one deliberate fix that the fast engine shares:
messages routed to a vertex that terminated in the same round are dropped
at routing time instead of accumulating undelivered in ``pending`` while
inflating the message count.

It exists so the throughput-optimised :class:`repro.runtime.network
.SyncNetwork` has something to be *equal to*: the differential suite in
``tests/runtime/test_equivalence.py`` replays randomized programs over
every workload family through both engines and asserts identical
:class:`~repro.runtime.network.RunResult`\\ s (outputs, per-vertex rounds,
active/message traces, commit rounds) and identical
:class:`~repro.runtime.trace.Trace` records.  It is also the "before"
engine that :mod:`repro.bench.baseline` times to quantify the fast path's
speedup.

Do not optimise this module; clarity is its contract.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Generator

from repro.obs.events import Drop
from repro.runtime.context import _EMPTY_FROZENSET
from repro.runtime.network import (
    MaxRoundsExceeded,
    ProgramFactory,
    RoundLimitExceeded,
    RunResult,
    SyncNetwork,
    default_max_rounds,
)
from repro.runtime.scheduler import SyncBarrierScheduler

__all__ = ["MaxRoundsExceeded", "ReferenceSyncNetwork", "RoundLimitExceeded"]


class ReferenceSyncNetwork(SyncNetwork):
    """Drop-in :class:`SyncNetwork` running the specification engine.

    Contexts stay *unwired* (``ctx._router is None``), so ``send`` and
    ``broadcast`` accumulate ``(target, payload)`` tuples in
    ``ctx._outgoing`` and this loop routes them into per-round dicts --
    exactly the seed implementation of the engine.
    """

    def run(
        self,
        program: ProgramFactory,
        max_rounds: int | None = None,
        collect_messages: bool = True,
        bus=None,
        faults=None,
    ) -> RunResult:
        """Execute ``program`` on every vertex until all terminate."""
        g = self.graph
        n = g.n
        if max_rounds is None:
            max_rounds = default_max_rounds(n)

        contexts = self.make_contexts()
        gens: list[Generator[None, None, Any] | None] = self._spawn(
            program, contexts
        )
        # Same instrumentation contract as the fast engine: the emitted
        # event stream must be identical (the differential suite checks).
        emit, prof = self._resolve_bus(bus, contexts)
        # Same fault contract as the fast engine: the injector is driven
        # at the same deliver/route boundaries, so a seeded FaultPlan
        # perturbs both engines bit-identically.
        injector = self._resolve_faults(faults)

        # The *same* barrier scheduler the fast engine uses drives the
        # round progression; this loop supplies only the specification
        # mail mechanics (per-round dicts, explicit ``_outgoing`` routing).
        sched = SyncBarrierScheduler(
            contexts, gens, max_rounds, emit, injector, collect_messages
        )
        sched.begin_run()
        pending: dict[int, dict[int, Any]] = {}

        while True:
            nxt = sched.next_round()
            if nxt is None:
                break
            rnd, due, halted = nxt
            for src, dst, payload in due:
                box = pending.setdefault(dst, {})
                slot = box.get(src)
                if slot is None:
                    box[src] = [payload]
                else:
                    slot.append(payload)
            if prof is not None:
                _t0 = perf_counter()

            # Deliver termination notices from the previous round.
            if halted:
                notice_for: dict[int, set[int]] = {}
                for v, out in halted:
                    for u in g.neighbors(v):
                        contexts[u].halted[v] = out
                        contexts[u]._halted_set.add(v)
                        notice_for.setdefault(u, set()).add(v)
                for u, vs in notice_for.items():
                    contexts[u].newly_halted = frozenset(vs)
                cleared = set(notice_for)
            else:
                cleared = set()

            if prof is not None:
                _t1 = perf_counter()
                prof.add("deliver", _t1 - _t0)
                _t0 = _t1

            msg_count = 0
            next_pending: dict[int, dict[int, Any]] = {}
            still_active: list[int] = []

            for v in sched.active:
                ctx = contexts[v]
                ctx.inbox = pending.get(v, {})
                ctx._round = rnd
                ctx._sent_round = 0
                if v not in cleared and ctx.newly_halted:
                    ctx.newly_halted = _EMPTY_FROZENSET
                if sched.step_vertex(v):
                    still_active.append(v)
                # Route outgoing messages.  A vertex may send in the round
                # it returns; those final-round sends are *delivered* to
                # live neighbors next round, alongside the halt notice
                # (tested by test_message_sent_in_final_round_is_delivered).
                if ctx._outgoing:
                    for u, payload in ctx._outgoing:
                        box = next_pending.get(u)
                        if box is None:
                            box = next_pending[u] = {}
                        slot = box.get(v)
                        if slot is None:
                            box[v] = [payload]
                        else:
                            slot.append(payload)
                        msg_count += 1
                    ctx._outgoing = []

            if prof is not None:
                _t1 = perf_counter()
                prof.add("step", _t1 - _t0)
                _t0 = _t1

            # Drop messages addressed to vertices that terminated this
            # round: they can never be delivered (the receiver performs no
            # further computation), so they must not linger in ``pending``
            # or count as traffic.
            for v, _ in sched.newly_halted:
                box = next_pending.pop(v, None)
                if box:
                    dropped = sum(len(payloads) for payloads in box.values())
                    msg_count -= dropped
                    if emit is not None:
                        emit(Drop(rnd, v, dropped))

            sched.end_round(msg_count, len(next_pending))
            sched.active = still_active
            pending = next_pending
            if prof is not None:
                prof.add("route", perf_counter() - _t0)

        return sched.finish()

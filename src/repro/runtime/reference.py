"""The reference round engine: the executable specification.

This is the original, straightforward implementation of the synchronous
round semantics (per-round dicts, explicit ``_outgoing`` routing), kept
verbatim except for one deliberate fix that the fast engine shares:
messages routed to a vertex that terminated in the same round are dropped
at routing time instead of accumulating undelivered in ``pending`` while
inflating the message count.

It exists so the throughput-optimised :class:`repro.runtime.network
.SyncNetwork` has something to be *equal to*: the differential suite in
``tests/runtime/test_equivalence.py`` replays randomized programs over
every workload family through both engines and asserts identical
:class:`~repro.runtime.network.RunResult`\\ s (outputs, per-vertex rounds,
active/message traces, commit rounds) and identical
:class:`~repro.runtime.trace.Trace` records.  It is also the "before"
engine that :mod:`repro.bench.baseline` times to quantify the fast path's
speedup.

Do not optimise this module; clarity is its contract.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Generator

from repro.obs.events import Drop, Halt, RoundEnd, RoundStart
from repro.runtime.context import _EMPTY_FROZENSET
from repro.runtime.network import (
    MaxRoundsExceeded,
    ProgramFactory,
    RoundLimitExceeded,
    RunResult,
    SyncNetwork,
    default_max_rounds,
)
from repro.runtime.metrics import RoundMetrics

__all__ = ["MaxRoundsExceeded", "ReferenceSyncNetwork", "RoundLimitExceeded"]


class ReferenceSyncNetwork(SyncNetwork):
    """Drop-in :class:`SyncNetwork` running the specification engine.

    Contexts stay *unwired* (``ctx._router is None``), so ``send`` and
    ``broadcast`` accumulate ``(target, payload)`` tuples in
    ``ctx._outgoing`` and this loop routes them into per-round dicts --
    exactly the seed implementation of the engine.
    """

    def run(
        self,
        program: ProgramFactory,
        max_rounds: int | None = None,
        collect_messages: bool = True,
        bus=None,
        faults=None,
    ) -> RunResult:
        """Execute ``program`` on every vertex until all terminate."""
        g = self.graph
        n = g.n
        if max_rounds is None:
            max_rounds = default_max_rounds(n)

        contexts = self.make_contexts()
        gens: list[Generator[None, None, Any] | None] = self._spawn(
            program, contexts
        )
        # Same instrumentation contract as the fast engine: the emitted
        # event stream must be identical (the differential suite checks).
        emit, prof = self._resolve_bus(bus, contexts)
        # Same fault contract as the fast engine: the injector is driven
        # at the same deliver/route boundaries, so a seeded FaultPlan
        # perturbs both engines bit-identically.
        injector = self._resolve_faults(faults)

        outputs: dict[int, Any] = {}
        rounds = [0] * n
        active: list[int] = list(range(n))
        if injector is not None:
            pre_crashed = injector.begin_run(emit)
            if pre_crashed:
                for v in pre_crashed:
                    if v < n and gens[v] is not None:
                        gens[v].close()
                        gens[v] = None
                active = [v for v in active if gens[v] is not None]
            if injector.messages_active:
                for ctx in contexts:
                    ctx._faults = injector
        pending: dict[int, dict[int, Any]] = {}
        active_trace: list[int] = []
        msg_trace: list[int] = []
        rnd = 0
        newly_halted: list[tuple[int, Any]] = []

        while active:
            rnd += 1
            if injector is not None:
                crashes, due = injector.on_round(rnd, active)
                if crashes:
                    for v in crashes:
                        gens[v].close()
                        gens[v] = None
                        rounds[v] = rnd - 1
                    active = [v for v in active if gens[v] is not None]
                    if not active:
                        break
                for src, dst, payload in due:
                    if gens[dst] is not None:
                        box = pending.setdefault(dst, {})
                        slot = box.get(src)
                        if slot is None:
                            box[src] = [payload]
                        else:
                            slot.append(payload)
            if rnd > max_rounds:
                raise RoundLimitExceeded(max_rounds, active, contexts)
            active_trace.append(len(active))
            if emit is not None:
                emit(RoundStart(rnd, len(active)))
            if prof is not None:
                _t0 = perf_counter()

            # Deliver termination notices from the previous round.
            if newly_halted:
                notice_for: dict[int, set[int]] = {}
                for v, out in newly_halted:
                    for u in g.neighbors(v):
                        contexts[u].halted[v] = out
                        contexts[u]._halted_set.add(v)
                        notice_for.setdefault(u, set()).add(v)
                for u, vs in notice_for.items():
                    contexts[u].newly_halted = frozenset(vs)
                cleared = set(notice_for)
            else:
                cleared = set()
            newly_halted = []

            if prof is not None:
                _t1 = perf_counter()
                prof.add("deliver", _t1 - _t0)
                _t0 = _t1

            msg_count = 0
            next_pending: dict[int, dict[int, Any]] = {}
            still_active: list[int] = []

            for v in active:
                ctx = contexts[v]
                ctx.inbox = pending.get(v, {})
                ctx._round = rnd
                ctx._sent_round = 0
                if v not in cleared and ctx.newly_halted:
                    ctx.newly_halted = _EMPTY_FROZENSET
                try:
                    yielded = next(gens[v])
                    if yielded is not None:
                        raise RuntimeError(
                            f"vertex {v} yielded {yielded!r}; programs must "
                            "use bare `yield` (send via ctx.send/broadcast)"
                        )
                except StopIteration as stop:
                    if ctx._commit_round is not None:
                        if stop.value is not None and stop.value != ctx._commit_value:
                            raise RuntimeError(
                                f"vertex {v} returned {stop.value!r} after "
                                f"committing {ctx._commit_value!r}"
                            )
                        outputs[v] = ctx._commit_value
                    else:
                        outputs[v] = stop.value
                    rounds[v] = rnd
                    gens[v] = None
                    newly_halted.append((v, outputs[v]))
                    if emit is not None:
                        emit(Halt(rnd, v))
                else:
                    still_active.append(v)
                # Route outgoing messages.  A vertex may send in the round
                # it returns; those final-round sends are *delivered* to
                # live neighbors next round, alongside the halt notice
                # (tested by test_message_sent_in_final_round_is_delivered).
                if ctx._outgoing:
                    for u, payload in ctx._outgoing:
                        box = next_pending.get(u)
                        if box is None:
                            box = next_pending[u] = {}
                        slot = box.get(v)
                        if slot is None:
                            box[v] = [payload]
                        else:
                            slot.append(payload)
                        msg_count += 1
                    ctx._outgoing = []

            if prof is not None:
                _t1 = perf_counter()
                prof.add("step", _t1 - _t0)
                _t0 = _t1

            # Drop messages addressed to vertices that terminated this
            # round: they can never be delivered (the receiver performs no
            # further computation), so they must not linger in ``pending``
            # or count as traffic.
            for v, _ in newly_halted:
                box = next_pending.pop(v, None)
                if box:
                    dropped = sum(len(payloads) for payloads in box.values())
                    msg_count -= dropped
                    if emit is not None:
                        emit(Drop(rnd, v, dropped))

            msgs_total = msg_count + len(newly_halted)
            if injector is not None:
                msgs_total += injector.take_delayed_count()
            if emit is not None:
                emit(
                    RoundEnd(
                        rnd,
                        msgs_total,
                        len(next_pending),
                        len(newly_halted),
                    )
                )
            if collect_messages:
                msg_trace.append(msgs_total)
            active = still_active
            pending = next_pending
            if prof is not None:
                prof.add("route", perf_counter() - _t0)

        metrics = RoundMetrics(
            rounds=tuple(rounds),
            active_trace=tuple(active_trace),
            messages_per_round=tuple(msg_trace),
        )
        output_rounds = tuple(
            ctx._commit_round if ctx._commit_round is not None else rounds[v]
            for v, ctx in enumerate(contexts)
        )
        crashed: tuple[int, ...] = ()
        if injector is not None and injector.crashed:
            crashed = tuple(sorted(v for v in injector.crashed if v < n))
        return RunResult(
            outputs=outputs,
            metrics=metrics,
            contexts=tuple(contexts),
            output_rounds=output_rounds,
            crashed=crashed,
        )

"""Per-vertex execution context.

A :class:`Context` is the whole world as seen by one processor: its own
identifier, its incident communication links, the messages delivered this
round, the final outputs announced by already-terminated neighbors, and the
common knowledge every vertex starts with (``n``, the arboricity ``a``, the
ID-space bound -- whatever the algorithm driver places in ``config``).

Knowledge model: vertices know their own ID, the IDs at the other end of
their links (``neighbor_ids``, the KT1 assumption the paper's "orient the
edge towards the higher ID immediately upon formation of the H-set" steps
require), and global parameters that are deterministic functions of the
problem instance.

Two routing regimes
-------------------
A context can run *wired* or *unwired*.  The fast engine
(:class:`repro.runtime.network.SyncNetwork`) wires each context to a shared
:class:`RouterState`: ``send``/``broadcast`` then deliver straight into the
engine's pooled per-vertex mail slots (a broadcast allocates one
``(sender, payload)`` tuple and appends it to every active neighbor's slot
-- the receivers' inbox dicts are materialised lazily, only if a program
actually reads ``ctx.inbox``).  Unwired contexts -- as driven by
:class:`repro.runtime.reference.ReferenceSyncNetwork`, the executable
specification of the round semantics -- fall back to accumulating
``(target, payload)`` tuples in ``_outgoing`` for the engine to route.
Both regimes produce bit-identical executions; the differential tests in
``tests/runtime/test_equivalence.py`` enforce it.

``ctx.inbox`` is valid for the duration of the round it was delivered in:
the dict object handed to the program is freshly built and never reused,
but the engine's underlying mail buffers are pooled, so programs must not
assume messages remain observable in later rounds (none of the repo's
programs ever did).
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Mapping

from repro.obs.events import Broadcast as _BroadcastEvent
from repro.obs.events import Commit as _CommitEvent
from repro.obs.events import Send as _SendEvent


class RouterState:
    """Shared per-run routing state the engine wires into every context.

    ``slots_next`` holds one mail list per vertex (messages for the *next*
    round, as ``(sender, payload)`` tuples), ``dirty`` the receivers whose
    slot was touched this round (possibly with duplicates -- it is only
    used to clear slots cheaply), and ``msgs`` the running message count
    for the current round.
    """

    __slots__ = ("slots_next", "dirty", "msgs")

    def __init__(self) -> None:
        self.slots_next: list[list[tuple[int, Any]]] = []
        self.dirty: list[int] = []
        self.msgs = 0


_EMPTY_FROZENSET: frozenset[int] = frozenset()


class Context:
    """The local state and communication interface of one vertex."""

    __slots__ = (
        "v",
        "id",
        "neighbors",
        "neighbor_ids",
        "n",
        "config",
        "halted",
        "newly_halted",
        "_rng",
        "_mail",
        "_inbox_d",
        "_round",
        "_outgoing",
        "_halted_set",
        "_commit_round",
        "_commit_value",
        "_router",
        "_act",
        "_act_pos",
        "_sent_round",
        "_bus",
        "_faults",
    )

    def __init__(
        self,
        v: int,
        vid: int,
        neighbors: tuple[int, ...],
        neighbor_ids: Mapping[int, int],
        n: int,
        config: Mapping[str, Any],
        rng: random.Random | str,
    ) -> None:
        self.v = v
        self.id = vid
        self.neighbors = neighbors
        #: neighbor vertex -> its ID; also serves as the O(1) neighbor-set
        #: membership test for ``send``.  The engine hands over ownership
        #: of this dict (it is not copied here).
        self.neighbor_ids = (
            neighbor_ids if type(neighbor_ids) is dict else dict(neighbor_ids)
        )
        self.n = n
        self.config = config
        #: a ``random.Random`` instance, or a seed string materialised
        #: lazily on first use (most deterministic programs never touch it)
        self._rng = rng
        #: final outputs of terminated neighbors (accumulated)
        self.halted: dict[int, Any] = {}
        #: neighbors whose termination notice arrived this round
        self.newly_halted: frozenset[int] = _EMPTY_FROZENSET
        self._mail: list[tuple[int, Any]] | None = None
        self._inbox_d: dict[int, list[Any]] | None = None
        self._round = 0
        self._outgoing: list[tuple[int, Any]] = []
        self._halted_set: set[int] = set()
        self._commit_round: int | None = None
        self._commit_value: Any = None
        self._router: RouterState | None = None
        self._act: list[int] | None = None
        self._act_pos: dict[int, int] | None = None
        self._sent_round = 0
        #: the engine wires an active EventBus here; None (the default)
        #: keeps send/broadcast/commit entirely event-free
        self._bus = None
        #: the engine wires a FaultInjector with active message faults
        #: here; None (the default) keeps routing entirely fault-free
        self._faults = None

    # ------------------------------------------------------------------
    @property
    def rng(self) -> random.Random:
        """This vertex's private random generator (lazily seeded)."""
        r = self._rng
        if type(r) is str:
            r = self._rng = random.Random(r)
        return r

    @property
    def inbox(self) -> dict[int, list[Any]]:
        """Messages delivered this round: sender -> list of payloads.

        Several messages from the same sender in one round are bundled in
        send order.  The dict is built lazily from the engine's pooled
        mail slot on first access and cached for the rest of the round.
        """
        d = self._inbox_d
        if d is None:
            d = {}
            mail = self._mail
            if mail:
                for u, payload in mail:
                    lst = d.get(u)
                    if lst is None:
                        d[u] = [payload]
                    else:
                        lst.append(payload)
            self._inbox_d = d
        return d

    @inbox.setter
    def inbox(self, value: dict[int, list[Any]]) -> None:
        self._inbox_d = value
        self._mail = None

    @property
    def round(self) -> int:
        """The current communication round (1-based)."""
        return self._round

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def active_neighbors(self) -> list[int]:
        """Neighbors that have not terminated yet (in neighbor order)."""
        halted = self._halted_set
        return [u for u in self.neighbors if u not in halted]

    def active_degree(self) -> int:
        """The number of not-yet-terminated neighbors."""
        return len(self.neighbors) - len(self._halted_set)

    # ------------------------------------------------------------------
    def commit(self, value: Any) -> None:
        """Fix the final output *now* while continuing to participate.

        This is Feuilloley's first running-time definition (paper §2): a
        vertex chooses its output after some rounds, may keep transmitting
        and relaying afterwards, but can never change the output.  The
        engine records the commit round separately from the termination
        round; :class:`RunResult.output_metrics` averages commit times.
        A second commit, or committing a different value than eventually
        returned, is an error.
        """
        if self._commit_round is not None:
            raise RuntimeError(f"vertex {self.v} committed its output twice")
        self._commit_round = self._round
        self._commit_value = value
        b = self._bus
        if b is not None:
            b.emit(_CommitEvent(self._round, self.v))

    @property
    def committed(self) -> bool:
        return self._commit_round is not None

    # ------------------------------------------------------------------
    def send(self, u: int, payload: Any) -> None:
        """Send ``payload`` to neighbor ``u``; delivered next round.

        Sending to a non-neighbor is a model violation and raises.  Sends
        to already-terminated neighbors are silently dropped, matching the
        model: a terminated processor performs no further communication.
        """
        if u not in self.neighbor_ids:
            raise ValueError(
                f"vertex {self.v} tried to message non-neighbor {u}: "
                "communication must follow the graph's links"
            )
        if u in self._halted_set:
            return
        b = self._bus
        if b is not None:
            b.emit(_SendEvent(self._round, self.v, u))
        fi = self._faults
        if fi is not None:
            self._route_faulted(u, payload, fi)
            return
        rt = self._router
        if rt is None:
            self._outgoing.append((u, payload))
        else:
            slot = rt.slots_next[u]
            if not slot:
                rt.dirty.append(u)
            slot.append((self.v, payload))
            rt.msgs += 1
        self._sent_round += 1

    def send_many(self, targets: Iterable[int], payload: Any) -> None:
        for u in targets:
            self.send(u, payload)

    def _route_faulted(self, u: int, payload: Any, fi) -> None:
        """Route one logical message to ``u`` through the fault adversary.

        The injector decides the copies (normal, dropped, duplicated,
        delayed); normal copies take the regular wired/unwired path,
        delayed ones go to the injector's hold buffer.  Shared by both
        engines -- this is the route half of the single injection hook.
        """
        for d in fi.fate(self._round, self.v, u):
            if d:
                fi.hold(d, self.v, u, payload)
                self._sent_round += 1
                continue
            rt = self._router
            if rt is None:
                self._outgoing.append((u, payload))
            else:
                slot = rt.slots_next[u]
                if not slot:
                    rt.dirty.append(u)
                slot.append((self.v, payload))
                rt.msgs += 1
            self._sent_round += 1

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every active neighbor."""
        fi = self._faults
        if fi is not None:
            # Canonical neighbor order in BOTH routing regimes: the wired
            # ``_act`` list is reordered by swap-removal, and the fault
            # adversary's event stream and delay-buffer order must not
            # depend on that bookkeeping order (the engines' faulted
            # executions are compared event-for-event).
            halted = self._halted_set
            targets = [u for u in self.neighbors if u not in halted]
            if not targets:
                return
            b = self._bus
            if b is not None:
                # the broadcast *intent*: per-copy deviations are narrated
                # by the injector's fault_* events
                b.emit(_BroadcastEvent(self._round, self.v, len(targets)))
            for u in targets:
                self._route_faulted(u, payload, fi)
            return
        rt = self._router
        if rt is None:
            halted = self._halted_set
            out = self._outgoing
            sent = 0
            for u in self.neighbors:
                if u not in halted:
                    out.append((u, payload))
                    sent += 1
            self._sent_round += sent
            if sent:
                b = self._bus
                if b is not None:
                    b.emit(_BroadcastEvent(self._round, self.v, sent))
            return
        act = self._act
        if not act:
            return
        # One tuple shared across all receivers (tuples are immutable and
        # the per-receiver payload lists are built lazily per receiver),
        # one append per receiver: the broadcast fast path.
        t = (self.v, payload)
        slots = rt.slots_next
        for u in act:
            slots[u].append(t)
        rt.dirty.extend(act)
        k = len(act)
        rt.msgs += k
        self._sent_round += k
        b = self._bus
        if b is not None:
            b.emit(_BroadcastEvent(self._round, self.v, k))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Context(v={self.v}, id={self.id}, round={self._round})"

"""Per-vertex execution context.

A :class:`Context` is the whole world as seen by one processor: its own
identifier, its incident communication links, the messages delivered this
round, the final outputs announced by already-terminated neighbors, and the
common knowledge every vertex starts with (``n``, the arboricity ``a``, the
ID-space bound -- whatever the algorithm driver places in ``config``).

Knowledge model: vertices know their own ID, the IDs at the other end of
their links (``neighbor_ids``, the KT1 assumption the paper's "orient the
edge towards the higher ID immediately upon formation of the H-set" steps
require), and global parameters that are deterministic functions of the
problem instance.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Mapping


class Context:
    """The local state and communication interface of one vertex."""

    __slots__ = (
        "v",
        "id",
        "neighbors",
        "neighbor_ids",
        "n",
        "config",
        "rng",
        "inbox",
        "halted",
        "newly_halted",
        "_round",
        "_outgoing",
        "_halted_set",
        "_commit_round",
        "_commit_value",
        "_neighbor_set",
    )

    def __init__(
        self,
        v: int,
        vid: int,
        neighbors: tuple[int, ...],
        neighbor_ids: Mapping[int, int],
        n: int,
        config: Mapping[str, Any],
        rng: random.Random,
    ) -> None:
        self.v = v
        self.id = vid
        self.neighbors = neighbors
        self.neighbor_ids = dict(neighbor_ids)
        self.n = n
        self.config = config
        self.rng = rng
        #: messages received this round: sender vertex -> payload
        self.inbox: dict[int, Any] = {}
        #: final outputs of terminated neighbors (accumulated)
        self.halted: dict[int, Any] = {}
        #: neighbors whose termination notice arrived this round
        self.newly_halted: frozenset[int] = frozenset()
        self._round = 0
        self._outgoing: list[tuple[int, Any]] = []
        self._halted_set: set[int] = set()
        self._commit_round: int | None = None
        self._commit_value: Any = None
        self._neighbor_set: frozenset[int] = frozenset(neighbors)

    # ------------------------------------------------------------------
    @property
    def round(self) -> int:
        """The current communication round (1-based)."""
        return self._round

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def active_neighbors(self) -> list[int]:
        """Neighbors that have not terminated yet."""
        return [u for u in self.neighbors if u not in self._halted_set]

    def active_degree(self) -> int:
        """The number of not-yet-terminated neighbors."""
        return len(self.neighbors) - len(self._halted_set)

    # ------------------------------------------------------------------
    def commit(self, value: Any) -> None:
        """Fix the final output *now* while continuing to participate.

        This is Feuilloley's first running-time definition (paper §2): a
        vertex chooses its output after some rounds, may keep transmitting
        and relaying afterwards, but can never change the output.  The
        engine records the commit round separately from the termination
        round; :class:`RunResult.output_metrics` averages commit times.
        A second commit, or committing a different value than eventually
        returned, is an error.
        """
        if self._commit_round is not None:
            raise RuntimeError(f"vertex {self.v} committed its output twice")
        self._commit_round = self._round
        self._commit_value = value

    @property
    def committed(self) -> bool:
        return self._commit_round is not None

    # ------------------------------------------------------------------
    def send(self, u: int, payload: Any) -> None:
        """Send ``payload`` to neighbor ``u``; delivered next round.

        Sending to a non-neighbor is a model violation and raises.  Sends
        to already-terminated neighbors are silently dropped, matching the
        model: a terminated processor performs no further communication.
        """
        if u not in self._neighbor_set:
            raise ValueError(
                f"vertex {self.v} tried to message non-neighbor {u}: "
                "communication must follow the graph's links"
            )
        if u not in self._halted_set:
            self._outgoing.append((u, payload))

    def send_many(self, targets: Iterable[int], payload: Any) -> None:
        for u in targets:
            self.send(u, payload)

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every active neighbor."""
        halted = self._halted_set
        out = self._outgoing
        for u in self.neighbors:
            if u not in halted:
                out.append((u, payload))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Context(v={self.v}, id={self.id}, round={self._round})"

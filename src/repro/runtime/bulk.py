"""The columnar bulk engine: vectorized rounds over the CSR view.

The generator engines (:mod:`repro.runtime.network`, the reference
specification) step ``n`` coroutines per round, which caps throughput
around a few million vertex-steps per second and makes n = 10^6 runs --
the scale where Lemma 6.1's decay and Theorem 6.3's O(1) vertex-averaged
bound become visually unambiguous -- impractically slow.  The bulk engine
removes the per-vertex interpreter entirely: algorithm state lives in
numpy columnar arrays indexed by vertex, and one synchronous round is a
handful of vectorized array operations over the graph's cached CSR view
(:meth:`repro.graphs.graph.Graph.csr`).

There is no generic bulk interpreter for arbitrary vertex programs --
vectorization requires knowing the algorithm's data flow -- so bulk
execution is opt-in per algorithm: a driver with a columnar variant
dispatches to it when ``current_engine() == "bulk"``
(:data:`repro.core.bulk.BULK_DRIVERS` is the registry; the zoo mirrors it
via ``AlgorithmSpec.bulk_capable``).  A program without one raises
:class:`BulkUnsupported` instead of silently running on the fast path.

Contract
--------
Bulk drivers are pinned **bit-identical** to the generator engines by the
three-way differential suite (``tests/runtime/test_equivalence.py``):
same outputs, same per-vertex termination rounds, same active trace, same
per-round message totals (program sends minus same-round drops, plus one
halt notice per terminating vertex).  The helpers here centralise the
shared accounting so each driver only supplies its algorithm-specific
array steps.

Tracing granularity caveat
--------------------------
The bulk engine never materialises individual messages, so it cannot emit
per-``send`` events.  Instead :func:`finalize_run` emits one
``round_start`` / ``round_sends`` / ``round_end`` triple per round --
O(rounds) total -- and does so *after* the vectorized execution finishes
(events are derived from the final arrays, not interleaved with the
computation).  :class:`repro.obs.collect.MetricsCollector` accepts this
aggregate granularity; per-vertex ``halt``/``commit`` events are simply
absent from bulk traces.

Fault injection is not supported: the adversary's per-message hooks have
no seam in a vectorized round.  Drivers call :func:`require_no_faults`
so an installed fault session fails loudly rather than being ignored.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Sequence

import numpy as np

import repro.obs as obs
from repro.graphs.graph import Graph
from repro.obs.events import RoundEnd, RoundSends, RoundStart
from repro.runtime.metrics import RoundMetrics
from repro.runtime.network import RunResult


class BulkUnsupported(RuntimeError):
    """The bulk engine cannot run this: no columnar driver, or a feature
    (fault injection, generic programs) the vectorized path lacks."""


#: senders per chunk in the chunked kernels.  Rounds whose sender set
#: exceeds this are processed in cache-sized pieces so the per-round
#: temporaries (gathered rows, liveness masks) stay bounded instead of
#: scaling with the round's total degree — the difference between an
#: n = 10^7 round peaking at ~10 MB of scratch versus ~1 GB.
BULK_CHUNK = 1 << 18


def profiled(phase: str):
    """A profiler section for ``phase``, or a no-op context manager.

    The bulk drivers' analogue of the generator engines' inline
    ``prof.add`` hooks: each driver wraps its vectorized round loop in
    ``with profiled("kernel")`` and :func:`finalize_run` times itself as
    ``"finalize"``.  When no :class:`~repro.obs.profile.PhaseProfiler`
    rides the process bus this returns :func:`~contextlib.nullcontext`
    -- one attribute lookup per *run* (not per round), so the
    telemetry-off path stays inside the null-sink overhead budget.
    """
    bus = obs.current()
    prof = bus.profiler if bus is not None else None
    if prof is None:
        return nullcontext()
    return prof.section(phase)


def resolve_ids(graph: Graph, ids: Sequence[int] | None) -> np.ndarray:
    """Validate an ID assignment exactly like ``SyncNetwork.__init__``.

    Returns the IDs as an int64 column (the bulk engines' native layout).
    """
    n = graph.n
    if ids is None:
        return np.arange(n, dtype=np.int64)
    if len(ids) != n:
        raise ValueError("ID assignment length must equal n")
    if len(set(ids)) != n:
        raise ValueError("IDs must be distinct")
    return np.asarray(list(ids), dtype=np.int64)


def id_space(ids_arr: np.ndarray) -> int:
    """One plus the maximum ID -- ``SyncNetwork.config["id_space"]``."""
    return int(ids_arr.max()) + 1 if ids_arr.size else 1


def require_no_faults(name: str) -> None:
    """Refuse to run under an installed fault session.

    The vectorized rounds have no per-message hook for the adversary, so
    silently ignoring an active :func:`repro.faults.session` would make a
    fault sweep report clean runs that were never actually attacked.
    """
    from repro.faults.plan import current

    if current() is not None:
        raise BulkUnsupported(
            f"bulk driver {name!r} does not support fault injection; "
            "run it on the 'fast' or 'reference' engine, or drop the "
            "fault session"
        )


def gather_rows(
    offsets: np.ndarray, indices: np.ndarray, verts: np.ndarray
) -> np.ndarray:
    """Concatenate the CSR adjacency rows of ``verts`` (with multiplicity).

    The standard row-gather: for each v in ``verts`` the slice
    ``indices[offsets[v]:offsets[v+1]]``, all in one vectorized pass.
    """
    if verts.size == 0:
        return indices[:0]
    starts = offsets[verts]
    counts = offsets[verts + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return indices[:0]
    cum = np.cumsum(counts)
    pos = (
        np.arange(total, dtype=np.int64)
        - np.repeat(cum - counts, counts)
        + np.repeat(starts, counts)
    )
    return indices[pos]


def finalize_run(
    outputs: dict[int, Any],
    term: np.ndarray,
    sent: Sequence[int],
    msgs: Sequence[int],
    receivers: Sequence[int],
    bus=None,
) -> RunResult:
    """Assemble a :class:`RunResult` from a bulk driver's final arrays.

    ``term`` is the per-vertex termination round (int64, all >= 1 for a
    completed run); ``sent`` / ``msgs`` / ``receivers`` are per-round
    totals matching the generator engines' accounting (``msgs`` includes
    the one halt notice per terminating vertex).  The active trace is
    derived from ``term``: n_i = #{v : term(v) >= i}.

    When an event bus is live (explicit ``bus`` or the process-wide
    default), one ``round_start`` / ``round_sends`` / ``round_end``
    triple per round is emitted -- the aggregate tracing granularity.
    """
    with profiled("finalize"):
        return _finalize_run(outputs, term, sent, msgs, receivers, bus)


def _finalize_run(outputs, term, sent, msgs, receivers, bus) -> RunResult:
    n = int(term.size)
    rounds_run = int(term.max()) if n else 0
    halts = (
        np.bincount(term, minlength=rounds_run + 1)[1:]
        if n
        else np.zeros(0, dtype=np.int64)
    )
    active = n - np.concatenate(
        ([0], np.cumsum(halts)[:-1])
    ) if rounds_run else np.zeros(0, dtype=np.int64)
    assert len(sent) == rounds_run and len(msgs) == rounds_run
    assert len(receivers) == rounds_run

    if bus is None:
        bus = obs.current()
    if bus is not None and bus.active:
        for i in range(rounds_run):
            rnd = i + 1
            bus.emit(RoundStart(rnd, int(active[i])))
            if sent[i]:
                bus.emit(RoundSends(rnd, int(sent[i])))
            bus.emit(
                RoundEnd(rnd, int(msgs[i]), int(receivers[i]), int(halts[i]))
            )

    term_t = tuple(int(r) for r in term)
    metrics = RoundMetrics(
        rounds=term_t,
        active_trace=tuple(int(a) for a in active),
        messages_per_round=tuple(int(m) for m in msgs),
    )
    return RunResult(
        outputs=outputs,
        metrics=metrics,
        contexts=(),
        output_rounds=term_t,
        crashed=(),
    )


def bulk_broadcast_kernel(graph: Graph, rounds: int = 10) -> RunResult:
    """Columnar twin of the bench broadcast kernel.

    Every vertex broadcasts a value each round and folds its neighbors'
    previous values into a running sum (the per-round delivery work an
    algorithm would do), runs ``rounds`` rounds, then terminates.  The
    :class:`RunResult` is bit-identical to the generator kernel's:
    ``2m`` routed copies per broadcast round, then ``n`` halt notices,
    outputs all ``None``.
    """
    require_no_faults("bulk_broadcast_kernel")
    n = graph.n
    offsets, indices = graph.csr(dtype="auto")
    deg = (offsets[1:] - offsets[:-1]).astype(np.int64)
    m2 = int(indices.size)
    step = 4 * BULK_CHUNK

    col = np.arange(n, dtype=np.int64)
    acc = np.zeros(n, dtype=np.float64)
    with profiled("kernel"):
        if m2 <= step:
            # single-chunk graphs take the unchunked path with int64 index
            # arrays hoisted out of the loop: bincount and fancy indexing
            # both want intp, and re-casting an int32 edge list every round
            # costs ~40% of the kernel's throughput at bench sizes
            idx = (
                indices
                if indices.dtype == np.int64
                else indices.astype(np.int64)
            )
            dst = np.repeat(np.arange(n, dtype=np.int64), deg)
            for _ in range(rounds):
                # each vertex sums the values its neighbors broadcast
                # last round
                acc += np.bincount(
                    dst, weights=col[idx].astype(np.float64), minlength=n
                )
                col = col + 1
        else:
            # oversized edge lists keep the narrow dtype and pay per-chunk
            # casts so the scratch stays chunk-bounded, not m2-bounded
            dst = np.repeat(np.arange(n, dtype=offsets.dtype), deg)
            for _ in range(rounds):
                for lo in range(0, m2, step):
                    hi = min(lo + step, m2)
                    acc += np.bincount(
                        dst[lo:hi],
                        weights=col[indices[lo:hi]].astype(np.float64),
                        minlength=n,
                    )
                col = col + 1

    term = np.full(n, rounds + 1, dtype=np.int64)
    n_recv = int((deg > 0).sum())
    sent = [m2] * rounds + [0]
    msgs = [m2] * rounds + [n]
    receivers = [n_recv] * rounds + [0]
    outputs: dict[int, Any] = dict.fromkeys(range(n))
    return finalize_run(outputs, term, sent, msgs, receivers)

"""The event-driven asynchronous executor: no global round.

This is the second implementation of the scheduling seam
(:mod:`repro.runtime.scheduler`).  Instead of a global barrier, every
directed edge carries one *token* per sender round: when vertex ``u``
executes its local round ``r`` it emits a round-``r`` token to each
neighbor, carrying that round's payloads (possibly none -- empty tokens
are the synchronizer pulse) and, in ``u``'s final round, its halt notice
and output.  The token arrives after a seeded per-edge delay
(:class:`DelaySpec`), and vertex ``v`` executes its local round ``r``
as soon as the round-``r - 1`` tokens of all neighbors it still expects
one from have arrived.  Execution itself is instantaneous; all time is
communication time.

This is the classic alpha-synchronizer, and it makes the execution
*content-identical* to the synchronous one for every delay model: the
inbox a vertex sees in local round ``r`` contains exactly the messages
its neighbors sent in their local round ``r - 1``, which under the
global barrier is the round-``(r-1) -> r`` delivery.  Outputs, per-vertex
round counts, commit rounds, traffic and active traces are therefore
mode-invariant (``tests/runtime/test_async.py`` pins this); what the
asynchronous mode *adds* is the virtual-time dimension, reported as
:class:`~repro.runtime.metrics.TimeMetrics` on ``RunResult.times`` --
in particular the vertex-averaged normalized output time, the
asynchronous analogue of the paper's vertex-averaged round complexity.

Determinism
-----------
Everything is counter-based: link delays are pure functions of
``(delay seed, src, dst, sender round)``, fault draws reuse the exact
:func:`repro.faults.plan.message_fates` /
:meth:`~repro.faults.plan.CrashSpec.strikes` streams keyed by the
sender's *local* round (in a synchronous execution every active vertex's
local round equals the global round, so the streams coincide), and the
event heap breaks time ties by insertion sequence.  Rerunning with the
same graph, program, seeds and plan replays the identical execution.

Fault semantics carry over unchanged:

* **crash-stop** -- drawn when the vertex becomes ready for the crash
  round; it performs no computation, announces nothing at the *program*
  level, and each neighbor's scheduler learns to stop waiting via a
  crash marker timed like the round-``r`` token the crashed vertex would
  have sent.  The marker is scheduler-internal: programs never observe
  it (no ``ctx.halted`` entry), exactly as under the barrier, where the
  round simply advances past a silent vertex.
* **message faults** -- per-copy drop/duplicate/delay with the sync draw
  stream; a copy delayed by ``d`` joins the receiver's local round
  ``r + 1 + d`` inbox, which is the same round it would join under the
  barrier.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Any, Mapping

from repro.faults.plan import message_fates
from repro.obs.events import (
    Delivery,
    Drop,
    FaultCrash,
    FaultDelay,
    FaultDrop,
    FaultDup,
    Halt,
    RoundEnd,
    RoundStart,
)
from repro.runtime.context import _EMPTY_FROZENSET
from repro.runtime.metrics import RoundMetrics, TimeMetrics

__all__ = ["DELAY_DISTS", "DelaySpec", "run_async"]

#: the supported link-delay distributions
DELAY_DISTS = ("fixed", "uniform", "exp")


@dataclass(frozen=True)
class DelaySpec:
    """Seeded per-edge link-delay model.

    Each directed edge's round-``r`` token is delayed by an independent
    draw keyed ``(seed, src, dst, r)`` -- a pure function, so the delay
    assignment is reproducible and independent of execution order:

    * ``fixed`` -- every delay is exactly ``scale`` (the degenerate
      model; with ``scale = 1`` virtual time reproduces round counts on
      communication-driven chains);
    * ``uniform`` -- uniform on ``[scale/2, 3*scale/2)``;
    * ``exp`` -- exponential with mean ``scale``.

    All three have mean ``scale``, which :class:`~repro.runtime.metrics
    .TimeMetrics` uses to normalize virtual times into round-equivalents.
    """

    dist: str = "fixed"
    scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dist not in DELAY_DISTS:
            raise ValueError(
                f"unknown delay distribution {self.dist!r}; "
                f"expected one of {DELAY_DISTS}"
            )
        if not self.scale > 0.0:
            raise ValueError(f"delay scale must be > 0, got {self.scale}")

    @property
    def mean_delay(self) -> float:
        return self.scale

    def draw(self, src: int, dst: int, rnd: int) -> float:
        """The delay of the round-``rnd`` token on edge ``src -> dst``."""
        if self.dist == "fixed":
            return self.scale
        rng = random.Random(f"{self.seed}:edge:{src}:{dst}:{rnd}")
        if self.dist == "uniform":
            return self.scale * (0.5 + rng.random())
        return rng.expovariate(1.0 / self.scale)

    # -- serialisation (manifests) -------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"dist": self.dist, "scale": self.scale, "seed": self.seed}

    @classmethod
    def from_dict(cls, rec: Mapping[str, Any]) -> "DelaySpec":
        return cls(
            dist=str(rec.get("dist", "fixed")),
            scale=float(rec.get("scale", 1.0)),
            seed=int(rec.get("seed", 0)),
        )

    def describe(self) -> str:
        return f"{self.dist}(scale={self.scale:g}, seed={self.seed})"


# heap entry kinds (the entry layout is (t, seq, kind, ...))
_EXEC = 0    # (t, seq, _EXEC, v, rnd)
_TOKEN = 1   # (t, seq, _TOKEN, src, dst, rnd, payloads, halt, output)
_MARKER = 2  # (t, seq, _MARKER, src, dst, rnd)


def run_async(
    net,
    program,
    max_rounds: int | None = None,
    collect_messages: bool = True,
    bus=None,
    faults=None,
    delays: DelaySpec | None = None,
):
    """Execute ``program`` on ``net`` under the event-queue scheduler.

    Drop-in replacement for :meth:`repro.runtime.network.SyncNetwork.run`
    (the mode seam dispatches here inside ``mode_session("async")``):
    same outputs, rounds, traces and fault semantics, plus virtual-time
    accounting on ``RunResult.times``.  ``delays`` defaults to the
    session's :func:`~repro.runtime.scheduler.current_delays`, falling
    back to the fixed unit-delay model.
    """
    from repro.runtime.network import (
        RoundLimitExceeded,
        RunResult,
        default_max_rounds,
    )
    from repro.runtime.scheduler import current_delays

    if delays is None:
        delays = current_delays()
        if delays is None:
            delays = DelaySpec()
    g = net.graph
    n = g.n
    if max_rounds is None:
        max_rounds = default_max_rounds(n)

    contexts = net.make_contexts()
    gens = net._spawn(program, contexts)
    emit, _prof = net._resolve_bus(bus, contexts)
    injector = net._resolve_faults(faults)

    # The adversary is evaluated through its *pure* draw functions (the
    # sharded-executor pattern): begin_run supplies the session state
    # (crashes from earlier runs, the session round offset), and
    # absorb_rounds at the end folds this run's outcome back in.
    mf = None
    crash_spec = None
    fseed = 0
    base = 0
    if injector is not None:
        pre_crashed = injector.begin_run(None)
        base = injector._round
        fseed = injector.plan.seed
        if injector.messages_active:
            mf = injector.plan.messages
        cs = injector.plan.crashes
        if cs is not None and cs.active:
            crash_spec = cs
    else:
        pre_crashed = frozenset()

    # -- per-vertex execution state ------------------------------------
    outputs: dict[int, Any] = {}
    rounds = [0] * n
    times = [0.0] * n
    commit_t: dict[int, float] = {}
    #: v -> local round in which v halted (graceful termination only)
    halted_at: dict[int, int] = {}
    crashed_now: set[int] = set()
    #: (src, dst) -> the last round for which src will ever emit a token
    #: on that edge (set when dst's scheduler learns of halt/crash)
    last_tok: dict[tuple[int, int], int] = {}
    #: v -> token round -> src -> (arrival t, payloads, halt?, output)
    arrivals: list[dict[int, dict[int, tuple]]] = [{} for _ in range(n)]
    #: v -> due local round -> [(send round, src, seq, payload)] copies
    #: the adversary delayed; they never gate readiness
    delayed_box: list[dict[int, list[tuple]]] = [{} for _ in range(n)]
    #: (dst, send round) -> normally-routed copies addressed to dst; used
    #: to take same-round drops back out of the traffic trace when dst
    #: turns out to halt in that round
    norm_recv: dict[tuple[int, int], int] = {}
    #: send round -> traffic (program copies + halt notices - drops)
    msgs: dict[int, int] = {}
    #: send round -> distinct receivers of normally-routed copies (the
    #: barrier's ``round_end.receivers``; same-round halt drops removed)
    recv_sets: dict[int, set[int]] = {}
    # readiness bookkeeping: while v waits to execute round R it collects
    # round R-1 tokens -- wait_round[v] = R-1, wait_missing[v] the senders
    # still owed, wait_t[v] the latest relevant arrival so far
    wait_missing: list[set[int] | None] = [None] * n
    wait_round = [0] * n
    wait_t = [0.0] * n

    heap: list[tuple] = []
    seq = 0
    max_round_seen = 0

    def push(entry: tuple) -> None:
        nonlocal seq
        heapq.heappush(heap, entry)
        seq += 1

    # Crash-stop persists across runs of one fault session: the already
    # crashed vertices never start, and nobody ever waits on them.
    for v in pre_crashed:
        if v < n and gens[v] is not None:
            gens[v].close()
            gens[v] = None
            for u in g.neighbors(v):
                last_tok[(v, u)] = 0

    def _advance(v: int, nxt: int, t_now: float) -> None:
        """Set up v's wait for local round ``nxt`` (round nxt-1 tokens)."""
        need = nxt - 1
        got = arrivals[v].get(need)
        ready = t_now
        missing: set[int] | None = None
        for u in g.neighbors(v):
            mr = last_tok.get((u, v))
            if mr is not None and mr < need:
                continue  # u's scheduler-visible last token predates need
            tok = got.get(u) if got else None
            if tok is not None:
                if tok[0] > ready:
                    ready = tok[0]
            else:
                if missing is None:
                    missing = set()
                missing.add(u)
        if missing:
            wait_missing[v] = missing
            wait_round[v] = need
            wait_t[v] = ready
        else:
            push((ready, seq, _EXEC, v, nxt))

    def _unblock(dst: int, t: float) -> None:
        """The last awaited token/marker arrived: schedule the execution."""
        wait_missing[dst] = None
        if t > wait_t[dst]:
            wait_t[dst] = t
        push((wait_t[dst], seq, _EXEC, dst, wait_round[dst] + 1))

    def _exec(t: float, v: int, rnd: int) -> None:
        nonlocal max_round_seen
        if rnd > max_rounds:
            active = [u for u in range(n) if gens[u] is not None]
            raise RoundLimitExceeded(max_rounds, active, contexts)
        if rnd > max_round_seen:
            max_round_seen = rnd
        if crash_spec is not None and crash_spec.strikes(fseed, base + rnd, v):
            # Adversary crash at the start of local round rnd: no
            # computation, no announcement.  Each neighbor's scheduler
            # stops waiting via a marker timed like the round-rnd token.
            if emit is not None:
                emit(FaultCrash(rnd, v))
            crashed_now.add(v)
            gens[v].close()
            gens[v] = None
            rounds[v] = rnd - 1
            times[v] = t
            for u in g.neighbors(v):
                push((t + delays.draw(v, u, rnd), seq, _MARKER, v, u, rnd))
            return

        ctx = contexts[v]
        # Assemble the round exactly as the barrier would deliver it:
        # round rnd-1 tokens in ascending sender order (halt notices
        # applied now, round-gated), then adversary-delayed copies due
        # this round in (send round, sender) order.
        inbox: dict[int, list[Any]] = {}
        new_halts: list[int] | None = None
        toks = arrivals[v].pop(rnd - 1, None) if rnd > 1 else None
        if toks:
            for u in sorted(toks):
                _at, payloads, halt, out = toks[u]
                if payloads:
                    inbox[u] = list(payloads)
                if halt:
                    ctx.halted[u] = out
                    ctx._halted_set.add(u)
                    if new_halts is None:
                        new_halts = []
                    new_halts.append(u)
        box = delayed_box[v].pop(rnd, None)
        if box:
            box.sort(key=lambda e: e[:3])
            for _sr, src, _sq, payload in box:
                lst = inbox.get(src)
                if lst is None:
                    inbox[src] = [payload]
                else:
                    lst.append(payload)
        ctx.newly_halted = (
            frozenset(new_halts) if new_halts else _EMPTY_FROZENSET
        )
        ctx.inbox = inbox
        ctx._round = rnd
        ctx._sent_round = 0
        norm_recv.pop((v, rnd - 1), None)  # delivered; no longer droppable

        halted_now = False
        output = None
        try:
            yielded = next(gens[v])
            if yielded is not None:
                raise RuntimeError(
                    f"vertex {v} yielded {yielded!r}; programs must "
                    "use bare `yield` (send via ctx.send/broadcast)"
                )
        except StopIteration as stop:
            if ctx._commit_round is not None:
                if stop.value is not None and stop.value != ctx._commit_value:
                    raise RuntimeError(
                        f"vertex {v} returned {stop.value!r} after "
                        f"committing {ctx._commit_value!r}"
                    )
                outputs[v] = ctx._commit_value
            else:
                outputs[v] = stop.value
            output = outputs[v]
            gens[v] = None
            halted_now = True
        if ctx._commit_round == rnd:
            commit_t[v] = t

        # Route this round's sends through the (pure) fault draws.
        round_msgs = msgs.get(rnd, 0)
        tok_payloads: dict[int, list[Any]] = {}
        out_msgs = ctx._outgoing
        if out_msgs:
            ctx._outgoing = []
            pair_k: dict[int, int] = {}
            hold_seq = 0
            drop_acc: dict[int, int] | None = None
            for u, payload in out_msgs:
                if mf is not None:
                    k = pair_k.get(u, 0)
                    pair_k[u] = k + 1
                    fates = message_fates(mf, fseed, base + rnd, v, u, k)
                    if emit is not None:
                        if not fates:
                            emit(FaultDrop(rnd, v, u))
                        else:
                            if fates[0]:
                                emit(FaultDelay(rnd, v, u, fates[0]))
                            if len(fates) > 1:
                                emit(FaultDup(rnd, v, u))
                else:
                    fates = (0,)
                for d in fates:
                    if d:
                        # Held copies count as their send round's traffic
                        # and join the receiver's round rnd+1+d inbox.
                        round_msgs += 1
                        delayed_box[u].setdefault(rnd + 1 + d, []).append(
                            (rnd, v, hold_seq, payload)
                        )
                        hold_seq += 1
                    elif halted_at.get(u) == rnd:
                        # The receiver terminated in this same local
                        # round: the copy can never be delivered.
                        if drop_acc is None:
                            drop_acc = {}
                        drop_acc[u] = drop_acc.get(u, 0) + 1
                    else:
                        round_msgs += 1
                        key = (u, rnd)
                        norm_recv[key] = norm_recv.get(key, 0) + 1
                        rs = recv_sets.get(rnd)
                        if rs is None:
                            recv_sets[rnd] = {u}
                        else:
                            rs.add(u)
                        lst = tok_payloads.get(u)
                        if lst is None:
                            tok_payloads[u] = [payload]
                        else:
                            lst.append(payload)
            if drop_acc and emit is not None:
                for u, c in drop_acc.items():
                    emit(Drop(rnd, u, c))

        if halted_now:
            rounds[v] = rnd
            times[v] = t
            halted_at[v] = rnd
            round_msgs += 1  # the halt notice, as under the barrier
            c = norm_recv.pop((v, rnd), 0)
            if c:
                # Copies already routed to v this same round by senders
                # that executed earlier in virtual time: drop them.
                round_msgs -= c
                recv_sets[rnd].discard(v)
                if emit is not None:
                    emit(Drop(rnd, v, c))
            if emit is not None:
                emit(Halt(rnd, v))
        msgs[rnd] = round_msgs

        # Emit this round's tokens.  Neighbors v knows have halted need
        # no pulse (they are done); everyone else gets one, carrying the
        # payloads and -- in v's final round -- the halt notice.
        halted_set = ctx._halted_set
        for u in g.neighbors(v):
            if u in halted_set:
                continue
            payloads = tok_payloads.get(u)
            push(
                (
                    t + delays.draw(v, u, rnd),
                    seq,
                    _TOKEN,
                    v,
                    u,
                    rnd,
                    tuple(payloads) if payloads else (),
                    halted_now,
                    output,
                )
            )

        if not halted_now:
            _advance(v, rnd + 1, t)

    def _token(t: float, src: int, dst: int, rnd: int, payloads, halt, out):
        if emit is not None:
            emit(Delivery(rnd, src, dst, t))
        if halt:
            last_tok[(src, dst)] = rnd
        if gens[dst] is None:
            return  # receiver halted or crashed; the token is moot
        arrivals[dst].setdefault(rnd, {})[src] = (t, payloads, halt, out)
        miss = wait_missing[dst]
        if miss is not None and wait_round[dst] == rnd and src in miss:
            miss.discard(src)
            if t > wait_t[dst]:
                wait_t[dst] = t
            if not miss:
                _unblock(dst, t)

    def _marker(t: float, src: int, dst: int, rnd: int) -> None:
        # src crashed at the start of its round rnd: no tokens >= rnd.
        mr = rnd - 1
        prev = last_tok.get((src, dst))
        if prev is None or mr < prev:
            last_tok[(src, dst)] = mr
        if gens[dst] is None:
            return
        miss = wait_missing[dst]
        if miss is not None and wait_round[dst] >= rnd and src in miss:
            miss.discard(src)
            if t > wait_t[dst]:
                wait_t[dst] = t
            if not miss:
                _unblock(dst, t)

    # Bootstrap: every (non-pre-crashed) vertex executes round 1 at t=0,
    # in index order -- nothing to wait for before the first round.
    for v in range(n):
        if gens[v] is not None:
            push((0.0, seq, _EXEC, v, 1))

    while heap:
        entry = heapq.heappop(heap)
        kind = entry[2]
        if kind == _EXEC:
            _exec(entry[0], entry[3], entry[4])
        elif kind == _TOKEN:
            _token(
                entry[0], entry[3], entry[4], entry[5],
                entry[6], entry[7], entry[8],
            )
        else:
            _marker(entry[0], entry[3], entry[4], entry[5])

    # -- result assembly (mirrors SyncBarrierScheduler.finish) ---------
    total_rounds = max(rounds, default=0)
    counts = [0] * (total_rounds + 1)
    for r in rounds:
        if r > 0:
            counts[r] += 1
    active_trace: list[int] = []
    alive = 0
    for r in range(total_rounds, 0, -1):
        alive += counts[r]
        active_trace.append(alive)
    active_trace.reverse()
    msg_trace = (
        tuple(msgs.get(r, 0) for r in range(1, total_rounds + 1))
        if collect_messages
        else ()
    )
    if emit is not None:
        # Synthesize the barrier-equivalent per-round aggregates.  The
        # trace collector keys records by round number, not stream
        # position, so appending them after the event-ordered records
        # gives trace consumers (``repro inspect --diff`` / narrative)
        # the same per-round (active, traffic, halts) surface a
        # synchronous run of the identical content produces.
        halts_per_round = [0] * (total_rounds + 1)
        for r in halted_at.values():
            halts_per_round[r] += 1
        for r in range(1, total_rounds + 1):
            emit(RoundStart(r, active_trace[r - 1]))
            emit(
                RoundEnd(
                    r,
                    msgs.get(r, 0),
                    len(recv_sets.get(r, ())),
                    halts_per_round[r],
                )
            )
    metrics = RoundMetrics(
        rounds=tuple(rounds),
        active_trace=tuple(active_trace),
        messages_per_round=msg_trace,
    )
    output_rounds = tuple(
        ctx._commit_round if ctx._commit_round is not None else rounds[v]
        for v, ctx in enumerate(contexts)
    )
    output_times = tuple(
        commit_t.get(v, times[v]) for v in range(n)
    )
    crashed: tuple[int, ...] = ()
    if injector is not None:
        injector.absorb_rounds(max_round_seen, crashed_now)
        if injector.crashed:
            crashed = tuple(sorted(v for v in injector.crashed if v < n))
    return RunResult(
        outputs=outputs,
        metrics=metrics,
        contexts=tuple(contexts),
        output_rounds=output_rounds,
        crashed=crashed,
        times=TimeMetrics(
            times=tuple(times),
            output_times=output_times,
            mean_delay=delays.mean_delay,
        ),
    )

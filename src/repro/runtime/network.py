"""The synchronous round engine.

Vertex programs are generator coroutines created by a *program factory*
``factory(ctx) -> generator``.  The protocol is:

* Code between two ``yield`` statements is one round of local computation.
  During it the program may read ``ctx.inbox`` (messages delivered this
  round, as ``sender -> list of payloads`` -- several messages to the same
  neighbor in one round are bundled in send order), ``ctx.halted`` /
  ``ctx.newly_halted`` (termination notices), and call ``ctx.send`` /
  ``ctx.broadcast``.
* ``yield`` ends the round; messages sent during round r are delivered at
  the start of round r + 1.
* ``return output`` terminates the vertex.  Its running time r(v) is the
  round in which it returned, and -- per the paper's model -- the final
  output is transmitted once to all neighbors: they observe it in
  ``ctx.halted[v]`` from the next round onward.  Afterwards the vertex
  neither sends nor receives.

The engine advances only active vertices, so the per-round work is
proportional to the number of active vertices -- the same quantity the
vertex-averaged measure sums.  Execution is deterministic given the graph,
the ID assignment, the seed and the program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Generator, Mapping, Sequence

from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.metrics import RoundMetrics

ProgramFactory = Callable[[Context], Generator[None, None, Any]]


@dataclass(frozen=True)
class RunResult:
    """Outputs and round accounting of one execution."""

    outputs: dict[int, Any]
    metrics: RoundMetrics
    contexts: tuple[Context, ...]
    #: per-vertex round at which the output was fixed; equals the
    #: termination round unless the program called ``ctx.commit`` earlier
    #: (Feuilloley's first definition, paper Section 2).
    output_rounds: tuple[int, ...] = ()

    @property
    def vertex_averaged(self) -> float:
        return self.metrics.vertex_averaged

    @property
    def worst_case(self) -> int:
        return self.metrics.worst_case

    @property
    def output_metrics(self) -> RoundMetrics:
        """Round accounting under the output-commit definition."""
        return RoundMetrics(rounds=self.output_rounds or self.metrics.rounds)


class MaxRoundsExceeded(RuntimeError):
    """Raised when an execution fails to terminate within the round budget
    (a liveness bug or an unlucky randomized run)."""


class SyncNetwork:
    """A network of processors over a static communication graph.

    Parameters
    ----------
    graph:
        The communication topology.
    ids:
        The ID assignment I (distinct integers).  Defaults to ``0..n-1``.
    seed:
        Seed for per-vertex random generators (randomized algorithms).
    config:
        Common knowledge shared by all vertices (e.g. ``n``, arboricity
        ``a``, epsilon, palette objects).  ``n`` and ``id_space`` (one plus
        the maximum ID) are always provided.
    """

    def __init__(
        self,
        graph: Graph,
        ids: Sequence[int] | None = None,
        seed: int = 0,
        config: Mapping[str, Any] | None = None,
    ) -> None:
        self.graph = graph
        n = graph.n
        if ids is None:
            ids = list(range(n))
        if len(ids) != n:
            raise ValueError("ID assignment length must equal n")
        if len(set(ids)) != n:
            raise ValueError("IDs must be distinct")
        self.ids = list(ids)
        self.seed = seed
        base = dict(config or {})
        base.setdefault("n", n)
        base.setdefault("id_space", (max(ids) + 1) if n else 1)
        self.config = base

    # ------------------------------------------------------------------
    def make_contexts(self) -> list[Context]:
        g, ids = self.graph, self.ids
        contexts = []
        for v in range(g.n):
            nbrs = g.neighbors(v)
            rng = random.Random(f"{self.seed}:{ids[v]}:seed")
            contexts.append(
                Context(
                    v=v,
                    vid=ids[v],
                    neighbors=nbrs,
                    neighbor_ids={u: ids[u] for u in nbrs},
                    n=g.n,
                    config=self.config,
                    rng=rng,
                )
            )
        return contexts

    def run(
        self,
        program: ProgramFactory,
        max_rounds: int | None = None,
        collect_messages: bool = True,
    ) -> RunResult:
        """Execute ``program`` on every vertex until all terminate."""
        g = self.graph
        n = g.n
        if max_rounds is None:
            max_rounds = 64 * (n.bit_length() + 1) * max(1, n.bit_length()) + 16 * n + 1024

        contexts = self.make_contexts()
        gens: list[Generator[None, None, Any] | None] = []
        for ctx in contexts:
            gen = program(ctx)
            if not hasattr(gen, "send"):
                raise TypeError("program factory must return a generator")
            gens.append(gen)

        outputs: dict[int, Any] = {}
        rounds = [0] * n
        active: list[int] = list(range(n))
        pending: dict[int, dict[int, Any]] = {}
        active_trace: list[int] = []
        msg_trace: list[int] = []
        rnd = 0
        newly_halted: list[tuple[int, Any]] = []

        while active:
            rnd += 1
            if rnd > max_rounds:
                raise MaxRoundsExceeded(
                    f"{len(active)} vertices still active after {max_rounds} rounds"
                )
            active_trace.append(len(active))

            # Deliver termination notices from the previous round.
            if newly_halted:
                notice_for: dict[int, set[int]] = {}
                for v, out in newly_halted:
                    for u in g.neighbors(v):
                        contexts[u].halted[v] = out
                        contexts[u]._halted_set.add(v)
                        notice_for.setdefault(u, set()).add(v)
                for u, vs in notice_for.items():
                    contexts[u].newly_halted = frozenset(vs)
                cleared = set(notice_for)
            else:
                cleared = set()
            newly_halted = []

            msg_count = 0
            next_pending: dict[int, dict[int, Any]] = {}
            still_active: list[int] = []

            for v in active:
                ctx = contexts[v]
                ctx.inbox = pending.get(v, {})
                ctx._round = rnd
                if v not in cleared and ctx.newly_halted:
                    ctx.newly_halted = frozenset()
                try:
                    yielded = next(gens[v])
                    if yielded is not None:
                        raise RuntimeError(
                            f"vertex {v} yielded {yielded!r}; programs must "
                            "use bare `yield` (send via ctx.send/broadcast)"
                        )
                except StopIteration as stop:
                    if ctx._commit_round is not None:
                        if stop.value is not None and stop.value != ctx._commit_value:
                            raise RuntimeError(
                                f"vertex {v} returned {stop.value!r} after "
                                f"committing {ctx._commit_value!r}"
                            )
                        outputs[v] = ctx._commit_value
                    else:
                        outputs[v] = stop.value
                    rounds[v] = rnd
                    gens[v] = None
                    newly_halted.append((v, outputs[v]))
                else:
                    still_active.append(v)
                # Route outgoing messages (terminating vertices may have
                # sent messages in their final round before returning; the
                # model lets the final output travel, so these are dropped
                # in favour of the halted-notice, except explicit sends
                # which we still deliver for generality).
                if ctx._outgoing:
                    for u, payload in ctx._outgoing:
                        box = next_pending.get(u)
                        if box is None:
                            box = next_pending[u] = {}
                        slot = box.get(v)
                        if slot is None:
                            box[v] = [payload]
                        else:
                            slot.append(payload)
                        msg_count += 1
                    ctx._outgoing = []

            if collect_messages:
                msg_trace.append(msg_count + len(newly_halted))
            active = still_active
            pending = next_pending

        metrics = RoundMetrics(
            rounds=tuple(rounds),
            active_trace=tuple(active_trace),
            messages_per_round=tuple(msg_trace),
        )
        output_rounds = tuple(
            ctx._commit_round if ctx._commit_round is not None else rounds[v]
            for v, ctx in enumerate(contexts)
        )
        return RunResult(
            outputs=outputs,
            metrics=metrics,
            contexts=tuple(contexts),
            output_rounds=output_rounds,
        )

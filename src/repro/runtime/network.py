"""The synchronous round engine.

Vertex programs are generator coroutines created by a *program factory*
``factory(ctx) -> generator``.  The protocol is:

* Code between two ``yield`` statements is one round of local computation.
  During it the program may read ``ctx.inbox`` (messages delivered this
  round, as ``sender -> list of payloads`` -- several messages to the same
  neighbor in one round are bundled in send order), ``ctx.halted`` /
  ``ctx.newly_halted`` (termination notices), and call ``ctx.send`` /
  ``ctx.broadcast``.
* ``yield`` ends the round; messages sent during round r are delivered at
  the start of round r + 1.
* ``return output`` terminates the vertex.  Its running time r(v) is the
  round in which it returned, and -- per the paper's model -- the final
  output is transmitted once to all neighbors: they observe it in
  ``ctx.halted[v]`` from the next round onward.  Afterwards the vertex
  neither sends nor receives.

The engine advances only active vertices, so the per-round work is
proportional to the number of active vertices -- the same quantity the
vertex-averaged measure sums.  Execution is deterministic given the graph,
the ID assignment, the seed and the program.

Implementation notes (the fast path)
------------------------------------
This module is the throughput-optimised engine; the module
:mod:`repro.runtime.reference` keeps the original, straightforward
implementation as the executable specification, and the differential suite
in ``tests/runtime/test_equivalence.py`` checks the two produce identical
:class:`RunResult`\\ s.  The fast path:

* iterates adjacency through the graph's cached CSR view
  (:meth:`repro.graphs.graph.Graph.csr` / ``csr_rows``) for halt-notice
  fan-out and broadcast routing;
* routes messages at send time into pooled, double-buffered per-vertex
  mail slots (no per-round dict allocation; inbox dicts are materialised
  lazily only when a program reads ``ctx.inbox``);
* maintains per-vertex active-neighbor lists with O(1) swap-removal so
  ``ctx.broadcast`` never re-filters halted neighbors;
* drops messages addressed to a vertex that terminated in the same round
  at routing time: they can never be delivered (the receiver performs no
  further computation), so they neither linger in the mail buffers nor
  count towards ``messages_per_round``.

Final-round sends are *delivered*: a vertex may ``ctx.send``/``broadcast``
during the round in which it returns, and live neighbors observe those
messages next round alongside the termination notice (the model lets the
final output travel; explicit sends ride the same round-boundary).  The
only messages ever discarded are those *addressed to* a vertex that has
terminated -- either dropped at the sender once the notice has arrived, or
dropped by the engine in the one-round window where sender and receiver
act simultaneously.

Instrumentation
---------------
``run(bus=...)`` (or a process-wide bus installed via
:func:`repro.obs.install`) attaches the :mod:`repro.obs` event layer:
typed round/send/broadcast/commit/halt/drop events to pluggable sinks,
plus per-round ``deliver``/``step``/``route`` wall-clock phases when the
bus carries a :class:`repro.obs.PhaseProfiler`.  Without a live sink the
engine never constructs an event, so the uninstrumented fast path is
unchanged (gated to < 5% overhead by ``repro.bench.baseline``).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Generator, Mapping, Sequence

import repro.obs as obs
from repro.graphs.graph import Graph
from repro.obs.events import Drop
from repro.runtime.context import _EMPTY_FROZENSET, Context, RouterState
from repro.runtime.metrics import RoundMetrics, TimeMetrics
from repro.runtime.scheduler import SyncBarrierScheduler

ProgramFactory = Callable[[Context], Generator[None, None, Any]]

# ---------------------------------------------------------------------------
# engine selection
# ---------------------------------------------------------------------------

#: the selectable round engines: the throughput-optimised fast path, the
#: executable-specification reference implementation, and the columnar
#: bulk engine (numpy arrays over the CSR view; only algorithms with a
#: registered bulk driver can run on it -- see :mod:`repro.runtime.bulk`)
ENGINES = ("fast", "reference", "bulk")

#: process-wide engine override stack (see :func:`engine_session`)
_ENGINE_STACK: list[str] = []


def current_engine() -> str:
    """The engine new :class:`SyncNetwork` runs will use: ``"fast"``
    unless an :func:`engine_session` override is active."""
    return _ENGINE_STACK[-1] if _ENGINE_STACK else "fast"


class engine_session:
    """Context manager selecting the round engine for enclosed runs.

    Drivers construct their networks internally (``SyncNetwork(g, ...)``)
    so callers cannot pass an engine explicitly; this is the same
    process-wide-session seam :func:`repro.obs.session` and
    :func:`repro.faults.session` use.  Inside
    ``engine_session("reference")`` every ``SyncNetwork.run`` executes on
    the reference engine (:class:`repro.runtime.reference
    .ReferenceSyncNetwork`) instead of the fast path; both produce
    bit-identical results (the differential suite pins this), so the
    override changes *how* the rounds are simulated, never what they
    compute.  Sessions nest; the innermost wins.
    """

    def __init__(self, engine: str) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.engine = engine

    def __enter__(self) -> "engine_session":
        _ENGINE_STACK.append(self.engine)
        return self

    def __exit__(self, *exc) -> None:
        _ENGINE_STACK.pop()


@dataclass(frozen=True)
class RunResult:
    """Outputs and round accounting of one execution."""

    outputs: dict[int, Any]
    metrics: RoundMetrics
    contexts: tuple[Context, ...]
    #: per-vertex round at which the output was fixed; equals the
    #: termination round unless the program called ``ctx.commit`` earlier
    #: (Feuilloley's first definition, paper Section 2).
    output_rounds: tuple[int, ...] = ()
    #: vertices crash-stopped by a fault adversary (:mod:`repro.faults`);
    #: they have no entry in ``outputs`` and their ``metrics.rounds`` value
    #: is the number of rounds they were active before crashing.
    crashed: tuple[int, ...] = ()
    #: virtual-time accounting (:class:`~repro.runtime.metrics
    #: .TimeMetrics`); only the asynchronous executor fills this in --
    #: synchronous runs have no per-edge delivery times and leave it None.
    times: "TimeMetrics | None" = None

    @property
    def vertex_averaged(self) -> float:
        return self.metrics.vertex_averaged

    @property
    def worst_case(self) -> int:
        return self.metrics.worst_case

    @property
    def output_metrics(self) -> RoundMetrics:
        """Round accounting under the output-commit definition."""
        return RoundMetrics(rounds=self.output_rounds or self.metrics.rounds)


class MaxRoundsExceeded(RuntimeError):
    """Raised when an execution fails to terminate within the round budget
    (a liveness bug or an unlucky randomized run)."""


class RoundLimitExceeded(MaxRoundsExceeded):
    """The typed watchdog error: the round budget ran out with vertices
    still active.

    Beyond the message, it carries a machine-readable snapshot for the
    fault harness and for debugging: the budget, the still-active
    vertices, and a per-vertex state summary ``(vertex, rounds run,
    active neighbors, halted neighbors, committed?)`` -- enough to see,
    e.g., that every straggler borders a crashed vertex it is waiting on.
    """

    #: vertices listed by name in the message before eliding the rest
    _SHOWN = 12
    #: per-vertex summary tuples materialised at most this many -- a
    #: million-vertex watchdog trip must not build a million 5-tuples
    SUMMARY_CAP = 100_000

    def __init__(
        self,
        limit: int,
        active: Sequence[int],
        contexts: Sequence[Context] | None = None,
    ) -> None:
        self.limit = limit
        self.active = tuple(active)
        self._contexts = contexts
        self._summaries: tuple | None = None
        shown = ", ".join(
            self._describe(v) for v in self.active[: self._SHOWN]
        )
        more = (
            "" if len(self.active) <= self._SHOWN
            else f", ... {len(self.active) - self._SHOWN} more"
        )
        super().__init__(
            f"{len(self.active)} vertices still active after {limit} "
            f"rounds: {shown}{more}"
        )

    def _summarize(self, v: int) -> tuple:
        if self._contexts is None:
            # bulk engine: no per-vertex Context objects exist
            return (v, self.limit, None, None, None)
        ctx = self._contexts[v]
        return (
            v,
            ctx.round,
            ctx.active_degree(),
            len(ctx.halted),
            ctx.committed,
        )

    def _describe(self, v: int) -> str:
        v, r, ad, h, c = self._summarize(v)
        if ad is None:
            return f"v{v}"
        return (
            f"v{v} (round {r}, {ad} active / {h} halted nbrs"
            + (", committed)" if c else ")")
        )

    @property
    def summaries(self) -> tuple:
        """Per-vertex ``(vertex, rounds run, active nbrs, halted nbrs,
        committed?)`` snapshots, built lazily on first access and capped
        at :attr:`SUMMARY_CAP` entries (the message alone never costs
        more than :attr:`_SHOWN` summaries)."""
        if self._summaries is None:
            self._summaries = tuple(
                self._summarize(v) for v in self.active[: self.SUMMARY_CAP]
            )
        return self._summaries


def default_max_rounds(n: int) -> int:
    """The default liveness budget for an ``n``-vertex execution.

    Audited for n >= 10^6: the linear ``16 n`` term is deliberate -- wave
    programs (e.g. path broadcast) legitimately run Theta(n) rounds -- so
    at a million vertices the budget is ~1.6e7 *rounds*, not work; the
    watchdog comparison is one integer check per round.  What must stay
    cheap at that scale is the failure path: :class:`RoundLimitExceeded`
    formats only :attr:`~RoundLimitExceeded._SHOWN` vertices eagerly and
    builds its per-vertex summaries lazily (capped), so a watchdog trip
    with 10^6 stragglers does not materialise O(n) strings.
    """
    return 64 * (n.bit_length() + 1) * max(1, n.bit_length()) + 16 * n + 1024


class SyncNetwork:
    """A network of processors over a static communication graph.

    Parameters
    ----------
    graph:
        The communication topology.
    ids:
        The ID assignment I (distinct integers).  Defaults to ``0..n-1``.
    seed:
        Seed for per-vertex random generators (randomized algorithms).
    config:
        Common knowledge shared by all vertices (e.g. ``n``, arboricity
        ``a``, epsilon, palette objects).  ``n`` and ``id_space`` (one plus
        the maximum ID) are always provided.
    """

    def __init__(
        self,
        graph: Graph,
        ids: Sequence[int] | None = None,
        seed: int = 0,
        config: Mapping[str, Any] | None = None,
    ) -> None:
        self.graph = graph
        n = graph.n
        if ids is None:
            ids = list(range(n))
        if len(ids) != n:
            raise ValueError("ID assignment length must equal n")
        if len(set(ids)) != n:
            raise ValueError("IDs must be distinct")
        self.ids = list(ids)
        self.seed = seed
        base = dict(config or {})
        base.setdefault("n", n)
        base.setdefault("id_space", (max(ids) + 1) if n else 1)
        self.config = base

    # ------------------------------------------------------------------
    def make_contexts(self) -> list[Context]:
        g, ids, seed, config = self.graph, self.ids, self.seed, self.config
        n = g.n
        contexts = []
        for v in range(n):
            nbrs = g.neighbors(v)
            vid = ids[v]
            contexts.append(
                Context(
                    v=v,
                    vid=vid,
                    neighbors=nbrs,
                    neighbor_ids={u: ids[u] for u in nbrs},
                    n=n,
                    config=config,
                    # materialised lazily by ctx.rng on first use
                    rng=f"{seed}:{vid}:seed",
                )
            )
        return contexts

    def _spawn(
        self, program: ProgramFactory, contexts: list[Context]
    ) -> list[Generator[None, None, Any] | None]:
        gens: list[Generator[None, None, Any] | None] = []
        for ctx in contexts:
            gen = program(ctx)
            if not hasattr(gen, "send"):
                raise TypeError("program factory must return a generator")
            gens.append(gen)
        return gens

    @staticmethod
    def _resolve_bus(bus, contexts: list[Context]):
        """Resolve instrumentation for one run: ``(emit, profiler)``.

        ``bus=None`` falls back to the process-wide default installed via
        :func:`repro.obs.install` (usually absent).  Contexts are wired to
        the bus -- making ``send``/``broadcast``/``commit`` emit events --
        only when some sink is live, so a bus holding only a ``NullSink``
        leaves the whole event path disabled and costs one branch per
        engine section.  The profiler rides along independently.
        """
        if bus is None:
            bus = obs.current()
        if bus is None:
            return None, None
        emit = None
        if bus.active:
            emit = bus.emit
            for ctx in contexts:
                ctx._bus = bus
        return emit, bus.profiler

    @staticmethod
    def _resolve_faults(faults):
        """Resolve the fault adversary for one run: a live injector or None.

        ``faults=None`` falls back to the process-wide default installed
        via :func:`repro.faults.session` (usually absent); a
        :class:`~repro.faults.FaultPlan` compiles into a fresh injector
        (so every run replays the plan from round 1); an injector is used
        as-is (its crash/round state persists across runs -- the session
        semantics multi-phase drivers need).
        """
        if faults is None:
            from repro.faults.plan import current

            return current()
        from repro.faults.plan import FaultPlan

        if isinstance(faults, FaultPlan):
            return None if faults.empty else faults.injector()
        return faults

    def run(
        self,
        program: ProgramFactory,
        max_rounds: int | None = None,
        collect_messages: bool = True,
        bus=None,
        faults=None,
    ) -> RunResult:
        """Execute ``program`` on every vertex until all terminate.

        ``bus`` optionally attaches a :class:`repro.obs.EventBus`; when
        omitted the process-wide default (``repro.obs.install``) is used,
        and when neither exists the run is entirely uninstrumented.
        ``faults`` optionally attaches a fault adversary
        (:class:`repro.faults.FaultPlan` or a live injector); when omitted
        the process-wide default (``repro.faults.session``) is used, and
        when neither exists the run is entirely fault-free.

        An active :func:`engine_session` override redirects the run to
        the selected engine (``ReferenceSyncNetwork`` only overrides
        ``run``, so invoking its implementation on this instance is the
        whole delegation).
        """
        if type(self) is SyncNetwork:
            from repro.runtime.scheduler import current_mode

            if current_mode() == "async":
                # The event-queue scheduler replaces the global-round
                # barrier entirely; engine selection does not apply (the
                # async executor has exactly one implementation).
                from repro.runtime.async_sched import run_async

                return run_async(
                    self, program, max_rounds, collect_messages, bus, faults
                )
            eng = current_engine()
            if eng == "reference":
                from repro.runtime.reference import ReferenceSyncNetwork

                return ReferenceSyncNetwork.run(
                    self, program, max_rounds, collect_messages, bus, faults
                )
            if eng == "bulk":
                # The bulk engine does not step generator programs at all:
                # algorithms opt in by dispatching to a columnar driver
                # (repro.core.bulk) *before* constructing a network.  A
                # run reaching this point has no such driver.
                from repro.runtime.bulk import BulkUnsupported

                raise BulkUnsupported(
                    "engine_session('bulk') is active but this program has "
                    "no columnar driver; bulk execution is only available "
                    "for algorithms with a registered bulk driver "
                    "(repro.core.bulk.BULK_DRIVERS)"
                )
        g = self.graph
        n = g.n
        if max_rounds is None:
            max_rounds = default_max_rounds(n)

        contexts = self.make_contexts()
        gens = self._spawn(program, contexts)
        rows = g.csr_rows()
        emit, prof = self._resolve_bus(bus, contexts)
        injector = self._resolve_faults(faults)

        # Wire every context into the shared routing state: sends and
        # broadcasts deliver straight into the pooled mail slots below.
        router = RouterState()
        for v, ctx in enumerate(contexts):
            ctx._router = router
            # shared CSR row; copied on first halted-neighbor removal
            ctx._act = rows[v]

        slots_cur: list[list[tuple[int, Any]]] = [[] for _ in range(n)]
        slots_next: list[list[tuple[int, Any]]] = [[] for _ in range(n)]
        dirty_cur: list[int] = []
        dirty_next: list[int] = []
        router.slots_next = slots_next
        router.dirty = dirty_next

        # The barrier scheduler owns the round progression: crash
        # application, watchdog, active/message traces, halt bookkeeping.
        # This engine supplies only the mail mechanics (pooled slots).
        sched = SyncBarrierScheduler(
            contexts, gens, max_rounds, emit, injector, collect_messages
        )
        sched.begin_run()

        while True:
            nxt = sched.next_round()
            if nxt is None:
                break
            rnd, due, halted = nxt
            # Delayed copies due now join this round's mail.
            for src, dst, payload in due:
                slots_cur[dst].append((src, payload))
                dirty_cur.append(dst)
            if prof is not None:
                _t0 = perf_counter()

            # Deliver termination notices from the previous round (fan-out
            # over the terminated vertices' CSR rows).
            if halted:
                notice_for: dict[int, set[int]] = {}
                for v, out in halted:
                    for u in rows[v]:
                        cu = contexts[u]
                        cu.halted[v] = out
                        cu._halted_set.add(v)
                        if gens[u] is None:
                            continue
                        s = notice_for.get(u)
                        if s is None:
                            notice_for[u] = {v}
                        else:
                            s.add(v)
                        # O(1) swap-removal of v from u's active-neighbor
                        # list (copy-on-write off the shared CSR row).
                        pos = cu._act_pos
                        act = cu._act
                        if pos is None:
                            act = cu._act = list(act)
                            pos = cu._act_pos = {
                                w: i for i, w in enumerate(act)
                            }
                        i = pos.pop(v)
                        last = act.pop()
                        if last != v:
                            act[i] = last
                            pos[last] = i
                for u, vs in notice_for.items():
                    contexts[u].newly_halted = frozenset(vs)
                cleared: set[int] | tuple = set(notice_for)
            else:
                cleared = ()

            if prof is not None:
                _t1 = perf_counter()
                prof.add("deliver", _t1 - _t0)
                _t0 = _t1

            still_active: list[int] = []
            for v in sched.active:
                ctx = contexts[v]
                ctx._mail = slots_cur[v]
                ctx._inbox_d = None
                ctx._round = rnd
                ctx._sent_round = 0
                if ctx.newly_halted and v not in cleared:
                    ctx.newly_halted = _EMPTY_FROZENSET
                if sched.step_vertex(v):
                    still_active.append(v)

            if prof is not None:
                _t1 = perf_counter()
                prof.add("step", _t1 - _t0)
                _t0 = _t1

            # Messages routed this round to a receiver that terminated this
            # same round can never be delivered: drop them and take them
            # out of the message count (their senders could not yet know).
            if sched.newly_halted:
                for v, _ in sched.newly_halted:
                    slot = slots_next[v]
                    if slot:
                        router.msgs -= len(slot)
                        if emit is not None:
                            emit(Drop(rnd, v, len(slot)))
                        slot.clear()

            sched.end_round(
                router.msgs, len({u for u in dirty_next if slots_next[u]})
            )
            router.msgs = 0
            sched.active = still_active

            # Rotate the pooled mail buffers: clear the slots read this
            # round (dirty_cur may contain duplicates; clearing twice is
            # harmless) and swap current/next.
            for u in dirty_cur:
                slots_cur[u].clear()
            dirty_cur.clear()
            slots_cur, slots_next = slots_next, slots_cur
            dirty_cur, dirty_next = dirty_next, dirty_cur
            router.slots_next = slots_next
            router.dirty = dirty_next
            if prof is not None:
                prof.add("route", perf_counter() - _t0)

        return sched.finish()

"""Sharded single-run BSP execution over shared-memory CSR.

The LOCAL model's synchronous round is a textbook BSP superstep, and the
columnar bulk engine (:mod:`repro.runtime.bulk`) already expresses one
round as a handful of array passes.  This module splits *one* such run
across worker processes:

* the vertex set is cut into **contiguous CSR ranges** by a pluggable
  partitioner (:data:`repro.graphs.graph.PARTITIONERS`; ``"range"``
  balances vertices, ``"edge"`` balances adjacency mass) — contiguity is
  load-bearing, because concatenating per-shard ``np.flatnonzero``
  results in shard order reproduces the global vertex order the
  unsharded drivers emit;
* the CSR arrays and all cross-shard algorithm state are published once
  via :mod:`multiprocessing.shared_memory`, so workers map them
  **zero-copy** — nothing graph-sized is ever pickled;
* each worker runs its shard's columnar per-round kernel, following an
  **owner-computes** discipline: a worker writes only its own vertex
  slice but may read any vertex's state.  Cross-shard "messages" are
  therefore pull-based reads of neighbor state after a round barrier —
  the only data crossing process boundaries at the barrier are the few
  ``int64`` words of an allreduce (per-round message totals, halts,
  active counts) in a double-buffered scratch array;
* the parent merges the per-round totals, per-vertex termination rounds
  and crash records and feeds them through the same
  :func:`repro.runtime.bulk.finalize_run` accounting, so outputs,
  metrics and aggregate trace events are **bit-identical** to the
  unsharded bulk engine for any shard count (the equivalence matrix in
  ``tests/runtime/test_shard.py`` pins this).

Fault injection under sharding reuses the fault layer's counter-based
draws (:meth:`repro.faults.plan.CrashSpec.strikes`,
:func:`repro.faults.plan.drop_fate`): every decision is a pure function
of ``(seed, round, vertex)`` or ``(seed, round, src, dst, k)``, so the
injected stream is invariant under the shard count by construction.

Synchronisation protocol
------------------------
One :class:`multiprocessing.Barrier` over all shards.  The allreduce
writes each shard's row of a ``(2, shards, K)`` scratch array, waits on
the barrier once, then sums the column; buffers alternate by step parity
so a fast worker entering allreduce ``s+1`` cannot clobber a slow
worker's unread sums from step ``s`` (it writes the *other* buffer, and
cannot reach step ``s+2`` — which reuses the first — before everyone
passed the barrier of step ``s+1``, i.e. finished reading step ``s``).
Plain state barriers rely on the same argument: writes to a shared array
happen-before the barrier, reads after it.

Lifecycle: the parent creates and unlinks every shared segment; workers
attach and close.  Worker failure aborts the barrier so the remaining
shards fail fast instead of deadlocking.
"""

from __future__ import annotations

import multiprocessing as mp
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from time import perf_counter
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.runtime.bulk import BulkUnsupported

#: seconds a shard waits at a barrier before declaring the run wedged
BARRIER_TIMEOUT = 600.0

#: int64 lanes in the allreduce scratch row (widest per-round reduction)
_SCRATCH_LANES = 12

#: per-worker phases of the cross-process profiler, in timing-block lane
#: order: kernel compute (wall minus waits), barrier wait, allreduce
#: (write + barrier + column sum), shared-memory attach on the worker
#: side of publish.  When a :class:`~repro.obs.profile.PhaseProfiler`
#: rides the session bus, :func:`run_sharded` publishes a ``__times__``
#: block of shape ``(2, shards, len(SHARD_PHASES))`` float64 (seconds
#: row 0, hit counts row 1); each worker fills its own column slice and
#: the parent merges them via ``PhaseProfiler.record_shard``.
SHARD_PHASES = ("compute", "barrier", "allreduce", "publish")

_TIMES_KEY = "__times__"


class ShardError(RuntimeError):
    """A worker process died or the shard protocol broke."""


# ---------------------------------------------------------------------------
# Session (mirrors repro.runtime.network.engine_session)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSession:
    """An active sharding request: shard count + partitioner name."""

    shards: int
    partitioner: str = "range"


_session: ShardSession | None = None


def current_shards() -> ShardSession | None:
    """The active :class:`ShardSession`, or ``None`` (unsharded)."""
    return _session


@contextmanager
def shard_session(shards: int, partitioner: str = "range") -> Iterator[ShardSession]:
    """Run every bulk-engine driver in the ``with`` body sharded.

    Composes with ``engine_session("bulk")``: the bulk dispatch seam in
    each driver checks for an active shard session and routes to the
    sharded twin (:data:`repro.core.shard.SHARD_DRIVERS`).  ``shards=1``
    still exercises the full executor (partition, shared memory, worker
    process, barriers) — useful as the degenerate equivalence case.
    """
    from repro.graphs.graph import PARTITIONERS

    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    if partitioner not in PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {partitioner!r}; expected one of "
            f"{sorted(PARTITIONERS)}"
        )
    global _session
    previous = _session
    _session = ShardSession(shards, partitioner)
    try:
        yield _session
    finally:
        _session = previous


def resolve_bounds(graph, session: ShardSession) -> list[int]:
    """Partition ``graph`` per the session: ``shards + 1`` vertex bounds."""
    from repro.graphs.graph import PARTITIONERS

    return PARTITIONERS[session.partitioner](graph, session.shards)


# ---------------------------------------------------------------------------
# Shared-memory arrays
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedSpec:
    """Everything a worker needs to re-map one shared array (picklable)."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedArrays:
    """Parent-side registry of shared-memory numpy arrays.

    ``publish`` copies an array into a fresh segment (or zero-fills one
    of the given shape); :meth:`specs` is the picklable handle set passed
    to workers; :meth:`cleanup` closes **and unlinks** every segment —
    the parent owns the lifecycle, workers merely attach/close.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self.views: dict[str, np.ndarray] = {}
        self._specs: dict[str, SharedSpec] = {}

    def publish(
        self,
        key: str,
        arr: np.ndarray | None = None,
        *,
        shape: tuple[int, ...] | None = None,
        dtype=None,
    ) -> np.ndarray:
        if arr is not None:
            shape, dtype = arr.shape, arr.dtype
        dt = np.dtype(dtype)
        nbytes = max(int(np.prod(shape)) * dt.itemsize, 1)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._segments.append(shm)
        view = np.ndarray(shape, dtype=dt, buffer=shm.buf)
        if arr is not None:
            view[...] = arr
        else:
            view[...] = 0
        self.views[key] = view
        self._specs[key] = SharedSpec(shm.name, tuple(shape), dt.str)
        return view

    def specs(self) -> dict[str, SharedSpec]:
        return dict(self._specs)

    def cleanup(self) -> None:
        # Drop array views before closing the buffers they alias.
        self.views.clear()
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double cleanup
                pass
        self._segments.clear()


def attach_shared(
    specs: dict[str, SharedSpec],
) -> tuple[dict[str, np.ndarray], list[shared_memory.SharedMemory]]:
    """Worker-side: map every published segment; returns (views, handles)."""
    views: dict[str, np.ndarray] = {}
    handles: list[shared_memory.SharedMemory] = []
    for key, spec in specs.items():
        shm = shared_memory.SharedMemory(name=spec.name)
        handles.append(shm)
        views[key] = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return views, handles


# ---------------------------------------------------------------------------
# Barrier + allreduce
# ---------------------------------------------------------------------------


class ShardComm:
    """One shard's handle on the round-barrier protocol.

    With ``timed=True`` (a profiler rides the session), every barrier
    wait and allreduce accumulates into :attr:`phase_seconds` /
    :attr:`phase_counts` — two dict lookups and two ``perf_counter``
    calls per synchronisation, on a path that already pays a
    cross-process barrier, so the probe cost is noise.
    """

    def __init__(
        self,
        barrier,
        scratch: np.ndarray,
        idx: int,
        shards: int,
        timed: bool = False,
    ) -> None:
        self.barrier = barrier
        self.scratch = scratch  # (2, shards, _SCRATCH_LANES) int64
        self.idx = idx
        self.shards = shards
        self._step = 0
        self.timed = timed
        self.phase_seconds = {"barrier": 0.0, "allreduce": 0.0}
        self.phase_counts = {"barrier": 0, "allreduce": 0}

    def sync(self) -> None:
        """A plain state barrier: all prior shared writes become readable."""
        if not self.timed:
            self.barrier.wait(timeout=BARRIER_TIMEOUT)
            return
        t0 = perf_counter()
        self.barrier.wait(timeout=BARRIER_TIMEOUT)
        self.phase_seconds["barrier"] += perf_counter() - t0
        self.phase_counts["barrier"] += 1

    def allreduce(self, *values: int) -> tuple[int, ...]:
        """Sum each value across shards; one barrier, parity-buffered."""
        t0 = perf_counter() if self.timed else 0.0
        buf = self.scratch[self._step & 1]
        self._step += 1
        buf[self.idx, : len(values)] = values
        self.barrier.wait(timeout=BARRIER_TIMEOUT)
        out = tuple(int(x) for x in buf[:, : len(values)].sum(axis=0))
        if self.timed:
            self.phase_seconds["allreduce"] += perf_counter() - t0
            self.phase_counts["allreduce"] += 1
        return out


# ---------------------------------------------------------------------------
# Worker harness
# ---------------------------------------------------------------------------


@dataclass
class ShardTask:
    """Everything a shard worker kernel receives."""

    idx: int
    lo: int
    hi: int
    bounds: list[int]
    comm: ShardComm
    views: dict[str, np.ndarray]
    params: dict[str, Any]


def _worker_main(kernel_name, idx, bounds, specs, params, barrier, queue) -> None:
    """Top-level (spawn-safe) worker entry: attach, run the kernel, report."""
    from repro.core.shard import SHARD_KERNELS

    handles: list[shared_memory.SharedMemory] = []
    try:
        t_attach0 = perf_counter()
        views, handles = attach_shared(specs)
        t_attach = perf_counter() - t_attach0
        timed = _TIMES_KEY in views
        comm = ShardComm(
            barrier, views["__scratch__"], idx, len(bounds) - 1, timed=timed
        )
        task = ShardTask(
            idx=idx,
            lo=bounds[idx],
            hi=bounds[idx + 1],
            bounds=bounds,
            comm=comm,
            views=views,
            params=params,
        )
        t_kernel0 = perf_counter()
        payload = SHARD_KERNELS[kernel_name](task)
        t_kernel = perf_counter() - t_kernel0
        if timed:
            # compute = kernel wall minus time provably spent waiting or
            # reducing; clamped at 0 against clock jitter.  Written
            # before the queue put, so the parent's post-collect read
            # happens-after.
            waits = comm.phase_seconds["barrier"]
            reduces = comm.phase_seconds["allreduce"]
            tb = views[_TIMES_KEY]
            tb[0, idx] = (
                max(t_kernel - waits - reduces, 0.0),
                waits,
                reduces,
                t_attach,
            )
            tb[1, idx] = (
                1,
                comm.phase_counts["barrier"],
                comm.phase_counts["allreduce"],
                1,
            )
        queue.put((idx, "ok", payload))
    except Exception:  # noqa: BLE001 - relayed to the parent verbatim
        import traceback

        barrier.abort()
        queue.put((idx, "error", traceback.format_exc()))
    finally:
        for shm in handles:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass


def run_sharded(
    kernel_name: str,
    bounds: Sequence[int],
    shared: SharedArrays,
    params: dict[str, Any],
) -> list[Any]:
    """Execute one sharded kernel across worker processes.

    Publishes the allreduce scratch, spawns ``len(bounds) - 1`` workers
    running ``SHARD_KERNELS[kernel_name]``, and returns their payloads in
    shard order.  Raises :class:`ShardError` carrying the first worker
    traceback on failure.  The caller owns ``shared`` and must call
    ``cleanup()`` (typically via ``try/finally``) after consuming any
    result arrays.
    """
    import repro.obs as obs

    shards = len(bounds) - 1
    ctx = mp.get_context(
        "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    )
    shared.publish(
        "__scratch__", shape=(2, shards, _SCRATCH_LANES), dtype=np.int64
    )
    bus = obs.current()
    profiler = bus.profiler if bus is not None else None
    if profiler is not None:
        # per-worker timing slots; presence of this key is also the
        # worker-side signal to enable its probes (no object crosses the
        # process boundary, only the shared block)
        shared.publish(
            _TIMES_KEY, shape=(2, shards, len(SHARD_PHASES)), dtype=np.float64
        )
    barrier = ctx.Barrier(shards)
    queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(kernel_name, i, list(bounds), shared.specs(), params, barrier, queue),
            daemon=True,
        )
        for i in range(shards)
    ]
    for p in procs:
        p.start()
    payloads: dict[int, Any] = {}
    errors: dict[int, str] = {}
    try:
        for _ in range(shards):
            try:
                idx, status, payload = queue.get(timeout=BARRIER_TIMEOUT)
            except Exception:  # queue.Empty or a dead pipe
                barrier.abort()
                raise ShardError(
                    f"sharded run {kernel_name!r}: worker result missing "
                    f"(got {len(payloads)}/{shards}); a worker likely died"
                ) from None
            if status == "ok":
                payloads[idx] = payload
            else:
                errors[idx] = payload
    finally:
        for p in procs:
            p.join(timeout=30)
        for p in procs:
            if p.is_alive():  # pragma: no cover - wedged worker
                p.terminate()
                p.join(timeout=10)
    if errors:
        idx = min(errors)
        raise ShardError(
            f"sharded run {kernel_name!r}: shard {idx}/{shards} failed:\n"
            f"{errors[idx]}"
        )
    if profiler is not None:
        times = shared.views[_TIMES_KEY]
        for i in range(shards):
            for lane, phase in enumerate(SHARD_PHASES):
                profiler.record_shard(
                    i, phase, float(times[0, i, lane]), int(times[1, i, lane])
                )
    return [payloads[i] for i in range(shards)]


# ---------------------------------------------------------------------------
# Crash-aware finalize (the faulted sibling of bulk.finalize_run)
# ---------------------------------------------------------------------------


def finalize_faulted_run(
    outputs: dict[int, Any],
    term: np.ndarray,
    crash_rounds: dict[int, int],
    pre_crashed: Sequence[int],
    sent: Sequence[int],
    msgs: Sequence[int],
    receivers: Sequence[int],
    crashed_all: Sequence[int],
    bus=None,
):
    """Assemble a :class:`RunResult` for a crash-faulted sharded run.

    ``term`` holds termination rounds (0 for crashed vertices);
    ``crash_rounds`` maps each newly-crashed vertex to the round whose
    start it crashed at (its metrics round is that minus one, exactly the
    fast engine's accounting); ``pre_crashed`` are vertices already dead
    from an earlier run in the fault session (metrics round 0, no event).
    The recorded round count is ``len(sent)`` — a final round in which
    every remaining vertex crashed is *unrecorded*, mirroring the fast
    engine's break-before-trace, but its ``fault_crash`` events are still
    emitted after the last ``round_end``.
    """
    import repro.obs as obs
    from repro.obs.events import FaultCrash, RoundEnd, RoundSends, RoundStart
    from repro.runtime.metrics import RoundMetrics
    from repro.runtime.network import RunResult

    n = int(term.size)
    rounds_run = len(sent)
    assert len(msgs) == rounds_run and len(receivers) == rounds_run

    rounds_arr = term.copy()
    for v, c in crash_rounds.items():
        rounds_arr[v] = c - 1
    for v in pre_crashed:
        rounds_arr[v] = 0

    halts = np.bincount(
        term[term > 0], minlength=rounds_run + 2
    ) if n else np.zeros(rounds_run + 2, dtype=np.int64)
    # n_i = live vertices entering round i: uncrashed with term >= i plus
    # crashed vertices that only crash at a later round's start.
    active = np.zeros(rounds_run, dtype=np.int64)
    if n:
        for i in range(rounds_run):
            rnd = i + 1
            active[i] = int((term >= rnd).sum()) + sum(
                1 for c in crash_rounds.values() if c > rnd
            )

    crashes_by_round: dict[int, list[int]] = {}
    for v, c in sorted(crash_rounds.items()):
        crashes_by_round.setdefault(c, []).append(v)

    if bus is None:
        bus = obs.current()
    if bus is not None and bus.active:
        for i in range(rounds_run):
            rnd = i + 1
            for v in crashes_by_round.get(rnd, ()):
                bus.emit(FaultCrash(rnd, v))
            bus.emit(RoundStart(rnd, int(active[i])))
            if sent[i]:
                bus.emit(RoundSends(rnd, int(sent[i])))
            bus.emit(
                RoundEnd(rnd, int(msgs[i]), int(receivers[i]), int(halts[rnd]))
            )
        # crashes that emptied the network in the unrecorded final round
        for v in crashes_by_round.get(rounds_run + 1, ()):
            bus.emit(FaultCrash(rounds_run + 1, v))

    rounds_t = tuple(int(r) for r in rounds_arr)
    metrics = RoundMetrics(
        rounds=rounds_t,
        active_trace=tuple(int(a) for a in active),
        messages_per_round=tuple(int(m) for m in msgs),
    )
    return RunResult(
        outputs=outputs,
        metrics=metrics,
        contexts=(),
        output_rounds=rounds_t,
        crashed=tuple(sorted(crashed_all)),
    )

"""Sharded single-run BSP execution over shared-memory CSR.

The LOCAL model's synchronous round is a textbook BSP superstep, and the
columnar bulk engine (:mod:`repro.runtime.bulk`) already expresses one
round as a handful of array passes.  This module splits *one* such run
across worker processes:

* the vertex set is cut into **contiguous CSR ranges** by a pluggable
  partitioner (:data:`repro.graphs.graph.PARTITIONERS`; ``"range"``
  balances vertices, ``"edge"`` balances adjacency mass) — contiguity is
  load-bearing, because concatenating per-shard ``np.flatnonzero``
  results in shard order reproduces the global vertex order the
  unsharded drivers emit;
* the CSR arrays and all cross-shard algorithm state are published once
  via :mod:`multiprocessing.shared_memory`, so workers map them
  **zero-copy** — nothing graph-sized is ever pickled;
* each worker runs its shard's columnar per-round kernel, following an
  **owner-computes** discipline: a worker writes only its own vertex
  slice but may read any vertex's state.  Cross-shard "messages" are
  therefore pull-based reads of neighbor state after a round barrier —
  the only data crossing process boundaries at the barrier are the few
  ``int64`` words of an allreduce (per-round message totals, halts,
  active counts) in a double-buffered scratch array;
* the parent merges the per-round totals, per-vertex termination rounds
  and crash records and feeds them through the same
  :func:`repro.runtime.bulk.finalize_run` accounting, so outputs,
  metrics and aggregate trace events are **bit-identical** to the
  unsharded bulk engine for any shard count (the equivalence matrix in
  ``tests/runtime/test_shard.py`` pins this).

Fault injection under sharding reuses the fault layer's counter-based
draws (:meth:`repro.faults.plan.CrashSpec.strikes`,
:func:`repro.faults.plan.drop_fate`): every decision is a pure function
of ``(seed, round, vertex)`` or ``(seed, round, src, dst, k)``, so the
injected stream is invariant under the shard count by construction.

Synchronisation protocol
------------------------
One :class:`multiprocessing.Barrier` over all shards.  The allreduce
writes each shard's row of a ``(2, shards, K)`` scratch array, waits on
the barrier once, then sums the column; buffers alternate by step parity
so a fast worker entering allreduce ``s+1`` cannot clobber a slow
worker's unread sums from step ``s`` (it writes the *other* buffer, and
cannot reach step ``s+2`` — which reuses the first — before everyone
passed the barrier of step ``s+1``, i.e. finished reading step ``s``).
Plain state barriers rely on the same argument: writes to a shared array
happen-before the barrier, reads after it.

Executor fault tolerance
------------------------
Model faults (crash-stop vertices, dropped messages) are the
*adversary's*; this layer also survives faults of the *executor itself*
(see ``docs/fault_tolerance.md``):

* every barrier wait is bounded — a worker stuck at a barrier past its
  timeout raises :class:`ShardTimeout` naming the lagging shard (read
  from the ``__hb__`` heartbeat block each worker stamps before
  waiting) instead of blocking forever;
* kernels with checkpoint support stream per-round snapshots of their
  own state (local arrays **plus their own slices of every mutable
  shared array**) to the parent over the result queue;
* the parent's collect loop polls worker liveness; when a worker dies
  (e.g. SIGKILL), surviving workers are torn down and the whole group
  is restarted — with bounded retries and exponential backoff — from
  the newest *consistent* checkpoint (the highest round every shard
  reported).  Replay is **bit-identical**: all kernel decisions,
  including the injected fault stream, are pure functions of
  ``(seed, round, vertex)``, so recovery reproduces exactly the run an
  unfaulted executor would have produced;
* with retries exhausted (or no checkpoint to restart from) the run
  fails fast with :class:`ShardError` / :class:`ShardTimeout` — never a
  hang — and :class:`SharedArrays` guarantees segment cleanup via
  context-manager/``atexit`` discipline, so no shared-memory leaks.

Lifecycle: the parent creates and unlinks every shared segment; workers
attach and close.  Worker failure aborts the barrier so the remaining
shards fail fast instead of deadlocking.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from time import monotonic, perf_counter, sleep
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.runtime.bulk import BulkUnsupported

#: seconds a shard waits at a barrier before declaring the run wedged
BARRIER_TIMEOUT = 600.0

#: parent-side liveness poll interval while waiting on worker results
POLL_INTERVAL = 0.25

#: bounded restart policy for worker death: total attempts = retries + 1
SHARD_RETRIES = 2

#: base restart backoff in seconds (doubled per failed attempt)
RESTART_BACKOFF = 0.05

#: per-round checkpoints are streamed only up to this many vertices; a
#: checkpoint blob carries O(n / shards) array state per shard per
#: round, which is noise at test scale but would dominate the n = 10^7
#: bench runs (drivers may override via ``params["checkpoint"]``)
CHECKPOINT_MAX_N = 2_000_000

#: int64 lanes in the allreduce scratch row (widest per-round reduction)
_SCRATCH_LANES = 12

#: per-worker phases of the cross-process profiler, in timing-block lane
#: order: kernel compute (wall minus waits), barrier wait, allreduce
#: (write + barrier + column sum), shared-memory attach on the worker
#: side of publish.  When a :class:`~repro.obs.profile.PhaseProfiler`
#: rides the session bus, :func:`run_sharded` publishes a ``__times__``
#: block of shape ``(2, shards, len(SHARD_PHASES))`` float64 (seconds
#: row 0, hit counts row 1); each worker fills its own column slice and
#: the parent merges them via ``PhaseProfiler.record_shard``.
SHARD_PHASES = ("compute", "barrier", "allreduce", "publish")

_TIMES_KEY = "__times__"

#: heartbeat block: ``(shards, 2)`` float64 — each worker stamps
#: ``(monotonic(), waits_so_far)`` before every barrier entry, so both
#: sides can name the lagging shard when a wait times out
_HB_KEY = "__hb__"


class ShardError(RuntimeError):
    """A worker process died or the shard protocol broke."""


class ShardTimeout(ShardError):
    """A barrier wait (or the parent's collect loop) exceeded its
    deadline.  ``lagging`` is the index of the shard with the fewest
    recorded barrier entries at diagnosis time (-1 when unknown)."""

    def __init__(self, message: str, lagging: int = -1) -> None:
        super().__init__(message)
        self.lagging = lagging


#: executor-fault telemetry counters (process-wide, cumulative); see
#: :func:`stats_snapshot` / :func:`reset_stats`
SHARD_STATS: dict[str, int] = {
    "worker_lost": 0,
    "worker_restart": 0,
    "checkpoints": 0,
    "barrier_timeouts": 0,
}


#: chaos-test overrides merged into every :func:`run_sharded` params
#: dict (e.g. ``{"die_at": (shard, round)}`` or ``{"retries": 0}``);
#: set/clear from tests only
CHAOS: dict[str, Any] = {}


def stats_snapshot() -> dict[str, int]:
    """A copy of the executor-fault counters."""
    return dict(SHARD_STATS)


def reset_stats() -> None:
    """Zero the executor-fault counters (tests)."""
    for key in SHARD_STATS:
        SHARD_STATS[key] = 0


# ---------------------------------------------------------------------------
# Session (mirrors repro.runtime.network.engine_session)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSession:
    """An active sharding request: shard count + partitioner name."""

    shards: int
    partitioner: str = "range"


_session: ShardSession | None = None


def current_shards() -> ShardSession | None:
    """The active :class:`ShardSession`, or ``None`` (unsharded)."""
    return _session


@contextmanager
def shard_session(shards: int, partitioner: str = "range") -> Iterator[ShardSession]:
    """Run every bulk-engine driver in the ``with`` body sharded.

    Composes with ``engine_session("bulk")``: the bulk dispatch seam in
    each driver checks for an active shard session and routes to the
    sharded twin (:data:`repro.core.shard.SHARD_DRIVERS`).  ``shards=1``
    still exercises the full executor (partition, shared memory, worker
    process, barriers) — useful as the degenerate equivalence case.
    """
    from repro.graphs.graph import PARTITIONERS

    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    if partitioner not in PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {partitioner!r}; expected one of "
            f"{sorted(PARTITIONERS)}"
        )
    global _session
    previous = _session
    _session = ShardSession(shards, partitioner)
    try:
        yield _session
    finally:
        _session = previous


def resolve_bounds(graph, session: ShardSession) -> list[int]:
    """Partition ``graph`` per the session: ``shards + 1`` vertex bounds."""
    from repro.graphs.graph import PARTITIONERS

    return PARTITIONERS[session.partitioner](graph, session.shards)


# ---------------------------------------------------------------------------
# Shared-memory arrays
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedSpec:
    """Everything a worker needs to re-map one shared array (picklable)."""

    name: str
    shape: tuple[int, ...]
    dtype: str


#: parent-side registries still owning un-unlinked segments; the atexit
#: hook sweeps whatever a crashed/careless caller left behind
_LIVE_ARRAYS: list["SharedArrays"] = []
_ATEXIT_INSTALLED = False


def _cleanup_leaked() -> None:  # pragma: no cover - interpreter shutdown
    for arrays in list(_LIVE_ARRAYS):
        arrays.cleanup()


def active_segments() -> list[str]:
    """Names of shared-memory segments this process still owns.

    Empty once every :class:`SharedArrays` has been cleaned up — the
    leak-count test asserts exactly that.
    """
    return [
        shm.name for arrays in _LIVE_ARRAYS for shm in arrays._segments
    ]


class SharedArrays:
    """Parent-side registry of shared-memory numpy arrays.

    ``publish`` copies an array into a fresh segment (or zero-fills one
    of the given shape); :meth:`specs` is the picklable handle set passed
    to workers; :meth:`cleanup` closes **and unlinks** every segment —
    the parent owns the lifecycle, workers merely attach/close.

    Use as a context manager (``with SharedArrays() as shared: ...``)
    for a structural cleanup guarantee; every live instance is
    additionally registered with an ``atexit`` sweep, so segments cannot
    outlive the parent process even on unhandled exceptions.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self.views: dict[str, np.ndarray] = {}
        self._specs: dict[str, SharedSpec] = {}
        global _ATEXIT_INSTALLED
        if not _ATEXIT_INSTALLED:
            atexit.register(_cleanup_leaked)
            _ATEXIT_INSTALLED = True
        _LIVE_ARRAYS.append(self)

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()

    def publish(
        self,
        key: str,
        arr: np.ndarray | None = None,
        *,
        shape: tuple[int, ...] | None = None,
        dtype=None,
    ) -> np.ndarray:
        if arr is not None:
            shape, dtype = arr.shape, arr.dtype
        dt = np.dtype(dtype)
        nbytes = max(int(np.prod(shape)) * dt.itemsize, 1)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        # registered before the view exists, so a failing ndarray
        # construction still gets its segment unlinked by cleanup()
        self._segments.append(shm)
        view = np.ndarray(shape, dtype=dt, buffer=shm.buf)
        if arr is not None:
            view[...] = arr
        else:
            view[...] = 0
        self.views[key] = view
        self._specs[key] = SharedSpec(shm.name, tuple(shape), dt.str)
        return view

    def specs(self) -> dict[str, SharedSpec]:
        return dict(self._specs)

    def cleanup(self) -> None:
        # Drop array views before closing the buffers they alias.
        self.views.clear()
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double cleanup
                pass
        self._segments.clear()
        self._specs.clear()
        try:
            _LIVE_ARRAYS.remove(self)
        except ValueError:
            pass


def attach_shared(
    specs: dict[str, SharedSpec],
) -> tuple[dict[str, np.ndarray], list[shared_memory.SharedMemory]]:
    """Worker-side: map every published segment; returns (views, handles)."""
    views: dict[str, np.ndarray] = {}
    handles: list[shared_memory.SharedMemory] = []
    for key, spec in specs.items():
        shm = shared_memory.SharedMemory(name=spec.name)
        handles.append(shm)
        views[key] = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return views, handles


# ---------------------------------------------------------------------------
# Barrier + allreduce
# ---------------------------------------------------------------------------


class ShardComm:
    """One shard's handle on the round-barrier protocol.

    With ``timed=True`` (a profiler rides the session), every barrier
    wait and allreduce accumulates into :attr:`phase_seconds` /
    :attr:`phase_counts` — two dict lookups and two ``perf_counter``
    calls per synchronisation, on a path that already pays a
    cross-process barrier, so the probe cost is noise.

    ``timeout`` bounds every barrier wait; a break or deadline miss
    raises :class:`ShardTimeout` (never an indefinite block).  When the
    ``hb`` heartbeat view is wired, the exception names the lagging
    shard — the one with the fewest stamped barrier entries.
    """

    def __init__(
        self,
        barrier,
        scratch: np.ndarray,
        idx: int,
        shards: int,
        timed: bool = False,
        timeout: float | None = None,
        hb: np.ndarray | None = None,
    ) -> None:
        self.barrier = barrier
        self.scratch = scratch  # (2, shards, _SCRATCH_LANES) int64
        self.idx = idx
        self.shards = shards
        self._step = 0
        self._waits = 0
        self.timed = timed
        self.timeout = BARRIER_TIMEOUT if timeout is None else timeout
        self.hb = hb  # (shards, 2) float64: (monotonic stamp, waits)
        self.phase_seconds = {"barrier": 0.0, "allreduce": 0.0}
        self.phase_counts = {"barrier": 0, "allreduce": 0}

    def _lagging(self) -> int:
        if self.hb is None or self.shards < 2:
            return -1
        waits = self.hb[:, 1].copy()
        waits[self.idx] = np.inf
        return int(np.argmin(waits))

    def _wait(self) -> None:
        self._waits += 1
        if self.hb is not None:
            self.hb[self.idx] = (monotonic(), float(self._waits))
        try:
            self.barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            SHARD_STATS["barrier_timeouts"] += 1
            lag = self._lagging()
            who = f" (lagging shard: {lag})" if lag >= 0 else ""
            raise ShardTimeout(
                f"shard {self.idx}/{self.shards}: barrier broken or timed "
                f"out after {self.timeout}s at wait #{self._waits}{who}",
                lagging=lag,
            ) from None

    def sync(self) -> None:
        """A plain state barrier: all prior shared writes become readable."""
        if not self.timed:
            self._wait()
            return
        t0 = perf_counter()
        self._wait()
        self.phase_seconds["barrier"] += perf_counter() - t0
        self.phase_counts["barrier"] += 1

    def allreduce(self, *values: int) -> tuple[int, ...]:
        """Sum each value across shards; one barrier, parity-buffered."""
        t0 = perf_counter() if self.timed else 0.0
        buf = self.scratch[self._step & 1]
        self._step += 1
        buf[self.idx, : len(values)] = values
        self._wait()
        out = tuple(int(x) for x in buf[:, : len(values)].sum(axis=0))
        if self.timed:
            self.phase_seconds["allreduce"] += perf_counter() - t0
            self.phase_counts["allreduce"] += 1
        return out


class LocalComm:
    """In-process stand-in for :class:`ShardComm` (one-shard semantics).

    Lets the faulted kernels in :mod:`repro.core.shard` run unsharded —
    the bulk engine's fault path executes the *same* kernel code through
    this no-op comm, so bulk == sharded(1) by construction.
    """

    idx = 0
    shards = 1
    timed = False

    def sync(self) -> None:
        pass

    def allreduce(self, *values: int) -> tuple[int, ...]:
        return tuple(int(v) for v in values)


def chaos_kill_hook(params: dict[str, Any], idx: int, rnd: int) -> None:
    """Kill-based chaos testing: SIGKILL this worker at a chosen round.

    Fires only on the **first** attempt (``__attempt__`` 0) when
    ``params["die_at"] == (shard, round)`` matches — the restarted run
    must survive, which is exactly what the chaos tests assert.
    """
    die_at = params.get("die_at")
    if not die_at or params.get("__attempt__", 0):
        return
    if int(die_at[0]) == idx and int(die_at[1]) == rnd:
        os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies


# ---------------------------------------------------------------------------
# Worker harness
# ---------------------------------------------------------------------------


@dataclass
class ShardTask:
    """Everything a shard worker kernel receives."""

    idx: int
    lo: int
    hi: int
    bounds: list[int]
    comm: Any
    views: dict[str, np.ndarray]
    params: dict[str, Any]
    #: ``ckpt(round, blob)`` streams a checkpoint to the parent (None
    #: when running in-process or checkpointing is disabled)
    ckpt: Callable[[int, Any], None] | None = None
    #: the blob of the consistent checkpoint to resume from, or None
    resume: Any = None


def _worker_main(
    kernel_name, idx, bounds, specs, params, barrier, queue, resume=None
) -> None:
    """Top-level (spawn-safe) worker entry: attach, run the kernel, report."""
    from repro.core.shard import SHARD_KERNELS

    handles: list[shared_memory.SharedMemory] = []
    try:
        t_attach0 = perf_counter()
        views, handles = attach_shared(specs)
        t_attach = perf_counter() - t_attach0
        timed = _TIMES_KEY in views
        comm = ShardComm(
            barrier,
            views["__scratch__"],
            idx,
            len(bounds) - 1,
            timed=timed,
            timeout=params.get("barrier_timeout"),
            hb=views.get(_HB_KEY),
        )
        ckpt = None
        if params.get("checkpoint"):
            ckpt = lambda rnd, blob: queue.put((idx, "ckpt", (rnd, blob)))
        task = ShardTask(
            idx=idx,
            lo=bounds[idx],
            hi=bounds[idx + 1],
            bounds=bounds,
            comm=comm,
            views=views,
            params=params,
            ckpt=ckpt,
            resume=resume,
        )
        t_kernel0 = perf_counter()
        payload = SHARD_KERNELS[kernel_name](task)
        t_kernel = perf_counter() - t_kernel0
        if timed:
            # compute = kernel wall minus time provably spent waiting or
            # reducing; clamped at 0 against clock jitter.  Written
            # before the queue put, so the parent's post-collect read
            # happens-after.
            waits = comm.phase_seconds["barrier"]
            reduces = comm.phase_seconds["allreduce"]
            tb = views[_TIMES_KEY]
            tb[0, idx] = (
                max(t_kernel - waits - reduces, 0.0),
                waits,
                reduces,
                t_attach,
            )
            tb[1, idx] = (
                1,
                comm.phase_counts["barrier"],
                comm.phase_counts["allreduce"],
                1,
            )
        queue.put((idx, "ok", payload))
    except ShardTimeout as e:
        # A broken/expired barrier: either collateral damage of another
        # worker's death (the parent will restart or re-raise the real
        # cause) or a genuine wedge (the parent raises ShardTimeout).
        queue.put((idx, "barrier", str(e)))
    except Exception:  # noqa: BLE001 - relayed to the parent verbatim
        import traceback

        barrier.abort()
        queue.put((idx, "error", traceback.format_exc()))
    finally:
        for shm in handles:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass


class _WorkersLost(Exception):
    """Internal: the liveness poll found dead workers mid-collect."""

    def __init__(self, dead: list[int]) -> None:
        super().__init__(f"workers lost: {dead}")
        self.dead = dead


def _reap(procs: list, timeout: float = 30.0) -> None:
    for p in procs:
        p.join(timeout=timeout)
    for p in procs:
        if p.is_alive():
            p.terminate()
            p.join(timeout=10)


def _attempt(
    kernel_name: str,
    bounds: Sequence[int],
    shared: SharedArrays,
    params: dict[str, Any],
    ctx,
    resumes: list[Any],
    ckpts: dict[int, dict[int, Any]],
    timeout: float,
) -> list[Any]:
    """Run one worker group to completion; raises :class:`_WorkersLost`
    when the liveness poll finds a dead worker before its result."""
    shards = len(bounds) - 1
    barrier = ctx.Barrier(shards)
    queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(
                kernel_name,
                i,
                list(bounds),
                shared.specs(),
                params,
                barrier,
                queue,
                resumes[i],
            ),
            daemon=True,
        )
        for i in range(shards)
    ]
    for p in procs:
        p.start()
    payloads: dict[int, Any] = {}
    errors: dict[int, str] = {}
    barrier_reports: dict[int, str] = {}
    last_activity = monotonic()
    try:
        while len(payloads) + len(errors) + len(barrier_reports) < shards:
            try:
                idx, status, payload = queue.get(timeout=POLL_INTERVAL)
            except Exception:  # queue.Empty or a dead pipe
                done = payloads.keys() | errors.keys() | barrier_reports.keys()
                dead = [
                    i
                    for i, p in enumerate(procs)
                    if i not in done and not p.is_alive()
                ]
                if dead:
                    for p in procs:
                        if p.is_alive():
                            p.terminate()
                    raise _WorkersLost(dead)
                hb = shared.views.get(_HB_KEY)
                if hb is not None and float(hb[:, 0].max()) > last_activity:
                    last_activity = float(hb[:, 0].max())
                if monotonic() - last_activity > timeout:
                    barrier.abort()
                    for p in procs:
                        if p.is_alive():
                            p.terminate()
                    lag = (
                        int(np.argmin(hb[:, 1])) if hb is not None else -1
                    )
                    raise ShardTimeout(
                        f"sharded run {kernel_name!r}: no worker progress "
                        f"for {timeout}s (lagging shard: {lag})",
                        lagging=lag,
                    )
                continue
            last_activity = monotonic()
            if status == "ok":
                payloads[idx] = payload
            elif status == "ckpt":
                rnd, blob = payload
                ckpts.setdefault(idx, {})[rnd] = blob
                SHARD_STATS["checkpoints"] += 1
                if len(ckpts) == shards:
                    complete = min(max(d) for d in ckpts.values())
                    for d in ckpts.values():
                        for r in [r for r in d if r < complete]:
                            del d[r]
            elif status == "barrier":
                barrier_reports[idx] = payload
            else:
                errors[idx] = payload
    finally:
        _reap(procs)
    if errors:
        idx = min(errors)
        raise ShardError(
            f"sharded run {kernel_name!r}: shard {idx}/{shards} failed:\n"
            f"{errors[idx]}"
        )
    if barrier_reports:
        # nobody died and no worker errored, yet barriers broke: a wedge
        idx = min(barrier_reports)
        raise ShardTimeout(
            f"sharded run {kernel_name!r}: barrier timed out with all "
            f"workers alive: {barrier_reports[idx]}"
        )
    return [payloads[i] for i in range(shards)]


def run_sharded(
    kernel_name: str,
    bounds: Sequence[int],
    shared: SharedArrays,
    params: dict[str, Any],
) -> list[Any]:
    """Execute one sharded kernel across worker processes.

    Publishes the allreduce scratch + heartbeat blocks, spawns
    ``len(bounds) - 1`` workers running ``SHARD_KERNELS[kernel_name]``,
    and returns their payloads in shard order.  Raises
    :class:`ShardError` carrying the first worker traceback on failure
    and :class:`ShardTimeout` on a wedge — never hangs.  The caller owns
    ``shared`` and must call ``cleanup()`` (typically via ``with`` /
    ``try/finally``) after consuming any result arrays.

    **Worker death is survivable**: when a worker dies mid-run (SIGKILL,
    OOM-kill, ...) and the kernel streams checkpoints
    (``params["checkpoint"]``), the group restarts — up to
    ``params.get("retries", SHARD_RETRIES)`` times, with exponential
    backoff — from the newest round every shard checkpointed.  Blobs
    restore each shard's local state *and* its own slices of the mutable
    shared arrays, and every kernel decision is a pure function of the
    (seed, round, vertex) counters, so the replayed run is bit-identical
    to an unfaulted one.
    """
    import repro.obs as obs

    if CHAOS:
        params = {**params, **CHAOS}
    shards = len(bounds) - 1
    ctx = mp.get_context(
        "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    )
    scratch = shared.publish(
        "__scratch__", shape=(2, shards, _SCRATCH_LANES), dtype=np.int64
    )
    hb = shared.publish(_HB_KEY, shape=(shards, 2), dtype=np.float64)
    bus = obs.current()
    profiler = bus.profiler if bus is not None else None
    if profiler is not None:
        # per-worker timing slots; presence of this key is also the
        # worker-side signal to enable its probes (no object crosses the
        # process boundary, only the shared block)
        shared.publish(
            _TIMES_KEY, shape=(2, shards, len(SHARD_PHASES)), dtype=np.float64
        )
    timeout = params.get("barrier_timeout") or BARRIER_TIMEOUT
    retries = params.get("retries", SHARD_RETRIES)
    resumes: list[Any] = [None] * shards
    ckpts: dict[int, dict[int, Any]] = {}
    attempt = 0
    while True:
        try:
            payloads = _attempt(
                kernel_name, bounds, shared, params, ctx, resumes, ckpts, timeout
            )
            break
        except _WorkersLost as lost:
            SHARD_STATS["worker_lost"] += len(lost.dead)
            complete = (
                min(max(d) for d in ckpts.values())
                if len(ckpts) == shards
                else None
            )
            if bus is not None and bus.active:
                from repro.obs.events import WorkerLost

                for i in lost.dead:
                    bus.emit(WorkerLost(complete or 0, i))
            if attempt >= retries or complete is None:
                why = (
                    "no consistent checkpoint to restart from"
                    if complete is None
                    else f"retries exhausted after {attempt + 1} attempts"
                )
                raise ShardError(
                    f"sharded run {kernel_name!r}: worker(s) {lost.dead} "
                    f"died; {why}"
                ) from None
            sleep(RESTART_BACKOFF * (2**attempt))
            attempt += 1
            SHARD_STATS["worker_restart"] += 1
            if bus is not None and bus.active:
                from repro.obs.events import Checkpoint, WorkerRestart

                bus.emit(Checkpoint(complete, shards))
                bus.emit(WorkerRestart(complete, attempt))
            resumes = [ckpts[i][complete] for i in range(shards)]
            scratch[...] = 0
            hb[...] = 0
            params = {**params, "__attempt__": attempt}
    if profiler is not None:
        times = shared.views[_TIMES_KEY]
        for i in range(shards):
            for lane, phase in enumerate(SHARD_PHASES):
                profiler.record_shard(
                    i, phase, float(times[0, i, lane]), int(times[1, i, lane])
                )
    return payloads


# ---------------------------------------------------------------------------
# Crash-aware finalize (the faulted sibling of bulk.finalize_run)
# ---------------------------------------------------------------------------


def finalize_faulted_run(
    outputs: dict[int, Any],
    term: np.ndarray,
    crash_rounds: dict[int, int],
    pre_crashed: Sequence[int],
    sent: Sequence[int],
    msgs: Sequence[int],
    receivers: Sequence[int],
    crashed_all: Sequence[int],
    bus=None,
    drops: Sequence[tuple[int, int, int]] = (),
):
    """Assemble a :class:`RunResult` for a crash-faulted sharded run.

    ``term`` holds termination rounds (0 for crashed vertices);
    ``crash_rounds`` maps each newly-crashed vertex to the round whose
    start it crashed at (its metrics round is that minus one, exactly the
    fast engine's accounting); ``pre_crashed`` are vertices already dead
    from an earlier run in the fault session (metrics round 0, no event).
    The recorded round count is ``len(sent)`` — a final round in which
    every remaining vertex crashed is *unrecorded*, mirroring the fast
    engine's break-before-trace, but its ``fault_crash`` events are still
    emitted after the last ``round_end``.  ``drops`` are the adversary's
    dropped copies as ``(round, src, dst)`` triples (emitted per round,
    sorted, right after ``round_start`` -- the fast engine drops copies
    during routing, after the round has started).
    """
    import repro.obs as obs
    from repro.obs.events import (
        FaultCrash,
        FaultDrop,
        RoundEnd,
        RoundSends,
        RoundStart,
    )
    from repro.runtime.metrics import RoundMetrics
    from repro.runtime.network import RunResult

    n = int(term.size)
    rounds_run = len(sent)
    assert len(msgs) == rounds_run and len(receivers) == rounds_run

    rounds_arr = term.copy()
    for v, c in crash_rounds.items():
        rounds_arr[v] = c - 1
    for v in pre_crashed:
        rounds_arr[v] = 0

    halts = np.bincount(
        term[term > 0], minlength=rounds_run + 2
    ) if n else np.zeros(rounds_run + 2, dtype=np.int64)
    # n_i = live vertices entering round i: uncrashed with term >= i plus
    # crashed vertices that only crash at a later round's start.
    active = np.zeros(rounds_run, dtype=np.int64)
    if n:
        for i in range(rounds_run):
            rnd = i + 1
            active[i] = int((term >= rnd).sum()) + sum(
                1 for c in crash_rounds.values() if c > rnd
            )

    crashes_by_round: dict[int, list[int]] = {}
    for v, c in sorted(crash_rounds.items()):
        crashes_by_round.setdefault(c, []).append(v)
    drops_by_round: dict[int, list[tuple[int, int]]] = {}
    for r, src, dst in drops:
        drops_by_round.setdefault(r, []).append((src, dst))

    if bus is None:
        bus = obs.current()
    if bus is not None and bus.active:
        for i in range(rounds_run):
            rnd = i + 1
            for v in crashes_by_round.get(rnd, ()):
                bus.emit(FaultCrash(rnd, v))
            bus.emit(RoundStart(rnd, int(active[i])))
            for src, dst in sorted(drops_by_round.get(rnd, ())):
                bus.emit(FaultDrop(rnd, src, dst))
            if sent[i]:
                bus.emit(RoundSends(rnd, int(sent[i])))
            bus.emit(
                RoundEnd(rnd, int(msgs[i]), int(receivers[i]), int(halts[rnd]))
            )
        # crashes that emptied the network in the unrecorded final round
        for v in crashes_by_round.get(rounds_run + 1, ()):
            bus.emit(FaultCrash(rounds_run + 1, v))

    rounds_t = tuple(int(r) for r in rounds_arr)
    metrics = RoundMetrics(
        rounds=rounds_t,
        active_trace=tuple(int(a) for a in active),
        messages_per_round=tuple(int(m) for m in msgs),
    )
    return RunResult(
        outputs=outputs,
        metrics=metrics,
        contexts=(),
        output_rounds=rounds_t,
        crashed=tuple(sorted(crashed_all)),
    )

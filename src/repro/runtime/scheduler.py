"""The scheduling seam: who steps when, and when messages are delivered.

Historically the global round barrier was hard-wired into both sync
engines: each carried its own copy of the round-advance bookkeeping
(fault-adversary crash application, watchdog, active-trace accounting,
``round_start``/``round_end`` narration, and the StopIteration protocol
that turns a generator return into an output + halt notice).  This module
lifts that shared skeleton into an explicit scheduler object so that
"when vertices step" is a pluggable policy:

* :class:`SyncBarrierScheduler` -- the global-round barrier, used by both
  the fast engine (:class:`repro.runtime.network.SyncNetwork`) and the
  reference engine (:class:`repro.runtime.reference
  .ReferenceSyncNetwork`).  Mail mechanics (pooled slots vs. per-round
  dicts) stay engine-specific; everything the differential suites compare
  -- event order, fault injection points, metrics accounting -- lives
  here once, so the two engines cannot drift apart.
* the event-queue scheduler of :mod:`repro.runtime.async_sched` -- no
  global round: each vertex advances its own local round as soon as the
  tokens it is waiting for arrive, with seeded per-edge delivery times.

Mode selection mirrors :func:`repro.runtime.network.engine_session`:
drivers construct networks internally, so the execution *mode* is a
process-wide session too (``mode_session("async")`` /
``zoo.execute(mode="async")`` / ``repro run --mode async``).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.obs.events import Halt, RoundEnd, RoundStart
from repro.runtime.metrics import RoundMetrics

#: the selectable execution modes: the synchronous global-round barrier
#: (today's three engines) and the event-driven asynchronous executor
#: (per-edge delivery times, no global round -- see
#: :mod:`repro.runtime.async_sched`)
MODES = ("sync", "async")

#: process-wide (mode, delays) override stack (see :class:`mode_session`)
_MODE_STACK: list[tuple[str, Any]] = []


def current_mode() -> str:
    """The execution mode new runs will use: ``"sync"`` unless a
    :class:`mode_session` override is active."""
    return _MODE_STACK[-1][0] if _MODE_STACK else "sync"


def current_delays():
    """The :class:`~repro.runtime.async_sched.DelaySpec` the innermost
    :class:`mode_session` selected, or ``None`` (the unit-delay default).
    Only consulted by the asynchronous executor."""
    return _MODE_STACK[-1][1] if _MODE_STACK else None


class mode_session:
    """Context manager selecting the execution mode for enclosed runs.

    Inside ``mode_session("async")`` every ``SyncNetwork.run`` executes on
    the event-queue scheduler (:func:`repro.runtime.async_sched.run_async`)
    instead of the global-round barrier.  Sessions nest; the innermost
    wins.  Outputs and per-vertex round counts are mode-invariant (the
    asynchronous executor is an alpha-synchronizer over the same
    computation); what changes is the *time* dimension the async mode
    adds.

    ``delays`` optionally carries the link-delay model
    (:class:`~repro.runtime.async_sched.DelaySpec`) down to runs whose
    networks are constructed internally by algorithm drivers -- the same
    reason the mode itself is a session.  Ignored in sync mode.
    """

    def __init__(self, mode: str, delays=None) -> None:
        if mode not in MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {MODES}"
            )
        self.mode = mode
        self.delays = delays

    def __enter__(self) -> "mode_session":
        _MODE_STACK.append((self.mode, self.delays))
        return self

    def __exit__(self, *exc) -> None:
        _MODE_STACK.pop()


class SyncBarrierScheduler:
    """The global-round barrier, extracted from the two sync engines.

    One instance drives one run.  The engine loop becomes::

        sched = SyncBarrierScheduler(contexts, gens, max_rounds, emit,
                                     injector, collect_messages)
        sched.begin_run()
        while True:
            nxt = sched.next_round()        # crashes, watchdog, round_start
            if nxt is None:
                break
            rnd, due, halted = nxt
            ... deliver `halted` notices and `due` delayed copies ...
            for v in active:  still_active if sched.step_vertex(v) ...
            ... engine-specific routing / same-round drops ...
            sched.end_round(routed, receivers)
        return sched.finish()

    The scheduler owns exactly the state both engines used to duplicate:
    the round counter, the active list, per-vertex round counts, outputs,
    halt notices, the active/message traces, and the fault-injector
    driving points.  Event order is pinned by the differential suites
    (``tests/runtime/test_equivalence.py`` and
    ``test_fault_equivalence.py``): fault crashes narrate before the
    watchdog fires, ``round_start`` before any delivery, ``halt`` at step
    time, ``round_end`` after same-round drops.
    """

    __slots__ = (
        "contexts",
        "gens",
        "max_rounds",
        "emit",
        "injector",
        "collect_messages",
        "outputs",
        "rounds",
        "active",
        "rnd",
        "active_trace",
        "msg_trace",
        "newly_halted",
    )

    def __init__(
        self,
        contexts,
        gens: list[Generator[None, None, Any] | None],
        max_rounds: int,
        emit,
        injector,
        collect_messages: bool = True,
    ) -> None:
        self.contexts = contexts
        self.gens = gens
        self.max_rounds = max_rounds
        self.emit = emit
        self.injector = injector
        self.collect_messages = collect_messages
        n = len(contexts)
        self.outputs: dict[int, Any] = {}
        self.rounds = [0] * n
        self.active: list[int] = list(range(n))
        self.rnd = 0
        self.active_trace: list[int] = []
        self.msg_trace: list[int] = []
        #: vertices that terminated this round, as ``(v, output)`` -- their
        #: notices are handed to the engine at the start of the next round
        self.newly_halted: list[tuple[int, Any]] = []

    # ------------------------------------------------------------------
    def begin_run(self) -> None:
        """Start the session: remove vertices already crashed in earlier
        runs (crash-stop persists across a fault session) and wire the
        route-side fault hook into the contexts."""
        injector = self.injector
        if injector is None:
            return
        gens = self.gens
        pre_crashed = injector.begin_run(self.emit)
        if pre_crashed:
            n = len(gens)
            for v in pre_crashed:
                if v < n and gens[v] is not None:
                    gens[v].close()
                    gens[v] = None
            self.active = [v for v in self.active if gens[v] is not None]
        if injector.messages_active:
            for ctx in self.contexts:
                ctx._faults = injector

    def next_round(
        self,
    ) -> tuple[int, list[tuple[int, int, Any]], list[tuple[int, Any]]] | None:
        """Advance the barrier to the next round, or ``None`` when done.

        Applies this round's adversary crashes (the crashed perform no
        computation from now on; ``fault_crash`` narrates each), trips the
        watchdog, records the active trace and emits ``round_start``.
        Returns ``(rnd, due, halted)``: the 1-based round number, the
        delayed copies due for delivery now (already filtered of crashed
        and terminated receivers), and the previous round's termination
        notices for the engine to fan out.
        """
        if not self.active:
            return None
        self.rnd += 1
        rnd = self.rnd
        gens = self.gens
        due: list[tuple[int, int, Any]] = []
        if self.injector is not None:
            crashes, raw_due = self.injector.on_round(rnd, self.active)
            if crashes:
                rounds = self.rounds
                for v in crashes:
                    gens[v].close()
                    gens[v] = None
                    rounds[v] = rnd - 1
                self.active = [v for v in self.active if gens[v] is not None]
                if not self.active:
                    return None
            if raw_due:
                due = [
                    (src, dst, payload)
                    for src, dst, payload in raw_due
                    if gens[dst] is not None
                ]
        if rnd > self.max_rounds:
            from repro.runtime.network import RoundLimitExceeded

            raise RoundLimitExceeded(self.max_rounds, self.active, self.contexts)
        self.active_trace.append(len(self.active))
        if self.emit is not None:
            self.emit(RoundStart(rnd, len(self.active)))
        halted = self.newly_halted
        self.newly_halted = []
        return rnd, due, halted

    def step_vertex(self, v: int) -> bool:
        """Advance vertex ``v`` one round; ``False`` when it terminated.

        A StopIteration return becomes the vertex's output (the committed
        value when ``ctx.commit`` fixed it earlier -- returning a
        *different* value afterwards is an error), its running time
        r(v) = this round, and a halt notice queued for next round.
        """
        gens = self.gens
        ctx = self.contexts[v]
        try:
            yielded = next(gens[v])
            if yielded is not None:
                raise RuntimeError(
                    f"vertex {v} yielded {yielded!r}; programs must "
                    "use bare `yield` (send via ctx.send/broadcast)"
                )
        except StopIteration as stop:
            if ctx._commit_round is not None:
                if stop.value is not None and stop.value != ctx._commit_value:
                    raise RuntimeError(
                        f"vertex {v} returned {stop.value!r} after "
                        f"committing {ctx._commit_value!r}"
                    )
                self.outputs[v] = ctx._commit_value
            else:
                self.outputs[v] = stop.value
            self.rounds[v] = self.rnd
            gens[v] = None
            self.newly_halted.append((v, self.outputs[v]))
            if self.emit is not None:
                self.emit(Halt(self.rnd, v))
            return False
        return True

    def end_round(self, routed: int, receivers: int) -> None:
        """Close the round: fold the engine's routed-copy count (after
        same-round drops), this round's halt notices, and the copies the
        adversary held for later delivery into the traffic trace, and
        emit ``round_end``."""
        msgs_total = routed + len(self.newly_halted)
        if self.injector is not None:
            msgs_total += self.injector.take_delayed_count()
        if self.emit is not None:
            self.emit(
                RoundEnd(self.rnd, msgs_total, receivers, len(self.newly_halted))
            )
        if self.collect_messages:
            self.msg_trace.append(msgs_total)

    def finish(self):
        """Assemble the :class:`~repro.runtime.network.RunResult`."""
        from repro.runtime.network import RunResult

        contexts = self.contexts
        rounds = self.rounds
        metrics = RoundMetrics(
            rounds=tuple(rounds),
            active_trace=tuple(self.active_trace),
            messages_per_round=tuple(self.msg_trace),
        )
        output_rounds = tuple(
            ctx._commit_round if ctx._commit_round is not None else rounds[v]
            for v, ctx in enumerate(contexts)
        )
        crashed: tuple[int, ...] = ()
        injector = self.injector
        if injector is not None and injector.crashed:
            n = len(contexts)
            crashed = tuple(sorted(v for v in injector.crashed if v < n))
        return RunResult(
            outputs=self.outputs,
            metrics=metrics,
            contexts=tuple(contexts),
            output_rounds=output_rounds,
            crashed=crashed,
        )

"""Helpers for writing vertex programs.

Programs are generators; these utilities encapsulate the common "idle until
the schedule says go" patterns of the paper's compositions, where phase
start rounds are deterministic functions of (n, a, epsilon) known to every
vertex.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.runtime.context import Context


def wait_rounds(ctx: Context, k: int) -> Generator[None, None, None]:
    """Idle for ``k`` communication rounds (the vertex stays active and
    keeps accumulating round count, per the model)."""
    for _ in range(k):
        yield


def wait_until_round(ctx: Context, r: int) -> Generator[None, None, None]:
    """Idle until the *start* of round ``r`` (no-op if already reached).

    After ``yield from wait_until_round(ctx, r)`` the vertex is executing
    round ``r`` (or later, if it was already past it).
    """
    while ctx.round < r:
        yield


def exchange(ctx: Context, payload: Any) -> Generator[None, None, dict[int, Any]]:
    """Broadcast ``payload`` and return next round's inbox, keeping the
    *last* payload per sender (one round)."""
    ctx.broadcast(payload)
    yield
    return {u: msgs[-1] for u, msgs in ctx.inbox.items()}


def collect_from(
    ctx: Context, senders: set[int], store: dict[int, Any]
) -> Generator[None, None, None]:
    """Run rounds until a message (or termination notice) has been received
    from every vertex in ``senders``; accumulate payloads into ``store``
    (last message per sender wins).

    Termination notices count: a halted neighbor's final output is its
    message.  Used by the "wait for all your parents to choose" waves.
    """
    missing = set(senders) - set(store)
    for u in list(missing):
        if u in ctx.halted:
            store[u] = ctx.halted[u]
            missing.discard(u)
    while missing:
        yield
        for u, payloads in ctx.inbox.items():
            if u in missing:
                store[u] = payloads[-1]
                missing.discard(u)
        for u in list(missing):
            if u in ctx.halted:
                store[u] = ctx.halted[u]
                missing.discard(u)

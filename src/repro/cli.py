"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``      the algorithm registry (one row per :class:`~repro.zoo
              .AlgorithmSpec`: problem kind, paper row, baseline,
              flags) and the workload registry; ``--check`` is the
              registry-consistency CI gate.
``run``       run one algorithm on a workload, validate the solution and
              print the round accounting; ``--trace-out`` records a JSONL
              event trace, ``--profile`` prints engine phase timings,
              ``--engine reference`` replays on the specification engine.
``compare``   run an averaged algorithm and its worst-case baseline over an
              n-sweep and print the paper-table-shaped comparison;
              ``--all`` emits every Table 1/2 row the registry declares.
``inspect``   load a JSONL event trace: round narrative, active-vertex
              decay table, trace-vs-trace diffs, and ``--timeline`` --
              the per-shard x per-phase timing breakdown from the run's
              manifest (``<trace>.manifest.jsonl``).
``fuzz``      sample (algorithm x workload x fault plan) triples, run each
              under the seeded fault adversary, shrink violations to
              minimal replayable artifacts; ``--smoke`` is the CI gate.

All algorithm choices derive from :mod:`repro.zoo`; this module holds no
algorithm tables of its own.
"""

from __future__ import annotations

import argparse
import sys

from repro import zoo
from repro.bench import WORKLOADS, make_workload, paper_tables, render_spec_comparison
from repro.graphs import generators as gen
from repro.obs import report as obs_report
from repro.runtime import DELAY_DISTS, ENGINES, MODES


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (choices come from the registry)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Distributed symmetry-breaking with improved "
        "vertex-averaged complexity (Barenboim & Tzur, SPAA 2018)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    ls = sub.add_parser("list", help="list algorithms and workloads")
    ls.add_argument(
        "--check",
        action="store_true",
        help="CI gate: exit non-zero on any registry/CLI/fuzz/baseline "
        "inconsistency or unregistered driver",
    )

    run = sub.add_parser("run", help="run one algorithm and print metrics")
    run.add_argument("algorithm", choices=zoo.names())
    run.add_argument("-n", type=int, default=2000, help="vertex count")
    run.add_argument(
        "--workload", default="forest_union_a3", choices=sorted(WORKLOADS)
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--engine",
        default="fast",
        choices=ENGINES,
        help="round engine: the optimised fast path (default), the "
        "reference executable specification, or the columnar bulk "
        "engine (bulk-capable algorithms only)",
    )
    run.add_argument(
        "--mode",
        default="sync",
        choices=MODES,
        help="execution mode: the synchronous global-round barrier "
        "(default) or the event-driven asynchronous executor with "
        "seeded per-edge delivery times (outputs are identical; async "
        "additionally reports virtual-time metrics)",
    )
    run.add_argument(
        "--delay-dist",
        default=None,
        choices=DELAY_DISTS,
        help="link-delay distribution for --mode async "
        "(default: fixed unit delays)",
    )
    run.add_argument(
        "--delay-scale",
        type=float,
        default=1.0,
        metavar="S",
        help="mean link delay for --delay-dist (default 1.0)",
    )
    run.add_argument(
        "--delay-seed",
        type=int,
        default=0,
        metavar="K",
        help="seed of the per-edge delay draws (default 0)",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard the bulk-engine run across N worker processes over "
        "shared-memory CSR (requires --engine bulk; results are "
        "bit-identical to the unsharded bulk engine)",
    )
    run.add_argument(
        "--partitioner",
        default="range",
        choices=("range", "edge"),
        help="vertex partitioner for --shards: equal vertex ranges "
        "(default) or balanced adjacency mass",
    )
    run.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record the run's engine events to a JSONL trace "
        "(inspect it with `repro inspect PATH`)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase engine wall-clock timings",
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="JSON",
        help="inject a fault plan: inline JSON or @path to a JSON file, "
        'e.g. \'{"seed": 7, "crashes": {"hazard": 0.01}}\'; validation '
        "is restricted to the surviving subgraph",
    )

    cmp_ = sub.add_parser(
        "compare", help="averaged algorithm vs worst-case baseline over an n-sweep"
    )
    cmp_.add_argument(
        "algorithm",
        nargs="?",
        default=None,
        choices=tuple(s.name for s in zoo.with_baseline()),
    )
    cmp_.add_argument(
        "--all",
        action="store_true",
        dest="all_rows",
        help="emit every registered Table 1/2 row as a paper-shaped table",
    )
    cmp_.add_argument(
        "--workload", default="forest_union_a3", choices=sorted(WORKLOADS)
    )
    cmp_.add_argument(
        "--sweep",
        default="500,1000,2000,4000",
        help="comma-separated n values",
    )
    cmp_.add_argument("--seeds", type=int, default=2)

    ins = sub.add_parser(
        "inspect", help="analyze a JSONL event trace written by --trace-out"
    )
    ins.add_argument("trace", help="path to the JSONL trace")
    ins.add_argument(
        "--limit", type=int, default=50, help="rounds shown in the narrative"
    )
    ins.add_argument(
        "--decay",
        action="store_true",
        help="print the active-vertex decay table (the Lemma 6.1 shape)",
    )
    ins.add_argument(
        "--diff",
        default=None,
        metavar="OTHER",
        help="compare against a second trace (e.g. fast vs reference "
        "engine); exits 1 on divergence",
    )
    ins.add_argument(
        "--timeline",
        action="store_true",
        help="render the per-shard x per-phase timing breakdown from "
        "the run manifest next to the trace (requires the run to have "
        "used --profile)",
    )

    fz = sub.add_parser(
        "fuzz",
        help="fault-injection fuzzing: sample cases, shrink violations "
        "to replayable artifacts",
    )
    fz.add_argument("--budget", type=int, default=40, help="cases to run")
    fz.add_argument("--seed", type=int, default=0, help="case-space seed")
    fz.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: crash-only plans over every crash-safe registered "
        "algorithm; exits 1 on any survivor-safety violation",
    )
    fz.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for replayable failure artifacts "
        "(created only when something fails)",
    )
    fz.add_argument(
        "--algorithms",
        default=None,
        metavar="A,B,...",
        help="restrict to a comma-separated subset of the zoo",
    )
    fz.add_argument(
        "--replay",
        default=None,
        metavar="ARTIFACT",
        help="re-run one saved failure artifact instead of fuzzing",
    )
    fz.add_argument(
        "-v", "--verbose", action="store_true", help="print every case"
    )
    return p


def cmd_list(args=None, out=None) -> int:
    """Print the algorithm registry (with metadata) and the workloads.

    ``--check`` instead runs :func:`repro.zoo.check_registry` and exits
    non-zero on any inconsistency.
    """
    out = out or sys.stdout
    if args is not None and getattr(args, "check", False):
        problems = zoo.check_registry()
        if problems:
            print(f"registry INCONSISTENT ({len(problems)} problems):", file=out)
            for p in problems:
                print(f"  - {p}", file=out)
            return 1
        bulk = sum(1 for s in zoo.all_specs() if s.bulk_capable)
        print(
            f"registry consistent: {len(zoo.names())} algorithms, "
            f"{len(zoo.with_baseline())} with baselines, "
            f"{len(zoo.crash_safe())} crash-safe (fuzzed), "
            f"{bulk} bulk-capable",
            file=out,
        )
        return 0

    specs = zoo.all_specs()
    rows = []
    for s in specs:
        flags = []
        if s.randomized:
            flags.append("randomized")
        if s.crash_safe:
            flags.append("crash-safe")
        if s.bulk_capable:
            flags.append("bulk")
        rows.append(
            (
                s.name,
                s.problem,
                s.describe_row(),
                "yes" if s.has_baseline else "-",
                ",".join(flags) or "-",
            )
        )
    header = ("name", "problem", "paper row", "baseline", "flags")
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    print("algorithms:", file=out)
    print(
        "  " + "  ".join(h.ljust(w) for h, w in zip(header, widths)), file=out
    )
    for r in rows:
        print("  " + "  ".join(c.ljust(w) for c, w in zip(r, widths)), file=out)
    print("workloads:", file=out)
    for name in sorted(WORKLOADS):
        print(f"  {name}", file=out)
    return 0


def _parse_fault_plan(spec: str):
    """``--faults`` value: inline JSON, or ``@path`` to a JSON file."""
    import json

    from repro.faults import FaultPlan

    text = spec
    if spec.startswith("@"):
        with open(spec[1:]) as fh:
            text = fh.read()
    return FaultPlan.from_dict(json.loads(text))


def cmd_run(args, out=None) -> int:
    """Run one algorithm through the zoo pipeline, validate, print."""
    out = out or sys.stdout
    spec = zoo.get(args.algorithm)
    if spec.workloads and args.workload not in spec.workloads:
        print(
            f"run: algorithm {spec.name} only runs on workload(s) "
            f"{', '.join(spec.workloads)} (got {args.workload}); "
            f"pass --workload {spec.workloads[0]}",
            file=out,
        )
        return 2
    workload = make_workload(args.workload)
    g, a = workload(args.n, seed=args.seed)
    ids = gen.random_ids(g.n, seed=args.seed + 1)

    plan = None  # FaultPlan, when --faults is given
    faults_spec = getattr(args, "faults", None)
    if faults_spec:
        plan = _parse_fault_plan(faults_spec)
    trace_out = getattr(args, "trace_out", None)

    mode = getattr(args, "mode", "sync")
    delays = None
    if getattr(args, "delay_dist", None) is not None:
        if mode != "async":
            print("run: --delay-dist requires --mode async", file=out)
            return 2
        from repro.runtime import DelaySpec

        delays = DelaySpec(
            dist=args.delay_dist,
            scale=args.delay_scale,
            seed=args.delay_seed,
        )

    ex = zoo.execute(
        spec,
        g,
        a,
        ids,
        args.seed,
        engine=getattr(args, "engine", "fast"),
        shards=getattr(args, "shards", None),
        partitioner=getattr(args, "partitioner", "range"),
        mode=mode,
        delays=delays,
        faults=plan,
        trace=trace_out,
        trace_meta={
            "algo": args.algorithm,
            "workload": args.workload,
            "n": args.n,
            "seed": args.seed,
        },
        profile=getattr(args, "profile", False),
    )
    if ex.watchdog is not None:
        print(f"faults   : {ex.plan.describe()}", file=out)
        print(f"crashed  : {sorted(ex.crashed)}", file=out)
        print(f"NON-TERMINATION: {ex.watchdog}", file=out)
        return 2

    summary = ex.validate(g)
    m = ex.result.metrics
    print(f"workload : {args.workload}, {g} (a <= {a}, Delta = {g.max_degree()})", file=out)
    print(f"algorithm: {args.algorithm}", file=out)
    if mode != "sync":
        desc = delays.describe() if delays is not None else "fixed unit delays"
        print(f"mode     : {mode} ({desc})", file=out)
    if ex.faulted:
        print(f"faults   : {ex.plan.describe()}", file=out)
    print(f"solution : {summary}", file=out)
    print(
        f"rounds   : vertex-averaged {m.vertex_averaged:.2f} | "
        f"worst-case {m.worst_case} | RoundSum {m.round_sum} | "
        f"median {m.quantile(0.5)}",
        file=out,
    )
    t = getattr(ex.result, "times", None)
    if t is not None:
        print(
            f"time     : vertex-averaged {t.vertex_averaged_time:.2f} | "
            f"worst-case {t.worst_case_time:.2f} | "
            f"averaged output time {t.averaged_output_time:.2f}",
            file=out,
        )
    if trace_out:
        print(f"trace    : {trace_out} (repro inspect {trace_out})", file=out)
        if ex.manifest is not None:
            from repro.obs import telemetry

            print(
                f"manifest : {telemetry.manifest_path(trace_out)} "
                f"(key {ex.manifest.key[:12]})",
                file=out,
            )
    if ex.profiler is not None:
        print("engine phase profile:", file=out)
        print(ex.profiler.report(), file=out)
    return 0


def _load_report(path: str, out):
    """``RunReport.from_path`` with CLI-grade error reporting.

    Returns ``None`` after printing a one-line diagnosis (no traceback)
    for missing files, corrupt records, or traces without the ``meta``
    header a :class:`~repro.obs.sinks.JsonlSink` always writes first.
    """
    try:
        rep = obs_report.RunReport.from_path(path)
    except OSError as e:
        print(f"inspect: cannot read trace {path}: {e}", file=out)
        return None
    except ValueError as e:
        print(f"inspect: {e}", file=out)
        return None
    if rep.meta.get("ev") != "meta":
        print(
            f"inspect: {path} has no meta header line -- not a trace "
            "written by --trace-out / JsonlSink (or the header was lost)",
            file=out,
        )
        return None
    return rep


def cmd_inspect(args, out=None) -> int:
    """Analyze a JSONL event trace (narrative, decay, diffs, timeline)."""
    out = out or sys.stdout
    if getattr(args, "timeline", False):
        return _cmd_timeline(args.trace, out)
    rep = _load_report(args.trace, out)
    if rep is None:
        return 2
    if args.diff:
        other = _load_report(args.diff, out)
        if other is None:
            return 2
        identical, text = obs_report.diff(
            rep.main, other.main, label_a=args.trace, label_b=args.diff
        )
        print(text, file=out)
        return 0 if identical else 1
    print(f"trace    : {args.trace} [{rep.describe_meta()}]", file=out)
    manifest = _read_manifest(args.trace)
    if manifest is not None:
        print(
            f"manifest : key {manifest.get('key', '?')[:12]} "
            f"engine={manifest.get('engine')} "
            f"mode={manifest.get('mode', 'sync')} "
            f"shards={manifest.get('shards')} "
            f"status={manifest.get('status')}",
            file=out,
        )
    if not rep.collectors:
        print("no engine events recorded", file=out)
        return 1
    for i, col in enumerate(rep.collectors, start=1):
        if len(rep.collectors) > 1:
            print(f"--- execution {i}/{len(rep.collectors)} ---", file=out)
        print(f"summary  : {col.summary()}", file=out)
        print(obs_report.narrative(col, limit=args.limit), file=out)
        if args.decay:
            print(obs_report.decay_table(col), file=out)
    return 0


def _read_manifest(trace_path: str):
    """The latest manifest record for a trace, or None (never raises)."""
    from repro.obs import telemetry

    try:
        return telemetry.latest_manifest(telemetry.manifest_path(trace_path))
    except (OSError, ValueError):
        return None


def _cmd_timeline(trace_path: str, out) -> int:
    """``repro inspect --timeline``: render the manifest's timing block."""
    from repro.obs import telemetry

    mpath = telemetry.manifest_path(trace_path)
    try:
        manifest = telemetry.latest_manifest(mpath)
    except OSError:
        print(
            f"inspect: no manifest at {mpath} -- timelines are read from "
            "the run manifest written next to the trace; re-run with "
            "--trace-out",
            file=out,
        )
        return 2
    except ValueError as e:
        print(f"inspect: {e}", file=out)
        return 2
    if manifest is None:
        print(f"inspect: manifest file {mpath} holds no records", file=out)
        return 2
    timing = manifest.get("timing") or {}
    print(
        f"timeline : {manifest.get('algo')} n={manifest.get('n')} "
        f"engine={manifest.get('engine')} "
        f"mode={manifest.get('mode', 'sync')} "
        f"shards={manifest.get('shards')} "
        f"(key {manifest.get('key', '?')[:12]})",
        file=out,
    )
    print(telemetry.render_timeline(timing), file=out)
    if not (timing.get("phases") or timing.get("shards")):
        print(
            "inspect: the manifest records no phase timing -- re-run "
            "with --profile to fill it",
            file=out,
        )
        return 2
    return 0


def cmd_compare(args, out=None) -> int:
    """Sweep averaged algorithms against their worst-case baselines.

    One algorithm prints its single paper-shaped row table; ``--all``
    renders every registered Table 1/2 row, grouped by table, entirely
    from registry metadata.
    """
    out = out or sys.stdout
    ns = [int(x) for x in args.sweep.split(",") if x]
    if getattr(args, "all_rows", False):
        print(
            paper_tables(ns, seeds=args.seeds, workload=args.workload),
            file=out,
        )
        return 0
    if args.algorithm is None:
        print("compare: give an algorithm name or --all", file=out)
        return 2
    spec = zoo.get(args.algorithm)
    print(
        render_spec_comparison(
            spec, args.workload, ns, seeds=args.seeds
        ),
        file=out,
    )
    return 0


def cmd_fuzz(args, out=None) -> int:
    """Fault-injection fuzzing / artifact replay; exits 1 on violations."""
    out = out or sys.stdout
    from repro.faults import fuzz as fz
    from repro.faults.harness import replay_artifact

    if args.replay:
        outcome = replay_artifact(args.replay)
        print(outcome.describe(), file=out)
        if outcome.detail and "\n" in outcome.detail:
            print(outcome.detail, file=out)
        return 1 if outcome.status == fz.OUTCOME_VIOLATION else 0

    log = (lambda line: print(line, file=out)) if args.verbose else None
    algorithms = args.algorithms.split(",") if args.algorithms else None
    if args.smoke:
        report = fz.smoke(
            budget=args.budget, seed=args.seed, out_dir=args.out,
            algorithms=algorithms, log=log,
        )
    else:
        report = fz.fuzz(
            budget=args.budget,
            seed=args.seed,
            out_dir=args.out,
            algorithms=algorithms,
            log=log,
        )
    print(report.summary(), file=out)
    for outcome, original, path in report.violations:
        print(f"VIOLATION (shrunk from n={original.n}):", file=out)
        print(f"  {outcome.describe()}", file=out)
        if path:
            print(f"  artifact: {path} (repro fuzz --replay {path})", file=out)
    if report.errors and not args.verbose:
        for outcome, path in report.errors[:5]:
            suffix = f" [{path}]" if path else ""
            print(f"error: {outcome.describe()}{suffix}", file=out)
        if len(report.errors) > 5:
            print(f"... {len(report.errors) - 5} more errors", file=out)
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "compare":
        return cmd_compare(args)
    if args.command == "inspect":
        return cmd_inspect(args)
    if args.command == "fuzz":
        return cmd_fuzz(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

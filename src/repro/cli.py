"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``      algorithms and workloads.
``run``       run one algorithm on a workload, validate the solution and
              print the round accounting; ``--trace-out`` records a JSONL
              event trace, ``--profile`` prints engine phase timings.
``compare``   run an averaged algorithm and its worst-case baseline over an
              n-sweep and print the paper-table-shaped comparison.
``inspect``   load a JSONL event trace: round narrative, active-vertex
              decay table, and trace-vs-trace diffs.
``fuzz``      sample (algorithm x workload x fault plan) triples, run each
              under the seeded fault adversary, shrink violations to
              minimal replayable artifacts; ``--smoke`` is the CI gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

import repro
from repro import obs
from repro.bench import WORKLOADS, make_workload, render_rows, sweep
from repro.graphs import generators as gen
from repro.obs import report as obs_report
from repro import verify


def _validate_coloring(g, res):
    verify.assert_proper_coloring(g, res.colors)
    return f"proper coloring, {res.colors_used} colors (bound {res.palette_bound})"


def _validate_mis(g, res):
    verify.assert_maximal_independent_set(g, res.mis)
    return f"maximal independent set, |I| = {len(res.mis)}"


def _validate_mm(g, res):
    verify.assert_maximal_matching(g, res.matching)
    return f"maximal matching, |M| = {len(res.matching)}"


def _validate_ec(g, res):
    verify.assert_proper_edge_coloring(g, res.edge_colors)
    return f"proper edge coloring, {res.colors_used} colors (bound {res.palette_bound})"


def _validate_partition(g, res):
    verify.assert_h_partition(g, res.h_index, res.A)
    return f"H-partition into {res.num_sets} sets (A = {res.A})"


#: name -> (driver(graph, a, ids, seed), validator)
ALGORITHMS: dict[str, tuple[Callable, Callable]] = {
    "partition": (lambda g, a, ids, s: repro.run_partition(g, a=a, ids=ids), _validate_partition),
    "a2logn": (lambda g, a, ids, s: repro.run_a2logn_coloring(g, a=a, ids=ids), _validate_coloring),
    "a2": (lambda g, a, ids, s: repro.run_a2_coloring(g, a=a, ids=ids), _validate_coloring),
    "oa": (lambda g, a, ids, s: repro.run_oa_coloring(g, a=a, ids=ids), _validate_coloring),
    "ka2": (lambda g, a, ids, s: repro.run_ka2_coloring(g, a=a, ids=ids), _validate_coloring),
    "ka": (lambda g, a, ids, s: repro.run_ka_coloring(g, a=a, ids=ids), _validate_coloring),
    "one-plus-eta": (
        lambda g, a, ids, s: repro.run_one_plus_eta_coloring(g, a=a, ids=ids),
        _validate_coloring,
    ),
    "delta-plus-one": (
        lambda g, a, ids, s: repro.run_delta_plus_one_coloring(g, a=a, ids=ids),
        _validate_coloring,
    ),
    "mis": (lambda g, a, ids, s: repro.run_mis(g, a=a, ids=ids), _validate_mis),
    "edge-coloring": (lambda g, a, ids, s: repro.run_edge_coloring(g, a=a, ids=ids), _validate_ec),
    "matching": (
        lambda g, a, ids, s: repro.run_maximal_matching(g, a=a, ids=ids),
        _validate_mm,
    ),
    "rand-delta-plus-one": (
        lambda g, a, ids, s: repro.run_rand_delta_plus_one(g, ids=ids, seed=s),
        _validate_coloring,
    ),
    "aloglogn": (
        lambda g, a, ids, s: repro.run_aloglogn_coloring(g, a=a, ids=ids, seed=s),
        _validate_coloring,
    ),
}

#: averaged algorithm -> its worst-case baseline, for `compare`
BASELINES: dict[str, Callable] = {
    "partition": lambda g, a, ids, s: repro.run_worstcase_forest_decomposition(g, a=a, ids=ids),
    "a2logn": lambda g, a, ids, s: repro.run_arb_linial_worstcase(g, a=a, ids=ids),
    "a2": lambda g, a, ids, s: repro.run_arb_linial_worstcase(g, a=a, ids=ids),
    "ka2": lambda g, a, ids, s: repro.run_arb_linial_worstcase(g, a=a, ids=ids),
    "oa": lambda g, a, ids, s: repro.run_arb_color_worstcase(g, a=a, ids=ids),
    "ka": lambda g, a, ids, s: repro.run_arb_color_worstcase(g, a=a, ids=ids),
    "delta-plus-one": lambda g, a, ids, s: repro.run_delta_plus_one_worstcase(g, ids=ids),
    "edge-coloring": lambda g, a, ids, s: repro.run_edge_coloring(
        g, a=a, ids=ids, worstcase_schedule=True
    ),
    "matching": lambda g, a, ids, s: repro.run_maximal_matching(
        g, a=a, ids=ids, worstcase_schedule=True
    ),
    "aloglogn": lambda g, a, ids, s: repro.run_arb_color_worstcase(g, a=a, ids=ids),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Distributed symmetry-breaking with improved "
        "vertex-averaged complexity (Barenboim & Tzur, SPAA 2018)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list algorithms and workloads")

    run = sub.add_parser("run", help="run one algorithm and print metrics")
    run.add_argument("algorithm", choices=sorted(ALGORITHMS))
    run.add_argument("-n", type=int, default=2000, help="vertex count")
    run.add_argument(
        "--workload", default="forest_union_a3", choices=sorted(WORKLOADS)
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record the run's engine events to a JSONL trace "
        "(inspect it with `repro inspect PATH`)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase engine wall-clock timings",
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="JSON",
        help="inject a fault plan: inline JSON or @path to a JSON file, "
        'e.g. \'{"seed": 7, "crashes": {"hazard": 0.01}}\'; validation '
        "is restricted to the surviving subgraph",
    )

    cmp_ = sub.add_parser(
        "compare", help="averaged algorithm vs worst-case baseline over an n-sweep"
    )
    cmp_.add_argument("algorithm", choices=sorted(BASELINES))
    cmp_.add_argument(
        "--workload", default="forest_union_a3", choices=sorted(WORKLOADS)
    )
    cmp_.add_argument(
        "--sweep",
        default="500,1000,2000,4000",
        help="comma-separated n values",
    )
    cmp_.add_argument("--seeds", type=int, default=2)

    ins = sub.add_parser(
        "inspect", help="analyze a JSONL event trace written by --trace-out"
    )
    ins.add_argument("trace", help="path to the JSONL trace")
    ins.add_argument(
        "--limit", type=int, default=50, help="rounds shown in the narrative"
    )
    ins.add_argument(
        "--decay",
        action="store_true",
        help="print the active-vertex decay table (the Lemma 6.1 shape)",
    )
    ins.add_argument(
        "--diff",
        default=None,
        metavar="OTHER",
        help="compare against a second trace (e.g. fast vs reference "
        "engine); exits 1 on divergence",
    )

    fz = sub.add_parser(
        "fuzz",
        help="fault-injection fuzzing: sample cases, shrink violations "
        "to replayable artifacts",
    )
    fz.add_argument("--budget", type=int, default=40, help="cases to run")
    fz.add_argument("--seed", type=int, default=0, help="case-space seed")
    fz.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: crash-only plans over the seed algorithm zoo; "
        "exits 1 on any survivor-safety violation",
    )
    fz.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for replayable failure artifacts "
        "(created only when something fails)",
    )
    fz.add_argument(
        "--algorithms",
        default=None,
        metavar="A,B,...",
        help="restrict to a comma-separated subset of the zoo",
    )
    fz.add_argument(
        "--replay",
        default=None,
        metavar="ARTIFACT",
        help="re-run one saved failure artifact instead of fuzzing",
    )
    fz.add_argument(
        "-v", "--verbose", action="store_true", help="print every case"
    )
    return p


def cmd_list(out=None) -> int:
    """Print the algorithm and workload registries."""
    out = out or sys.stdout
    print("algorithms:", file=out)
    for name in sorted(ALGORITHMS):
        star = " (has worst-case baseline for `compare`)" if name in BASELINES else ""
        print(f"  {name}{star}", file=out)
    print("workloads:", file=out)
    for name in sorted(WORKLOADS):
        print(f"  {name}", file=out)
    return 0


def _parse_fault_plan(spec: str):
    """``--faults`` value: inline JSON, or ``@path`` to a JSON file."""
    import json

    from repro.faults import FaultPlan

    text = spec
    if spec.startswith("@"):
        with open(spec[1:]) as fh:
            text = fh.read()
    return FaultPlan.from_dict(json.loads(text))


def _drive(driver, g, a, ids, seed, plan, out):
    """Run the driver, under the fault plan if one was given.

    Returns ``(result, crashed)``; ``(None, crashed)`` when the
    non-termination watchdog fired.
    """
    if plan is None or plan.empty:
        return driver(g, a, ids, seed), ()
    from repro import faults as flt
    from repro.runtime import RoundLimitExceeded

    injector = plan.injector()
    try:
        with flt.session(injector):
            res = driver(g, a, ids, seed)
    except RoundLimitExceeded as e:
        print(f"faults   : {plan.describe()}", file=out)
        print(f"crashed  : {sorted(injector.crashed)}", file=out)
        print(f"NON-TERMINATION: {e}", file=out)
        return None, tuple(sorted(injector.crashed))
    return res, tuple(sorted(injector.crashed))


def _validate_survivors(algorithm, g, res, crashed, validator):
    """Under faults, check safety on the surviving subgraph only."""
    from repro.faults import harness

    check = harness.zoo().get(algorithm, (None, None))[1]
    if check is None:
        return "validation skipped (no survivor-safety check for this algorithm)"
    alive = set(g.vertices()) - set(crashed)
    check(g, res, alive)
    return (
        f"survivor-safety OK on {len(alive)}/{g.n} surviving vertices "
        f"(crashed: {sorted(crashed) if crashed else 'none'})"
    )


def cmd_run(args, out=None) -> int:
    """Run one algorithm, validate the solution, print metrics."""
    out = out or sys.stdout
    workload = make_workload(args.workload)
    g, a = workload(args.n, seed=args.seed)
    ids = gen.random_ids(g.n, seed=args.seed + 1)
    driver, validator = ALGORITHMS[args.algorithm]

    plan = None  # FaultPlan, when --faults is given
    faults_spec = getattr(args, "faults", None)
    if faults_spec:
        plan = _parse_fault_plan(faults_spec)

    trace_out = getattr(args, "trace_out", None)
    profile = getattr(args, "profile", False)
    profiler = obs.PhaseProfiler() if profile else None
    if trace_out or profile:
        # Drivers build their networks internally, so observe them via
        # the process-wide default bus for the duration of the run.
        sinks = []
        if trace_out:
            sinks.append(
                obs.JsonlSink(
                    trace_out,
                    meta={
                        "algo": args.algorithm,
                        "workload": args.workload,
                        "n": args.n,
                        "seed": args.seed,
                    },
                )
            )
        with obs.session(*sinks, profiler=profiler):
            res, crashed = _drive(driver, g, a, ids, args.seed, plan, out)
    else:
        res, crashed = _drive(driver, g, a, ids, args.seed, plan, out)
    if res is None:
        return 2  # watchdog fired under the fault plan

    if plan is not None and not plan.empty:
        summary = _validate_survivors(args.algorithm, g, res, crashed, validator)
    else:
        summary = validator(g, res)
    m = res.metrics
    print(f"workload : {args.workload}, {g} (a <= {a}, Delta = {g.max_degree()})", file=out)
    print(f"algorithm: {args.algorithm}", file=out)
    if plan is not None and not plan.empty:
        print(f"faults   : {plan.describe()}", file=out)
    print(f"solution : {summary}", file=out)
    print(
        f"rounds   : vertex-averaged {m.vertex_averaged:.2f} | "
        f"worst-case {m.worst_case} | RoundSum {m.round_sum} | "
        f"median {m.quantile(0.5)}",
        file=out,
    )
    if trace_out:
        print(f"trace    : {trace_out} (repro inspect {trace_out})", file=out)
    if profiler is not None:
        print("engine phase profile:", file=out)
        print(profiler.report(), file=out)
    return 0


def cmd_inspect(args, out=None) -> int:
    """Analyze a JSONL event trace (narrative, decay table, diffs)."""
    out = out or sys.stdout
    rep = obs_report.RunReport.from_path(args.trace)
    if args.diff:
        other = obs_report.RunReport.from_path(args.diff)
        identical, text = obs_report.diff(
            rep.main, other.main, label_a=args.trace, label_b=args.diff
        )
        print(text, file=out)
        return 0 if identical else 1
    print(f"trace    : {args.trace} [{rep.describe_meta()}]", file=out)
    if not rep.collectors:
        print("no engine events recorded", file=out)
        return 1
    for i, col in enumerate(rep.collectors, start=1):
        if len(rep.collectors) > 1:
            print(f"--- execution {i}/{len(rep.collectors)} ---", file=out)
        print(f"summary  : {col.summary()}", file=out)
        print(obs_report.narrative(col, limit=args.limit), file=out)
        if args.decay:
            print(obs_report.decay_table(col), file=out)
    return 0


def cmd_compare(args, out=None) -> int:
    """Sweep an averaged algorithm against its worst-case baseline."""
    out = out or sys.stdout
    workload = make_workload(args.workload)
    ns = [int(x) for x in args.sweep.split(",") if x]
    driver, _validator = ALGORITHMS[args.algorithm]
    baseline = BASELINES[args.algorithm]
    ours = sweep(args.algorithm, driver, workload, ns, seeds=args.seeds)
    base = sweep("worst-case baseline", baseline, workload, ns, seeds=args.seeds)
    print(
        render_rows(
            f"{args.algorithm} on {args.workload}: vertex-averaged vs worst-case",
            ours,
            base,
        ),
        file=out,
    )
    return 0


def cmd_fuzz(args, out=None) -> int:
    """Fault-injection fuzzing / artifact replay; exits 1 on violations."""
    out = out or sys.stdout
    from repro.faults import fuzz as fz
    from repro.faults.harness import replay_artifact

    if args.replay:
        outcome = replay_artifact(args.replay)
        print(outcome.describe(), file=out)
        if outcome.detail and "\n" in outcome.detail:
            print(outcome.detail, file=out)
        return 1 if outcome.status == fz.OUTCOME_VIOLATION else 0

    log = (lambda line: print(line, file=out)) if args.verbose else None
    algorithms = args.algorithms.split(",") if args.algorithms else None
    if args.smoke:
        report = fz.smoke(
            budget=args.budget, seed=args.seed, out_dir=args.out, log=log
        )
    else:
        report = fz.fuzz(
            budget=args.budget,
            seed=args.seed,
            out_dir=args.out,
            algorithms=algorithms,
            log=log,
        )
    print(report.summary(), file=out)
    for outcome, original, path in report.violations:
        print(f"VIOLATION (shrunk from n={original.n}):", file=out)
        print(f"  {outcome.describe()}", file=out)
        if path:
            print(f"  artifact: {path} (repro fuzz --replay {path})", file=out)
    if report.errors and not args.verbose:
        for outcome, path in report.errors[:5]:
            suffix = f" [{path}]" if path else ""
            print(f"error: {outcome.describe()}{suffix}", file=out)
        if len(report.errors) > 5:
            print(f"... {len(report.errors) - 5} more errors", file=out)
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "compare":
        return cmd_compare(args)
    if args.command == "inspect":
        return cmd_inspect(args)
    if args.command == "fuzz":
        return cmd_fuzz(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

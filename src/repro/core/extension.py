"""The extension-from-any-partial-solution framework (Section 8).

Theorem 8.2 converts a worst-case f(Delta, n) algorithm for any problem
whose partial solutions extend (vertex coloring, MIS, edge coloring,
maximal matching) into a vertex-averaged O(f(a, n)) algorithm: run
Procedure Partition; as each H-set H_i forms, solve the problem on G(H_i)
(algorithm A) extending the solution already fixed on H_1 u ... u H_{i-1},
handling cross edges with algorithm B where the problem labels edges.
Within an H-set the maximum degree is at most A = (2+eps)a, so the
worst-case subroutine runs with a in place of Delta.

This module implements the framework for the two vertex problems:

* :func:`run_delta_plus_one_coloring` -- Corollary 8.3, (Delta+1) colors.
* :func:`run_mis` -- Corollary 8.4, maximal independent set.

(The edge problems -- Corollaries 8.6 and 8.8 -- live in
:mod:`repro.core.edgealgo`, which builds the shared edge-decision wave.)

Both use the substituted (deg+1)-list-coloring of DESIGN.md #1 (Linial
reduction + greedy pick-wave) as algorithm A, and run event-driven: a
vertex commits its output as soon as every neighbor that precedes it in
the global acyclic priority (H-index, within-set Linial color) has
committed -- never later than the paper's blocked schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.core.arb_linial import arb_linial_steps, greedy_from_list, _step_tag
from repro.core.coloring import ColoringResult
from repro.core.common import JOIN, LocalView, degree_bound, partition_length_bound
from repro.core.coverfree import palette_schedule
from repro.core.partition import join_h_set
from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.metrics import RoundMetrics, TimeMetrics
from repro.runtime.network import SyncNetwork


def _preamble(
    ctx: Context,
    view: LocalView,
    A: int,
    ell: int,
    schedule,
    worstcase_schedule: bool = False,
):
    """Shared opening of every extension algorithm: join an H-set, learn
    the same-set membership, run the within-set Linial reduction to a temp
    color, exchange temps, and classify the neighborhood.

    With ``worstcase_schedule`` the vertex idles until the full partition
    bound has elapsed first -- the prior work's schedule, for baselines.

    Returns (h, temp, same_smaller, same_larger, earlier, later) where
    ``earlier``/``later`` are neighbors in strictly earlier/later H-sets
    and same_* splits the same-set neighbors by temp color.
    """
    h = yield from join_h_set(ctx, view, A)
    if worstcase_schedule:
        while ctx.round < ell + 1:
            yield
            view.absorb(ctx)
    yield
    view.absorb(ctx)
    same = [u for u in ctx.neighbors if view.value(JOIN, u) == h]
    temp = yield from arb_linial_steps(ctx, view, same, schedule, tag="x")
    last = _step_tag("x", len(schedule))
    ctx.broadcast((last, temp))
    missing = [u for u in same if not view.heard(last, u)]
    while missing:
        yield
        view.absorb(ctx)
        missing = [u for u in missing if not view.heard(last, u)]
    temps = view.get(last)
    same_smaller = [u for u in same if temps[u] < temp]
    same_larger = [u for u in same if temps[u] > temp]
    # Earlier-set neighbors are fully known (they announced before we
    # joined); everything not announced with index <= h is later.
    joined = view.get(JOIN)
    earlier = [u for u in ctx.neighbors if joined.get(u, h + 1) < h]
    later = [
        u for u in ctx.neighbors if u not in set(same) and joined.get(u, h + 1) > h
    ]
    return h, temp, same_smaller, same_larger, earlier, later


def _await_tag(ctx: Context, view: LocalView, tag: str, senders):
    missing = [u for u in senders if not view.heard(tag, u)]
    while missing:
        yield
        view.absorb(ctx)
        missing = [u for u in missing if not view.heard(tag, u)]


# ---------------------------------------------------------------------------
# Corollary 8.3: (Delta + 1)-vertex-coloring
# ---------------------------------------------------------------------------


def run_delta_plus_one_coloring(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    worstcase_schedule: bool = False,
) -> ColoringResult:
    """Corollary 8.3: color with the global palette {0 .. Delta}.

    Algorithm A is (deg+1)-list-coloring of G(H_i) where each vertex's list
    is {0..Delta} minus the final colors of its already-colored neighbors
    in earlier sets; the greedy pick happens in global priority order
    (H-index, within-set temp color), so at most deg(v) colors are ever
    forbidden and the palette always suffices.
    """
    A = degree_bound(a, eps)
    ell = partition_length_bound(graph.n, eps)
    delta = graph.max_degree()
    PICK = "dp:p"

    def program(ctx: Context):
        schedule = ctx.config["schedule"]
        view = LocalView()
        h, temp, smaller, _larger, earlier, _later = yield from _preamble(
            ctx, view, A, ell, schedule, worstcase_schedule
        )
        preds = smaller + earlier
        yield from _await_tag(ctx, view, PICK, preds)
        forbidden = {view.value(PICK, u) for u in preds}
        color = greedy_from_list(range(delta + 1), forbidden)
        ctx.broadcast((PICK, color))
        return (h, color)

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    schedule = palette_schedule(net.config["id_space"], A)
    net.config["schedule"] = schedule
    fixpoint = schedule[-1].ground_size if schedule else net.config["id_space"]
    budget = (ell + 2) * (len(schedule) + fixpoint + 4) + 64
    res = net.run(program, max_rounds=budget)
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=delta + 1,
    )


# ---------------------------------------------------------------------------
# Corollary 8.4: maximal independent set
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MISResult:
    """A maximal independent set with its round accounting."""

    in_mis: dict[int, bool]
    h_index: dict[int, int]
    metrics: RoundMetrics
    #: virtual-time accounting; only asynchronous-mode runs fill this in
    times: "TimeMetrics | None" = None

    @property
    def mis(self) -> set[int]:
        return {v for v, flag in self.in_mis.items() if flag}


def run_mis(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    worstcase_schedule: bool = False,
) -> MISResult:
    """Corollary 8.4: greedy MIS along the global acyclic priority
    (H-index, within-set temp color): a vertex joins the MIS iff none of
    its predecessors did.  This realises the paper's reduction from MIS to
    (Delta+1)-coloring-within-the-H-set with color-class sweeps, in the
    event-driven form: a color class *is* a priority level."""
    A = degree_bound(a, eps)
    ell = partition_length_bound(graph.n, eps)
    DECIDE = "mis:d"

    def program(ctx: Context):
        schedule = ctx.config["schedule"]
        view = LocalView()
        h, temp, smaller, _larger, earlier, _later = yield from _preamble(
            ctx, view, A, ell, schedule, worstcase_schedule
        )
        preds = smaller + earlier
        yield from _await_tag(ctx, view, DECIDE, preds)
        in_mis = not any(view.value(DECIDE, u) for u in preds)
        ctx.broadcast((DECIDE, in_mis))
        return (h, in_mis)

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    schedule = palette_schedule(net.config["id_space"], A)
    net.config["schedule"] = schedule
    fixpoint = schedule[-1].ground_size if schedule else net.config["id_space"]
    budget = (ell + 2) * (len(schedule) + fixpoint + 4) + 64
    res = net.run(program, max_rounds=budget)
    return MISResult(
        in_mis={v: flag for v, (h, flag) in res.outputs.items()},
        h_index={v: h for v, (h, flag) in res.outputs.items()},
        metrics=res.metrics,
        times=res.times,
    )

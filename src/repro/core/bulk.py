"""Columnar (bulk-engine) drivers for the data-parallel zoo algorithms.

Each ``bulk_*`` function is the vectorized twin of a generator driver:
same signature surface, same result type, **bit-identical** outputs and
round accounting (the three-way differential suite pins this).  State
lives in numpy arrays indexed by vertex; one synchronous round is a few
array operations over the cached CSR view, so n = 10^6 runs complete in
seconds where the generator engines would step a million coroutines per
round.

The accounting rule shared by all drivers (mirroring the fast engine):
at round r, a terminating vertex's broadcast is routed to every neighbor
not yet *known* halted -- i.e. with final termination round 0/unset,
``== r`` (same-round, routed then dropped) or ``> r`` -- and the round's
message total is the delivered copies (``term > r``) plus one halt
notice per vertex terminating this round.

Only :data:`BULK_DRIVERS` entries run on the bulk engine; the zoo
mirrors this registry through ``AlgorithmSpec.bulk_capable`` and
``zoo.check_registry`` fails on any drift.  Under an installed
:func:`repro.faults.session`, every driver delegates to its sharded
twin's fault-aware kernel (session-optional: without a shard session it
runs in-process), which replays crash-stop and message-drop plans
bit-identically to the fast engine; duplicate/delay plans are rejected
up front (see docs/fault_tolerance.md).
"""

from __future__ import annotations

from random import Random
from typing import Any, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.runtime.bulk import (
    BULK_CHUNK,
    finalize_run,
    gather_rows,
    id_space,
    profiled,
    resolve_ids,
)
from repro.runtime.network import RoundLimitExceeded


def _faulted() -> bool:
    """Whether a fault session is installed (-> delegate to the sharded
    twin's fault-aware kernel instead of the closed-form bulk round)."""
    from repro.faults.plan import current

    return current() is not None


def _account_round(
    term: np.ndarray,
    nbrs: np.ndarray,
    rnd: int,
    halts: int,
    sent: list[int],
    msgs: list[int],
    recv: list[int],
) -> None:
    """Append one round of the shared accounting rule.

    ``nbrs`` is the concatenated neighbor multiset of this round's
    senders (every sender broadcasts once), ``halts`` the number of
    vertices terminating this round.
    """
    t = term[nbrs]
    live = (t == 0) | (t > rnd)
    counted = int(live.sum())
    sent.append(counted + int((t == rnd).sum()))
    msgs.append(counted + halts)
    recv.append(int(np.unique(nbrs[live]).size))


def _account_round_chunked(
    term: np.ndarray,
    offsets: np.ndarray,
    indices: np.ndarray,
    joiners: np.ndarray,
    rnd: int,
    sent: list[int],
    msgs: list[int],
    recv: list[int],
) -> np.ndarray:
    """Chunked twin of :func:`_account_round` for oversized rounds.

    Processes ``joiners`` in :data:`BULK_CHUNK`-sender chunks, counting
    distinct live receivers with a boolean scatter mask (equal to the
    ``np.unique`` count) and accumulating the next round's JOIN-arrival
    bincount, which is returned so the caller never materialises the full
    concatenated neighbor multiset.
    """
    n = term.size
    counted = 0
    same = 0
    recv_mask = np.zeros(n, dtype=bool)
    inc = np.zeros(n, dtype=np.int64)
    for lo in range(0, joiners.size, BULK_CHUNK):
        nb = gather_rows(offsets, indices, joiners[lo : lo + BULK_CHUNK])
        t = term[nb]
        live = (t == 0) | (t > rnd)
        counted += int(live.sum())
        same += int((t == rnd).sum())
        recv_mask[nb[live]] = True
        inc += np.bincount(nb, minlength=n)
    sent.append(counted + same)
    msgs.append(counted + int(joiners.size))
    recv.append(int(recv_mask.sum()))
    return inc


# ---------------------------------------------------------------------------
# Procedure Partition (Theorem 6.3) -- the n = 10^6 workhorse
# ---------------------------------------------------------------------------


def bulk_partition(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    max_rounds: int | None = None,
):
    """Columnar Procedure Partition: one vectorized degree-threshold test
    per round.  ``heard[v]`` counts neighbors that joined in earlier
    rounds; v joins at the first round with ``deg(v) - heard(v) <= A``.
    """
    from repro.core.common import degree_bound, partition_length_bound
    from repro.core.partition import PartitionResult

    if _faulted():
        from repro.core.shard import sharded_partition

        return sharded_partition(
            graph, a, eps=eps, ids=ids, seed=seed, max_rounds=max_rounds
        )
    n = graph.n
    resolve_ids(graph, ids)  # IDs only validate; Partition is ID-oblivious
    A = degree_bound(a, eps)
    if max_rounds is None:
        max_rounds = partition_length_bound(n, eps) + 4
    offsets, indices = graph.csr(dtype="auto")
    deg = (offsets[1:] - offsets[:-1]).astype(np.int64)

    term = np.zeros(n, dtype=np.int64)
    heard = np.zeros(n, dtype=np.int64)
    sent: list[int] = []
    msgs: list[int] = []
    recv: list[int] = []
    active = np.arange(n, dtype=np.int64)
    inc = None
    rnd = 0
    with profiled("kernel"):
        while active.size:
            rnd += 1
            if rnd > max_rounds:
                raise RoundLimitExceeded(max_rounds, active.tolist(), None)
            if inc is not None:
                # JOIN broadcasts from last round's joiners arrive now
                heard += inc
                inc = None
            join = (deg[active] - heard[active]) <= A
            joiners = active[join]
            term[joiners] = rnd
            if joiners.size <= BULK_CHUNK:
                nbrs = gather_rows(offsets, indices, joiners)
                _account_round(
                    term, nbrs, rnd, int(joiners.size), sent, msgs, recv
                )
                if nbrs.size:
                    inc = np.bincount(nbrs, minlength=n)
            else:
                # Chunked pass: identical accounting, scratch bounded by
                # the chunk's degree mass instead of the round's.
                inc = _account_round_chunked(
                    term, offsets, indices, joiners, rnd, sent, msgs, recv
                )
            active = active[~join]

    outputs = {v: int(term[v]) for v in range(n)}
    res = finalize_run(outputs, term, sent, msgs, recv)
    return PartitionResult(h_index=dict(res.outputs), A=A, metrics=res.metrics)


# ---------------------------------------------------------------------------
# Luby's randomized MIS (Table 2 baseline)
# ---------------------------------------------------------------------------


def bulk_luby_mis(
    graph: Graph,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    max_rounds: int | None = None,
):
    """Columnar Luby MIS in lockstep attempts.

    Attempt k: every alive vertex draws its k-th ``Random(f"{seed}:{id}:
    seed").random()`` value (the same per-vertex stream the generator
    driver consumes) and broadcasts it at round 2k-1; round 2k the
    vertices beating every alive neighbor join the MIS and terminate;
    round 2k+1 their alive neighbors leave and terminate.

    Memory note: each alive vertex holds one ``random.Random`` instance,
    created lazily on its first draw and released when it decides --
    worst case (attempt 1, everyone alive) that is n Mersenne states, so
    prefer :func:`bulk_partition` as the n = 10^6 showcase.
    """
    if _faulted():
        from repro.core.shard import sharded_luby_mis

        return sharded_luby_mis(graph, ids=ids, seed=seed, max_rounds=max_rounds)
    from repro.core.extension import MISResult

    n = graph.n
    ids_arr = resolve_ids(graph, ids)
    if max_rounds is None:
        max_rounds = 64 * (n.bit_length() + 4) + 64
    offsets, indices = graph.csr(dtype="auto")
    deg = (offsets[1:] - offsets[:-1]).astype(np.int64)

    rngs: list[Random | None] = [None] * n
    rand = np.zeros(n, dtype=np.float64)
    alive = np.ones(n, dtype=bool)
    term = np.zeros(n, dtype=np.int64)
    outputs: dict[int, Any] = {}
    sent: list[int] = []
    msgs: list[int] = []
    recv: list[int] = []
    prev_l = np.zeros(0, dtype=np.int64)  # losers announcing next round
    k = 0
    with profiled("kernel"):
        while alive.any():
            k += 1
            r1 = 2 * k - 1
            act = np.flatnonzero(alive)
            if r1 > max_rounds:
                raise RoundLimitExceeded(
                    max_rounds, np.concatenate((act, prev_l)).tolist(), None
                )
            for v in act:
                rng = rngs[v]
                if rng is None:
                    rng = rngs[v] = Random(f"{seed}:{int(ids_arr[v])}:seed")
                rand[v] = rng.random()
            # round 2k-1: alive vertices broadcast priorities; last
            # attempt's losers broadcast their leave announcement and
            # terminate
            nb = gather_rows(offsets, indices, np.concatenate((act, prev_l)))
            _account_round(term, nb, r1, int(prev_l.size), sent, msgs, recv)

            # round 2k: win check -- beat every alive neighbor on
            # (rand, id)
            r2 = 2 * k
            if r2 > max_rounds:
                raise RoundLimitExceeded(max_rounds, act.tolist(), None)
            sr = np.repeat(act, deg[act])
            nb2 = gather_rows(offsets, indices, act)
            am = alive[nb2]
            sr_a, nb_a = sr[am], nb2[am]
            beat = (rand[nb_a] > rand[sr_a]) | (
                (rand[nb_a] == rand[sr_a]) & (ids_arr[nb_a] > ids_arr[sr_a])
            )
            beaten = np.bincount(sr_a[beat], minlength=n).astype(bool)
            winners = np.flatnonzero(alive & ~beaten)
            term[winners] = r2
            alive[winners] = False
            for v in winners:
                outputs[int(v)] = (k, True)
                rngs[v] = None
            nbw = gather_rows(offsets, indices, winners)
            lmask = np.zeros(n, dtype=bool)
            lmask[nbw[alive[nbw]]] = True
            _account_round(term, nbw, r2, int(winners.size), sent, msgs, recv)

            losers = np.flatnonzero(lmask)
            term[losers] = r2 + 1
            alive[losers] = False
            for v in losers:
                outputs[int(v)] = (k, False)
                rngs[v] = None
            prev_l = losers
        if prev_l.size:
            # the final losers announce + terminate one round after the
            # loop
            r = 2 * k + 1
            nb = gather_rows(offsets, indices, prev_l)
            _account_round(term, nb, r, int(prev_l.size), sent, msgs, recv)

    res = finalize_run(outputs, term, sent, msgs, recv)
    return MISResult(
        in_mis={v: flag for v, (att, flag) in res.outputs.items()},
        h_index={v: att for v, (att, flag) in res.outputs.items()},
        metrics=res.metrics,
    )


# ---------------------------------------------------------------------------
# Cole-Vishkin ring 3-coloring (log* exhibit)
# ---------------------------------------------------------------------------


def bulk_ring_three_coloring(
    graph: Graph,
    successor: Sequence[int],
    ids: Sequence[int] | None = None,
    seed: int = 0,
):
    """Columnar Cole-Vishkin: the bit tricks vectorize directly.

    Each halving step is ``diff = c ^ c[succ]``; the lowest set bit index
    comes from ``log2(diff & -diff)`` (exact in float64 for any index
    < 53, far beyond real ID spaces).  Three greedy recolor rounds
    (classes 5, 4, 3) finish the {0..5} -> {0..2} reduction.

    ``successor`` must already be validated (the ``run_ring_three_
    coloring`` wrapper dispatches here after its checks).
    """
    if _faulted():
        from repro.core.shard import sharded_ring_three_coloring

        return sharded_ring_three_coloring(graph, successor, ids=ids, seed=seed)
    from repro.baselines.cole_vishkin import _cv_steps
    from repro.core.coloring import ColoringResult

    n = graph.n
    ids_arr = resolve_ids(graph, ids)
    offsets, indices = graph.csr(dtype="auto")
    deg = (offsets[1:] - offsets[:-1]).astype(np.int64)
    m2 = int(indices.size)
    steps = _cv_steps(id_space(ids_arr))

    c = ids_arr.copy()
    if n:
        with profiled("kernel"):
            succ = np.asarray(list(successor), dtype=np.int64)
            for _ in range(steps):
                cs = c[succ]
                diff = c ^ cs
                low = diff & -diff
                i = np.log2(low.astype(np.float64)).astype(np.int64)
                c = 2 * i + ((c >> i) & 1)
            src = np.repeat(np.arange(n, dtype=np.int64), deg)
            for cls in (5, 4, 3):
                nbc = c[indices]
                used0 = np.zeros(n, dtype=bool)
                used0[src[nbc == 0]] = True
                used1 = np.zeros(n, dtype=bool)
                used1[src[nbc == 1]] = True
                pick = np.where(~used0, 0, np.where(~used1, 1, 2))
                c = np.where(c == cls, pick, c)

    rounds_total = steps + 4
    if n:
        term = np.full(n, rounds_total, dtype=np.int64)
        n_recv = int((deg > 0).sum())
        sent = [m2] * (rounds_total - 1) + [0]
        msgs = [m2] * (rounds_total - 1) + [n]
        recv = [n_recv] * (rounds_total - 1) + [0]
    else:
        term = np.zeros(0, dtype=np.int64)
        sent, msgs, recv = [], [], []
    outputs = {v: (1, int(c[v])) for v in range(n)}
    res = finalize_run(outputs, term, sent, msgs, recv)
    return ColoringResult(
        colors={v: col for v, (h, col) in res.outputs.items()},
        h_index={v: h for v, (h, col) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=3,
    )


# ---------------------------------------------------------------------------
# Defective coloring (Section 7.8.1 building block)
# ---------------------------------------------------------------------------


def bulk_defective_coloring(
    graph: Graph,
    d: int,
    degree_limit: int | None = None,
    ids: Sequence[int] | None = None,
    seed: int = 0,
):
    """Columnar d-defective coloring.

    The schedule's cover-free ``fam.pick`` decisions stay per-vertex
    Python calls (they are small combinatorial lookups), but all rounds
    advance in one simultaneous pass per family step over the CSR rows
    -- the lockstep the generator's self-synchronizing loop converges to
    on a whole graph.  Accounting: K broadcast rounds (isolated vertices
    finish all their picks in round 1), then one terminating round.
    """
    if _faulted():
        from repro.core.shard import sharded_defective_coloring

        return sharded_defective_coloring(
            graph, d, degree_limit=degree_limit, ids=ids, seed=seed
        )
    from repro.core.defective import DefectiveColoringResult, defective_schedule

    n = graph.n
    ids_arr = resolve_ids(graph, ids)
    A = degree_limit if degree_limit is not None else graph.max_degree()
    A = max(A, 1)
    space = id_space(ids_arr)
    schedule = defective_schedule(space, A, d)
    bound = schedule[-1].ground_size if schedule else space

    rows = graph.csr_rows()
    colors = [int(x) for x in ids_arr]
    with profiled("kernel"):
        for fam in schedule:
            colors = [
                fam.pick(colors[v], [colors[u] for u in rows[v]])
                for v in range(n)
            ]

    steps = len(schedule)
    offsets, indices = graph.csr(dtype="auto")
    deg = (offsets[1:] - offsets[:-1]).astype(np.int64)
    m2 = int(indices.size)
    n_iso = int((deg == 0).sum())
    n_ni = n - n_iso
    term = np.ones(n, dtype=np.int64)
    if steps and n_ni:
        term[deg > 0] = steps + 1
        sent = [m2] * steps + [0]
        msgs = [m2 + n_iso] + [m2] * (steps - 1) + [n_ni]
        recv = [n_ni] * steps + [0]
    elif n:
        # no steps, or no edges: every vertex finishes in round 1
        sent, msgs, recv = [0], [n], [0]
    else:
        term = np.zeros(0, dtype=np.int64)
        sent, msgs, recv = [], [], []
    outputs = {v: colors[v] for v in range(n)}
    res = finalize_run(outputs, term, sent, msgs, recv)
    return DefectiveColoringResult(
        colors=dict(res.outputs),
        metrics=res.metrics,
        palette_bound=bound,
        defect_bound=d,
    )


#: generator driver function name -> columnar twin.  The zoo's
#: ``bulk_capable`` flags must mirror this registry exactly
#: (``zoo.check_registry`` invariant).
BULK_DRIVERS = {
    "run_partition": bulk_partition,
    "run_luby_mis": bulk_luby_mis,
    "run_ring_three_coloring": bulk_ring_three_coloring,
    "run_defective_coloring": bulk_defective_coloring,
}

"""The segmentation scheme (Section 7.5) and its instantiations:
O(k a^2)-coloring in O(log^(k) n) vertex-averaged rounds (Section 7.6) and
O(k a)-coloring in O(a log^(k) n) vertex-averaged rounds (Section 7.7).

The vertex set is split into k *segments*: segment k is formed first and
consists of the first ~c log^(k) n H-sets, segment k-1 of the next
~c log^(k-1) n H-sets, ..., segment 1 of everything that remains.  Because
the number of active vertices decays exponentially with the H-index
(Lemma 6.1), only ~n / log^(i) n vertices survive into segment i, so
segment i can afford an algorithm-C phase costing T_{C,i} rounds as long as
T_{C,i} / log^(i) n stays bounded -- the accounting of Lemma 7.11.

Each segment is colored with its own disjoint palette (of size alpha =
O(a^2) in 7.6, alpha = A + 1 = O(a) in 7.7), giving O(k * alpha) colors
total.  For k = rho(n) (the largest useful k, Section 7.5) the two
corollaries 7.14 / 7.17 follow: O(a^2 log* n) colors in O(log* n) rounds
and O(a log* n) colors in O(a log* n) rounds.

Execution is event-driven: Partition makes one decision per round
throughout, segment membership is a deterministic function of the H-index,
and each segment's algorithm C self-synchronizes -- an execution at least
as fast as the paper's blocked schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Hashable, Sequence

from repro.analysis.logstar import ilog, rho
from repro.core.arb_linial import arb_linial_steps, list_coloring_steps, priority_wave
from repro.core.coloring import ColoringResult
from repro.core.common import JOIN, LocalView, degree_bound, partition_length_bound
from repro.core.coverfree import palette_schedule
from repro.core.partition import join_h_set
from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.network import SyncNetwork


@dataclass(frozen=True)
class SegmentPlan:
    """The segment layout: segment i (i = k..1) covers H-set indices
    (cut[i], cut[i-1]]; segment 1 is unbounded above."""

    k: int
    #: boundaries[j] = last H-index of segment k-j (len k-1; segment 1 open)
    boundaries: tuple[int, ...]

    def segment_of(self, h: int) -> int:
        """The segment index (k..1) containing H-set h."""
        for j, b in enumerate(self.boundaries):
            if h <= b:
                return self.k - j
        return 1

    def upper_bound(self, seg: int, ell: int) -> int:
        """The last H-index of ``seg`` (ell for the open segment 1)."""
        if seg == 1:
            return ell
        return self.boundaries[self.k - seg]

    def lower_bound(self, seg: int) -> int:
        """The first H-index of ``seg``."""
        if seg == self.k:
            return 1
        return self.boundaries[self.k - seg - 1] + 1


def make_segment_plan(n: int, k: int, eps: float) -> SegmentPlan:
    """Segment sizes c * log^(i) n for i = k..2 (segment 1 takes the rest),
    with c = 2 / eps as in step 1(a) of the scheme."""
    if k < 1:
        raise ValueError("k must be >= 1")
    c = 2.0 / eps
    cuts = []
    acc = 0
    for i in range(k, 1, -1):
        size = max(1, int(ceil(c * ilog(n, i))))
        acc += size
        cuts.append(acc)
    return SegmentPlan(k=k, boundaries=tuple(cuts))


def _segment_neighbors(
    ctx: Context,
    joined: dict[int, int],
    h: int,
    lo: int,
    hi_open: bool,
    hi: int,
) -> tuple[list[int], list[int]]:
    """(parents, same_set) of this vertex within its segment [lo, hi]:
    parents are later-set or same-set-higher-ID neighbors; an unannounced
    neighbor lies beyond the learning boundary, hence in this segment only
    when the segment is open-ended."""
    my_id = ctx.id
    parents: list[int] = []
    same: list[int] = []
    for u in ctx.neighbors:
        hu = joined.get(u)
        if hu is None:
            if hi_open:
                parents.append(u)
            continue
        if not (lo <= hu <= hi):
            continue
        if hu > h or (hu == h and ctx.neighbor_ids[u] > my_id):
            parents.append(u)
        if hu == h:
            same.append(u)
    return parents, same


def _learn_until(ctx: Context, view: LocalView, boundary: int):
    """Wait until every neighbor's H-index is known relative to
    ``boundary``: all joined, or the announcements through round
    ``boundary`` have been absorbed (we are past round boundary + 1)."""
    while True:
        joined = view.get(JOIN)
        if len(joined) == ctx.degree or ctx.round > boundary + 1:
            return dict(joined)
        yield
        view.absorb(ctx)


# ---------------------------------------------------------------------------
# Section 7.6: O(k a^2) colors in O(log^(k) n) vertex-averaged rounds
# ---------------------------------------------------------------------------


def run_ka2_coloring(
    graph: Graph,
    a: int,
    k: int | None = None,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ColoringResult:
    """Theorem 7.13 (k given) / Corollary 7.14 (k = rho(n), the default):
    algorithm A is null, algorithm B is the per-H-set forest orientation
    (free: a function of H-indices and IDs), algorithm C is the iterated
    Arb-Linial-Coloring on each segment's subgraph with the segment's own
    palette copy."""
    n = graph.n
    if k is None:
        k = rho(n)
    if not 1 <= k:
        raise ValueError("k must be >= 1")
    A = degree_bound(a, eps)
    ell = partition_length_bound(n, eps)
    plan = make_segment_plan(n, k, eps)

    def program(ctx: Context):
        schedule = ctx.config["schedule"]
        view = LocalView()
        h = yield from join_h_set(ctx, view, A)
        seg = plan.segment_of(h)
        hi = plan.upper_bound(seg, ell)
        joined = yield from _learn_until(ctx, view, hi)
        parents, _ = _segment_neighbors(
            ctx, joined, h, plan.lower_bound(seg), seg == 1, hi
        )
        color = yield from arb_linial_steps(
            ctx, view, parents, schedule, tag=f"s{seg}"
        )
        return (h, (color, seg))

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    schedule = palette_schedule(net.config["id_space"], A)
    net.config["schedule"] = schedule
    fixpoint = schedule[-1].ground_size if schedule else net.config["id_space"]
    res = net.run(program, max_rounds=(ell + 2) * (len(schedule) + 2) + 32)
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=k * fixpoint,
    )


# ---------------------------------------------------------------------------
# Section 7.7: O(k a) colors in O(a log^(k) n) vertex-averaged rounds
# ---------------------------------------------------------------------------


def run_ka_coloring(
    graph: Graph,
    a: int,
    k: int | None = None,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ColoringResult:
    """Theorem 7.16 (k given) / Corollary 7.17 (k = rho(n), the default):
    algorithm A is the (Delta+1)-coloring of each H-set (substituted
    Linial + greedy pick-wave, DESIGN.md #2), algorithm B orients same-set
    edges towards the higher A-color, algorithm C is the per-segment
    recoloring wave with palette {(seg-1)(A+1) .. seg(A+1)-1}."""
    n = graph.n
    if k is None:
        k = rho(n)
    A = degree_bound(a, eps)
    ell = partition_length_bound(n, eps)
    plan = make_segment_plan(n, k, eps)

    def program(ctx: Context):
        schedule = ctx.config["schedule"]
        view = LocalView()
        h = yield from join_h_set(ctx, view, A)
        # Learn same-set membership (one round).
        yield
        view.absorb(ctx)
        same_now = [u for u in ctx.neighbors if view.value(JOIN, u) == h]
        # Algorithm A: (Delta+1)-color G(H_h) with palette {0..A}.
        psi = yield from list_coloring_steps(
            ctx, view, members=same_now, palette=range(A + 1),
            schedule=schedule, tag=f"hc{h}",
        )
        seg = plan.segment_of(h)
        hi = plan.upper_bound(seg, ell)
        joined = yield from _learn_until(ctx, view, hi)
        parents, same = _segment_neighbors(
            ctx, joined, h, plan.lower_bound(seg), seg == 1, hi
        )
        # Algorithm B: orient same-set edges by psi (announce psi so
        # same-set neighbors can classify the edge).
        psi_tag = f"psi{h}"
        ctx.broadcast((psi_tag, psi))
        missing = [u for u in same if not view.heard(psi_tag, u)]
        while missing:
            yield
            view.absorb(ctx)
            missing = [u for u in missing if not view.heard(psi_tag, u)]
        wave_parents = [u for u in parents if joined.get(u, ell + 1) > h] + [
            u for u in same if view.value(psi_tag, u) > psi
        ]
        base = (seg - 1) * (A + 1)
        palette = range(base, base + A + 1)

        def choose(pred_colors: dict[int, int]) -> int:
            used = set(pred_colors.values())
            for col in palette:
                if col not in used:
                    return col
            raise AssertionError("segment palette exhausted in recolor wave")

        color = yield from priority_wave(ctx, view, wave_parents, f"w{seg}", choose)
        return (h, color)

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    schedule = palette_schedule(net.config["id_space"], A)
    net.config["schedule"] = schedule
    fixpoint = schedule[-1].ground_size if schedule else net.config["id_space"]
    budget = (ell + 2) * (len(schedule) + fixpoint + A + 6) + 64
    res = net.run(program, max_rounds=budget)
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=k * (A + 1),
    )


# ---------------------------------------------------------------------------
# Figure 1: the execution trace of the scheme
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SegmentTraceRow:
    """One segment's occupancy/timing in a Figure-1-style trace."""

    segment: int
    first_h: int
    last_h: int  # realised last H-index (may undershoot the plan)
    num_h_sets: int
    vertices: int
    fraction: float
    mean_rounds: float


def segmentation_trace(
    result: ColoringResult, plan: SegmentPlan, ell: int
) -> list[SegmentTraceRow]:
    """Per-segment occupancy and running times: the quantitative content of
    the paper's Figure 1 (segments of log^(i) n H-sets each, population
    decaying as n / log^(i) n, per-segment phases)."""
    n = len(result.colors)
    by_seg: dict[int, list[int]] = {}
    for v, h in result.h_index.items():
        by_seg.setdefault(plan.segment_of(h), []).append(v)
    rows = []
    for seg in range(plan.k, 0, -1):
        vs = by_seg.get(seg, [])
        hs = [result.h_index[v] for v in vs]
        rounds = [result.metrics.rounds[v] for v in vs]
        rows.append(
            SegmentTraceRow(
                segment=seg,
                first_h=plan.lower_bound(seg),
                last_h=max(hs) if hs else plan.lower_bound(seg) - 1,
                num_h_sets=len(set(hs)),
                vertices=len(vs),
                fraction=len(vs) / n if n else 0.0,
                mean_rounds=sum(rounds) / len(rounds) if rounds else 0.0,
            )
        )
    return rows

"""Procedure Arb-Linial-Coloring (Section 7.2) and the Linial-style
list-coloring machinery used wherever the paper invokes a worst-case
coloring subroutine ([13], [7], [24] -- see DESIGN.md substitutions).

Execution style: *self-synchronizing*.  Every message carries its step
index, and a vertex advances to step k as soon as it has heard the step
k-1 colors of all the neighbors it must avoid.  This realises the paper's
event-driven compositions ("algorithm A is invoked on H_{i+1} only after
..." / "each vertex first waits for all of its parents ...") without global
barriers: a vertex's running time is determined by its own causal
dependencies, which is exactly what the vertex-averaged measure rewards.
Lockstep execution is the special case where everyone starts together.

Subroutines
-----------
``arb_linial_steps``   iterated cover-free color reduction against a fixed
                       parent set; O(log* n) self-paced steps to an O(A^2)
                       palette.
``priority_wave``      the generic "wait for all predecessors, then choose
                       and announce" wave (the paper's recoloring steps).
``list_coloring_steps``  (deg+1)-list-coloring: Linial reduction against all
                       participating neighbors, then a greedy pick-wave in
                       temp-color order.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Sequence

from repro.core.common import LocalView
from repro.core.coverfree import PolyFamily
from repro.runtime.context import Context


def _step_tag(tag: str, k: int) -> str:
    return f"{tag}#{k}"


def arb_linial_steps(
    ctx: Context,
    view: LocalView,
    parents: Sequence[int],
    schedule: Sequence[PolyFamily],
    tag: str,
    color0: int | None = None,
) -> Generator[None, None, int]:
    """Iterated Arb-Linial color reduction against ``parents``.

    Step k (k = 0 .. len(schedule)): broadcast the current color under tag
    ``tag#k``; to compute the step k+1 color, wait until every parent's
    ``tag#k`` color has arrived, then pick a point of our cover-free set
    avoided by all parents' sets.  Properness is per-step: distinct current
    colors on an edge yield distinct next colors, with the child doing the
    avoiding.  Initial colors are the (distinct) IDs.

    Returns the final color, a point of ``schedule[-1]``'s ground set
    (O(A^2) colors).  The number of *rounds* consumed is at most
    ``len(schedule)`` plus the waiting imposed by slower parents.
    """
    c = ctx.id if color0 is None else color0
    for k, fam in enumerate(schedule):
        ctx.broadcast((_step_tag(tag, k), c))
        want = _step_tag(tag, k)
        missing = [u for u in parents if not view.heard(want, u)]
        while missing:
            yield
            view.absorb(ctx)
            missing = [u for u in missing if not view.heard(want, u)]
        bucket = view.get(want)
        c = fam.pick(c, [bucket[u] for u in parents])
    return c


def priority_wave(
    ctx: Context,
    view: LocalView,
    predecessors: Iterable[int],
    tag: str,
    choose: Callable[[dict[int, Any]], Any],
) -> Generator[None, None, Any]:
    """Wait until every predecessor has announced under ``tag``; then call
    ``choose(pred_values)``, broadcast the result under ``tag`` and return
    it.

    This is the paper's recoloring wave ("each vertex first waits for all
    of its parents ... to first choose a color, and then chooses a new
    color for itself"): along any acyclic predecessor relation the wave
    completes in (length of the relation) rounds.
    """
    preds = list(predecessors)
    missing = [u for u in preds if not view.heard(tag, u)]
    while missing:
        yield
        view.absorb(ctx)
        missing = [u for u in missing if not view.heard(tag, u)]
    bucket = view.get(tag)
    value = choose({u: bucket[u] for u in preds})
    ctx.broadcast((tag, value))
    return value


def greedy_from_list(palette: Sequence[int], forbidden: set[int]) -> int:
    """The smallest palette color not forbidden."""
    for col in palette:
        if col not in forbidden:
            return col
    raise AssertionError("palette exhausted: deg+1 feasibility violated")


def list_coloring_steps(
    ctx: Context,
    view: LocalView,
    members: Sequence[int],
    palette: Sequence[int],
    schedule: Sequence[PolyFamily],
    tag: str,
    external_predecessors: Iterable[int] = (),
    external_tag: str | None = None,
) -> Generator[None, None, int]:
    """(deg+1)-list-coloring of the subgraph induced on this vertex and its
    participating ``members``.

    Phase 1: iterated Linial reduction against *all* members (a proper
    coloring of a graph needs every neighbor avoided, and within an H-set
    the degree is at most A, so the same cover-free machinery applies) down
    to a temp color in an O(A^2) palette.

    Phase 2: greedy pick-wave in temp-color order: wait for members with a
    smaller temp color -- and for ``external_predecessors`` (e.g. neighbors
    in earlier H-sets, announcing under ``external_tag``) -- then take the
    smallest list color none of them took.

    Feasibility: the list must be longer than the number of predecessors
    plus members, which every call site guarantees via the deg+1 property.
    """
    tag_tmp = tag + ":t"
    tag_pick = tag + ":p"
    ext_tag = external_tag or tag_pick
    tmp = yield from arb_linial_steps(ctx, view, members, schedule, tag=tag_tmp)
    # Exchange temp colors (final step colors already broadcast under the
    # last step tag; reuse them).
    last = _step_tag(tag_tmp, len(schedule))
    ctx.broadcast((last, tmp))
    member_list = list(members)
    missing = [u for u in member_list if not view.heard(last, u)]
    while missing:
        yield
        view.absorb(ctx)
        missing = [u for u in missing if not view.heard(last, u)]
    temps = view.get(last)
    smaller = [u for u in member_list if temps[u] < tmp]
    # Wait for smaller-temp members (under tag_pick) and external
    # predecessors (under ext_tag), then choose greedily.
    ext = list(external_predecessors)

    def ready() -> bool:
        return all(view.heard(tag_pick, u) for u in smaller) and all(
            view.heard(ext_tag, u) for u in ext
        )

    while not ready():
        yield
        view.absorb(ctx)
    forbidden: set[int] = set()
    for u in smaller:
        forbidden.add(view.value(tag_pick, u))
    for u in ext:
        forbidden.add(view.value(ext_tag, u))
    chosen = greedy_from_list(palette, forbidden)
    ctx.broadcast((tag_pick, chosen))
    return chosen

"""Edge problems of the extension framework: (2 Delta - 1)-edge-coloring
(Corollary 8.6) and maximal matching (Corollary 8.8).

Both corollaries share one structure, implemented here as a generic
*edge-decision wave*:

1.  Procedure Partition + forest decomposition assign every edge a tail
    (the child endpoint), a head (the parent: later H-set, or same set with
    the higher ID) and a label in {1..A} distinct among the tail's
    out-edges.
2.  Every edge gets a **key**:  within-set edge (w -> v) in H_i:
    ``(i, 0, psi(v), label)`` where psi is the within-set Linial temp
    coloring; cross-set edge (w -> v), v in the later set H_i:
    ``(i, 1, 0, label)``.  Adjacent edges never share a key unless they
    also share their head, in which case the head decides them as a batch
    -- this is the paper's "loop over labels j = 1..A, each vertex handles
    its j-labelled star G_j(v)" (Corollaries 8.6/8.8), merged with the
    within-set phase (algorithm A) via the 0/1 flag (A runs before B).
3.  Edges are decided by their heads in increasing key order.  Every
    vertex broadcasts a monotone progress cursor (its smallest undecided
    incident key) together with its local state (used colors / matched
    flag).  A head decides a batch once its own cursor reaches the batch
    key and every tail's cursor has passed it; at that moment the tails'
    broadcast state is exactly the state contributed by their smaller-key
    edges, so greedy choices are conflict-free.

The wave is event-driven; its depth within an H-set is O(poly(A)) and
across sets one batch per (set, flag, psi, label) level, which is what
gives the O(a + log* n)-flavoured vertex-averaged behaviour (with the
DESIGN.md #1/#3 substitution, O(a^2 + log* n) in the worst case over an
H-set -- identical shape for constant arboricity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from repro.core.arb_linial import arb_linial_steps, _step_tag
from repro.core.common import JOIN, LocalView, degree_bound, partition_length_bound
from repro.core.coverfree import palette_schedule
from repro.core.partition import join_h_set
from repro.graphs.graph import Graph, canonical_edge
from repro.runtime.context import Context
from repro.runtime.metrics import RoundMetrics
from repro.runtime.network import SyncNetwork

PROG = "ep"   # broadcast: (cursor_key_or_None, local_state)
DECIDE = "ed"  # targeted: list of ((edge_head, edge_tail) irrelevant) -> we send (key, value)
LABEL = "lb"   # targeted: label of the edge from tail to this head

_INF = (1 << 60,)


def _key_lt(k1, k2) -> bool:
    return (k1 or _INF) < (k2 or _INF)


def _key_ge(k1, k2) -> bool:
    return not _key_lt(k1, k2)


@dataclass
class _EdgeState:
    """One vertex's ledger of its incident edges during the wave."""

    keys: dict[int, tuple]          # neighbor -> key of the shared edge
    heads_here: set[int]            # neighbors whose shared edge we decide
    decided: dict[int, Hashable]    # neighbor -> decision value

    def cursor(self) -> tuple | None:
        undecided = [k for u, k in self.keys.items() if u not in self.decided]
        return min(undecided) if undecided else None


def _edge_wave_program_factory(
    decide_batch: Callable[[Context, dict, list[tuple[int, object]], dict[int, object]], dict[int, Hashable]],
    init_state: Callable[[Context], object],
    update_state: Callable[[object, int, Hashable, bool], object],
    worstcase_schedule: bool,
    ell: int,
    A: int,
):
    """Build the vertex program of the edge-decision wave.

    decide_batch(ctx, my_state_ref, batch, tail_states) -> {tail: value}:
        decide the equal-key in-edges ``batch`` (list of (tail, key) sorted
        by tail ID) given each tail's broadcast state; must be greedy-safe.
    init_state(ctx) -> the vertex's broadcastable local state.
    update_state(state, other_endpoint, value, i_am_head) -> new state,
        called whenever an incident edge is decided.
    """

    def program(ctx: Context):
        schedule = ctx.config["schedule"]
        view = LocalView()
        h = yield from join_h_set(ctx, view, A)
        if worstcase_schedule:
            while ctx.round < ell + 1:
                yield
                view.absorb(ctx)
        yield
        view.absorb(ctx)
        same = [u for u in ctx.neighbors if view.value(JOIN, u) == h]
        psi = yield from arb_linial_steps(ctx, view, same, schedule, tag="x")
        last = _step_tag("x", len(schedule))
        ctx.broadcast((last, psi))
        # Wait until the H-index of every neighbor is known (all join by
        # round <= ell; announcements are local events), psi of same-set
        # neighbors has arrived, and in-edge labels have arrived.
        while True:
            joined = view.get(JOIN)
            if len(joined) == ctx.degree and all(
                view.heard(last, u) for u in same
            ):
                break
            yield
            view.absorb(ctx)
        my_id = ctx.id
        heads: list[int] = []   # my out-neighbors (I am the tail)
        tails: list[int] = []   # my in-neighbors (I am the head)
        for u in ctx.neighbors:
            hu = joined[u]
            if hu > h or (hu == h and ctx.neighbor_ids[u] > my_id):
                heads.append(u)
            else:
                tails.append(u)
        heads.sort(key=lambda u: ctx.neighbor_ids[u])
        out_label = {u: i + 1 for i, u in enumerate(heads)}
        for u in heads:
            ctx.send(u, (LABEL, out_label[u]))
        # Keys of out-edges are computable locally once psi/h are known.
        keys: dict[int, tuple] = {}
        for u in heads:
            hu = joined[u]
            if hu == h:
                keys[u] = (h, 0, view.value(last, u), out_label[u])
            else:
                keys[u] = (hu, 1, 0, out_label[u])
        # Keys of in-edges need the tails' labels.
        missing = set(tails)
        while missing:
            yield
            view.absorb(ctx)
            for u in list(missing):
                if view.heard(LABEL, u):
                    missing.discard(u)
        for u in tails:
            lab = view.value(LABEL, u)
            if joined[u] == h:
                keys[u] = (h, 0, psi, lab)
            else:
                keys[u] = (h, 1, 0, lab)
        st = _EdgeState(keys=keys, heads_here=set(tails), decided={})
        my_state = init_state(ctx)
        announced: tuple | None = ("invalid",)  # force first broadcast

        while True:
            cur = st.cursor()
            snapshot = (cur, my_state)
            if snapshot != announced:
                ctx.broadcast((PROG, snapshot))
                announced = snapshot
            if cur is None:
                return {
                    "h": h,
                    "decided": {
                        canonical_edge(ctx.v, u): val
                        for u, val in st.decided.items()
                        if u in st.heads_here
                    },
                    "state": my_state,
                }
            # Try to decide the batch at the cursor if we are its head.
            batch = sorted(
                (
                    (u, k)
                    for u, k in st.keys.items()
                    if k == cur and u in st.heads_here and u not in st.decided
                ),
                key=lambda t: ctx.neighbor_ids[t[0]],
            )
            progressed = False
            if batch:
                prog = view.get(PROG)
                ready = True
                tail_states: dict[int, object] = {}
                for u, k in batch:
                    p = prog.get(u)
                    if p is None or not _key_ge(p[0], cur):
                        ready = False
                        break
                    tail_states[u] = p[1]
                if ready:
                    values = decide_batch(ctx, my_state, batch, tail_states)
                    for u, _k in batch:
                        val = values[u]
                        st.decided[u] = val
                        my_state = update_state(my_state, u, val, True)
                        ctx.send(u, (DECIDE, val))
                    progressed = True
            if not progressed:
                yield
                view.absorb(ctx)
                for u, payloads in ctx.inbox.items():
                    for tag, payload in payloads:
                        if tag == DECIDE and u not in st.decided:
                            st.decided[u] = payload
                            my_state = update_state(my_state, u, payload, False)

    return program


# ---------------------------------------------------------------------------
# Corollary 8.6: (2 Delta - 1)-edge-coloring
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EdgeColoringResult:
    """A proper edge coloring with its round accounting."""

    edge_colors: dict[tuple[int, int], int]
    h_index: dict[int, int]
    metrics: RoundMetrics
    palette_bound: int

    @property
    def colors_used(self) -> int:
        return len(set(self.edge_colors.values()))


def run_edge_coloring(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    worstcase_schedule: bool = False,
) -> EdgeColoringResult:
    """Corollary 8.6: (2 Delta - 1)-edge-coloring with vertex-averaged
    complexity O(poly(a) + log* n) (O(a + log* n) in the paper; see
    DESIGN.md #3).  ``worstcase_schedule=True`` runs the [previous work]
    shape instead: every vertex sits through the full Theta(log n)
    partition before any edge is colored."""
    A = degree_bound(a, eps)
    ell = partition_length_bound(graph.n, eps)
    delta = graph.max_degree()
    palette = max(2 * delta - 1, 1)

    def init_state(ctx: Context):
        return frozenset()

    def update_state(state, _u, value, _i_am_head):
        return state | {value}

    def decide_batch(ctx, my_used, batch, tail_states):
        values: dict[int, int] = {}
        used_here = set(my_used)
        for u, _k in batch:
            used_w = tail_states[u]
            for c in range(palette):
                if c not in used_here and c not in used_w:
                    values[u] = c
                    used_here.add(c)
                    break
            else:
                raise AssertionError("palette {0..2D-2} exhausted")
        return values

    program = _edge_wave_program_factory(
        decide_batch, init_state, update_state, worstcase_schedule, ell, A
    )
    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    schedule = palette_schedule(net.config["id_space"], A)
    net.config["schedule"] = schedule
    fixpoint = schedule[-1].ground_size if schedule else net.config["id_space"]
    budget = (ell + 2) * (len(schedule) + fixpoint + A + 8) + 4 * graph.n + 256
    res = net.run(program, max_rounds=budget)
    edge_colors: dict[tuple[int, int], int] = {}
    for v, out in res.outputs.items():
        edge_colors.update(out["decided"])
    return EdgeColoringResult(
        edge_colors=edge_colors,
        h_index={v: out["h"] for v, out in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=palette,
    )


# ---------------------------------------------------------------------------
# Corollary 8.8: maximal matching
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatchingResult:
    """A maximal matching with its round accounting."""

    matching: set[tuple[int, int]]
    h_index: dict[int, int]
    metrics: RoundMetrics


def run_maximal_matching(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    worstcase_schedule: bool = False,
) -> MatchingResult:
    """Corollary 8.8: maximal matching with vertex-averaged complexity
    O(poly(a) + log* n) (paper: O(a + log* n); DESIGN.md #3).  An edge
    joins the matching iff both endpoints are unmatched when its head
    processes its key batch -- the paper's label-loop, event-driven."""
    A = degree_bound(a, eps)
    ell = partition_length_bound(graph.n, eps)

    def init_state(ctx: Context):
        return False  # matched?

    def update_state(state, _u, value, _i_am_head):
        return state or bool(value)

    def decide_batch(ctx, my_matched, batch, tail_states):
        values: dict[int, bool] = {}
        taken = bool(my_matched)
        for u, _k in batch:
            if not taken and not tail_states[u]:
                values[u] = True
                taken = True
            else:
                values[u] = False
        return values

    program = _edge_wave_program_factory(
        decide_batch, init_state, update_state, worstcase_schedule, ell, A
    )
    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    schedule = palette_schedule(net.config["id_space"], A)
    net.config["schedule"] = schedule
    fixpoint = schedule[-1].ground_size if schedule else net.config["id_space"]
    budget = (ell + 2) * (len(schedule) + fixpoint + A + 8) + 4 * graph.n + 256
    res = net.run(program, max_rounds=budget)
    matching: set[tuple[int, int]] = set()
    for v, out in res.outputs.items():
        for e, val in out["decided"].items():
            if val:
                matching.add(e)
    return MatchingResult(
        matching=matching,
        h_index={v: out["h"] for v, out in res.outputs.items()},
        metrics=res.metrics,
    )

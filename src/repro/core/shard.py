"""Sharded (multi-process BSP) drivers for the bulk-capable algorithms.

Each ``sharded_*`` driver is the shard-parallel twin of a
:mod:`repro.core.bulk` columnar driver: same signature surface, same
result type, **bit-identical** outputs and round accounting for any
shard count (the matrix in ``tests/runtime/test_shard.py`` pins
sharded == bulk == fast).  The parent process publishes the CSR view and
cross-shard state via :class:`repro.runtime.shard.SharedArrays`, workers
run :data:`SHARD_KERNELS` entries over contiguous vertex ranges, and the
parent folds the merged results through the same ``finalize`` accounting
the unsharded engine uses.

The owner-computes translation of message passing
-------------------------------------------------
The bulk drivers account rounds **sender-side**: gather the joiners'
CSR rows and bucket each copy by the receiver's termination state.  A
worker cannot scatter into another shard's state, so the sharded kernels
evaluate the identical sums **receiver-side**: after the round barrier a
shard scans the rows of its own still-relevant vertices (active, crashed
or terminating this round) and counts neighbors that broadcast this
round.  Undirected adjacency makes the two pair-sets equal, and every
receiver is owned by exactly one shard, so per-shard partial sums
allreduce to exactly the unsharded totals — including the distinct-
receiver count, which decomposes by ownership.

Fault draws (crash hazard, message drop) are pure counter-based
functions of ``(seed, session round, vertex)`` / ``(..., src, dst, k)``
(:mod:`repro.faults.plan`), so workers evaluate them locally and the
injected stream is invariant under the shard count.
"""

from __future__ import annotations

from random import Random
from typing import Any, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.runtime.bulk import (
    BulkUnsupported,
    finalize_run,
    gather_rows,
    id_space,
    profiled,
    require_no_faults,
    resolve_ids,
)
from repro.runtime.network import RoundLimitExceeded
from repro.runtime.shard import (
    SharedArrays,
    ShardTask,
    current_shards,
    finalize_faulted_run,
    resolve_bounds,
    run_sharded,
)


def _local_deg(offsets: np.ndarray, lo: int, hi: int) -> np.ndarray:
    return (offsets[lo + 1 : hi + 1] - offsets[lo:hi]).astype(np.int64)


def _launch(
    kernel: str,
    graph: Graph,
    publish: dict[str, Any],
    params: dict[str, Any],
    copy_keys: Sequence[str] = (),
) -> tuple[list[Any], dict[str, np.ndarray], list[int]]:
    """Partition, publish, run one kernel, copy results out, clean up."""
    session = current_shards()
    assert session is not None, "sharded driver called without a shard session"
    bounds = resolve_bounds(graph, session)
    offsets, indices = graph.csr(dtype="auto")
    shared = SharedArrays()
    try:
        # parent-side cost of getting data into shared memory; the
        # workers' attach side lands in their per-shard "publish" slot
        with profiled("publish"):
            shared.publish("offsets", offsets)
            shared.publish("indices", indices)
            for key, val in publish.items():
                if isinstance(val, np.ndarray):
                    shared.publish(key, val)
                else:  # (shape, dtype) request for a zero-filled array
                    shape, dtype = val
                    shared.publish(key, shape=shape, dtype=dtype)
        payloads = run_sharded(kernel, bounds, shared, params)
        copies = {key: shared.views[key].copy() for key in copy_keys}
    finally:
        shared.cleanup()
    return payloads, copies, bounds


# ---------------------------------------------------------------------------
# Procedure Partition — with optional crash-stop / message-drop adversary
# ---------------------------------------------------------------------------


def _kernel_partition(task: ShardTask) -> dict[str, Any]:
    """One shard of Procedure Partition.

    Per round: (A) pull last round's JOINs from neighbor ``term`` state,
    run the degree-threshold join test, write own terminations; barrier;
    (B) pull this round's JOIN copies receiver-side for the accounting
    buckets; allreduce the round totals.  Crash and drop draws replicate
    the fast engine's adversary via the pure counter-based functions.
    """
    from repro.faults.plan import CrashSpec, drop_fate

    p = task.params
    offsets = task.views["offsets"]
    indices = task.views["indices"]
    term = task.views["term"]
    lo, hi = task.lo, task.hi
    comm = task.comm
    n = p["n"]
    A = p["A"]
    max_rounds = p["max_rounds"]
    fseed = p["fault_seed"]
    crash_spec = CrashSpec(**p["crashes"]) if p.get("crashes") else None
    drop = p.get("drop", 0.0)
    round_offset = p.get("round_offset", 0)

    size = hi - lo
    deg_loc = _local_deg(offsets, lo, hi)
    heard = np.zeros(size, dtype=np.int64)
    alive = np.ones(size, dtype=bool)
    for v in p.get("pre_crashed", ()):
        if lo <= v < hi:
            alive[v - lo] = False
    dead = np.array(
        [v for v in p.get("pre_crashed", ()) if lo <= v < hi], dtype=np.int64
    )
    crash_records: list[tuple[int, int]] = []
    per_round: list[tuple[int, int, int, int]] = []
    total_active = n - len(p.get("pre_crashed", ()))
    watchdog = None
    rnd = 0

    while total_active > 0:
        rnd += 1
        srnd = round_offset + rnd
        if crash_spec is not None:
            newly = [
                v
                for v in (np.flatnonzero(alive) + lo).tolist()
                if crash_spec.strikes(fseed, srnd, v)
            ]
            if newly:
                alive[np.asarray(newly, dtype=np.int64) - lo] = False
                dead = np.concatenate((dead, np.asarray(newly, dtype=np.int64)))
                crash_records.extend((rnd, v) for v in newly)
            (total_crashed,) = comm.allreduce(len(newly))
            total_active -= total_crashed
            if total_active == 0:
                break
        if rnd > max_rounds:
            watchdog = (np.flatnonzero(alive) + lo).tolist()
            break

        # Phase A: hear last round's JOINs, run the join test, terminate.
        act_idx = np.flatnonzero(alive)
        act = act_idx + lo
        if rnd > 1 and act.size:
            nb = gather_rows(offsets, indices, act)
            src = np.repeat(act, deg_loc[act_idx])
            jm = term[nb] == rnd - 1
            us, vs = nb[jm], src[jm]
            if drop and us.size:
                keep = np.fromiter(
                    (
                        not drop_fate(fseed, srnd - 1, int(u), int(v), 0, drop)
                        for u, v in zip(us.tolist(), vs.tolist())
                    ),
                    dtype=bool,
                    count=us.size,
                )
                vs = vs[keep]
            heard += np.bincount(vs - lo, minlength=size)
        join = (deg_loc[act_idx] - heard[act_idx]) <= A
        joiners = act[join]
        term[joiners] = rnd
        alive[act_idx[join]] = False
        comm.sync()

        # Phase B: receiver-side accounting of this round's JOIN copies.
        cand = np.concatenate((act, dead)) if dead.size else act
        counted = same = recv_loc = 0
        if cand.size:
            nb = gather_rows(offsets, indices, cand)
            src = np.repeat(cand, deg_loc[cand - lo])
            jm = term[nb] == rnd
            us, vs = nb[jm], src[jm]
            if drop and us.size:
                keep = np.fromiter(
                    (
                        not drop_fate(fseed, srnd, int(u), int(v), 0, drop)
                        for u, v in zip(us.tolist(), vs.tolist())
                    ),
                    dtype=bool,
                    count=us.size,
                )
                vs = vs[keep]
            tv = term[vs]
            live = tv == 0
            counted = int(live.sum())
            same = int((tv == rnd).sum())
            recv_loc = int(np.unique(vs[live]).size)
        g = comm.allreduce(
            counted, same, recv_loc, int(joiners.size), int(alive.sum())
        )
        per_round.append((g[0] + g[1], g[0] + g[3], g[2], g[3]))
        total_active = g[4]

    return {
        "rounds": per_round,
        "crashes": crash_records,
        "watchdog": watchdog,
        "session_rounds": rnd,
    }


def sharded_partition(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    max_rounds: int | None = None,
):
    """Sharded Procedure Partition; crash-stop and message-drop plans are
    supported (the one bulk-capable algorithm with a fault seam)."""
    from repro.core.common import degree_bound, partition_length_bound
    from repro.core.partition import PartitionResult
    from repro.faults.plan import current

    n = graph.n
    resolve_ids(graph, ids)  # IDs only validate; Partition is ID-oblivious
    A = degree_bound(a, eps)
    if max_rounds is None:
        max_rounds = partition_length_bound(n, eps) + 4

    injector = current()
    params: dict[str, Any] = {
        "n": n,
        "A": A,
        "max_rounds": max_rounds,
        "fault_seed": 0,
    }
    pre_crashed: list[int] = []
    if injector is not None:
        plan = injector.plan
        mf = plan.messages
        if mf is not None and (mf.duplicate or mf.delay):
            raise BulkUnsupported(
                "sharded partition supports crash-stop and message-drop "
                "faults only; duplicate/delay plans need the 'fast' or "
                "'reference' engine"
            )
        pre_crashed = sorted(v for v in injector.begin_run(None) if v < n)
        params["fault_seed"] = plan.seed
        params["round_offset"] = injector._round
        params["pre_crashed"] = pre_crashed
        if plan.crashes is not None and plan.crashes.active:
            params["crashes"] = {
                "at": dict(plan.crashes.at),
                "hazard": plan.crashes.hazard,
            }
        if mf is not None and mf.drop:
            params["drop"] = mf.drop

    payloads, copies, _bounds = _launch(
        "partition",
        graph,
        {"term": ((n,), np.int64)},
        params,
        copy_keys=("term",),
    )
    term = copies["term"]

    wd = [p["watchdog"] for p in payloads]
    if any(w is not None for w in wd):
        if injector is not None:
            injector.absorb_rounds(
                payloads[0]["session_rounds"],
                [v for p in payloads for (_r, v) in p["crashes"]],
            )
        active_all = [v for w in wd if w is not None for v in w]
        raise RoundLimitExceeded(max_rounds, active_all, None)

    rounds = payloads[0]["rounds"]
    sent = [r[0] for r in rounds]
    msgs = [r[1] for r in rounds]
    recv = [r[2] for r in rounds]

    if injector is None:
        outputs = {v: int(term[v]) for v in range(n)}
        res = finalize_run(outputs, term, sent, msgs, recv)
    else:
        crash_rounds = dict(
            sorted(((v, r) for p in payloads for (r, v) in p["crashes"]))
        )
        injector.absorb_rounds(
            payloads[0]["session_rounds"], list(crash_rounds)
        )
        outputs = {v: int(term[v]) for v in range(n) if term[v] > 0}
        res = finalize_faulted_run(
            outputs,
            term,
            crash_rounds,
            pre_crashed,
            sent,
            msgs,
            recv,
            crashed_all=[v for v in injector.crashed if v < n],
        )
    return PartitionResult(h_index=dict(res.outputs), A=A, metrics=res.metrics)


# ---------------------------------------------------------------------------
# Luby MIS
# ---------------------------------------------------------------------------


def _kernel_luby(task: ShardTask) -> dict[str, Any]:
    """One shard of lockstep Luby MIS.

    Per attempt: draw own priorities (write ``rand``); barrier; account
    round 2k-1 receiver-side; win-check against neighbor ``rand``/``ids``
    and write own winner terminations; barrier; account round 2k, retire
    own winners and losers; allreduce the attempt's totals.  Per-vertex
    ``random.Random`` streams live only for the shard's own slice.
    """
    p = task.params
    offsets = task.views["offsets"]
    indices = task.views["indices"]
    term = task.views["term"]
    rand = task.views["rand"]
    alive = task.views["alive"]
    ids_arr = task.views["ids"]
    lo, hi = task.lo, task.hi
    comm = task.comm
    n = p["n"]
    seed = p["seed"]
    max_rounds = p["max_rounds"]

    size = hi - lo
    deg_loc = _local_deg(offsets, lo, hi)
    rngs: list[Random | None] = [None] * size
    per_round: list[tuple[int, int, int, int]] = []
    prev_l = np.zeros(0, dtype=np.int64)
    total_alive = n
    watchdog = None
    k = 0

    while total_alive > 0:
        k += 1
        r1 = 2 * k - 1
        act_idx = np.flatnonzero(alive[lo:hi])
        act = act_idx + lo
        if r1 > max_rounds:
            watchdog = ("r1", act.tolist(), prev_l.tolist())
            break
        for i, v in zip(act_idx.tolist(), act.tolist()):
            rng = rngs[i]
            if rng is None:
                rng = rngs[i] = Random(f"{seed}:{int(ids_arr[v])}:seed")
            rand[v] = rng.random()
        comm.sync()

        # round 2k-1: priorities broadcast + previous losers' announce
        cand = np.concatenate((act, prev_l)) if prev_l.size else act
        c1 = s1 = rv1 = 0
        if cand.size:
            nb = gather_rows(offsets, indices, cand)
            src = np.repeat(cand, deg_loc[cand - lo])
            bm = alive[nb] | (term[nb] == r1)
            vs = src[bm]
            tv = term[vs]
            live = tv == 0
            c1 = int(live.sum())
            s1 = int((tv == r1).sum())
            rv1 = int(np.unique(vs[live]).size)
        h1 = int(prev_l.size)

        # round 2k: win check on (rand, id) against alive neighbors
        r2 = 2 * k
        if r2 > max_rounds:
            watchdog = ("r2", act.tolist(), [])
            break
        winners = np.zeros(0, dtype=np.int64)
        nb2 = src2 = None
        if act.size:
            nb2 = gather_rows(offsets, indices, act)
            src2 = np.repeat(act, deg_loc[act_idx])
            am = alive[nb2]
            sr_a, nb_a = src2[am], nb2[am]
            beat = (rand[nb_a] > rand[sr_a]) | (
                (rand[nb_a] == rand[sr_a]) & (ids_arr[nb_a] > ids_arr[sr_a])
            )
            beaten = np.bincount(sr_a[beat] - lo, minlength=size).astype(bool)
            winners = act[~beaten[act_idx]]
            term[winners] = r2
        comm.sync()

        # account 2k (losers still term 0, matching the bulk call order),
        # then retire own winners and detect own losers
        c2 = s2 = rv2 = 0
        losers = np.zeros(0, dtype=np.int64)
        if act.size:
            wm = term[nb2] == r2
            vs = src2[wm]
            tv = term[vs]
            live = tv == 0
            c2 = int(live.sum())
            s2 = int((tv == r2).sum())
            rv2 = int(np.unique(vs[live]).size)
            alive[winners] = False
            has_wnb = np.bincount(
                src2[wm] - lo, minlength=size
            ).astype(bool)
            lm = has_wnb[act_idx] & (term[act] == 0)
            losers = act[lm]
            term[losers] = r2 + 1
            alive[losers] = False
        for i in (winners - lo).tolist():
            rngs[i] = None
        for i in (losers - lo).tolist():
            rngs[i] = None
        prev_l = losers

        g = comm.allreduce(
            c1, s1, rv1, h1,
            c2, s2, rv2, int(winners.size),
            int(losers.size), int(alive[lo:hi].sum()),
        )
        per_round.append((g[0] + g[1], g[0] + g[3], g[2], g[3]))
        per_round.append((g[4] + g[5], g[4] + g[7], g[6], g[7]))
        total_losers = g[8]
        total_alive = g[9]

    if watchdog is None and k and total_losers:
        # the final losers announce + terminate one round after the loop
        r = 2 * k + 1
        s3 = 0
        own_l = prev_l
        if own_l.size:
            nb = gather_rows(offsets, indices, own_l)
            src = np.repeat(own_l, deg_loc[own_l - lo])
            bm = term[nb] == r
            s3 = int((term[src[bm]] == r).sum())
        g = comm.allreduce(s3, int(own_l.size))
        per_round.append((g[0], g[1], 0, g[1]))

    return {"rounds": per_round, "watchdog": watchdog}


def sharded_luby_mis(
    graph: Graph,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    max_rounds: int | None = None,
):
    """Sharded Luby MIS (fault-free only, like its bulk twin)."""
    require_no_faults("sharded_luby_mis")
    from repro.core.extension import MISResult

    n = graph.n
    ids_arr = resolve_ids(graph, ids)
    if max_rounds is None:
        max_rounds = 64 * (n.bit_length() + 4) + 64

    payloads, copies, _bounds = _launch(
        "luby",
        graph,
        {
            "term": ((n,), np.int64),
            "rand": ((n,), np.float64),
            "alive": np.ones(n, dtype=bool),
            "ids": ids_arr,
        },
        {"n": n, "seed": seed, "max_rounds": max_rounds},
        copy_keys=("term",),
    )
    term = copies["term"]

    wd = [p["watchdog"] for p in payloads]
    if any(w is not None for w in wd):
        acts = [v for w in wd if w is not None for v in w[1]]
        prevs = [v for w in wd if w is not None for v in w[2]]
        raise RoundLimitExceeded(max_rounds, acts + prevs, None)

    rounds = payloads[0]["rounds"]
    outputs: dict[int, Any] = {
        v: (int(t) // 2, True) if t % 2 == 0 else ((int(t) - 1) // 2, False)
        for v, t in enumerate(term.tolist())
    }
    res = finalize_run(
        outputs,
        term,
        [r[0] for r in rounds],
        [r[1] for r in rounds],
        [r[2] for r in rounds],
    )
    return MISResult(
        in_mis={v: flag for v, (att, flag) in res.outputs.items()},
        h_index={v: att for v, (att, flag) in res.outputs.items()},
        metrics=res.metrics,
    )


# ---------------------------------------------------------------------------
# Cole-Vishkin ring 3-coloring
# ---------------------------------------------------------------------------


def _kernel_cole_vishkin(task: ShardTask) -> dict[str, Any]:
    """One shard of Cole-Vishkin: the color array is double-buffered so a
    step reads buffer ``s & 1`` and writes the other; one barrier per
    halving/recolor step."""
    p = task.params
    offsets = task.views["offsets"]
    indices = task.views["indices"]
    buf = task.views["colors"]  # (2, n)
    succ = task.views["succ"]
    lo, hi = task.lo, task.hi
    comm = task.comm
    steps = p["steps"]

    deg_loc = _local_deg(offsets, lo, hi)
    cur = 0
    for _ in range(steps):
        c0, c1 = buf[cur], buf[1 - cur]
        cs = c0[succ[lo:hi]]
        diff = c0[lo:hi] ^ cs
        low = diff & -diff
        i = np.log2(low.astype(np.float64)).astype(np.int64)
        c1[lo:hi] = 2 * i + ((c0[lo:hi] >> i) & 1)
        comm.sync()
        cur = 1 - cur
    own = np.arange(lo, hi, dtype=np.int64)
    src = np.repeat(own, deg_loc) - lo
    nb = indices[offsets[lo] : offsets[hi]]
    size = hi - lo
    for cls in (5, 4, 3):
        c0, c1 = buf[cur], buf[1 - cur]
        nbc = c0[nb]
        used0 = np.zeros(size, dtype=bool)
        used0[src[nbc == 0]] = True
        used1 = np.zeros(size, dtype=bool)
        used1[src[nbc == 1]] = True
        pick = np.where(~used0, 0, np.where(~used1, 1, 2))
        c1[lo:hi] = np.where(c0[lo:hi] == cls, pick, c0[lo:hi])
        comm.sync()
        cur = 1 - cur
    return {"cur": cur}


def sharded_ring_three_coloring(
    graph: Graph,
    successor: Sequence[int],
    ids: Sequence[int] | None = None,
    seed: int = 0,
):
    """Sharded Cole-Vishkin; accounting is closed-form in the parent."""
    require_no_faults("sharded_ring_three_coloring")
    from repro.baselines.cole_vishkin import _cv_steps
    from repro.core.coloring import ColoringResult

    n = graph.n
    ids_arr = resolve_ids(graph, ids)
    offsets, _ = graph.csr(dtype="auto")
    deg = (offsets[1:] - offsets[:-1]).astype(np.int64)
    m2 = int(offsets[-1])
    steps = _cv_steps(id_space(ids_arr))

    if n:
        colors0 = np.zeros((2, n), dtype=np.int64)
        colors0[0] = ids_arr
        payloads, copies, _bounds = _launch(
            "cole_vishkin",
            graph,
            {
                "colors": colors0,
                "succ": np.asarray(list(successor), dtype=np.int64),
            },
            {"n": n, "steps": steps},
            copy_keys=("colors",),
        )
        c = copies["colors"][payloads[0]["cur"]]
    else:
        c = np.zeros(0, dtype=np.int64)

    rounds_total = steps + 4
    if n:
        term = np.full(n, rounds_total, dtype=np.int64)
        n_recv = int((deg > 0).sum())
        sent = [m2] * (rounds_total - 1) + [0]
        msgs = [m2] * (rounds_total - 1) + [n]
        recv = [n_recv] * (rounds_total - 1) + [0]
    else:
        term = np.zeros(0, dtype=np.int64)
        sent, msgs, recv = [], [], []
    outputs = {v: (1, int(c[v])) for v in range(n)}
    res = finalize_run(outputs, term, sent, msgs, recv)
    return ColoringResult(
        colors={v: col for v, (h, col) in res.outputs.items()},
        h_index={v: h for v, (h, col) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=3,
    )


# ---------------------------------------------------------------------------
# Defective coloring
# ---------------------------------------------------------------------------


def _kernel_defective(task: ShardTask) -> dict[str, Any]:
    """One shard of the defective-coloring schedule.

    The cover-free family schedule is recomputed locally (it is a pure
    function of ``(id_space, A, d)``), and each family step runs the
    per-vertex ``fam.pick`` loop over the shard's own slice against the
    previous buffer — this Python loop is exactly the part that profits
    from sharding.
    """
    from repro.core.defective import defective_schedule

    p = task.params
    offsets = task.views["offsets"]
    indices = task.views["indices"]
    buf = task.views["colors"]  # (2, n)
    lo, hi = task.lo, task.hi
    comm = task.comm

    schedule = defective_schedule(p["space"], p["A"], p["d"])
    off = (offsets[lo : hi + 1] - offsets[lo]).tolist()
    nb = indices[offsets[lo] : offsets[hi]].tolist()
    cur = 0
    for fam in schedule:
        c0 = buf[cur].tolist()
        c1 = buf[1 - cur]
        c1[lo:hi] = [
            fam.pick(c0[v], [c0[u] for u in nb[off[i] : off[i + 1]]])
            for i, v in enumerate(range(lo, hi))
        ]
        comm.sync()
        cur = 1 - cur
    return {"cur": cur}


def sharded_defective_coloring(
    graph: Graph,
    d: int,
    degree_limit: int | None = None,
    ids: Sequence[int] | None = None,
    seed: int = 0,
):
    """Sharded d-defective coloring; accounting closed-form in the parent."""
    require_no_faults("sharded_defective_coloring")
    from repro.core.defective import DefectiveColoringResult, defective_schedule

    n = graph.n
    ids_arr = resolve_ids(graph, ids)
    A = degree_limit if degree_limit is not None else graph.max_degree()
    A = max(A, 1)
    space = id_space(ids_arr)
    schedule = defective_schedule(space, A, d)
    bound = schedule[-1].ground_size if schedule else space

    if n and schedule:
        colors0 = np.zeros((2, n), dtype=np.int64)
        colors0[0] = ids_arr
        payloads, copies, _bounds = _launch(
            "defective",
            graph,
            {"colors": colors0},
            {"n": n, "space": space, "A": A, "d": d},
            copy_keys=("colors",),
        )
        colors = copies["colors"][payloads[0]["cur"]].tolist()
    else:
        colors = [int(x) for x in ids_arr]

    steps = len(schedule)
    offsets, _ = graph.csr(dtype="auto")
    deg = (offsets[1:] - offsets[:-1]).astype(np.int64)
    m2 = int(offsets[-1])
    n_iso = int((deg == 0).sum())
    n_ni = n - n_iso
    term = np.ones(n, dtype=np.int64)
    if steps and n_ni:
        term[deg > 0] = steps + 1
        sent = [m2] * steps + [0]
        msgs = [m2 + n_iso] + [m2] * (steps - 1) + [n_ni]
        recv = [n_ni] * steps + [0]
    elif n:
        sent, msgs, recv = [0], [n], [0]
    else:
        term = np.zeros(0, dtype=np.int64)
        sent, msgs, recv = [], [], []
    outputs = {v: colors[v] for v in range(n)}
    res = finalize_run(outputs, term, sent, msgs, recv)
    return DefectiveColoringResult(
        colors=dict(res.outputs),
        metrics=res.metrics,
        palette_bound=bound,
        defect_bound=d,
    )


#: kernel name -> worker entry point (resolved inside worker processes)
SHARD_KERNELS = {
    "partition": _kernel_partition,
    "luby": _kernel_luby,
    "cole_vishkin": _kernel_cole_vishkin,
    "defective": _kernel_defective,
}

#: generator driver function name -> sharded twin (mirrors BULK_DRIVERS)
SHARD_DRIVERS = {
    "run_partition": sharded_partition,
    "run_luby_mis": sharded_luby_mis,
    "run_ring_three_coloring": sharded_ring_three_coloring,
    "run_defective_coloring": sharded_defective_coloring,
}

"""Sharded (multi-process BSP) drivers for the bulk-capable algorithms.

Each ``sharded_*`` driver is the shard-parallel twin of a
:mod:`repro.core.bulk` columnar driver: same signature surface, same
result type, **bit-identical** outputs and round accounting for any
shard count (the matrix in ``tests/runtime/test_shard.py`` pins
sharded == bulk == fast).  The parent process publishes the CSR view and
cross-shard state via :class:`repro.runtime.shard.SharedArrays`, workers
run :data:`SHARD_KERNELS` entries over contiguous vertex ranges, and the
parent folds the merged results through the same ``finalize`` accounting
the unsharded engine uses.

The owner-computes translation of message passing
-------------------------------------------------
The bulk drivers account rounds **sender-side**: gather the joiners'
CSR rows and bucket each copy by the receiver's termination state.  A
worker cannot scatter into another shard's state, so the sharded kernels
evaluate the identical sums **receiver-side**: after the round barrier a
shard scans the rows of its own still-relevant vertices (active, crashed
or terminating this round) and counts neighbors that broadcast this
round.  Undirected adjacency makes the two pair-sets equal, and every
receiver is owned by exactly one shard, so per-shard partial sums
allreduce to exactly the unsharded totals — including the distinct-
receiver count, which decomposes by ownership.

Fault draws (crash hazard, message drop) are pure counter-based
functions of ``(seed, session round, vertex)`` / ``(..., src, dst, k)``
(:mod:`repro.faults.plan`), so workers evaluate them locally and the
injected stream is invariant under the shard count.
"""

from __future__ import annotations

from random import Random
from typing import Any, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.runtime.bulk import (
    BulkUnsupported,
    finalize_run,
    gather_rows,
    id_space,
    profiled,
    resolve_ids,
)
from repro.runtime.network import RoundLimitExceeded
from repro.runtime.shard import (
    CHECKPOINT_MAX_N,
    LocalComm,
    SharedArrays,
    ShardTask,
    chaos_kill_hook,
    current_shards,
    finalize_faulted_run,
    resolve_bounds,
    run_sharded,
)


def _local_deg(offsets: np.ndarray, lo: int, hi: int) -> np.ndarray:
    return (offsets[lo + 1 : hi + 1] - offsets[lo:hi]).astype(np.int64)


def _launch(
    kernel: str,
    graph: Graph,
    publish: dict[str, Any],
    params: dict[str, Any],
    copy_keys: Sequence[str] = (),
) -> tuple[list[Any], dict[str, np.ndarray], list[int]]:
    """Partition, publish, run one kernel, copy results out, clean up."""
    session = current_shards()
    assert session is not None, "sharded driver called without a shard session"
    bounds = resolve_bounds(graph, session)
    offsets, indices = graph.csr(dtype="auto")
    shared = SharedArrays()
    try:
        # parent-side cost of getting data into shared memory; the
        # workers' attach side lands in their per-shard "publish" slot
        with profiled("publish"):
            shared.publish("offsets", offsets)
            shared.publish("indices", indices)
            for key, val in publish.items():
                if isinstance(val, np.ndarray):
                    shared.publish(key, val)
                else:  # (shape, dtype) request for a zero-filled array
                    shape, dtype = val
                    shared.publish(key, shape=shape, dtype=dtype)
        payloads = run_sharded(kernel, bounds, shared, params)
        copies = {key: shared.views[key].copy() for key in copy_keys}
    finally:
        shared.cleanup()
    return payloads, copies, bounds


def _execute_kernel(
    kernel: str,
    graph: Graph,
    publish: dict[str, Any],
    params: dict[str, Any],
    copy_keys: Sequence[str] = (),
) -> tuple[list[Any], dict[str, np.ndarray], list[int]]:
    """Run one kernel sharded *or* in-process, per the active session.

    Without a shard session the kernel runs inline over plain numpy
    arrays through :class:`~repro.runtime.shard.LocalComm` (a no-op
    one-shard comm) — this is how the unsharded bulk engine executes the
    faulted kernels, so bulk == sharded(1) **by construction**: the
    decision code is literally the same.
    """
    session = current_shards()
    if session is not None:
        return _launch(kernel, graph, publish, params, copy_keys)
    n = graph.n
    offsets, indices = graph.csr(dtype="auto")
    views: dict[str, np.ndarray] = {"offsets": offsets, "indices": indices}
    for key, val in publish.items():
        if isinstance(val, np.ndarray):
            views[key] = val.copy()
        else:
            shape, dtype = val
            views[key] = np.zeros(shape, dtype=dtype)
    task = ShardTask(
        idx=0,
        lo=0,
        hi=n,
        bounds=[0, n],
        comm=LocalComm(),
        views=views,
        params=params,
    )
    with profiled("kernel"):
        payload = SHARD_KERNELS[kernel](task)
    return [payload], {key: views[key] for key in copy_keys}, [0, n]


# ---------------------------------------------------------------------------
# Procedure Partition — with optional crash-stop / message-drop adversary
# ---------------------------------------------------------------------------


def _kernel_partition(task: ShardTask) -> dict[str, Any]:
    """One shard of Procedure Partition.

    Per round: (A) pull last round's JOINs from neighbor ``term`` state,
    run the degree-threshold join test, write own terminations; barrier;
    (B) pull this round's JOIN copies receiver-side for the accounting
    buckets; allreduce the round totals.  Crash and drop draws replicate
    the fast engine's adversary via the pure counter-based functions.
    """
    from repro.faults.plan import CrashSpec, drop_fate

    p = task.params
    offsets = task.views["offsets"]
    indices = task.views["indices"]
    term = task.views["term"]
    lo, hi = task.lo, task.hi
    comm = task.comm
    n = p["n"]
    A = p["A"]
    max_rounds = p["max_rounds"]
    fseed = p["fault_seed"]
    crash_spec = CrashSpec(**p["crashes"]) if p.get("crashes") else None
    drop = p.get("drop", 0.0)
    record_drops = bool(p.get("record_drops"))
    round_offset = p.get("round_offset", 0)

    size = hi - lo
    deg_loc = _local_deg(offsets, lo, hi)
    heard = np.zeros(size, dtype=np.int64)
    alive = np.ones(size, dtype=bool)
    for v in p.get("pre_crashed", ()):
        if lo <= v < hi:
            alive[v - lo] = False
    dead = np.array(
        [v for v in p.get("pre_crashed", ()) if lo <= v < hi], dtype=np.int64
    )
    crash_records: list[tuple[int, int]] = []
    drop_records: list[tuple[int, int, int]] = []
    per_round: list[tuple[int, int, int, int]] = []
    total_active = n - len(p.get("pre_crashed", ()))
    watchdog = None
    rnd = 0

    def _blob() -> dict[str, Any]:
        # a complete resume point: all shard-local state PLUS this
        # shard's slice of every mutable shared array, so a restart
        # overwrites any stale partial-round writes left by the crash
        return {
            "rnd": rnd,
            "total_active": total_active,
            "heard": heard.copy(),
            "alive": alive.copy(),
            "dead": dead.copy(),
            "crashes": list(crash_records),
            "drops": list(drop_records),
            "per_round": list(per_round),
            "term": term[lo:hi].copy(),
        }

    if task.resume is not None:
        b = task.resume
        rnd = b["rnd"]
        total_active = b["total_active"]
        heard[...] = b["heard"]
        alive[...] = b["alive"]
        dead = b["dead"].copy()
        crash_records = list(b["crashes"])
        drop_records = list(b["drops"])
        per_round = list(b["per_round"])
        term[lo:hi] = b["term"]
    elif task.ckpt is not None:
        task.ckpt(0, _blob())  # genesis: makes restart-from-0 exact

    while total_active > 0:
        rnd += 1
        srnd = round_offset + rnd
        chaos_kill_hook(p, task.idx, rnd)
        if crash_spec is not None:
            newly = [
                v
                for v in (np.flatnonzero(alive) + lo).tolist()
                if crash_spec.strikes(fseed, srnd, v)
            ]
            if newly:
                alive[np.asarray(newly, dtype=np.int64) - lo] = False
                dead = np.concatenate((dead, np.asarray(newly, dtype=np.int64)))
                crash_records.extend((rnd, v) for v in newly)
            (total_crashed,) = comm.allreduce(len(newly))
            total_active -= total_crashed
            if total_active == 0:
                break
        if rnd > max_rounds:
            watchdog = (np.flatnonzero(alive) + lo).tolist()
            break

        # Phase A: hear last round's JOINs, run the join test, terminate.
        act_idx = np.flatnonzero(alive)
        act = act_idx + lo
        if rnd > 1 and act.size:
            nb = gather_rows(offsets, indices, act)
            src = np.repeat(act, deg_loc[act_idx])
            jm = term[nb] == rnd - 1
            us, vs = nb[jm], src[jm]
            if drop and us.size:
                keep = np.fromiter(
                    (
                        not drop_fate(fseed, srnd - 1, int(u), int(v), 0, drop)
                        for u, v in zip(us.tolist(), vs.tolist())
                    ),
                    dtype=bool,
                    count=us.size,
                )
                vs = vs[keep]
            heard += np.bincount(vs - lo, minlength=size)
        join = (deg_loc[act_idx] - heard[act_idx]) <= A
        joiners = act[join]
        term[joiners] = rnd
        alive[act_idx[join]] = False
        comm.sync()

        # Phase B: receiver-side accounting of this round's JOIN copies.
        cand = np.concatenate((act, dead)) if dead.size else act
        counted = same = recv_loc = 0
        if cand.size:
            nb = gather_rows(offsets, indices, cand)
            src = np.repeat(cand, deg_loc[cand - lo])
            jm = term[nb] == rnd
            us, vs = nb[jm], src[jm]
            if drop and us.size:
                keep = np.fromiter(
                    (
                        not drop_fate(fseed, srnd, int(u), int(v), 0, drop)
                        for u, v in zip(us.tolist(), vs.tolist())
                    ),
                    dtype=bool,
                    count=us.size,
                )
                if record_drops and not keep.all():
                    km = ~keep
                    drop_records.extend(
                        zip([rnd] * int(km.sum()), us[km].tolist(), vs[km].tolist())
                    )
                vs = vs[keep]
            tv = term[vs]
            live = tv == 0
            counted = int(live.sum())
            same = int((tv == rnd).sum())
            recv_loc = int(np.unique(vs[live]).size)
        g = comm.allreduce(
            counted, same, recv_loc, int(joiners.size), int(alive.sum())
        )
        per_round.append((g[0] + g[1], g[0] + g[3], g[2], g[3]))
        total_active = g[4]
        if task.ckpt is not None:
            task.ckpt(rnd, _blob())

    return {
        "rounds": per_round,
        "crashes": crash_records,
        "drops": drop_records,
        "watchdog": watchdog,
        "session_rounds": rnd,
    }


def sharded_partition(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    max_rounds: int | None = None,
):
    """Sharded (or, without a session, in-process) Procedure Partition;
    crash-stop and message-drop plans are supported."""
    import repro.obs as obs
    from repro.core.common import degree_bound, partition_length_bound
    from repro.core.partition import PartitionResult
    from repro.faults.plan import current

    n = graph.n
    resolve_ids(graph, ids)  # IDs only validate; Partition is ID-oblivious
    A = degree_bound(a, eps)
    if max_rounds is None:
        max_rounds = partition_length_bound(n, eps) + 4

    bus = obs.current()
    injector = current()
    params: dict[str, Any] = {
        "n": n,
        "A": A,
        "max_rounds": max_rounds,
        "fault_seed": 0,
        "checkpoint": n <= CHECKPOINT_MAX_N,
    }
    pre_crashed: list[int] = []
    if injector is not None:
        plan = injector.plan
        mf = plan.messages
        if mf is not None and (mf.duplicate or mf.delay):
            raise BulkUnsupported(
                "sharded partition supports crash-stop and message-drop "
                "faults only; duplicate/delay plans need the 'fast' or "
                "'reference' engine"
            )
        pre_crashed = sorted(v for v in injector.begin_run(None) if v < n)
        params["fault_seed"] = plan.seed
        params["round_offset"] = injector._round
        params["pre_crashed"] = pre_crashed
        if plan.crashes is not None and plan.crashes.active:
            params["crashes"] = {
                "at": dict(plan.crashes.at),
                "hazard": plan.crashes.hazard,
            }
        if mf is not None and mf.drop:
            params["drop"] = mf.drop
            params["record_drops"] = bus is not None and bus.active

    payloads, copies, _bounds = _execute_kernel(
        "partition",
        graph,
        {"term": ((n,), np.int64)},
        params,
        copy_keys=("term",),
    )
    term = copies["term"]

    wd = [p["watchdog"] for p in payloads]
    if any(w is not None for w in wd):
        if injector is not None:
            injector.absorb_rounds(
                payloads[0]["session_rounds"],
                [v for p in payloads for (_r, v) in p["crashes"]],
            )
        active_all = [v for w in wd if w is not None for v in w]
        raise RoundLimitExceeded(max_rounds, active_all, None)

    rounds = payloads[0]["rounds"]
    sent = [r[0] for r in rounds]
    msgs = [r[1] for r in rounds]
    recv = [r[2] for r in rounds]

    if injector is None:
        outputs = {v: int(term[v]) for v in range(n)}
        res = finalize_run(outputs, term, sent, msgs, recv)
    else:
        crash_rounds = dict(
            sorted(((v, r) for p in payloads for (r, v) in p["crashes"]))
        )
        injector.absorb_rounds(
            payloads[0]["session_rounds"], list(crash_rounds)
        )
        outputs = {v: int(term[v]) for v in range(n) if term[v] > 0}
        res = finalize_faulted_run(
            outputs,
            term,
            crash_rounds,
            pre_crashed,
            sent,
            msgs,
            recv,
            crashed_all=[v for v in injector.crashed if v < n],
            drops=[d for p in payloads for d in p.get("drops", ())],
        )
    return PartitionResult(h_index=dict(res.outputs), A=A, metrics=res.metrics)


# ---------------------------------------------------------------------------
# Luby MIS
# ---------------------------------------------------------------------------


def _kernel_luby(task: ShardTask) -> dict[str, Any]:
    """One shard of lockstep Luby MIS.

    Per attempt: draw own priorities (write ``rand``); barrier; account
    round 2k-1 receiver-side; win-check against neighbor ``rand``/``ids``
    and write own winner terminations; barrier; account round 2k, retire
    own winners and losers; allreduce the attempt's totals.  Per-vertex
    ``random.Random`` streams live only for the shard's own slice.
    """
    p = task.params
    offsets = task.views["offsets"]
    indices = task.views["indices"]
    term = task.views["term"]
    rand = task.views["rand"]
    alive = task.views["alive"]
    ids_arr = task.views["ids"]
    lo, hi = task.lo, task.hi
    comm = task.comm
    n = p["n"]
    seed = p["seed"]
    max_rounds = p["max_rounds"]

    size = hi - lo
    deg_loc = _local_deg(offsets, lo, hi)
    rngs: list[Random | None] = [None] * size
    per_round: list[tuple[int, int, int, int]] = []
    prev_l = np.zeros(0, dtype=np.int64)
    total_alive = n
    watchdog = None
    k = 0

    while total_alive > 0:
        k += 1
        r1 = 2 * k - 1
        act_idx = np.flatnonzero(alive[lo:hi])
        act = act_idx + lo
        if r1 > max_rounds:
            watchdog = ("r1", act.tolist(), prev_l.tolist())
            break
        for i, v in zip(act_idx.tolist(), act.tolist()):
            rng = rngs[i]
            if rng is None:
                rng = rngs[i] = Random(f"{seed}:{int(ids_arr[v])}:seed")
            rand[v] = rng.random()
        comm.sync()

        # round 2k-1: priorities broadcast + previous losers' announce
        cand = np.concatenate((act, prev_l)) if prev_l.size else act
        c1 = s1 = rv1 = 0
        if cand.size:
            nb = gather_rows(offsets, indices, cand)
            src = np.repeat(cand, deg_loc[cand - lo])
            bm = alive[nb] | (term[nb] == r1)
            vs = src[bm]
            tv = term[vs]
            live = tv == 0
            c1 = int(live.sum())
            s1 = int((tv == r1).sum())
            rv1 = int(np.unique(vs[live]).size)
        h1 = int(prev_l.size)

        # round 2k: win check on (rand, id) against alive neighbors
        r2 = 2 * k
        if r2 > max_rounds:
            watchdog = ("r2", act.tolist(), [])
            break
        winners = np.zeros(0, dtype=np.int64)
        nb2 = src2 = None
        if act.size:
            nb2 = gather_rows(offsets, indices, act)
            src2 = np.repeat(act, deg_loc[act_idx])
            am = alive[nb2]
            sr_a, nb_a = src2[am], nb2[am]
            beat = (rand[nb_a] > rand[sr_a]) | (
                (rand[nb_a] == rand[sr_a]) & (ids_arr[nb_a] > ids_arr[sr_a])
            )
            beaten = np.bincount(sr_a[beat] - lo, minlength=size).astype(bool)
            winners = act[~beaten[act_idx]]
            term[winners] = r2
        comm.sync()

        # account 2k (losers still term 0, matching the bulk call order),
        # then retire own winners and detect own losers
        c2 = s2 = rv2 = 0
        losers = np.zeros(0, dtype=np.int64)
        if act.size:
            wm = term[nb2] == r2
            vs = src2[wm]
            tv = term[vs]
            live = tv == 0
            c2 = int(live.sum())
            s2 = int((tv == r2).sum())
            rv2 = int(np.unique(vs[live]).size)
            alive[winners] = False
            has_wnb = np.bincount(
                src2[wm] - lo, minlength=size
            ).astype(bool)
            lm = has_wnb[act_idx] & (term[act] == 0)
            losers = act[lm]
            term[losers] = r2 + 1
            alive[losers] = False
        for i in (winners - lo).tolist():
            rngs[i] = None
        for i in (losers - lo).tolist():
            rngs[i] = None
        prev_l = losers

        g = comm.allreduce(
            c1, s1, rv1, h1,
            c2, s2, rv2, int(winners.size),
            int(losers.size), int(alive[lo:hi].sum()),
        )
        per_round.append((g[0] + g[1], g[0] + g[3], g[2], g[3]))
        per_round.append((g[4] + g[5], g[4] + g[7], g[6], g[7]))
        total_losers = g[8]
        total_alive = g[9]

    if watchdog is None and k and total_losers:
        # the final losers announce + terminate one round after the loop
        r = 2 * k + 1
        s3 = 0
        own_l = prev_l
        if own_l.size:
            nb = gather_rows(offsets, indices, own_l)
            src = np.repeat(own_l, deg_loc[own_l - lo])
            bm = term[nb] == r
            s3 = int((term[src[bm]] == r).sum())
        g = comm.allreduce(s3, int(own_l.size))
        per_round.append((g[0], g[1], 0, g[1]))

    return {"rounds": per_round, "watchdog": watchdog}


def _kernel_luby_faulted(task: ShardTask) -> dict[str, Any]:
    """One shard of Luby MIS under the crash-stop / message-drop adversary.

    Unlike the fault-free kernel (one iteration per *attempt*), this one
    steps one engine *round* per iteration, because crash draws happen per
    round over the still-running set -- exactly the fast engine's
    ``on_round`` cadence.  The round parity encodes the protocol: odd
    round 2k-1 delivers the previous attempt's MIS announcements (losers
    leave) and broadcasts attempt-k priorities; even round 2k delivers
    priorities and leave announcements and runs the win check.

    Receiver-owned per-edge state replicates each vertex's accumulated
    :class:`~repro.core.common.LocalView`: ``e_att[j]`` is the attempt of
    the last priority heard over edge j (0 = never; a stale value counts
    as *beaten*, matching the program's ``prios[u][0] < attempt`` test),
    ``disc[j]`` whether the neighbor's leave announcement arrived.  A
    neighbor that crashed before ever announcing a priority blocks its
    survivors forever -- the watchdog converts that into the typed
    round-limit error, the same legitimate non-termination the fast
    engine reports.  Crash-safe, NOT drop-safe: a dropped MIS
    announcement can leave two adjacent winners (see docs/faults.md).
    """
    from repro.faults.plan import CrashSpec, drop_fate

    p = task.params
    offsets = task.views["offsets"]
    indices = task.views["indices"]
    term = task.views["term"]
    rand = task.views["rand"]
    lastp = task.views["lastp"]
    ids_arr = task.views["ids"]
    lo, hi = task.lo, task.hi
    comm = task.comm
    n = p["n"]
    seed = p["seed"]
    max_rounds = p["max_rounds"]
    fseed = p["fault_seed"]
    crash_spec = CrashSpec(**p["crashes"]) if p.get("crashes") else None
    drop = p.get("drop", 0.0)
    record_drops = bool(p.get("record_drops"))
    round_offset = p.get("round_offset", 0)

    size = hi - lo
    deg_loc = _local_deg(offsets, lo, hi)
    e_lo = int(offsets[lo])
    nb_own = indices[e_lo : int(offsets[hi])].astype(np.int64)
    e_off = (offsets[lo : hi + 1] - e_lo).astype(np.int64)
    e_att = np.zeros(nb_own.size, dtype=np.int64)
    disc = np.zeros(nb_own.size, dtype=bool)
    running = np.ones(size, dtype=bool)
    for v in p.get("pre_crashed", ()):
        if lo <= v < hi:
            running[v - lo] = False
    rngs: list[Random | None] = [None] * size
    crash_records: list[tuple[int, int]] = []
    drop_records: list[tuple[int, int, int]] = []
    per_round: list[tuple[int, int, int, int]] = []
    total_running = n - len(p.get("pre_crashed", ()))
    watchdog = None
    rnd = 0

    def _kept(srnd_send: int, us: np.ndarray, ws: np.ndarray) -> np.ndarray:
        """Per-copy survival mask for broadcasts sent in ``srnd_send``
        (every sender broadcasts at most once per round, so copy 0)."""
        if not drop or us.size == 0:
            return np.ones(us.size, dtype=bool)
        return np.fromiter(
            (
                not drop_fate(fseed, srnd_send, int(u), int(w), 0, drop)
                for u, w in zip(us.tolist(), ws.tolist())
            ),
            dtype=bool,
            count=us.size,
        )

    def _own_edges(idx: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(edge positions, neighbors, owners) of the rows of own ``idx``."""
        cnt = deg_loc[idx]
        total = int(cnt.sum())
        if total == 0:
            z = np.zeros(0, dtype=np.int64)
            return z, z, z
        cum = np.cumsum(cnt)
        ej = (
            np.arange(total, dtype=np.int64)
            - np.repeat(cum - cnt, cnt)
            + np.repeat(e_off[idx], cnt)
        )
        return ej, nb_own[ej], np.repeat(idx + lo, cnt)

    while total_running > 0:
        rnd += 1
        srnd = round_offset + rnd
        if crash_spec is not None:
            newly = [
                v
                for v in (np.flatnonzero(running) + lo).tolist()
                if crash_spec.strikes(fseed, srnd, v)
            ]
            if newly:
                running[np.asarray(newly, dtype=np.int64) - lo] = False
                crash_records.extend((rnd, v) for v in newly)
            (total_crashed,) = comm.allreduce(len(newly))
            total_running -= total_crashed
            if total_running == 0:
                break
        if rnd > max_rounds:
            watchdog = (np.flatnonzero(running) + lo).tolist()
            break

        run_idx = np.flatnonzero(running)
        halts_own = 0
        if rnd % 2 == 1:
            # Odd round 2k-1: leave on MIS announcements delivered from
            # the round-(2k-2) winners, then draw the attempt-k priority.
            k = (rnd + 1) // 2
            if rnd > 1 and run_idx.size:
                _ej, nbs, owners = _own_edges(run_idx)
                wm = term[nbs] == rnd - 1
                if wm.any():
                    keep = _kept(srnd - 1, nbs[wm], owners[wm])
                    leavers = np.unique(owners[wm][keep])
                    if leavers.size:
                        term[leavers] = rnd
                        running[leavers - lo] = False
                        halts_own = int(leavers.size)
                        run_idx = np.flatnonzero(running)
            for i in run_idx.tolist():
                rng = rngs[i]
                if rng is None:
                    rng = rngs[i] = Random(f"{seed}:{int(ids_arr[lo + i])}:seed")
                rand[lo + i] = rng.random()
                lastp[lo + i] = rnd
        else:
            # Even round 2k: absorb attempt-k priorities and leave
            # announcements sent at 2k-1, then the win check over the
            # accumulated per-edge view.
            k = rnd // 2
            if run_idx.size:
                ej, nbs, owners = _own_edges(run_idx)
                pm = lastp[nbs] == rnd - 1
                if pm.any():
                    keep = _kept(srnd - 1, nbs[pm], owners[pm])
                    e_att[ej[pm][keep]] = k
                fm = term[nbs] == rnd - 1
                if fm.any():
                    keep = _kept(srnd - 1, nbs[fm], owners[fm])
                    disc[ej[fm][keep]] = True
                ea = e_att[ej]
                rv, iv = rand[owners], ids_arr[owners]
                beaten = (rand[nbs] < rv) | ((rand[nbs] == rv) & (ids_arr[nbs] < iv))
                ok = disc[ej] | ((ea > 0) & (ea < k)) | ((ea == k) & beaten)
                blocked = np.bincount(
                    owners[~ok] - lo, minlength=size
                ).astype(bool)
                winners = run_idx[~blocked[run_idx]] + lo
                if winners.size:
                    term[winners] = rnd
                    running[winners - lo] = False
                    halts_own = int(winners.size)
        comm.sync()

        # Phase B: receiver-side accounting of this round's broadcasts
        # (attempt priorities + leave announcements at odd rounds, MIS
        # announcements at even rounds -- every sender is marked in the
        # shared arrays: lastp == rnd or term == rnd).
        own_term = term[lo:hi]
        cand_i = np.flatnonzero((own_term == 0) | (own_term == rnd))
        counted = same = recv_loc = 0
        if cand_i.size:
            _ej, nbs, owners = _own_edges(cand_i)
            if rnd % 2 == 1:
                sm = (lastp[nbs] == rnd) | (term[nbs] == rnd)
            else:
                sm = term[nbs] == rnd
            us, ws = nbs[sm], owners[sm]
            if drop and us.size:
                keep = _kept(srnd, us, ws)
                if record_drops and not keep.all():
                    km = ~keep
                    drop_records.extend(
                        zip([rnd] * int(km.sum()), us[km].tolist(), ws[km].tolist())
                    )
                us, ws = us[keep], ws[keep]
            tw = term[ws]
            live = tw == 0
            counted = int(live.sum())
            same = int((tw == rnd).sum())
            recv_loc = int(np.unique(ws[live]).size)
        g = comm.allreduce(
            counted, same, recv_loc, halts_own, int(running.sum())
        )
        per_round.append((g[0] + g[1], g[0] + g[3], g[2], g[3]))
        total_running = g[4]

    return {
        "rounds": per_round,
        "crashes": crash_records,
        "drops": drop_records,
        "watchdog": watchdog,
        "session_rounds": rnd,
    }


def sharded_luby_mis(
    graph: Graph,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    max_rounds: int | None = None,
):
    """Sharded (or, without a session, in-process) Luby MIS; crash-stop
    and message-drop plans are supported via the round-lockstep kernel."""
    from repro.core.extension import MISResult
    from repro.faults.plan import current

    n = graph.n
    ids_arr = resolve_ids(graph, ids)
    if max_rounds is None:
        max_rounds = 64 * (n.bit_length() + 4) + 64

    injector = current()
    if injector is not None:
        return _sharded_luby_faulted(
            graph, ids_arr, seed, max_rounds, injector
        )

    payloads, copies, _bounds = _launch(
        "luby",
        graph,
        {
            "term": ((n,), np.int64),
            "rand": ((n,), np.float64),
            "alive": np.ones(n, dtype=bool),
            "ids": ids_arr,
        },
        {"n": n, "seed": seed, "max_rounds": max_rounds},
        copy_keys=("term",),
    )
    term = copies["term"]

    wd = [p["watchdog"] for p in payloads]
    if any(w is not None for w in wd):
        acts = [v for w in wd if w is not None for v in w[1]]
        prevs = [v for w in wd if w is not None for v in w[2]]
        raise RoundLimitExceeded(max_rounds, acts + prevs, None)

    rounds = payloads[0]["rounds"]
    outputs: dict[int, Any] = {
        v: (int(t) // 2, True) if t % 2 == 0 else ((int(t) - 1) // 2, False)
        for v, t in enumerate(term.tolist())
    }
    res = finalize_run(
        outputs,
        term,
        [r[0] for r in rounds],
        [r[1] for r in rounds],
        [r[2] for r in rounds],
    )
    return MISResult(
        in_mis={v: flag for v, (att, flag) in res.outputs.items()},
        h_index={v: att for v, (att, flag) in res.outputs.items()},
        metrics=res.metrics,
    )


def _luby_outputs(term: np.ndarray) -> dict[int, Any]:
    """Decode (attempt, joined?) from Luby termination parity: winners
    terminate at even round 2k, losers one round later at 2k+1."""
    return {
        v: ((int(t) // 2, True) if t % 2 == 0 else ((int(t) - 1) // 2, False))
        for v, t in enumerate(term.tolist())
        if t > 0
    }


def _fault_params(injector, n: int, name: str, bus) -> dict[str, Any]:
    """The shared fault-plan -> kernel-params translation: crash-stop and
    message-drop plans are evaluated inside the kernels via the pure
    counter-based draws; duplicate/delay plans have no receiver-side
    replay and are rejected up front."""
    plan = injector.plan
    mf = plan.messages
    if mf is not None and (mf.duplicate or mf.delay):
        raise BulkUnsupported(
            f"{name} supports crash-stop and message-drop faults only; "
            "duplicate/delay plans need the 'fast' or 'reference' engine"
        )
    pre_crashed = sorted(v for v in injector.begin_run(None) if v < n)
    params: dict[str, Any] = {
        "fault_seed": plan.seed,
        "round_offset": injector._round,
        "pre_crashed": pre_crashed,
    }
    if plan.crashes is not None and plan.crashes.active:
        params["crashes"] = {
            "at": dict(plan.crashes.at),
            "hazard": plan.crashes.hazard,
        }
    if mf is not None and mf.drop:
        params["drop"] = mf.drop
        params["record_drops"] = bus is not None and bus.active
    return params


def _sharded_luby_faulted(graph, ids_arr, seed, max_rounds, injector):
    """The faulted half of :func:`sharded_luby_mis`."""
    import repro.obs as obs
    from repro.core.extension import MISResult

    n = graph.n
    bus = obs.current()
    params = _fault_params(injector, n, "luby MIS", bus)
    params.update({"n": n, "seed": seed, "max_rounds": max_rounds})
    pre_crashed = params["pre_crashed"]

    payloads, copies, _bounds = _execute_kernel(
        "luby_faulted",
        graph,
        {
            "term": ((n,), np.int64),
            "rand": ((n,), np.float64),
            "lastp": ((n,), np.int64),
            "ids": ids_arr,
        },
        params,
        copy_keys=("term",),
    )
    term = copies["term"]

    wd = [p["watchdog"] for p in payloads]
    if any(w is not None for w in wd):
        injector.absorb_rounds(
            payloads[0]["session_rounds"],
            [v for p in payloads for (_r, v) in p["crashes"]],
        )
        raise RoundLimitExceeded(
            max_rounds, [v for w in wd if w is not None for v in w], None
        )

    rounds = payloads[0]["rounds"]
    crash_rounds = dict(
        sorted(((v, r) for p in payloads for (r, v) in p["crashes"]))
    )
    injector.absorb_rounds(payloads[0]["session_rounds"], list(crash_rounds))
    res = finalize_faulted_run(
        _luby_outputs(term),
        term,
        crash_rounds,
        pre_crashed,
        [r[0] for r in rounds],
        [r[1] for r in rounds],
        [r[2] for r in rounds],
        crashed_all=[v for v in injector.crashed if v < n],
        drops=[d for p in payloads for d in p.get("drops", ())],
    )
    return MISResult(
        in_mis={v: flag for v, (att, flag) in res.outputs.items()},
        h_index={v: att for v, (att, flag) in res.outputs.items()},
        metrics=res.metrics,
    )


# ---------------------------------------------------------------------------
# Cole-Vishkin ring 3-coloring
# ---------------------------------------------------------------------------


def _kernel_cole_vishkin(task: ShardTask) -> dict[str, Any]:
    """One shard of Cole-Vishkin: the color array is double-buffered so a
    step reads buffer ``s & 1`` and writes the other; one barrier per
    halving/recolor step."""
    p = task.params
    offsets = task.views["offsets"]
    indices = task.views["indices"]
    buf = task.views["colors"]  # (2, n)
    succ = task.views["succ"]
    lo, hi = task.lo, task.hi
    comm = task.comm
    steps = p["steps"]

    deg_loc = _local_deg(offsets, lo, hi)
    cur = 0
    for _ in range(steps):
        c0, c1 = buf[cur], buf[1 - cur]
        cs = c0[succ[lo:hi]]
        diff = c0[lo:hi] ^ cs
        low = diff & -diff
        i = np.log2(low.astype(np.float64)).astype(np.int64)
        c1[lo:hi] = 2 * i + ((c0[lo:hi] >> i) & 1)
        comm.sync()
        cur = 1 - cur
    own = np.arange(lo, hi, dtype=np.int64)
    src = np.repeat(own, deg_loc) - lo
    nb = indices[offsets[lo] : offsets[hi]]
    size = hi - lo
    for cls in (5, 4, 3):
        c0, c1 = buf[cur], buf[1 - cur]
        nbc = c0[nb]
        used0 = np.zeros(size, dtype=bool)
        used0[src[nbc == 0]] = True
        used1 = np.zeros(size, dtype=bool)
        used1[src[nbc == 1]] = True
        pick = np.where(~used0, 0, np.where(~used1, 1, 2))
        c1[lo:hi] = np.where(c0[lo:hi] == cls, pick, c0[lo:hi])
        comm.sync()
        cur = 1 - cur
    return {"cur": cur}


def _kernel_cole_vishkin_faulted(task: ShardTask) -> dict[str, Any]:
    """One shard of Cole-Vishkin under crash-stop / message-drop faults.

    Runs in round lockstep like the fast program: rounds ``1..steps+1``
    broadcast the halving chain (round r reduces with the successor's
    round-``r-1`` value), rounds ``steps+2..steps+4`` process the greedy
    recolor classes 5, 4, 3; everyone still alive terminates at
    ``steps+4``.  The program *never waits*: a missing successor value
    (crashed sender or dropped copy) skips the reduce and keeps the
    current color -- identical to the fast program's keep-color-on-missing
    rule -- so Cole-Vishkin cannot non-terminate under this adversary,
    only degrade (the validators flag the resulting defects).

    Shared state is parity-disciplined: ``colors[r & 1][v]`` is the value
    v broadcast at round r (written in phase A of round r, read by
    neighbors in phase A of round r+1 -- the other slot), and the
    monotone ``bstamp[v]`` is the last round v broadcast, so receivers
    gate delivery on ``bstamp[u] >= r-1`` without racing the current
    round's stamps.
    """
    from repro.faults.plan import CrashSpec, drop_fate

    p = task.params
    offsets = task.views["offsets"]
    indices = task.views["indices"]
    buf = task.views["colors"]  # (2, n): slot r & 1 = round-r broadcast
    bstamp = task.views["bstamp"]
    term = task.views["term"]
    col = task.views["col"]
    succ = task.views["succ"]
    ids_arr = task.views["ids"]
    lo, hi = task.lo, task.hi
    comm = task.comm
    n = p["n"]
    steps = p["steps"]
    fseed = p["fault_seed"]
    crash_spec = CrashSpec(**p["crashes"]) if p.get("crashes") else None
    drop = p.get("drop", 0.0)
    record_drops = bool(p.get("record_drops"))
    round_offset = p.get("round_offset", 0)

    size = hi - lo
    deg_loc = _local_deg(offsets, lo, hi)
    e_lo = int(offsets[lo])
    nb_own = indices[e_lo : int(offsets[hi])].astype(np.int64)
    e_off = (offsets[lo : hi + 1] - e_lo).astype(np.int64)
    own_succ = succ[lo:hi].astype(np.int64)
    running = np.ones(size, dtype=bool)
    for v in p.get("pre_crashed", ()):
        if lo <= v < hi:
            running[v - lo] = False
    crash_records: list[tuple[int, int]] = []
    drop_records: list[tuple[int, int, int]] = []
    per_round: list[tuple[int, int, int, int]] = []
    total_running = n - len(p.get("pre_crashed", ()))
    rnd = 0

    def _kept(srnd_send: int, us: np.ndarray, ws: np.ndarray) -> np.ndarray:
        if not drop or us.size == 0:
            return np.ones(us.size, dtype=bool)
        return np.fromiter(
            (
                not drop_fate(fseed, srnd_send, int(u), int(w), 0, drop)
                for u, w in zip(us.tolist(), ws.tolist())
            ),
            dtype=bool,
            count=us.size,
        )

    while total_running > 0 and rnd < steps + 4:
        rnd += 1
        srnd = round_offset + rnd
        if crash_spec is not None:
            newly = [
                v
                for v in (np.flatnonzero(running) + lo).tolist()
                if crash_spec.strikes(fseed, srnd, v)
            ]
            if newly:
                running[np.asarray(newly, dtype=np.int64) - lo] = False
                crash_records.extend((rnd, v) for v in newly)
            (total_crashed,) = comm.allreduce(len(newly))
            total_running -= total_crashed
            if total_running == 0:
                break

        run_idx = np.flatnonzero(running)
        halts_own = 0
        if run_idx.size:
            vg = run_idx + lo
            if rnd == 1:
                c_new = ids_arr[vg].astype(np.int64)
            else:
                c_new = buf[(rnd - 1) & 1][vg].copy()
                if rnd <= steps + 1:
                    # halving step: reduce with the successor's round-(r-1)
                    # value when it arrived, keep the color otherwise
                    su = own_succ[run_idx]
                    got = bstamp[su] >= rnd - 1
                    if got.any():
                        got &= _kept(srnd - 1, su, vg)
                    # keep-color on missing *or equal* successor value
                    # (the latter is reachable once a step was skipped)
                    got &= buf[(rnd - 1) & 1][su] != c_new
                    if got.any():
                        cs = buf[(rnd - 1) & 1][su[got]]
                        c0 = c_new[got]
                        diff = c0 ^ cs
                        low = diff & -diff
                        i = np.log2(low.astype(np.float64)).astype(np.int64)
                        c_new[got] = 2 * i + ((c0 >> i) & 1)
                else:
                    # greedy recolor of class 5 / 4 / 3 over the delivered
                    # neighbor values from round r-1
                    cls = 5 - (rnd - steps - 2)
                    mine = np.flatnonzero(c_new == cls)
                    for j in mine.tolist():
                        i = run_idx[j]
                        nbs = nb_own[e_off[i] : e_off[i + 1]]
                        got_n = nbs[bstamp[nbs] >= rnd - 1]
                        keep = _kept(
                            srnd - 1, got_n, np.full(got_n.size, lo + i)
                        )
                        used = set(buf[(rnd - 1) & 1][got_n[keep]].tolist())
                        c_new[j] = next(
                            cc for cc in (0, 1, 2) if cc not in used
                        )
            if rnd <= steps + 3:
                buf[rnd & 1][vg] = c_new
                bstamp[vg] = rnd
            else:
                col[vg] = c_new
                term[vg] = rnd
                running[run_idx] = False
                halts_own = int(run_idx.size)
        comm.sync()

        own_term = term[lo:hi]
        cand_i = np.flatnonzero((own_term == 0) | (own_term == rnd))
        counted = same = recv_loc = 0
        if cand_i.size:
            cnt = deg_loc[cand_i]
            total = int(cnt.sum())
            if total:
                cum = np.cumsum(cnt)
                ej = (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(cum - cnt, cnt)
                    + np.repeat(e_off[cand_i], cnt)
                )
                nbs = nb_own[ej]
                owners = np.repeat(cand_i + lo, cnt)
                sm = bstamp[nbs] == rnd
                us, ws = nbs[sm], owners[sm]
                if drop and us.size:
                    keep = _kept(srnd, us, ws)
                    if record_drops and not keep.all():
                        km = ~keep
                        drop_records.extend(
                            zip(
                                [rnd] * int(km.sum()),
                                us[km].tolist(),
                                ws[km].tolist(),
                            )
                        )
                    us, ws = us[keep], ws[keep]
                tw = term[ws]
                live = tw == 0
                counted = int(live.sum())
                same = int((tw == rnd).sum())
                recv_loc = int(np.unique(ws[live]).size)
        g = comm.allreduce(
            counted, same, recv_loc, halts_own, int(running.sum())
        )
        per_round.append((g[0] + g[1], g[0] + g[3], g[2], g[3]))
        total_running = g[4]

    return {
        "rounds": per_round,
        "crashes": crash_records,
        "drops": drop_records,
        "watchdog": None,
        "session_rounds": rnd,
    }


def _sharded_cv_faulted(graph, successor, ids_arr, seed, injector):
    """The faulted half of :func:`sharded_ring_three_coloring`."""
    import repro.obs as obs
    from repro.baselines.cole_vishkin import _cv_steps
    from repro.core.coloring import ColoringResult

    n = graph.n
    bus = obs.current()
    params = _fault_params(injector, n, "ring 3-coloring", bus)
    steps = _cv_steps(id_space(ids_arr))
    params.update({"n": n, "steps": steps})
    pre_crashed = params["pre_crashed"]

    payloads, copies, _bounds = _execute_kernel(
        "cole_vishkin_faulted",
        graph,
        {
            "colors": ((2, n), np.int64),
            "bstamp": ((n,), np.int64),
            "term": ((n,), np.int64),
            "col": ((n,), np.int64),
            "succ": np.asarray(list(successor), dtype=np.int64),
            "ids": ids_arr,
        },
        params,
        copy_keys=("term", "col"),
    )
    term = copies["term"]
    col = copies["col"]

    rounds = payloads[0]["rounds"]
    crash_rounds = dict(
        sorted(((v, r) for p in payloads for (r, v) in p["crashes"]))
    )
    injector.absorb_rounds(payloads[0]["session_rounds"], list(crash_rounds))
    outputs = {
        v: (1, int(col[v])) for v, t in enumerate(term.tolist()) if t > 0
    }
    res = finalize_faulted_run(
        outputs,
        term,
        crash_rounds,
        pre_crashed,
        [r[0] for r in rounds],
        [r[1] for r in rounds],
        [r[2] for r in rounds],
        crashed_all=[v for v in injector.crashed if v < n],
        drops=[d for p in payloads for d in p.get("drops", ())],
    )
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=3,
    )


def sharded_ring_three_coloring(
    graph: Graph,
    successor: Sequence[int],
    ids: Sequence[int] | None = None,
    seed: int = 0,
):
    """Sharded Cole-Vishkin; accounting is closed-form in the parent for
    fault-free runs, receiver-side per round under a fault session."""
    from repro.baselines.cole_vishkin import _cv_steps
    from repro.core.coloring import ColoringResult
    from repro.faults.plan import current

    n = graph.n
    ids_arr = resolve_ids(graph, ids)

    injector = current()
    if injector is not None:
        return _sharded_cv_faulted(graph, successor, ids_arr, seed, injector)
    offsets, _ = graph.csr(dtype="auto")
    deg = (offsets[1:] - offsets[:-1]).astype(np.int64)
    m2 = int(offsets[-1])
    steps = _cv_steps(id_space(ids_arr))

    if n:
        colors0 = np.zeros((2, n), dtype=np.int64)
        colors0[0] = ids_arr
        payloads, copies, _bounds = _launch(
            "cole_vishkin",
            graph,
            {
                "colors": colors0,
                "succ": np.asarray(list(successor), dtype=np.int64),
            },
            {"n": n, "steps": steps},
            copy_keys=("colors",),
        )
        c = copies["colors"][payloads[0]["cur"]]
    else:
        c = np.zeros(0, dtype=np.int64)

    rounds_total = steps + 4
    if n:
        term = np.full(n, rounds_total, dtype=np.int64)
        n_recv = int((deg > 0).sum())
        sent = [m2] * (rounds_total - 1) + [0]
        msgs = [m2] * (rounds_total - 1) + [n]
        recv = [n_recv] * (rounds_total - 1) + [0]
    else:
        term = np.zeros(0, dtype=np.int64)
        sent, msgs, recv = [], [], []
    outputs = {v: (1, int(c[v])) for v in range(n)}
    res = finalize_run(outputs, term, sent, msgs, recv)
    return ColoringResult(
        colors={v: col for v, (h, col) in res.outputs.items()},
        h_index={v: h for v, (h, col) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=3,
    )


# ---------------------------------------------------------------------------
# Defective coloring
# ---------------------------------------------------------------------------


def _kernel_defective(task: ShardTask) -> dict[str, Any]:
    """One shard of the defective-coloring schedule.

    The cover-free family schedule is recomputed locally (it is a pure
    function of ``(id_space, A, d)``), and each family step runs the
    per-vertex ``fam.pick`` loop over the shard's own slice against the
    previous buffer — this Python loop is exactly the part that profits
    from sharding.
    """
    from repro.core.defective import defective_schedule

    p = task.params
    offsets = task.views["offsets"]
    indices = task.views["indices"]
    buf = task.views["colors"]  # (2, n)
    lo, hi = task.lo, task.hi
    comm = task.comm

    schedule = defective_schedule(p["space"], p["A"], p["d"])
    off = (offsets[lo : hi + 1] - offsets[lo]).tolist()
    nb = indices[offsets[lo] : offsets[hi]].tolist()
    cur = 0
    for fam in schedule:
        c0 = buf[cur].tolist()
        c1 = buf[1 - cur]
        c1[lo:hi] = [
            fam.pick(c0[v], [c0[u] for u in nb[off[i] : off[i + 1]]])
            for i, v in enumerate(range(lo, hi))
        ]
        comm.sync()
        cur = 1 - cur
    return {"cur": cur}


def _kernel_defective_faulted(task: ShardTask) -> dict[str, Any]:
    """One shard of the defective-coloring schedule under crash-stop /
    message-drop faults.

    The fast program is *self-synchronizing*: it broadcasts family step k
    and then waits until every neighbor's step k arrived, with no resend.
    Two consequences shape this kernel.  First, a vertex released from a
    long wait catches up by broadcasting several steps in one round, so a
    (src, dst) pair can carry multiple copies per round -- the adversary's
    per-copy index is the step's offset within the sender's round batch.
    Second, one dropped copy (or a crashed neighbor) stalls its receiver
    at that step forever, which cascades; the watchdog reports the same
    legitimate non-termination the fast engine does.

    Shared state: ``ustep[r & 1][v]`` is v's cumulative broadcast count as
    of round r (written every round v is alive, so the previous-parity
    slot is always fresh for delivery), ``ucol[s & 1][v]`` the color value
    of v's step-s broadcast (neighbor step skew is at most one wait, so a
    slot is consumed at least one barrier before it is overwritten), and
    the monotone ``ulast[v]`` stamps v's last live round so accounting
    never counts phantom sends from a parity-frozen dead sender.
    Receiver-owned per-edge state: ``e_seen[j]`` copies fate-processed so
    far, ``e_gap[j]`` the first step not yet delivered (the wait barrier
    -- a drop freezes it permanently).
    """
    from repro.core.defective import defective_schedule
    from repro.faults.plan import CrashSpec, drop_fate

    p = task.params
    offsets = task.views["offsets"]
    indices = task.views["indices"]
    ustep = task.views["ustep"]  # (2, n)
    ucol = task.views["ucol"]  # (2, n)
    ulast = task.views["ulast"]
    term = task.views["term"]
    col = task.views["col"]
    ids_arr = task.views["ids"]
    lo, hi = task.lo, task.hi
    comm = task.comm
    n = p["n"]
    max_rounds = p["max_rounds"]
    fseed = p["fault_seed"]
    crash_spec = CrashSpec(**p["crashes"]) if p.get("crashes") else None
    drop = p.get("drop", 0.0)
    record_drops = bool(p.get("record_drops"))
    round_offset = p.get("round_offset", 0)

    schedule = defective_schedule(p["space"], p["A"], p["d"])
    n_steps = len(schedule)
    size = hi - lo
    e_lo = int(offsets[lo])
    nb_own = indices[e_lo : int(offsets[hi])].astype(np.int64).tolist()
    e_off = (offsets[lo : hi + 1] - e_lo).astype(np.int64).tolist()
    e_seen = [0] * len(nb_own)
    e_gap = [0] * len(nb_own)
    running = np.ones(size, dtype=bool)
    for v in p.get("pre_crashed", ()):
        if lo <= v < hi:
            running[v - lo] = False
    bc = [0] * size  # steps broadcast so far; picks done = bc - 1 or bc
    cols = [int(x) for x in ids_arr[lo:hi]]
    crash_records: list[tuple[int, int]] = []
    drop_records: list[tuple[int, int, int]] = []
    per_round: list[tuple[int, int, int, int]] = []
    total_running = n - len(p.get("pre_crashed", ()))
    watchdog = None
    rnd = 0

    while total_running > 0:
        rnd += 1
        srnd = round_offset + rnd
        if crash_spec is not None:
            newly = [
                v
                for v in (np.flatnonzero(running) + lo).tolist()
                if crash_spec.strikes(fseed, srnd, v)
            ]
            if newly:
                running[np.asarray(newly, dtype=np.int64) - lo] = False
                crash_records.extend((rnd, v) for v in newly)
            (total_crashed,) = comm.allreduce(len(newly))
            total_running -= total_crashed
            if total_running == 0:
                break
        if rnd > max_rounds:
            watchdog = (np.flatnonzero(running) + lo).tolist()
            break

        run_idx = np.flatnonzero(running).tolist()
        halts_own = 0
        # Phase A1: fate-process the copies broadcast at round rnd-1
        # (delivery advances each edge's contiguous-prefix gap; a dropped
        # step freezes it -- there are no resends).
        if rnd > 1:
            for i in run_idx:
                for j in range(e_off[i], e_off[i + 1]):
                    u = nb_own[j]
                    cnt = int(ustep[(rnd - 1) & 1][u])
                    base = e_seen[j]
                    if cnt <= base:
                        continue
                    for s in range(base, cnt):
                        if drop and drop_fate(
                            fseed, srnd - 1, u, lo + i, s - base, drop
                        ):
                            continue
                        if s == e_gap[j]:
                            e_gap[j] = s + 1
                    e_seen[j] = cnt
        # Phase A2: make progress -- first activation broadcasts step 0,
        # then every satisfied wait picks and broadcasts the next step
        # (possibly several in one round), terminating after the last pick.
        for i in run_idx:
            v = lo + i
            b = bc[i]
            done = False
            if b == 0:
                if n_steps == 0:
                    done = True
                else:
                    ucol[0][v] = cols[i]
                    b = 1
            if not done:
                while b >= 1 and all(
                    e_gap[j] >= b for j in range(e_off[i], e_off[i + 1])
                ):
                    fam = schedule[b - 1]
                    cols[i] = fam.pick(
                        cols[i],
                        [
                            int(ucol[(b - 1) & 1][nb_own[j]])
                            for j in range(e_off[i], e_off[i + 1])
                        ],
                    )
                    if b == n_steps:
                        done = True
                        break
                    ucol[b & 1][v] = cols[i]
                    b += 1
            bc[i] = b
            ustep[rnd & 1][v] = b
            ulast[v] = rnd
            if done:
                term[v] = rnd
                col[v] = cols[i]
                running[i] = False
                halts_own += 1
        comm.sync()

        # Phase B: receiver-side accounting of this round's batched
        # broadcasts (ulast gates out parity-frozen dead senders).
        own_term = term[lo:hi]
        cand_i = np.flatnonzero((own_term == 0) | (own_term == rnd)).tolist()
        counted = same = 0
        recv_set: set[int] = set()
        for i in cand_i:
            v = lo + i
            t_own = int(own_term[i])
            for j in range(e_off[i], e_off[i + 1]):
                u = nb_own[j]
                if int(ulast[u]) != rnd:
                    continue
                k_n = int(ustep[rnd & 1][u]) - int(ustep[(rnd - 1) & 1][u])
                for kidx in range(k_n):
                    if drop and drop_fate(fseed, srnd, u, v, kidx, drop):
                        if record_drops:
                            drop_records.append((rnd, u, v))
                        continue
                    if t_own == 0:
                        counted += 1
                        recv_set.add(v)
                    else:
                        same += 1
        g = comm.allreduce(
            counted, same, len(recv_set), halts_own, int(running.sum())
        )
        per_round.append((g[0] + g[1], g[0] + g[3], g[2], g[3]))
        total_running = g[4]

    return {
        "rounds": per_round,
        "crashes": crash_records,
        "drops": drop_records,
        "watchdog": watchdog,
        "session_rounds": rnd,
    }


def _sharded_defective_faulted(graph, d, degree_limit, ids_arr, seed, injector):
    """The faulted half of :func:`sharded_defective_coloring`."""
    import repro.obs as obs
    from repro.core.defective import DefectiveColoringResult, defective_schedule

    n = graph.n
    bus = obs.current()
    params = _fault_params(injector, n, "defective coloring", bus)
    A = degree_limit if degree_limit is not None else graph.max_degree()
    A = max(A, 1)
    space = id_space(ids_arr)
    schedule = defective_schedule(space, A, d)
    bound = schedule[-1].ground_size if schedule else space
    max_rounds = 4 * len(schedule) + 64
    params.update(
        {"n": n, "space": space, "A": A, "d": d, "max_rounds": max_rounds}
    )
    pre_crashed = params["pre_crashed"]

    payloads, copies, _bounds = _execute_kernel(
        "defective_faulted",
        graph,
        {
            "ustep": ((2, n), np.int64),
            "ucol": ((2, n), np.int64),
            "ulast": ((n,), np.int64),
            "term": ((n,), np.int64),
            "col": ((n,), np.int64),
            "ids": ids_arr,
        },
        params,
        copy_keys=("term", "col"),
    )
    term = copies["term"]
    col = copies["col"]

    wd = [p["watchdog"] for p in payloads]
    if any(w is not None for w in wd):
        injector.absorb_rounds(
            payloads[0]["session_rounds"],
            [v for p in payloads for (_r, v) in p["crashes"]],
        )
        raise RoundLimitExceeded(
            max_rounds, [v for w in wd if w is not None for v in w], None
        )

    rounds = payloads[0]["rounds"]
    crash_rounds = dict(
        sorted(((v, r) for p in payloads for (r, v) in p["crashes"]))
    )
    injector.absorb_rounds(payloads[0]["session_rounds"], list(crash_rounds))
    outputs = {
        v: int(col[v]) for v, t in enumerate(term.tolist()) if t > 0
    }
    res = finalize_faulted_run(
        outputs,
        term,
        crash_rounds,
        pre_crashed,
        [r[0] for r in rounds],
        [r[1] for r in rounds],
        [r[2] for r in rounds],
        crashed_all=[v for v in injector.crashed if v < n],
        drops=[dd for p in payloads for dd in p.get("drops", ())],
    )
    return DefectiveColoringResult(
        colors=dict(res.outputs),
        metrics=res.metrics,
        palette_bound=bound,
        defect_bound=d,
    )


def sharded_defective_coloring(
    graph: Graph,
    d: int,
    degree_limit: int | None = None,
    ids: Sequence[int] | None = None,
    seed: int = 0,
):
    """Sharded d-defective coloring; accounting closed-form in the parent
    for fault-free runs, receiver-side per round under a fault session."""
    from repro.core.defective import DefectiveColoringResult, defective_schedule
    from repro.faults.plan import current

    injector = current()
    if injector is not None:
        return _sharded_defective_faulted(
            graph, d, degree_limit, resolve_ids(graph, ids), seed, injector
        )

    n = graph.n
    ids_arr = resolve_ids(graph, ids)
    A = degree_limit if degree_limit is not None else graph.max_degree()
    A = max(A, 1)
    space = id_space(ids_arr)
    schedule = defective_schedule(space, A, d)
    bound = schedule[-1].ground_size if schedule else space

    if n and schedule:
        colors0 = np.zeros((2, n), dtype=np.int64)
        colors0[0] = ids_arr
        payloads, copies, _bounds = _launch(
            "defective",
            graph,
            {"colors": colors0},
            {"n": n, "space": space, "A": A, "d": d},
            copy_keys=("colors",),
        )
        colors = copies["colors"][payloads[0]["cur"]].tolist()
    else:
        colors = [int(x) for x in ids_arr]

    steps = len(schedule)
    offsets, _ = graph.csr(dtype="auto")
    deg = (offsets[1:] - offsets[:-1]).astype(np.int64)
    m2 = int(offsets[-1])
    n_iso = int((deg == 0).sum())
    n_ni = n - n_iso
    term = np.ones(n, dtype=np.int64)
    if steps and n_ni:
        term[deg > 0] = steps + 1
        sent = [m2] * steps + [0]
        msgs = [m2 + n_iso] + [m2] * (steps - 1) + [n_ni]
        recv = [n_ni] * steps + [0]
    elif n:
        sent, msgs, recv = [0], [n], [0]
    else:
        term = np.zeros(0, dtype=np.int64)
        sent, msgs, recv = [], [], []
    outputs = {v: colors[v] for v in range(n)}
    res = finalize_run(outputs, term, sent, msgs, recv)
    return DefectiveColoringResult(
        colors=dict(res.outputs),
        metrics=res.metrics,
        palette_bound=bound,
        defect_bound=d,
    )


#: kernel name -> worker entry point (resolved inside worker processes)
SHARD_KERNELS = {
    "partition": _kernel_partition,
    "luby": _kernel_luby,
    "luby_faulted": _kernel_luby_faulted,
    "cole_vishkin": _kernel_cole_vishkin,
    "cole_vishkin_faulted": _kernel_cole_vishkin_faulted,
    "defective": _kernel_defective,
    "defective_faulted": _kernel_defective_faulted,
}

#: generator driver function name -> sharded twin (mirrors BULK_DRIVERS)
SHARD_DRIVERS = {
    "run_partition": sharded_partition,
    "run_luby_mis": sharded_luby_mis,
    "run_ring_three_coloring": sharded_ring_three_coloring,
    "run_defective_coloring": sharded_defective_coloring,
}

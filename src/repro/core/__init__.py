"""The paper's algorithms: symmetry-breaking with improved vertex-averaged
complexity.

Layout (paper section in parentheses):

* :mod:`repro.core.partition` -- Procedure Partition (6.1) and the
  composition machinery of Corollary 6.4.
* :mod:`repro.core.forests` -- Procedure Parallelized-Forest-Decomposition
  (7.1) and the worst-case Procedure Forest-Decomposition baseline shape.
* :mod:`repro.core.coverfree` -- polynomial cover-free set systems (the
  Linial machinery behind Procedure Arb-Linial-Coloring).
* :mod:`repro.core.arb_linial` -- Procedure Arb-Linial-Coloring (7.2).
* :mod:`repro.core.coloring` -- the O(a^2 log n) / O(1) (7.2),
  O(a^2) / O(log log n) (7.3) and O(a) / O(a log log n) (7.4) colorings.
* :mod:`repro.core.segmentation` -- the general segmentation scheme (7.5)
  and its O(k a^2) (7.6) and O(k a) (7.7) instantiations.
* :mod:`repro.core.defective` -- defective colorings, Procedure
  Partial-Orientation and Procedure H-Arbdefective-Coloring (7.8.1).
* :mod:`repro.core.one_plus_eta` -- Procedure Legal-Coloring and Procedure
  One-Plus-Eta-Arb-Col (7.8.2).
* :mod:`repro.core.extension` -- the extension-from-any-partial-solution
  framework (8) and its four applications.
* :mod:`repro.core.randomized` -- the randomized algorithms (9).
"""

"""Crash-tolerant binary consensus by zero-flooding (flood-min).

Every vertex starts with an input bit.  The protocol floods the minimum:
a vertex that *knows* 0 (its own input, or a received announcement)
commits the decision 0, announces it once to all neighbors, and halts one
round later; a vertex that only ever sees 1 listens until a fixed horizon
and then decides 1.  Because the only two values are 0 and 1, flooding
the zero bit is the whole of flood-min.

Crash tolerance (crash-stop, the model of :mod:`repro.faults`): a crashed
vertex simply stops participating at a round boundary -- it either
announced its zero to every then-alive neighbor or it never announced at
all, so knowledge among *survivors* is monotone and announced-on-first-
learn.  Agreement therefore holds per connected component of the
**surviving** subgraph: if any survivor of a component ever knows 0, that
knowledge is at most ``n`` hops of crashed carriers away from its
originating input plus at most ``n - 1`` hops of surviving relays, so a
horizon of ``2n + 4`` rounds guarantees every survivor of the component
learns it in time; otherwise every survivor of the component decides 1.
Validity is the usual flood-min validity: a decision is always some
vertex's input in the decider's original component (0 cannot be
invented, and 1 is everyone's fallback only when no 0 was ever heard).

Vertex-averaged story (why this lives in a vertex-averaged-complexity
repo): a vertex with input 0 commits in round 1, and a vertex at distance
d from the nearest zero commits in round d + 1, while *termination* of
the all-ones listeners takes the full Theta(n) horizon -- another
instance of the committed-output average (Feuilloley's first definition,
:meth:`repro.runtime.context.Context.commit`) being exponentially
smaller than the worst case.  Under the asynchronous executor
(``mode_session("async")``) the same program yields the vertex-averaged
*output time* analogue via :attr:`repro.runtime.network.RunResult.times`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.metrics import RoundMetrics, TimeMetrics
from repro.runtime.network import SyncNetwork

#: message tag: ``(EST, 0)`` announces knowledge of a zero input
EST = "est"


def decision_horizon(n: int) -> int:
    """Rounds after which a vertex that never heard 0 may decide 1.

    A zero travels one hop per round; the worst chain is at most ``n``
    crashed carriers followed by at most ``n - 1`` surviving relays, so
    every survivor that can still learn 0 has learned it strictly before
    round ``2n``; the ``+4`` is slack, not load-bearing.
    """
    return 2 * n + 4


@dataclass(frozen=True)
class ConsensusResult:
    """Decisions plus both round accountings (and times, when async)."""

    decisions: dict[int, int]
    #: the input bit of every vertex (decision validity is judged
    #: against these)
    values: tuple[int, ...]
    metrics: RoundMetrics          # termination-based (Theta(n) for 1-deciders)
    output_metrics: RoundMetrics   # commit-based (distance-to-nearest-zero)
    times: TimeMetrics | None = None  # virtual-time accounting (async runs)


def run_consensus(
    graph: Graph,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    values: Sequence[int] | None = None,
) -> ConsensusResult:
    """Binary consensus among crash-stop survivors of ``graph``.

    ``values`` fixes the input bits explicitly; otherwise they are drawn
    from ``random.Random(seed)`` (one fair bit per vertex), so a fuzz
    case's seed pins the instance completely.
    """
    n = graph.n
    if values is None:
        rng = random.Random(seed)
        values = tuple(rng.randrange(2) for _ in range(n))
    else:
        values = tuple(int(v) for v in values)
        if len(values) != n:
            raise ValueError(
                f"got {len(values)} input values for {n} vertices"
            )
        if any(v not in (0, 1) for v in values):
            raise ValueError("consensus inputs must be binary (0 or 1)")
    horizon = decision_horizon(n)

    def program(ctx: Context):
        if ctx.config["values"][ctx.v] == 0:
            ctx.commit(0)
            ctx.broadcast((EST, 0))
            yield  # the announcement is delivered next round
            return 0
        # Input 1: listen for a zero until the horizon.
        for _ in range(2, horizon + 1):
            yield
            if any(
                val == 0
                for payloads in ctx.inbox.values()
                for _tag, val in payloads
            ):
                ctx.commit(0)
                ctx.broadcast((EST, 0))
                yield  # relay before halting
                return 0
        ctx.commit(1)
        return 1

    net = SyncNetwork(graph, ids=ids, seed=seed)
    net.config["values"] = values
    res = net.run(program, max_rounds=horizon + 8)
    return ConsensusResult(
        decisions=dict(res.outputs),
        values=values,
        metrics=res.metrics,
        output_metrics=res.output_metrics,
        times=res.times,
    )

"""The randomized algorithms of Section 9.

* :func:`run_rand_delta_plus_one` -- Procedure Rand-Delta-Plus1 (Section
  9.2, a variant of Luby's algorithm): every vertex repeatedly flips a coin
  and, on heads, proposes a uniformly random color from {0..Delta} minus
  its neighbors' final colors; a proposal becomes final if no neighbor
  proposed or holds the same color.  Each attempt succeeds with probability
  >= 1/4, so the number of active vertices decays geometrically and the
  vertex-averaged complexity is O(1) w.h.p. (Theorem 9.1).

* :func:`run_aloglogn_coloring` -- the O(a log log n)-coloring of Section
  9.3: phase 1 runs Rand-Delta-Plus1 independently inside each of the
  first t = floor(2 log log n) H-sets with per-set palettes {0..A} x {i};
  phase 2 colors the remaining sets with a single shared palette
  {A+1 .. 2A+1}, each vertex first waiting for its neighbors in *higher*
  phase-2 sets to finalize (the paper's descending loop j = ell .. t+1).
  O(1) vertex-averaged rounds w.h.p. (Theorem 9.2).

Conflict rule (desynchronisation-safe): a proposal made in round R-1 is
finalised in round R unless (a) the color appears among the final colors
known by the end of round R, or (b) a conflicting neighbor's proposal was
delivered in round R.  If two adjacent vertices finalise the same color,
the later one must have seen the earlier one's final (contradiction), and
on a tie both saw each other's proposals (contradiction) -- so the rule is
safe even when neighbors run their attempt loops out of phase.
"""

from __future__ import annotations

from typing import Generator, Hashable, Sequence

from repro.core.coloring import ColoringResult
from repro.core.common import JOIN, LocalView, degree_bound, partition_length_bound
from repro.core.partition import join_h_set
from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.network import SyncNetwork


def rand_color_attempts(
    ctx: Context,
    view: LocalView,
    members: Sequence[int],
    palette: Sequence[int],
    forbidden: set[int],
    tag: str,
) -> Generator[None, None, int]:
    """Luby-style random coloring against ``members`` with list
    ``palette`` minus ``forbidden`` (updated in place as members finalise).

    Two rounds per attempt: propose, then resolve.  Returns the final
    color; the caller is responsible for broadcasting it is not needed --
    the final is broadcast here under ``tag + 'f'``.
    """
    tag_p = tag + "p"
    tag_f = tag + "f"
    member_set = set(members)

    def absorb_finals() -> None:
        for u, c in view.get(tag_f).items():
            if u in member_set:
                forbidden.add(c)

    absorb_finals()
    while True:
        proposal: int | None = None
        if ctx.rng.random() < 0.5:
            avail = [c for c in palette if c not in forbidden]
            if not avail:
                raise AssertionError(
                    f"vertex {ctx.v}: random-coloring palette exhausted"
                )
            proposal = avail[ctx.rng.randrange(len(avail))]
            ctx.broadcast((tag_p, proposal))
        yield  # resolve round
        view.absorb(ctx)
        absorb_finals()
        if proposal is None:
            yield  # keep attempts two rounds wide regardless of the coin
            view.absorb(ctx)
            absorb_finals()
            continue
        conflict = proposal in forbidden
        if not conflict:
            for u, payloads in ctx.inbox.items():
                if u not in member_set:
                    continue
                for mtag, payload in payloads:
                    if mtag == tag_p and payload == proposal:
                        conflict = True
                        break
                if conflict:
                    break
        if not conflict:
            ctx.broadcast((tag_f, proposal))
            return proposal
        yield
        view.absorb(ctx)
        absorb_finals()


def run_rand_delta_plus_one(
    graph: Graph,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    max_rounds: int | None = None,
) -> ColoringResult:
    """Theorem 9.1: (Delta+1)-coloring with O(1) vertex-averaged rounds
    w.h.p.  (Its *worst case* is Theta(log n) w.h.p. -- the same execution
    measured two ways, which is the row's comparison.)"""
    delta = graph.max_degree()
    palette = range(delta + 1)

    def program(ctx: Context):
        view = LocalView()
        color = yield from rand_color_attempts(
            ctx, view, ctx.neighbors, palette, set(), tag="r"
        )
        return (1, color)

    net = SyncNetwork(graph, ids=ids, seed=seed)
    if max_rounds is None:
        max_rounds = 64 * (graph.n.bit_length() + 4) + 64
    res = net.run(program, max_rounds=max_rounds)
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=delta + 1,
    )


def run_aloglogn_coloring(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ColoringResult:
    """Theorem 9.2: O(a log log n) colors, O(1) vertex-averaged rounds
    w.h.p.

    Phase 1 (H-sets 1..t, t = floor(2 log log n)): random (A+1)-coloring of
    each G(H_i) with palette {0..A}, final color tagged <c, i>.
    Phase 2 (H-sets t+1..ell): shared palette {A+1..2A+1}; each vertex
    waits for its neighbors in higher phase-2 sets to finalise (at most A
    of them, so a free color remains), then runs the same attempt loop
    against its same-set neighbors."""
    from math import floor

    from repro.analysis.logstar import ilog

    A = degree_bound(a, eps)
    n = graph.n
    ell = partition_length_bound(n, eps)
    t = max(1, floor(2 * ilog(n, 2)))

    def program(ctx: Context):
        view = LocalView()
        h = yield from join_h_set(ctx, view, A)
        yield
        view.absorb(ctx)
        same = [u for u in ctx.neighbors if view.value(JOIN, u) == h]
        if h <= t:
            color = yield from rand_color_attempts(
                ctx, view, same, range(A + 1), set(), tag=f"s{h}:"
            )
            return (h, (color, h))
        # Phase 2: learn all H-indices (all joins happen by round ell),
        # then wait for the finals of higher phase-2 neighbors.
        while len(view.get(JOIN)) < ctx.degree:
            yield
            view.absorb(ctx)
        joined = view.get(JOIN)
        higher = [u for u in ctx.neighbors if joined[u] > h]
        tag_f = "p2:f"
        missing = [u for u in higher if not view.heard(tag_f, u)]
        while missing:
            yield
            view.absorb(ctx)
            missing = [u for u in missing if not view.heard(tag_f, u)]
        forbidden = {view.value(tag_f, u) for u in higher}
        palette = range(A + 1, 2 * A + 2)
        color = yield from rand_color_attempts(
            ctx, view, same, palette, forbidden, tag="p2:"
        )
        return (h, color)

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    budget = 64 * (n.bit_length() + 4) + 8 * ell + 256
    res = net.run(program, max_rounds=budget)
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=(t + 1) * (A + 1),
    )

"""Forest decompositions (Sections 6.1 and 7.1).

Procedure Forest-Decomposition ([8]; the worst-case baseline) partitions the
vertices with Procedure Partition, orients every edge towards the endpoint
in the higher H-set (ties broken towards the higher ID), and has every
vertex label its outgoing edges distinctly from {1, ..., d_out}; the edges
with label l form the directed forest F_l.  Worst case: Theta(log n) rounds
for *everyone*.

Procedure Parallelized-Forest-Decomposition (Section 7.1, Theorem 7.1)
performs the orientation and labelling *immediately upon formation of each
H-set*, so a vertex terminates right after joining: vertex-averaged
complexity O(1).

Faithfulness note: a vertex cannot distinguish same-round joiners from
later joiners at its joining round, so it finalises its labels one round
after joining (r(v) = i + 1 instead of i).  This costs a constant factor
and preserves every bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Sequence

from repro.core.common import JOIN, LocalView, degree_bound, partition_length_bound
from repro.core.partition import join_h_set
from repro.graphs.graph import Graph, canonical_edge
from repro.graphs.orientation import Orientation
from repro.runtime.context import Context
from repro.runtime.metrics import RoundMetrics
from repro.runtime.network import SyncNetwork


@dataclass(frozen=True)
class VertexForestInfo:
    """A vertex's local share of the forest decomposition."""

    h: int
    parents: tuple[int, ...]
    labels: dict[int, int]  # parent -> label in 1..len(parents)


@dataclass(frozen=True)
class ForestDecomposition:
    """A distributed O(a)-forests-decomposition."""

    graph: Graph
    h_index: dict[int, int]
    info: dict[int, VertexForestInfo]
    A: int
    metrics: RoundMetrics

    @property
    def num_forests(self) -> int:
        return max(
            (max(i.labels.values()) for i in self.info.values() if i.labels),
            default=0,
        )

    def edge_labels(self) -> dict[tuple[int, int], int]:
        """Forest label per edge (assigned by the edge's tail)."""
        out: dict[tuple[int, int], int] = {}
        for v, inf in self.info.items():
            for p, lab in inf.labels.items():
                out[canonical_edge(v, p)] = lab
        return out

    def orientation(self) -> Orientation:
        o = Orientation(self.graph)
        for v, inf in self.info.items():
            for p in inf.parents:
                o.orient(v, p, p)
        return o


def forest_info_step(
    ctx: Context, view: LocalView, h: int
) -> Generator[None, None, VertexForestInfo]:
    """After joining H_h (announcement in flight), wait one round to learn
    same-round joiners, then orient and label.  Parents: neighbors in
    strictly later sets (== still unannounced) and same-set neighbors of
    higher ID."""
    yield
    view.absorb(ctx)
    joined = view.get(JOIN)
    my_id = ctx.id
    parents = []
    for u in ctx.neighbors:
        hu = joined.get(u)
        if hu is None or hu > h or (hu == h and ctx.neighbor_ids[u] > my_id):
            parents.append(u)
    parents.sort(key=lambda u: ctx.neighbor_ids[u])
    labels = {u: i + 1 for i, u in enumerate(parents)}
    return VertexForestInfo(h=h, parents=tuple(parents), labels=labels)


def run_parallelized_forest_decomposition(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ForestDecomposition:
    """Procedure Parallelized-Forest-Decomposition (Theorem 7.1):
    O(a)-forests-decomposition with O(1) vertex-averaged complexity."""
    A = degree_bound(a, eps)

    def program(ctx: Context):
        view = LocalView()
        h = yield from join_h_set(ctx, view, A)
        info = yield from forest_info_step(ctx, view, h)
        return info

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps, "A": A})
    res = net.run(program, max_rounds=partition_length_bound(graph.n, eps) + 8)
    info = dict(res.outputs)
    return ForestDecomposition(
        graph=graph,
        h_index={v: inf.h for v, inf in info.items()},
        info=info,
        A=A,
        metrics=res.metrics,
    )


def run_worstcase_forest_decomposition(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ForestDecomposition:
    """Procedure Forest-Decomposition with the original [8] schedule: the
    orientation/labelling step runs only after the *entire* partition has
    finished (after the worst-case ell = O(log n) iteration bound), so every
    vertex pays Theta(log n) rounds.  This is the baseline shape that
    Theorem 7.1 improves on; the produced decomposition is identical."""
    A = degree_bound(a, eps)
    ell = partition_length_bound(graph.n, eps)

    def program(ctx: Context):
        view = LocalView()
        h = yield from join_h_set(ctx, view, A)
        # Idle until the global partition bound has elapsed, as in the
        # non-parallelized procedure (everyone orients together).
        while ctx.round < ell + 1:
            yield
            view.absorb(ctx)
        joined = view.get(JOIN)
        my_id = ctx.id
        parents = []
        for u in ctx.neighbors:
            hu = joined.get(u)
            if hu is None or hu > h or (hu == h and ctx.neighbor_ids[u] > my_id):
                parents.append(u)
        parents.sort(key=lambda u: ctx.neighbor_ids[u])
        labels = {u: i + 1 for i, u in enumerate(parents)}
        return VertexForestInfo(h=h, parents=tuple(parents), labels=labels)

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps, "A": A})
    res = net.run(program, max_rounds=ell + 8)
    info = dict(res.outputs)
    return ForestDecomposition(
        graph=graph,
        h_index={v: inf.h for v, inf in info.items()},
        info=info,
        A=A,
        metrics=res.metrics,
    )

"""The deterministic vertex-coloring algorithms of Sections 7.2 - 7.4.

* :func:`run_a2logn_coloring` -- O(a^2 log n) colors, O(1) vertex-averaged
  rounds (Theorem 7.2): Parallelized-Forest-Decomposition + a single
  Arb-Linial pick against the parents' IDs (which are known locally, so the
  pick costs no extra communication).
* :func:`run_a2_coloring` -- O(a^2) colors, O(log log n) vertex-averaged
  rounds (Theorem 7.6): two phases split at t ~ c' log log n H-sets, full
  iterated Arb-Linial per phase, phase-disjoint palettes.
* :func:`run_oa_coloring` -- O(a) colors, O(a log log n) vertex-averaged
  rounds (Theorem 7.9): per-H-set (Delta+1)-coloring, orientation by color,
  and a "wait for your parents" recoloring wave per phase with palette
  {1..A+1} x {phase}.

All three run Procedure Partition at one decision per round and are
event-driven (see :mod:`repro.core.arb_linial`), so measured averages track
each vertex's causal depth rather than global worst-case schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor, log2
from typing import Generator, Hashable, Sequence

from repro.analysis.logstar import ilog
from repro.core.arb_linial import arb_linial_steps, list_coloring_steps, priority_wave
from repro.core.common import (
    JOIN,
    LocalView,
    degree_bound,
    partition_length_bound,
)
from repro.core.coverfree import build_family, palette_schedule
from repro.core.forests import forest_info_step
from repro.core.partition import join_h_set
from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.metrics import RoundMetrics
from repro.runtime.network import SyncNetwork


@dataclass(frozen=True)
class ColoringResult:
    """A vertex coloring with its round accounting."""

    colors: dict[int, Hashable]
    h_index: dict[int, int]
    metrics: RoundMetrics
    palette_bound: int  # a-priori bound on the number of colors

    @property
    def colors_used(self) -> int:
        return len(set(self.colors.values()))


# ---------------------------------------------------------------------------
# Section 7.2: O(a^2 log n) colors in O(1) vertex-averaged rounds
# ---------------------------------------------------------------------------


def run_a2logn_coloring(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ColoringResult:
    """Theorem 7.2: one Arb-Linial step per H-set, executed in the round
    after joining.  A vertex's color is a point of F_{ID(v)} avoided by the
    cover-free sets of all its parents' IDs; parents pick later and avoid
    F_{ID(v)} in turn, so every edge is bichromatic."""
    A = degree_bound(a, eps)

    def program(ctx: Context):
        family = ctx.config["family"]
        view = LocalView()
        h = yield from join_h_set(ctx, view, A)
        info = yield from forest_info_step(ctx, view, h)
        color = family.pick(ctx.id, [ctx.neighbor_ids[u] for u in info.parents])
        return (h, color)

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    family = build_family(net.config["id_space"], A)
    net.config["family"] = family
    res = net.run(program, max_rounds=partition_length_bound(graph.n, eps) + 8)
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=family.ground_size,
    )


# ---------------------------------------------------------------------------
# Shared phase plumbing for Sections 7.3 / 7.4
# ---------------------------------------------------------------------------


def _learn_neighbor_sets(
    ctx: Context, view: LocalView, boundary: int
) -> Generator[None, None, dict[int, int]]:
    """Wait until the H-index of every neighbor is determined *relative to
    the phase boundary*: either the neighbor announced its join, or round
    ``boundary`` has passed (an unannounced neighbor then surely joins a
    set of index > boundary).  Returns the known joins."""
    while True:
        joined = view.get(JOIN)
        if len(joined) == ctx.degree or ctx.round > boundary:
            return dict(joined)
        yield
        view.absorb(ctx)


def _phase_parents(
    ctx: Context,
    h: int,
    joined: dict[int, int],
    lo: int,
    hi: int,
    boundary_known: bool,
) -> list[int]:
    """Parents of this vertex inside the phase covering H-sets lo..hi:
    neighbors in strictly later sets of the phase, or same-set with a
    higher ID.  Neighbors with unknown H-index are in sets beyond
    ``boundary_known`` rounds, i.e. in later phases."""
    my_id = ctx.id
    parents = []
    for u in ctx.neighbors:
        hu = joined.get(u)
        if hu is None:
            # Joins after the boundary: inside this phase only if the phase
            # is unbounded above, which callers encode with hi = None.
            if hi is None:
                parents.append(u)
            continue
        if not (lo <= hu and (hi is None or hu <= hi)):
            continue
        if hu > h or (hu == h and ctx.neighbor_ids[u] > my_id):
            parents.append(u)
    return parents


def two_phase_split(n: int, eps: float, scale: float = 1.0) -> int:
    """The phase-1 length t = floor(c' * log log n) with
    c' = scale / log2((2+eps)/2), chosen (Lemma 7.5) so that at most
    n / log n vertices survive into phase 2."""
    if n < 4:
        return 1
    c_prime = scale / log2((2.0 + eps) / 2.0)
    return max(1, floor(c_prime * ilog(n, 2)))


# ---------------------------------------------------------------------------
# Section 7.3: O(a^2) colors in O(log log n) vertex-averaged rounds
# ---------------------------------------------------------------------------


def run_a2_coloring(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ColoringResult:
    """Theorem 7.6: phase 1 = the first t ~ c' log log n H-sets, phase 2 =
    the rest.  Each phase runs the full iterated Arb-Linial-Coloring on the
    union of its H-sets (O(log* n) self-paced steps to an O(a^2) palette);
    final colors are tagged with the phase, doubling the palette."""
    A = degree_bound(a, eps)
    n = graph.n
    ell = partition_length_bound(n, eps)
    t = two_phase_split(n, eps)

    def program(ctx: Context):
        schedule = ctx.config["schedule"]
        view = LocalView()
        h = yield from join_h_set(ctx, view, A)
        phase = 1 if h <= t else 2
        boundary = t + 1 if phase == 1 else ell + 1
        joined = yield from _learn_neighbor_sets(ctx, view, boundary)
        if phase == 1:
            parents = _phase_parents(ctx, h, joined, 1, t, True)
        else:
            parents = _phase_parents(ctx, h, joined, t + 1, None, True)
        color = yield from arb_linial_steps(
            ctx, view, parents, schedule, tag=f"al{phase}"
        )
        return (h, (color, phase))

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    schedule = palette_schedule(net.config["id_space"], A)
    net.config["schedule"] = schedule
    fixpoint = schedule[-1].ground_size if schedule else net.config["id_space"]
    res = net.run(program, max_rounds=ell + len(schedule) * (ell + 2) + 16)
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=2 * fixpoint,
    )


# ---------------------------------------------------------------------------
# Section 7.4: O(a) colors in O(a log log n) vertex-averaged rounds
# ---------------------------------------------------------------------------


def run_oa_coloring(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ColoringResult:
    """Theorem 7.9: per H-set (Delta+1)-coloring (substituted Linial + sweep,
    see DESIGN.md #2), orientation by that coloring within the set and
    towards later sets across sets, then a per-phase recoloring wave with
    palette {0..A} x {phase}: each vertex waits for its phase-parents and
    takes a free color; A+1 colors always suffice because a vertex has at
    most A neighbors in its own and later sets."""
    A = degree_bound(a, eps)
    n = graph.n
    ell = partition_length_bound(n, eps)
    t = two_phase_split(n, eps)

    def program(ctx: Context):
        schedule = ctx.config["schedule"]
        view = LocalView()
        h = yield from join_h_set(ctx, view, A)
        info = yield from forest_info_step(ctx, view, h)
        same = [
            u for u in ctx.neighbors if view.value(JOIN, u) == h
        ]
        # Algorithm A of the section: (Delta+1)-color G(H_h); the palette
        # {0..A} works since deg within the H-set is at most A.
        psi = yield from list_coloring_steps(
            ctx,
            view,
            members=same,
            palette=range(A + 1),
            schedule=schedule,
            tag=f"hc{h}",
        )
        phase = 1 if h <= t else 2
        boundary = t + 1 if phase == 1 else ell + 1
        joined = yield from _learn_neighbor_sets(ctx, view, boundary)
        lo, hi = (1, t) if phase == 1 else (t + 1, None)
        # Parents under the combined acyclic orientation: same-set edges
        # towards the higher psi (exchange happened inside the list
        # coloring -- re-announce psi for the wave), cross-set edges towards
        # the later set; restricted to this phase.
        ctx.broadcast((f"psi{phase}", psi))
        same_phase_later: list[int] = []
        same_set: list[int] = []
        for u in ctx.neighbors:
            hu = joined.get(u)
            if hu is None:
                if hi is None:
                    same_phase_later.append(u)
                continue
            if not (lo <= hu and (hi is None or hu <= hi)):
                continue
            if hu > h:
                same_phase_later.append(u)
            elif hu == h:
                same_set.append(u)
        psi_tag = f"psi{phase}"
        missing = [u for u in same_set if not view.heard(psi_tag, u)]
        while missing:
            yield
            view.absorb(ctx)
            missing = [u for u in missing if not view.heard(psi_tag, u)]
        parents = same_phase_later + [
            u for u in same_set if view.value(psi_tag, u) > psi
        ]
        wave_tag = f"wave{phase}"

        def choose(pred_colors: dict[int, int]) -> int:
            used = set(pred_colors.values())
            for col in range(A + 1):
                if col not in used:
                    return col
            raise AssertionError("palette {0..A} exhausted in recolor wave")

        color = yield from priority_wave(ctx, view, parents, wave_tag, choose)
        return (h, (color, phase))

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    schedule = palette_schedule(net.config["id_space"], A)
    net.config["schedule"] = schedule
    fixpoint = schedule[-1].ground_size if schedule else net.config["id_space"]
    budget = ell + (len(schedule) + fixpoint + 4) * (ell + 2) + A * ell + 64
    res = net.run(program, max_rounds=budget)
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=2 * (A + 1),
    )

"""Procedure One-Plus-Eta-Arb-Col and Procedure Legal-Coloring
(Section 7.8.2): O(a^{1+eta})-vertex-coloring with vertex-averaged
complexity O(log a log log n).

Recursion structure (paper, steps 1-3):

* If the current arboricity bound is below the constant C, color the
  subgraph directly (*base*: H-partition + within-set Linial + "wait for
  your parents" recolor wave, O(A) colors -- the Theorem 5.15 / [8]
  machinery).
* Otherwise, compute an H-partition of the subgraph and let H be the union
  of its first r = ceil(2 log log n) H-sets.  The vertices of H run
  Procedure H-Arbdefective-Coloring -- pick the color of {1..k} used by the
  fewest parents under the (H-index, psi) orientation -- and recurse, each
  color class being a subgraph of arboricity <= ceil(A / k) ~ a / C.  The
  leftover V \\ H (only ~n / log^2 n vertices, Lemma 7.20) runs Procedure
  Legal-Coloring: the same arbdefective splitting iterated over the *full*
  partition until the arboricity drops to p, then base-colored.

Every subgraph of every recursion level is identified by its *path* (the
sequence of branch decisions); vertices announce their decision lists, so
each vertex always knows which neighbors share its current subgraph.  All
structure inside a subgraph is computed with the clock-free primitives of
:mod:`repro.core.defective` (asynchronous H-partition) and
:mod:`repro.core.arb_linial` (self-paced Linial steps, priority waves).

Substitutions (DESIGN.md #4): psi is a *proper* within-set coloring
(defect 0), so the arbdefective classes are even cleaner than the paper's
(no a/t defect term) at the cost of an O(A^2)-long wave per level instead
of O(t^2) -- identical asymptotics for constant t, and the arbdefective
quality is verified exactly by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Generator, Hashable, Sequence

from repro.analysis.logstar import ilog
from repro.core.arb_linial import arb_linial_steps, priority_wave, _step_tag
from repro.core.coloring import ColoringResult
from repro.core.common import LocalView, degree_bound, partition_length_bound
from repro.core.coverfree import palette_schedule
from repro.core.defective import arbdefective_choose, async_h_partition
from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.network import SyncNetwork

DEC = "opx:dec"  # broadcast: tuple of this vertex's branch decisions so far


class _ScheduleCache:
    """Shared, deterministic cache of Linial family schedules per degree
    bound (common knowledge: a pure function of (id_space, A))."""

    def __init__(self, id_space: int) -> None:
        self.id_space = id_space
        self._cache: dict[int, list] = {}

    def get(self, A: int):
        if A not in self._cache:
            self._cache[A] = palette_schedule(self.id_space, A)
        return self._cache[A]


def _await_members(
    ctx: Context, view: LocalView, path: tuple
) -> Generator[None, None, list[int]]:
    """Wait until every neighbor's relation to ``path`` is settled: the
    neighbor has announced at least len(path) decisions, or its announced
    decisions already diverge.  Returns the neighbors sharing the path."""
    level = len(path)

    def unsettled(dec: tuple | None) -> bool:
        if dec is None:
            return level > 0  # nothing announced yet but decisions pending
        if len(dec) < level and dec == path[: len(dec)]:
            return True  # proper prefix: could still join this subgraph
        return False

    while True:
        decs = view.get(DEC)
        pending = [u for u in ctx.neighbors if unsettled(decs.get(u))]
        if not pending:
            break
        yield
        view.absorb(ctx)
    decs = view.get(DEC)
    return [
        u
        for u in ctx.neighbors
        if (d := decs.get(u)) is not None
        and len(d) >= level
        and d[:level] == path
    ] if level > 0 else list(ctx.neighbors)


def _await_exacts(
    ctx: Context, view: LocalView, members: Sequence[int], tag_x: str
) -> Generator[None, None, dict[int, int]]:
    missing = [u for u in members if not view.heard(tag_x, u)]
    while missing:
        yield
        view.absorb(ctx)
        missing = [u for u in missing if not view.heard(tag_x, u)]
    bucket = view.get(tag_x)
    return {u: bucket[u] for u in members}


def _await_tag(ctx: Context, view: LocalView, tag: str, senders):
    missing = [u for u in senders if not view.heard(tag, u)]
    while missing:
        yield
        view.absorb(ctx)
        missing = [u for u in missing if not view.heard(tag, u)]


def _structure(
    ctx: Context,
    view: LocalView,
    members: list[int],
    A: int,
    path: tuple,
    schedules: _ScheduleCache,
):
    """H-partition + within-set psi of the subgraph on ``members``:
    returns (h, psi, exact_h per member, psi per same-set member)."""
    tagp = f"hp{path}"
    h = yield from async_h_partition(ctx, view, members, A, tag=tagp)
    exacts = yield from _await_exacts(ctx, view, members, tagp + "x")
    same = [u for u in members if exacts[u] == h]
    schedule = schedules.get(A)
    psi = yield from arb_linial_steps(ctx, view, same, schedule, tag=f"ps{path}")
    last = _step_tag(f"ps{path}", len(schedule))
    ctx.broadcast((last, psi))
    yield from _await_tag(ctx, view, last, same)
    psis = {u: view.value(last, u) for u in same}
    return h, psi, exacts, psis


def _wave_parents(
    ctx: Context,
    h: int,
    psi: int,
    exacts: dict[int, int],
    psis: dict[int, int],
    members: Sequence[int],
    h_cap: int | None = None,
) -> list[int]:
    """Parents under the (H-index, psi) acyclic orientation, optionally
    restricted to H-sets with index <= h_cap."""
    parents = []
    for u in members:
        hu = exacts[u]
        if h_cap is not None and hu > h_cap:
            continue
        if hu > h or (hu == h and psis[u] > psi):
            parents.append(u)
    return parents


def one_plus_eta_program_factory(
    a: int, C: int, eps: float, n: int, r_override: int | None = None
):
    """Build the vertex program of Procedure One-Plus-Eta-Arb-Col.

    ``r_override`` replaces the paper's r = ceil(2 log log n) H-set cutoff;
    it exists so tests can force the V \\ H -> Legal-Coloring branch on
    graphs small enough to verify exhaustively (the branch only triggers
    naturally when the peeling depth exceeds 2 log log n).
    """
    k = int(ceil((3.0 + eps) * C))
    p_legal = k
    r = r_override if r_override is not None else max(1, int(ceil(2 * ilog(n, 2))))

    def program(ctx: Context):
        schedules = ctx.config["opx_schedules"]
        view = LocalView()
        decisions: list = []
        path: tuple = ()
        a_lvl = a
        mode = "eta"
        inherited = None  # (h', exacts', psi, psis, members) for legal lvl 1
        ctx.broadcast((DEC, ()))

        while True:
            members = yield from _await_members(ctx, view, path)
            A_lvl = degree_bound(a_lvl, eps)
            base = (mode == "eta" and a_lvl < C) or (
                mode == "legal" and a_lvl <= p_legal
            )
            if inherited is not None:
                h, psi, exacts, psis = inherited
                exacts = {u: exacts[u] for u in members}
                psis = {u: c for u, c in psis.items() if u in exacts}
                inherited = None
                # Indices shift by r but only the relative order matters.
            else:
                h, psi, exacts, psis = yield from _structure(
                    ctx, view, members, A_lvl, path, schedules
                )

            if base:
                parents = _wave_parents(ctx, h, psi, exacts, psis, members)

                def choose(pred: dict[int, int]) -> int:
                    used = set(pred.values())
                    for col in range(A_lvl + 1):
                        if col not in used:
                            return col
                    raise AssertionError("base palette exhausted")

                color = yield from priority_wave(
                    ctx, view, parents, f"bw{path}", choose
                )
                decision = ("b", color)
                decisions.append(decision)
                ctx.broadcast((DEC, tuple(decisions)))
                return (path, color)

            if mode == "eta" and h > r:
                # V \ H: switch to Legal-Coloring, inheriting the partition
                # (indices > r are a valid H-partition of the leftover) and
                # the within-set psi.
                decision = ("L",)
                decisions.append(decision)
                ctx.broadcast((DEC, tuple(decisions)))
                path = path + (decision,)
                mode = "legal"
                inherited = (h, psi, exacts, psis)
                continue

            # Arbdefective split: H-members only in eta mode.
            kk = k if mode == "eta" else p_legal
            cap = r if mode == "eta" else None
            parents = _wave_parents(
                ctx, h, psi, exacts, psis, members, h_cap=cap
            )
            j = yield from priority_wave(
                ctx,
                view,
                parents,
                f"aw{path}",
                lambda pred: arbdefective_choose(kk, pred.values()),
            )
            decision = ("s", j)
            decisions.append(decision)
            ctx.broadcast((DEC, tuple(decisions)))
            path = path + (decision,)
            a_lvl = max(1, -(-A_lvl // kk))
            # mode stays: eta classes recurse in eta mode; legal in legal.

    return program, k, r


def run_one_plus_eta_coloring(
    graph: Graph,
    a: int,
    C: int = 4,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    r_override: int | None = None,
) -> ColoringResult:
    """Theorem 7.21: O(a^{1+eta})-coloring (eta ~ 6 / log C) in
    O(log a log log n) vertex-averaged rounds."""
    if C < 2:
        raise ValueError("C must be >= 2")
    program, k, r = one_plus_eta_program_factory(a, C, eps, graph.n, r_override)
    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    net.config["opx_schedules"] = _ScheduleCache(net.config["id_space"])
    ell = partition_length_bound(graph.n, eps)
    # Generous cap: depth O(log_C a) levels, each bounded by partition +
    # Linial + wave lengths.
    import math

    depth = max(1, int(math.log(max(a, 2), max(C, 2))) + 2) * 3
    fix = 4 * (degree_bound(a, eps) * 2 + 3) ** 2
    budget = depth * (ell + fix + 64) * 4 + 512
    res = net.run(program, max_rounds=budget)
    colors = {v: out for v, out in res.outputs.items()}
    # palette bound: base leaves use A_leaf + 1 colors per distinct path.
    paths = {out[0] for out in res.outputs.values()}
    bound = sum(1 for _ in paths) * (degree_bound(a, eps) + 1)
    return ColoringResult(
        colors=colors,
        h_index={v: 0 for v in res.outputs},
        metrics=res.metrics,
        palette_bound=max(bound, 1),
    )


def run_legal_coloring(
    graph: Graph,
    a: int,
    p: int | None = None,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ColoringResult:
    """Procedure Legal-Coloring ([5]; paper Algorithm 3) as a standalone
    worst-case algorithm: arbdefective splits with arity p until the
    arboricity bound drops to p, then base-color each leaf subgraph with
    its own palette.  This is the comparison column of Table 1 row 3
    (O(log a log n) worst case)."""
    if p is None:
        p = max(4, int(ceil((3.0 + eps) * 4)))

    def program_factory():
        def program(ctx: Context):
            schedules = ctx.config["opx_schedules"]
            view = LocalView()
            decisions: list = []
            path: tuple = ()
            a_lvl = a
            ctx.broadcast((DEC, ()))
            while True:
                members = yield from _await_members(ctx, view, path)
                A_lvl = degree_bound(a_lvl, eps)
                h, psi, exacts, psis = yield from _structure(
                    ctx, view, members, A_lvl, path, schedules
                )
                parents = _wave_parents(ctx, h, psi, exacts, psis, members)
                if a_lvl <= p:
                    def choose(pred: dict[int, int]) -> int:
                        used = set(pred.values())
                        for col in range(A_lvl + 1):
                            if col not in used:
                                return col
                        raise AssertionError("base palette exhausted")

                    color = yield from priority_wave(
                        ctx, view, parents, f"bw{path}", choose
                    )
                    decisions.append(("b", color))
                    ctx.broadcast((DEC, tuple(decisions)))
                    return (path, color)
                j = yield from priority_wave(
                    ctx,
                    view,
                    parents,
                    f"aw{path}",
                    lambda pred: arbdefective_choose(p, pred.values()),
                )
                decisions.append(("s", j))
                ctx.broadcast((DEC, tuple(decisions)))
                path = path + (("s", j),)
                a_lvl = max(1, -(-A_lvl // p))

        return program

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    net.config["opx_schedules"] = _ScheduleCache(net.config["id_space"])
    ell = partition_length_bound(graph.n, eps)
    import math

    depth = max(1, int(math.log(max(a, 2), max(p, 2))) + 2) * 3
    fix = 4 * (degree_bound(a, eps) * 2 + 3) ** 2
    budget = depth * (ell + fix + 64) * 4 + 512
    res = net.run(program_factory(), max_rounds=budget)
    paths = {out[0] for out in res.outputs.values()}
    bound = len(paths) * (degree_bound(a, eps) + 1)
    return ColoringResult(
        colors=dict(res.outputs),
        h_index={v: 0 for v in res.outputs},
        metrics=res.metrics,
        palette_bound=max(bound, 1),
    )

"""Procedure Partition (Section 6.1) and the composition of Corollary 6.4.

Procedure Partition splits V into H-sets H_1, ..., H_ell such that every
vertex in H_i has at most A = (2 + eps) * a neighbors in H_i u H_{i+1} u ...
Its worst-case running time is Theta(log n) rounds, but -- Theorem 6.3 --
its vertex-averaged complexity is O(1), because at least an eps/(2+eps)
fraction of the active vertices joins (and terminates) every round.

The reusable generator :func:`join_h_set` participates in Partition until
the vertex joins a set; compositions keep the vertex alive afterwards.  The
iteration -> round mapping is injectable so the blocking composition of
Corollary 6.4 / Theorem 8.2 (one Partition decision every 1 + T_A + T_B
rounds) reuses the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Sequence

from repro.core.common import JOIN, LocalView, degree_bound, partition_length_bound
from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.metrics import RoundMetrics, TimeMetrics
from repro.runtime.network import RunResult, SyncNetwork, current_engine


def join_h_set(
    ctx: Context,
    view: LocalView,
    A: int,
    decision_round: Callable[[int], int] = lambda i: i,
    join_tag: str = JOIN,
) -> Generator[None, None, int]:
    """Run Procedure Partition until this vertex joins an H-set.

    In iteration i (scheduled at global round ``decision_round(i)``, a
    strictly increasing function) the vertex joins H_i iff at most ``A`` of
    its neighbors are still un-joined, and broadcasts ``(join_tag, i)``.
    Returns the H-index i; the broadcast is in flight (delivered next
    round), so same-round joiners become visible one round later.
    """
    i = 0
    while True:
        i += 1
        target = decision_round(i)
        if target <= ctx.round and i > 1:
            raise ValueError("decision rounds must be strictly increasing")
        while ctx.round < target:
            yield
            view.absorb(ctx)
        joined = view.get(join_tag)
        unjoined = ctx.degree - len(joined)
        if unjoined <= A:
            ctx.broadcast((join_tag, i))
            return i


@dataclass(frozen=True)
class PartitionResult:
    """Output of running pure Procedure Partition."""

    h_index: dict[int, int]
    A: int
    metrics: RoundMetrics
    #: virtual-time accounting; only asynchronous-mode runs fill this in
    times: "TimeMetrics | None" = None

    @property
    def num_sets(self) -> int:
        return max(self.h_index.values(), default=0)

    def h_sets(self) -> list[list[int]]:
        """H_1, ..., H_ell as vertex lists (index 0 = H_1)."""
        out: list[list[int]] = [[] for _ in range(self.num_sets)]
        for v, i in self.h_index.items():
            out[i - 1].append(v)
        return out


def run_partition(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> PartitionResult:
    """Execute pure Procedure Partition: each vertex terminates the moment
    it joins its H-set (this is the O(1) vertex-averaged primitive that
    Theorem 6.3 analyses)."""
    if current_engine() == "bulk":
        from repro.runtime.shard import current_shards

        if current_shards() is not None:
            from repro.core.shard import sharded_partition

            return sharded_partition(graph, a, eps=eps, ids=ids, seed=seed)
        from repro.core.bulk import bulk_partition

        return bulk_partition(graph, a, eps=eps, ids=ids, seed=seed)
    A = degree_bound(a, eps)

    def program(ctx: Context):
        view = LocalView()
        i = yield from join_h_set(ctx, view, A)
        return i

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps, "A": A})
    res = net.run(program, max_rounds=partition_length_bound(graph.n, eps) + 4)
    return PartitionResult(
        h_index=dict(res.outputs), A=A, metrics=res.metrics, times=res.times
    )


# ---------------------------------------------------------------------------
# Unknown arboricity: Procedure General-Partition ([8], referenced in §6.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GeneralPartitionResult:
    """Output of the unknown-arboricity reduction."""

    h_index: dict[int, int]  # globally ordered H-set index
    phase: dict[int, int]  # doubling phase (arboricity guess 2^j) per vertex
    a_estimate: int  # the largest guess any vertex needed (< 4a)
    A: int  # the degree bound corresponding to a_estimate
    metrics: RoundMetrics


def run_general_partition(
    graph: Graph,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> GeneralPartitionResult:
    """The standard reduction from unknown to known arboricity the paper
    points to (Procedure General-Partition of [8]): run Partition in
    *doubling phases* with arboricity guesses a_j = 2^j, each for the full
    iteration budget of its guess.  Phases with a_j < a(G) may stall --
    vertices that fail to join simply carry over -- and once a_j >= a(G)
    the usual guarantee kicks in, so every vertex joins by phase
    ceil(log2 a) at a constant-factor cost in rounds and in the degree
    bound (A <= (2+eps) * 2a).

    The resulting sets, ordered phase-major, still satisfy the H-partition
    property: a vertex joining with guess a_j had at most (2+eps) a_j
    un-joined neighbors at its decision, and all later sets (of this or
    any later phase) are subsets of those.
    """
    n = graph.n

    def program(ctx: Context):
        view = LocalView()
        offset = 0
        j = 0
        global_index = 0
        while True:
            a_j = 1 << j
            A_j = degree_bound(a_j, eps)
            budget = partition_length_bound(n, eps)
            for local in range(1, budget + 1):
                global_index = offset + local
                target = global_index  # one decision per round, phase-major
                while ctx.round < target:
                    yield
                    view.absorb(ctx)
                joined = view.get(JOIN)
                if ctx.degree - len(joined) <= A_j:
                    ctx.broadcast((JOIN, global_index))
                    return (global_index, j, a_j)
            offset += budget
            j += 1
            if (1 << j) > max(n, 1):  # pragma: no cover - defensive
                raise AssertionError("arboricity guess exceeded n")

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"eps": eps})
    budget = partition_length_bound(n, eps)
    max_rounds = budget * (max(n, 2).bit_length() + 2) + 16
    res = net.run(program, max_rounds=max_rounds)
    phases = {v: out[1] for v, out in res.outputs.items()}
    a_est = max((out[2] for out in res.outputs.values()), default=1)
    return GeneralPartitionResult(
        h_index={v: out[0] for v, out in res.outputs.items()},
        phase=phases,
        a_estimate=a_est,
        A=degree_bound(a_est, eps),
        metrics=res.metrics,
    )


# ---------------------------------------------------------------------------
# Corollary 6.4: composing Partition with a per-H-set algorithm
# ---------------------------------------------------------------------------


def blocking_schedule(period: int) -> Callable[[int], int]:
    """The Corollary 6.4 schedule: iteration i of Partition decides at round
    (i - 1) * period + 1, leaving ``period - 1`` rounds for the auxiliary
    algorithm to run on the newly formed H-set before the next iteration."""
    if period < 1:
        raise ValueError("period must be >= 1")
    return lambda i: (i - 1) * period + 1


def compose_with_algorithm(
    graph: Graph,
    a: int,
    per_set_algorithm: Callable[
        [Context, LocalView, int, dict[int, int]], Generator[None, None, object]
    ],
    t_aux: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    extra_config: dict | None = None,
    max_rounds: int | None = None,
) -> RunResult:
    """The algorithm "C" of Corollary 6.4.

    In each iteration, one Partition decision round forms H_i; its members
    then run ``per_set_algorithm`` on G(H_i) for at most ``t_aux`` rounds
    and terminate with its return value.  Iterations are sequential: the
    next decision round is scheduled ``t_aux + 1`` rounds later, and
    not-yet-joined vertices idle (and keep paying rounds) meanwhile --
    exactly the accounting of the corollary.

    ``per_set_algorithm(ctx, view, h_index, same_set_neighbors)`` receives
    the neighbor -> H-index map restricted to *known* joiners; vertices
    absent from it are in strictly later sets.
    """
    A = degree_bound(a, eps)
    period = t_aux + 2  # decision + 1 round to learn same-round joiners + t_aux

    def program(ctx: Context):
        view = LocalView()
        i = yield from join_h_set(ctx, view, A, blocking_schedule(period))
        # One round so simultaneous joiners' announcements arrive.
        yield
        view.absorb(ctx)
        joined = view.get(JOIN)
        same = {u: j for u, j in joined.items() if j == i}
        out = yield from per_set_algorithm(ctx, view, i, same)
        return out

    config = {"a": a, "eps": eps, "A": A}
    if extra_config:
        config.update(extra_config)
    net = SyncNetwork(graph, ids=ids, seed=seed, config=config)
    if max_rounds is None:
        max_rounds = (partition_length_bound(graph.n, eps) + 2) * period + 8
    return net.run(program, max_rounds=max_rounds)

"""Shared plumbing for the distributed vertex programs.

All messages are ``(tag, payload)`` tuples; :class:`LocalView` is the
per-vertex message pump that folds every delivered message into tag-indexed
state, so that a sequential vertex program can absorb announcements arriving
from neighbors that are in *other* phases of a composed algorithm.
"""

from __future__ import annotations

from math import ceil, log
from typing import Any

from repro.runtime.context import Context

# Message tags used across the core algorithms.
JOIN = "join"          # payload: H-set index i (vertex joined H_i)
COLOR = "color"        # payload: current working color (Arb-Linial steps)
FINAL = "final"        # payload: final color (announced before termination)
PROPOSE = "propose"    # payload: randomized proposal (Section 9)
SEGCOLOR = "segcolor"  # payload: working color within a segment
EDGE = "edge"          # payload: edge-coloring bookkeeping
MATCH = "match"        # payload: matching bookkeeping
LISTS = "lists"        # payload: list-coloring bookkeeping
ARBD = "arbd"          # payload: arbdefective-coloring bookkeeping


class LocalView:
    """Tag-indexed accumulator over everything a vertex has heard.

    ``state[tag][u]`` is the most recent payload with that tag received from
    neighbor ``u``.  Programs call :meth:`absorb` exactly once per round,
    immediately after each ``yield``.
    """

    __slots__ = ("state",)

    def __init__(self) -> None:
        self.state: dict[str, dict[int, Any]] = {}

    def absorb(self, ctx: Context) -> None:
        state = self.state
        for u, payloads in ctx.inbox.items():
            for tag, payload in payloads:
                bucket = state.get(tag)
                if bucket is None:
                    bucket = state[tag] = {}
                bucket[u] = payload

    def get(self, tag: str) -> dict[int, Any]:
        """All payloads heard with this tag, keyed by sender."""
        return self.state.get(tag, {})

    def heard(self, tag: str, u: int) -> bool:
        bucket = self.state.get(tag)
        return bucket is not None and u in bucket

    def value(self, tag: str, u: int, default: Any = None) -> Any:
        return self.state.get(tag, {}).get(u, default)


def degree_bound(a: int, eps: float) -> int:
    """A = (2 + eps) * a, the H-set degree bound of Procedure Partition.

    Rounded up so the progress guarantee (at least an eps/(2+eps) fraction
    of active vertices has degree <= A) holds for integer degrees.
    """
    if a < 1:
        raise ValueError("arboricity must be >= 1")
    if not 0.0 < eps <= 2.0:
        raise ValueError("epsilon must be in (0, 2]")
    return ceil((2.0 + eps) * a)


def partition_length_bound(n: int, eps: float) -> int:
    """An upper bound on the number of iterations of Procedure Partition:
    ell = log_{(2+eps)/2} n, plus slack for rounding."""
    if n <= 1:
        return 1
    return int(ceil(log(n) / log((2.0 + eps) / 2.0))) + 2


def absorb_round(ctx: Context, view: LocalView):
    """``yield from absorb_round(ctx, view)``: end the round and fold the
    next round's inbox into the view (the standard per-round step)."""
    yield
    view.absorb(ctx)

"""Polynomial cover-free set systems -- the machinery behind Procedure
Arb-Linial-Coloring (Section 7.2; Linial [19]; Lemma 3.21 of the
Barenboim-Elkin book).

For a palette of p current colors and out-degree bound A we need a
collection J = {F_0, ..., F_{p-1}} of subsets of a small ground set such
that no F_c is covered by the union of any A other members: then a vertex
can pick a point of its own set avoided by all of its (at most A) parents,
and that point is its new color.

Construction (Reed-Solomon style): fix a prime q and a degree bound D with
q^{D+1} >= p, and identify color c < q^{D+1} with the polynomial P_c over
F_q whose coefficients are the base-q digits of c.  Let

    F_c = { x * q + P_c(x) : x in F_q }   (a subset of [q^2], |F_c| = q).

Two distinct polynomials agree on at most D points, so A parents can cover
at most A * D < q points of F_c whenever q > A * D -- a free point always
exists.  The new palette has q^2 = O(A^2 log p) colors for the best (q, D).

The same object with *coverage slack* d gives defective colorings
(Section 7.8 machinery): a vertex only needs a point of its set that lies
in at most d of its neighbors' sets, which exists whenever
q > A * D / (d + 1); each such choice is shared with at most d neighbors,
bounding the defect.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import ceil
from typing import Iterable, Sequence


def is_prime(x: int) -> bool:
    """Trial-division primality test (field sizes are small)."""
    if x < 2:
        return False
    if x < 4:
        return True
    if x % 2 == 0:
        return False
    f = 3
    while f * f <= x:
        if x % f == 0:
            return False
        f += 2
    return True


def next_prime(x: int) -> int:
    """The smallest prime >= x."""
    c = max(x, 2)
    while not is_prime(c):
        c += 1
    return c


def _int_root_ceil(p: int, k: int) -> int:
    """ceil(p ** (1/k)) computed exactly with integers."""
    if p <= 1:
        return 1
    lo, hi = 1, p
    while lo < hi:
        mid = (lo + hi) // 2
        if mid**k >= p:
            hi = mid
        else:
            lo = mid + 1
    return lo


@dataclass(frozen=True)
class PolyFamily:
    """An A-cover-free (with coverage slack) family of p sets over [q^2]."""

    capacity: int  # p: number of sets (current palette size)
    A: int  # out-degree / neighbor bound
    slack: int  # coverage slack d (0 = strictly cover-free)
    q: int  # field size (prime)
    degree: int  # polynomial degree bound D

    def __post_init__(self) -> None:
        if self.q ** (self.degree + 1) < self.capacity:
            raise ValueError("field too small for the palette")
        if self.q * (self.slack + 1) <= self.A * self.degree:
            raise ValueError("cover-freeness condition violated")

    @property
    def ground_size(self) -> int:
        """The size of the new palette: q^2."""
        return self.q * self.q

    def evaluate(self, color: int, x: int) -> int:
        """P_color(x) over F_q, digits of ``color`` in base q as
        coefficients."""
        return _poly_row(self.q, self.degree, color)[x]

    def member_points(self, color: int) -> list[int]:
        """The set F_color as ground-set points x*q + P(x)."""
        q = self.q
        row = _poly_row(q, self.degree, color)
        return [x * q + row[x] for x in range(q)]

    def pick(self, color: int, neighbor_colors: Iterable[int]) -> int:
        """A point of F_color lying in at most ``slack`` of the neighbors'
        sets; with slack 0, a point in none of them.

        Neighbors with the *same* color are skipped: their set is identical
        and unavoidable (in the strictly cover-free setting the caller
        guarantees parents have distinct colors; in the defective setting
        equal-color neighbors are accounted as existing defect).
        """
        q = self.q
        counts = [0] * q
        mine = _poly_row(q, self.degree, color)
        for cu in neighbor_colors:
            if cu == color:
                continue
            theirs = _poly_row(q, self.degree, cu)
            for x in range(q):
                if theirs[x] == mine[x]:
                    counts[x] += 1
        best_x = min(range(q), key=lambda x: (counts[x], x))
        if counts[best_x] > self.slack:
            raise AssertionError(
                "cover-free guarantee violated: too many neighbors "
                f"({counts[best_x]} > slack {self.slack}); A bound exceeded?"
            )
        return best_x * q + mine[best_x]


@lru_cache(maxsize=1 << 18)
def _poly_row(q: int, degree: int, color: int) -> tuple[int, ...]:
    """P_color evaluated at every x in F_q (Horner over base-q digits of
    ``color``), memoized: IDs and intermediate colors repeat across every
    vertex that has to avoid them, making this the simulator's hot path."""
    coeffs = []
    c = color
    for _ in range(degree + 1):
        coeffs.append(c % q)
        c //= q
    coeffs.reverse()
    out = []
    for x in range(q):
        acc = 0
        for a in coeffs:
            acc = (acc * x + a) % q
        out.append(acc)
    return tuple(out)


def build_family(capacity: int, A: int, slack: int = 0) -> PolyFamily:
    """The cheapest polynomial family for ``capacity`` colors, neighbor
    bound ``A`` and coverage slack: minimises the new palette q^2 over the
    polynomial degree D."""
    if capacity < 1:
        raise ValueError("capacity must be positive")
    A = max(A, 1)
    best: PolyFamily | None = None
    max_degree = max(1, capacity.bit_length())
    for D in range(1, max_degree + 1):
        q_min = (A * D) // (slack + 1) + 1  # q*(slack+1) > A*D
        q = next_prime(max(q_min, _int_root_ceil(capacity, D + 1), 2))
        fam = PolyFamily(capacity=capacity, A=A, slack=slack, q=q, degree=D)
        if best is None or fam.ground_size < best.ground_size:
            best = fam
        if q == next_prime(max(q_min, 2)):
            # Larger D can only raise q_min once the root constraint is slack.
            break
    assert best is not None
    return best


def palette_schedule(
    start_palette: int, A: int, slack: int = 0, max_steps: int = 64
) -> list[PolyFamily]:
    """The sequence of families Arb-Linial-Coloring iterates through: the
    palette shrinks p -> O(A^2 log p) each step until it stops shrinking
    (fixpoint ~ (2A)^2 = O(A^2)).  Takes O(log* start_palette) steps.

    This schedule is a deterministic function of (ID space, A): common
    knowledge, so all vertices agree on the number of steps.
    """
    schedule: list[PolyFamily] = []
    p = start_palette
    for _ in range(max_steps):
        fam = build_family(p, A, slack)
        if fam.ground_size >= p:
            break  # fixpoint reached; a further step would not shrink
        schedule.append(fam)
        p = fam.ground_size
    return schedule


def fixpoint_palette(A: int) -> int:
    """The palette size at the iteration fixpoint: final O(A^2) bound."""
    sched = palette_schedule(1 << 62, A)
    return sched[-1].ground_size if sched else 1


def colors_after_one_step(id_space: int, A: int) -> int:
    """Palette size after a single Arb-Linial step from an ID coloring:
    the O(A^2 log n) of Theorem 7.2."""
    return build_family(id_space, A).ground_size


def steps_to_fixpoint(id_space: int, A: int) -> int:
    """Number of iterated steps: O(log* id_space)."""
    return len(palette_schedule(id_space, A))

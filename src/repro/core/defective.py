"""Defective and arbdefective colorings (Section 7.8.1) plus the
asynchronous, subgraph-scoped H-partition the recursive algorithms need.

Asynchronous H-partition
------------------------
Procedure Partition peels the graph in synchronous rounds; inside the
recursions of Section 7.8 different subgraphs reach the same recursion
level at different global rounds, so no common clock exists.  The H-index
is nevertheless a static quantity -- the peeling depth

    H_1 = { v : deg_S(v) <= A },   H_i = { v : deg after removing H_{<i} <= A }

-- and :func:`async_h_partition` computes it by monotone bound propagation:
a vertex announces increasing lower bounds on its index ("my index > i",
justified once more than A neighbors are confirmed to have index >= i) and
fixes its exact index once at most A neighbors could still be at or above
it.  Both moves are conservative, the fixpoint equals the synchronous
peeling exactly, and the protocol needs no shared round numbering.

Defective coloring
------------------
:func:`defective_coloring_steps` computes a d-defective coloring via
coverage-slack cover-free families (see :mod:`repro.core.coverfree`):
proper Linial steps shrink the palette to the O(A^2) fixpoint, after which
slack steps with geometrically split defect budgets d/2, d/4, ... shrink it
further; each slack step adds at most its budget to any vertex's defect
(equal-color neighbors are excluded from the counting, so previously
conflicting pairs are not re-counted).  The palette reached is
O((A/d)^2 polylog A) -- DESIGN.md substitution #4; the defect bound d is
exact and verified by tests.

Arbdefective coloring
---------------------
:func:`arbdefective_choose` is the decision rule of Procedure
Arbdefective-Coloring (paper Algorithm 2): given the colors of the at most
``A`` parents under an acyclic orientation, take the color of {1..k} used
by the fewest parents.  Each color class then has an acyclic orientation
of out-degree <= ceil(A/k) + d (d = the defect of the underlying coloring;
0 when a proper psi is used), hence arboricity at most that bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, Sequence

from repro.core.common import LocalView, degree_bound
from repro.core.coverfree import PolyFamily, build_family, palette_schedule
from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.metrics import RoundMetrics
from repro.runtime.network import SyncNetwork, current_engine


# ---------------------------------------------------------------------------
# Asynchronous H-partition
# ---------------------------------------------------------------------------


def async_h_partition(
    ctx: Context,
    view: LocalView,
    members: Sequence[int],
    A: int,
    tag: str,
) -> Generator[None, None, int]:
    """Compute this vertex's H-index within the subgraph induced on
    ``members`` (+ itself), without a shared clock.

    Message protocol (all scoped by ``tag``):
      ``tag + 'b'`` : payload j   -- "my index is > j" (monotone bounds)
      ``tag + 'x'`` : payload i   -- "my index is exactly i" (final)

    Returns the exact peeling index (>= 1).  Also leaves every member's
    final index observable in ``view.get(tag + 'x')`` for later phases.
    """
    tag_b = tag + "b"
    tag_x = tag + "x"
    member_list = list(members)
    if not member_list:
        ctx.broadcast((tag_x, 1))
        return 1
    lb = 1
    announced_lb = 0
    while True:
        exact = view.get(tag_x)
        bounds = view.get(tag_b)

        def known_lb(u: int) -> int:
            if u in exact:
                return exact[u]
            return bounds.get(u, 0) + 1  # "index > j" => lower bound j + 1

        # Raise our own lower bound while justified: index > lb requires
        # more than A members confirmed at >= lb.
        while sum(1 for u in member_list if known_lb(u) >= lb) > A:
            lb += 1
        # Fix the index once at most A members can still reach >= lb
        # (a member not yet fixed below lb counts as potentially >= lb).
        potential = sum(
            1 for u in member_list if not (u in exact and exact[u] < lb)
        )
        if potential <= A:
            ctx.broadcast((tag_x, lb))
            return lb
        if lb > announced_lb + 1:
            ctx.broadcast((tag_b, lb - 1))
            announced_lb = lb - 1
        yield
        view.absorb(ctx)


# ---------------------------------------------------------------------------
# Defective coloring
# ---------------------------------------------------------------------------


def defective_schedule(
    start_palette: int, A: int, d: int, max_steps: int = 64
) -> list[PolyFamily]:
    """Family schedule for a d-defective coloring: proper steps to the
    proper fixpoint, then slack steps with budgets d/2, d/4, ..., stopping
    when no further palette shrink is possible.  Total slack <= d."""
    schedule = list(palette_schedule(start_palette, A, slack=0, max_steps=max_steps))
    p = schedule[-1].ground_size if schedule else start_palette
    budget = d
    while budget >= 1 and len(schedule) < max_steps:
        # Spend the smallest slack that still shrinks the palette, so the
        # budget buys as many shrinking steps as possible.
        chosen = None
        for step in range(1, budget + 1):
            fam = build_family(p, A, slack=step)
            if fam.ground_size < p:
                chosen = (step, fam)
                break
        if chosen is None:
            break
        step, fam = chosen
        schedule.append(fam)
        p = fam.ground_size
        budget -= step
    return schedule


def defective_coloring_steps(
    ctx: Context,
    view: LocalView,
    members: Sequence[int],
    schedule: Sequence[PolyFamily],
    tag: str,
    color0: int | None = None,
) -> Generator[None, None, int]:
    """Self-synchronizing defective-coloring iteration: like
    :func:`repro.core.arb_linial.arb_linial_steps` but against *all*
    members, allowing each family's coverage slack.  Defect accounting:
    a slack-s step lets at most s members share the chosen point, and
    members already sharing our color are skipped by the family's pick, so
    the total defect is bounded by the sum of slacks."""
    c = ctx.id if color0 is None else color0
    for k, fam in enumerate(schedule):
        step_tag = f"{tag}#{k}"
        ctx.broadcast((step_tag, c))
        missing = [u for u in members if not view.heard(step_tag, u)]
        while missing:
            yield
            view.absorb(ctx)
            missing = [u for u in missing if not view.heard(step_tag, u)]
        bucket = view.get(step_tag)
        c = fam.pick(c, [bucket[u] for u in members])
    return c


@dataclass(frozen=True)
class DefectiveColoringResult:
    colors: dict[int, int]
    metrics: RoundMetrics
    palette_bound: int
    defect_bound: int

    @property
    def colors_used(self) -> int:
        return len(set(self.colors.values()))


def run_defective_coloring(
    graph: Graph,
    d: int,
    degree_limit: int | None = None,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> DefectiveColoringResult:
    """Standalone d-defective coloring of a whole graph (degree bound
    ``degree_limit``, default Delta): the building block Procedure
    Partial-Orientation invokes on each H-set."""
    if current_engine() == "bulk":
        from repro.runtime.shard import current_shards

        if current_shards() is not None:
            from repro.core.shard import sharded_defective_coloring

            return sharded_defective_coloring(
                graph, d, degree_limit=degree_limit, ids=ids, seed=seed
            )
        from repro.core.bulk import bulk_defective_coloring

        return bulk_defective_coloring(
            graph, d, degree_limit=degree_limit, ids=ids, seed=seed
        )
    A = degree_limit if degree_limit is not None else graph.max_degree()
    A = max(A, 1)

    def program(ctx: Context):
        schedule = ctx.config["schedule"]
        view = LocalView()
        c = yield from defective_coloring_steps(
            ctx, view, ctx.neighbors, schedule, tag="df"
        )
        return c

    net = SyncNetwork(graph, ids=ids, seed=seed)
    schedule = defective_schedule(net.config["id_space"], A, d)
    net.config["schedule"] = schedule
    bound = schedule[-1].ground_size if schedule else net.config["id_space"]
    res = net.run(program, max_rounds=4 * len(schedule) + 64)
    return DefectiveColoringResult(
        colors=dict(res.outputs),
        metrics=res.metrics,
        palette_bound=bound,
        defect_bound=d,
    )


# ---------------------------------------------------------------------------
# Arbdefective decision rule (paper Algorithm 2, step 2)
# ---------------------------------------------------------------------------


def arbdefective_choose(k: int, parent_colors: Iterable[int]) -> int:
    """The color of {0..k-1} used by the fewest parents (ties: smallest)."""
    counts = [0] * k
    for c in parent_colors:
        counts[c] += 1
    return min(range(k), key=lambda c: (counts[c], c))


def arbdefective_class_bound(A: int, k: int, defect: int = 0) -> int:
    """Arboricity bound of each color class: ceil(A / k) + defect (the
    orientation within a class has out-degree at most that, and an acyclic
    orientation of out-degree b yields b forests)."""
    return -(-A // k) + defect


# ---------------------------------------------------------------------------
# Standalone Procedure Arbdefective-Coloring (paper Algorithms 1-2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArbdefectiveColoringResult:
    """A b-arbdefective k-coloring with its round accounting."""

    colors: dict[int, int]
    metrics: RoundMetrics
    k: int
    arboricity_bound: int  # b: per-class arboricity guarantee


def run_arbdefective_coloring(
    graph: Graph,
    a: int,
    k: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ArbdefectiveColoringResult:
    """Procedure Arbdefective-Coloring (paper Algorithms 1-2), standalone:
    H-partition + within-set proper psi (Partial-Orientation with a
    defect-0 coloring, DESIGN.md #4) + the "color used by the fewest
    parents" wave.  Each color class gets an acyclic orientation of
    out-degree <= ceil(A / k), hence arboricity <= ceil(A / k) -- verified
    exactly by tests via :func:`repro.verify.assert_arbdefective_coloring`.
    """
    from repro.core.arb_linial import arb_linial_steps, priority_wave, _step_tag
    from repro.core.common import JOIN, partition_length_bound
    from repro.core.coverfree import palette_schedule
    from repro.core.partition import join_h_set

    if k < 1:
        raise ValueError("k must be >= 1")
    A = degree_bound(a, eps)
    ell = partition_length_bound(graph.n, eps)

    def program(ctx: Context):
        schedule = ctx.config["schedule"]
        view = LocalView()
        h = yield from join_h_set(ctx, view, A)
        yield
        view.absorb(ctx)
        same = [u for u in ctx.neighbors if view.value(JOIN, u) == h]
        psi = yield from arb_linial_steps(ctx, view, same, schedule, tag="ad")
        last = _step_tag("ad", len(schedule))
        ctx.broadcast((last, psi))
        missing = [u for u in same if not view.heard(last, u)]
        while missing:
            yield
            view.absorb(ctx)
            missing = [u for u in missing if not view.heard(last, u)]
        psis = view.get(last)
        # Parents: later H-sets (including the still-unjoined) and same-set
        # higher psi -- the Partial-Orientation of paper Algorithm 1.
        joined = view.get(JOIN)
        parents = []
        for u in ctx.neighbors:
            hu = joined.get(u)
            if hu is None or hu > h:
                parents.append(u)
            elif hu == h and psis[u] > psi:
                parents.append(u)
        color = yield from priority_wave(
            ctx, view, parents, "adw",
            lambda pred: arbdefective_choose(k, pred.values()),
        )
        return color

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    schedule = palette_schedule(net.config["id_space"], A)
    net.config["schedule"] = schedule
    fixpoint = schedule[-1].ground_size if schedule else net.config["id_space"]
    budget = (ell + 2) * (len(schedule) + fixpoint + 4) + 64
    res = net.run(program, max_rounds=budget)
    return ArbdefectiveColoringResult(
        colors=dict(res.outputs),
        metrics=res.metrics,
        k=k,
        arboricity_bound=arbdefective_class_bound(A, k),
    )

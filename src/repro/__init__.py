"""repro -- Distributed Symmetry-Breaking with Improved Vertex-Averaged
Complexity (Barenboim & Tzur, SPAA 2018).

A LOCAL-model simulator plus the paper's full algorithm suite:

>>> from repro import generators, run_partition
>>> g = generators.union_of_forests(1000, a=3, seed=0)
>>> result = run_partition(g, a=3)
>>> result.metrics.vertex_averaged < result.metrics.worst_case
True

Public API re-exports the main drivers; see DESIGN.md for the map from
paper sections to modules.
"""

from repro.graphs import (
    Graph,
    Orientation,
    generators,
    arboricity_exact,
    degeneracy,
    partition_into_forests,
)
from repro.runtime import RoundMetrics, SyncNetwork
from repro.core.partition import run_partition, compose_with_algorithm
from repro.core.forests import (
    run_parallelized_forest_decomposition,
    run_worstcase_forest_decomposition,
)
from repro.core.coloring import (
    run_a2logn_coloring,
    run_a2_coloring,
    run_oa_coloring,
)
from repro.core.segmentation import (
    run_ka2_coloring,
    run_ka_coloring,
    make_segment_plan,
    segmentation_trace,
)
from repro.core.defective import run_arbdefective_coloring, run_defective_coloring
from repro.core.one_plus_eta import run_one_plus_eta_coloring, run_legal_coloring
from repro.core.extension import run_delta_plus_one_coloring, run_mis
from repro.core.edgealgo import run_edge_coloring, run_maximal_matching
from repro.core.randomized import run_rand_delta_plus_one, run_aloglogn_coloring
from repro.core.consensus import run_consensus
from repro.related.leader_election import run_leader_election
from repro.baselines import (
    run_linial_coloring,
    run_delta_plus_one_worstcase,
    run_luby_mis,
    run_ring_three_coloring,
    run_arb_linial_worstcase,
    run_arb_color_worstcase,
)
from repro.analysis import fit_shape, ilog, log_star, rho

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "Orientation",
    "RoundMetrics",
    "SyncNetwork",
    "generators",
    "arboricity_exact",
    "degeneracy",
    "partition_into_forests",
    "run_partition",
    "compose_with_algorithm",
    "run_parallelized_forest_decomposition",
    "run_worstcase_forest_decomposition",
    "run_a2logn_coloring",
    "run_a2_coloring",
    "run_oa_coloring",
    "run_ka2_coloring",
    "run_ka_coloring",
    "make_segment_plan",
    "segmentation_trace",
    "run_defective_coloring",
    "run_arbdefective_coloring",
    "run_one_plus_eta_coloring",
    "run_legal_coloring",
    "run_delta_plus_one_coloring",
    "run_mis",
    "run_edge_coloring",
    "run_maximal_matching",
    "run_rand_delta_plus_one",
    "run_aloglogn_coloring",
    "run_consensus",
    "run_leader_election",
    "run_linial_coloring",
    "run_delta_plus_one_worstcase",
    "run_luby_mis",
    "run_ring_three_coloring",
    "run_arb_linial_worstcase",
    "run_arb_color_worstcase",
    "fit_shape",
    "ilog",
    "log_star",
    "rho",
    "__version__",
]

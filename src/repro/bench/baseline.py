"""Kernel throughput baseline: measure, persist, compare.

Times the round engine itself (not any algorithm) on a fixed workload --
the 10-round broadcast program over ``union_of_forests(n, 3)`` -- and
records steps/s, msgs/s and wall-clock per sweep point in
``BENCH_kernel.json`` at the repo root, so every future PR inherits a perf
trajectory and a regression gate.

Raw steps/s is machine-dependent, so the committed file stores *both*
engines' numbers: the throughput-optimised :class:`SyncNetwork` ("fast")
and the specification engine :class:`ReferenceSyncNetwork` ("reference").
The regression gate compares the fast/reference *speedup ratio*, which is
stable across machines: a change that slows the fast path shows up as a
falling ratio no matter the hardware.

The file also records the *null-sink instrumentation overhead*: the fast
engine run with an ``EventBus(NullSink())`` attached must stay within 5%
of the uninstrumented path in CPU time (the ``repro.obs`` layer's cost
contract; the gate fails otherwise).

Usage::

    PYTHONPATH=src python -m repro.bench.baseline --write   # refresh file
    PYTHONPATH=src python -m repro.bench.baseline --check   # regression gate
    PYTHONPATH=src python -m repro.bench.baseline --check --quick  # CI smoke

"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Sequence

from repro.graphs import generators as gen
from repro.runtime.network import SyncNetwork
from repro.runtime.reference import ReferenceSyncNetwork

#: the fixed kernel workload: n-sweep of the 10-round broadcast program
DEFAULT_NS: tuple[int, ...] = (2000, 8000, 32000)
QUICK_NS: tuple[int, ...] = (2000, 8000)
BROADCAST_ROUNDS = 10
#: fail the gate when the fast/reference speedup falls below
#: ``(1 - MAX_REGRESSION)`` of the recorded one
MAX_REGRESSION = 0.30
#: the instrumentation guard: attaching an EventBus whose only sink is a
#: NullSink must keep the fast engine within this percentage of the
#: uninstrumented wall-clock
MAX_NULL_SINK_OVERHEAD_PCT = 5.0
#: sweep point used for the overhead measurement (big enough that the
#: per-call branch cost, if any, dominates noise)
OVERHEAD_N = 8000

ENGINES: dict[str, type[SyncNetwork]] = {
    "fast": SyncNetwork,
    "reference": ReferenceSyncNetwork,
}


def default_path() -> str:
    """``BENCH_kernel.json`` at the repository root (next to ``src/``)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(here, "..", "..", "..", "BENCH_kernel.json")


def broadcast_program(rounds: int = BROADCAST_ROUNDS) -> Callable:
    """The kernel workload program: broadcast every round, then halt."""

    def ping(ctx):
        for _ in range(rounds):
            ctx.broadcast(("p", ctx.round))
            yield
        return None

    return ping


def measure_engine(
    engine: str = "fast",
    ns: Sequence[int] = DEFAULT_NS,
    rounds: int = BROADCAST_ROUNDS,
    repeats: int = 1,
) -> list[dict[str, Any]]:
    """Time one engine over the kernel workload; best-of-``repeats``."""
    cls = ENGINES[engine]
    program = broadcast_program(rounds)
    points = []
    for n in ns:
        g = gen.union_of_forests(n, 3, seed=0)
        g.csr_rows()  # build the CSR cache outside the timed region
        best = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            res = cls(g).run(program)
            wall = time.perf_counter() - t0
            if best is None or wall < best[0]:
                best = (wall, res)
        wall, res = best
        steps = res.metrics.round_sum
        msgs = res.metrics.total_messages
        points.append(
            {
                "n": n,
                "rounds": rounds,
                "steps": steps,
                "msgs": msgs,
                "wall_s": round(wall, 4),
                "steps_per_s": round(steps / wall, 1),
                "msgs_per_s": round(msgs / wall, 1),
            }
        )
    return points


def measure_null_sink_overhead(
    n: int = OVERHEAD_N,
    rounds: int = BROADCAST_ROUNDS,
    repeats: int = 9,
) -> dict[str, Any]:
    """The instrumentation overhead gate's measurement.

    Times the fast engine on the kernel workload twice per repeat --
    uninstrumented, and with an :class:`repro.obs.EventBus` whose only
    sink is a :class:`repro.obs.NullSink` attached -- in adjacent pairs
    (alternating which arm goes first), in CPU time
    (``time.process_time``, so scheduler preemption stays out of the
    measurement).  Two statistics come back:

    * ``overhead_pct`` -- the *median* of the per-pair ratios: the best
      single estimate, reported for humans.
    * ``overhead_floor_pct`` -- the *minimum* of the per-pair ratios:
      a noise-robust lower bound on the true overhead, and what the
      gate compares against :data:`MAX_NULL_SINK_OVERHEAD_PCT`.  On a
      loaded shared machine, cache pressure from neighbors inflates CPU
      time by up to ~10% in minutes-long windows, so any single pair
      (and hence the median) can read high spuriously; but a *spurious*
      gate failure would need every pair skewed the same way, while a
      *real* regression shows up in every pair and still trips the
      floor.  (Medians and per-arm best-of were tried first and flaked
      at the few-percent level under a churned heap.)

    With no live sink the engine never constructs an event, so the
    expected overhead is a handful of per-round branches -- truly ~0%.
    """
    from repro.obs import EventBus, NullSink

    g = gen.union_of_forests(n, 3, seed=0)
    g.csr_rows()  # build the CSR cache outside the timed region
    program = broadcast_program(rounds)
    bus = EventBus(NullSink())

    def timed(with_bus: bool) -> float:
        t0 = time.process_time()
        if with_bus:
            SyncNetwork(g).run(program, bus=bus)
        else:
            SyncNetwork(g).run(program)
        return time.process_time() - t0

    timed(False)  # one untimed warm-up for allocator/cache state
    ratios = []
    bare_best = instrumented_best = float("inf")
    for i in range(max(1, repeats)):
        # alternate which arm goes first so ordering bias cancels too
        if i % 2:
            instrumented = timed(True)
            bare = timed(False)
        else:
            bare = timed(False)
            instrumented = timed(True)
        ratios.append(instrumented / bare)
        bare_best = min(bare_best, bare)
        instrumented_best = min(instrumented_best, instrumented)
    ratios.sort()
    median_ratio = ratios[len(ratios) // 2]
    return {
        "n": n,
        "rounds": rounds,
        "repeats": repeats,
        "bare_cpu_s": round(bare_best, 4),
        "null_sink_cpu_s": round(instrumented_best, 4),
        "overhead_pct": round((median_ratio - 1.0) * 100.0, 2),
        "overhead_floor_pct": round((ratios[0] - 1.0) * 100.0, 2),
    }


def measure_kernel(
    ns: Sequence[int] = DEFAULT_NS,
    rounds: int = BROADCAST_ROUNDS,
    repeats: int = 1,
) -> dict[str, Any]:
    """Measure both engines and derive the per-point speedup ratios,
    plus the null-sink instrumentation overhead."""
    result: dict[str, Any] = {
        "workload": f"union_of_forests(n, 3) x {rounds}-round broadcast",
        "engines": {
            name: measure_engine(name, ns=ns, rounds=rounds, repeats=repeats)
            for name in ENGINES
        },
    }
    fast = result["engines"]["fast"]
    ref = result["engines"]["reference"]
    result["speedup"] = {
        str(f["n"]): round(f["steps_per_s"] / r["steps_per_s"], 2)
        for f, r in zip(fast, ref)
    }
    result["null_sink_overhead"] = measure_null_sink_overhead(
        rounds=rounds, repeats=max(9, repeats)
    )
    return result


def write_baseline(path: str | None = None, **kwargs) -> dict[str, Any]:
    """Measure and persist the baseline; returns what was written."""
    path = path or default_path()
    result = measure_kernel(**kwargs)
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return result


def load_baseline(path: str | None = None) -> dict[str, Any]:
    with open(path or default_path()) as fh:
        return json.load(fh)


def compare_to_baseline(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = MAX_REGRESSION,
) -> list[str]:
    """Regression check; returns human-readable violations (empty = pass).

    Compares the fast/reference speedup ratio per sweep point against the
    recorded one (machine-independent), and additionally requires the fast
    engine to actually be faster than the reference engine.
    """
    problems = []
    recorded = baseline.get("speedup", {})
    for key, cur_ratio in current.get("speedup", {}).items():
        if cur_ratio < 1.0:
            problems.append(
                f"n={key}: fast engine is slower than the reference engine "
                f"(speedup x{cur_ratio:.2f})"
            )
        base_ratio = recorded.get(key)
        if base_ratio is None:
            continue
        floor = base_ratio * (1.0 - max_regression)
        if cur_ratio < floor:
            problems.append(
                f"n={key}: speedup regressed to x{cur_ratio:.2f} "
                f"(recorded x{base_ratio:.2f}, floor x{floor:.2f})"
            )
    overhead = current.get("null_sink_overhead")
    if overhead is not None:
        # gate on the noise-robust lower bound, not the median estimate
        floor = overhead.get("overhead_floor_pct", overhead["overhead_pct"])
        if floor > MAX_NULL_SINK_OVERHEAD_PCT:
            problems.append(
                f"null-sink instrumentation overhead >= {floor:.2f}% "
                f"(median estimate {overhead['overhead_pct']:.2f}%) exceeds "
                f"{MAX_NULL_SINK_OVERHEAD_PCT:.0f}% "
                f"(n={overhead['n']}, bare {overhead['bare_cpu_s']}s vs "
                f"instrumented {overhead['null_sink_cpu_s']}s CPU)"
            )
    return problems


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--write", action="store_true", help="refresh the baseline file")
    ap.add_argument("--check", action="store_true", help="regression gate vs the file")
    ap.add_argument("--path", default=None, help="baseline JSON path")
    ap.add_argument(
        "--quick",
        action="store_true",
        help=f"small-n smoke sweep {QUICK_NS} (for CI)",
    )
    ap.add_argument("--repeats", type=int, default=1)
    args = ap.parse_args(argv)
    ns = QUICK_NS if args.quick else DEFAULT_NS

    if args.write:
        result = write_baseline(args.path, ns=ns, repeats=args.repeats)
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    if args.check:
        try:
            baseline = load_baseline(args.path)
        except FileNotFoundError as exc:
            print(f"no baseline at {exc.filename}; run with --write first")
            return 1
        current = measure_kernel(ns=ns, repeats=args.repeats)
        for key, ratio in sorted(current["speedup"].items(), key=lambda kv: int(kv[0])):
            rec = baseline.get("speedup", {}).get(key)
            rec_s = f" (recorded x{rec:.2f})" if rec is not None else ""
            print(f"n={key}: fast/reference speedup x{ratio:.2f}{rec_s}")
        overhead = current.get("null_sink_overhead", {})
        if overhead:
            print(
                f"null-sink overhead: {overhead['overhead_pct']:+.2f}% "
                f"(floor {overhead['overhead_floor_pct']:+.2f}%) at "
                f"n={overhead['n']} (gate {MAX_NULL_SINK_OVERHEAD_PCT:.0f}%)"
            )
        problems = compare_to_baseline(current, baseline)
        for p in problems:
            print(f"REGRESSION: {p}")
        print("kernel perf check:", "FAIL" if problems else "OK")
        return 1 if problems else 0
    ap.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

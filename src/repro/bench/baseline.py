"""Kernel throughput baseline: measure, persist, compare.

Times the round engine itself (not any algorithm) on a fixed workload --
the 10-round broadcast program over ``union_of_forests(n, 3)`` -- and
records steps/s, msgs/s and wall-clock per sweep point in
``BENCH_kernel.json`` at the repo root, so every future PR inherits a perf
trajectory and a regression gate.

Raw steps/s is machine-dependent, so the committed file stores *both*
engines' numbers: the throughput-optimised :class:`SyncNetwork` ("fast")
and the specification engine :class:`ReferenceSyncNetwork` ("reference").
The regression gate compares the fast/reference *speedup ratio*, which is
stable across machines: a change that slows the fast path shows up as a
falling ratio no matter the hardware.

Usage::

    PYTHONPATH=src python -m repro.bench.baseline --write   # refresh file
    PYTHONPATH=src python -m repro.bench.baseline --check   # regression gate
    PYTHONPATH=src python -m repro.bench.baseline --check --quick  # CI smoke

"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Sequence

from repro.graphs import generators as gen
from repro.runtime.network import SyncNetwork
from repro.runtime.reference import ReferenceSyncNetwork

#: the fixed kernel workload: n-sweep of the 10-round broadcast program
DEFAULT_NS: tuple[int, ...] = (2000, 8000, 32000)
QUICK_NS: tuple[int, ...] = (2000, 8000)
BROADCAST_ROUNDS = 10
#: fail the gate when the fast/reference speedup falls below
#: ``(1 - MAX_REGRESSION)`` of the recorded one
MAX_REGRESSION = 0.30

ENGINES: dict[str, type[SyncNetwork]] = {
    "fast": SyncNetwork,
    "reference": ReferenceSyncNetwork,
}


def default_path() -> str:
    """``BENCH_kernel.json`` at the repository root (next to ``src/``)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(here, "..", "..", "..", "BENCH_kernel.json")


def broadcast_program(rounds: int = BROADCAST_ROUNDS) -> Callable:
    """The kernel workload program: broadcast every round, then halt."""

    def ping(ctx):
        for _ in range(rounds):
            ctx.broadcast(("p", ctx.round))
            yield
        return None

    return ping


def measure_engine(
    engine: str = "fast",
    ns: Sequence[int] = DEFAULT_NS,
    rounds: int = BROADCAST_ROUNDS,
    repeats: int = 1,
) -> list[dict[str, Any]]:
    """Time one engine over the kernel workload; best-of-``repeats``."""
    cls = ENGINES[engine]
    program = broadcast_program(rounds)
    points = []
    for n in ns:
        g = gen.union_of_forests(n, 3, seed=0)
        g.csr_rows()  # build the CSR cache outside the timed region
        best = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            res = cls(g).run(program)
            wall = time.perf_counter() - t0
            if best is None or wall < best[0]:
                best = (wall, res)
        wall, res = best
        steps = res.metrics.round_sum
        msgs = res.metrics.total_messages
        points.append(
            {
                "n": n,
                "rounds": rounds,
                "steps": steps,
                "msgs": msgs,
                "wall_s": round(wall, 4),
                "steps_per_s": round(steps / wall, 1),
                "msgs_per_s": round(msgs / wall, 1),
            }
        )
    return points


def measure_kernel(
    ns: Sequence[int] = DEFAULT_NS,
    rounds: int = BROADCAST_ROUNDS,
    repeats: int = 1,
) -> dict[str, Any]:
    """Measure both engines and derive the per-point speedup ratios."""
    result: dict[str, Any] = {
        "workload": f"union_of_forests(n, 3) x {rounds}-round broadcast",
        "engines": {
            name: measure_engine(name, ns=ns, rounds=rounds, repeats=repeats)
            for name in ENGINES
        },
    }
    fast = result["engines"]["fast"]
    ref = result["engines"]["reference"]
    result["speedup"] = {
        str(f["n"]): round(f["steps_per_s"] / r["steps_per_s"], 2)
        for f, r in zip(fast, ref)
    }
    return result


def write_baseline(path: str | None = None, **kwargs) -> dict[str, Any]:
    """Measure and persist the baseline; returns what was written."""
    path = path or default_path()
    result = measure_kernel(**kwargs)
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return result


def load_baseline(path: str | None = None) -> dict[str, Any]:
    with open(path or default_path()) as fh:
        return json.load(fh)


def compare_to_baseline(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = MAX_REGRESSION,
) -> list[str]:
    """Regression check; returns human-readable violations (empty = pass).

    Compares the fast/reference speedup ratio per sweep point against the
    recorded one (machine-independent), and additionally requires the fast
    engine to actually be faster than the reference engine.
    """
    problems = []
    recorded = baseline.get("speedup", {})
    for key, cur_ratio in current.get("speedup", {}).items():
        if cur_ratio < 1.0:
            problems.append(
                f"n={key}: fast engine is slower than the reference engine "
                f"(speedup x{cur_ratio:.2f})"
            )
        base_ratio = recorded.get(key)
        if base_ratio is None:
            continue
        floor = base_ratio * (1.0 - max_regression)
        if cur_ratio < floor:
            problems.append(
                f"n={key}: speedup regressed to x{cur_ratio:.2f} "
                f"(recorded x{base_ratio:.2f}, floor x{floor:.2f})"
            )
    return problems


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--write", action="store_true", help="refresh the baseline file")
    ap.add_argument("--check", action="store_true", help="regression gate vs the file")
    ap.add_argument("--path", default=None, help="baseline JSON path")
    ap.add_argument(
        "--quick",
        action="store_true",
        help=f"small-n smoke sweep {QUICK_NS} (for CI)",
    )
    ap.add_argument("--repeats", type=int, default=1)
    args = ap.parse_args(argv)
    ns = QUICK_NS if args.quick else DEFAULT_NS

    if args.write:
        result = write_baseline(args.path, ns=ns, repeats=args.repeats)
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    if args.check:
        try:
            baseline = load_baseline(args.path)
        except FileNotFoundError as exc:
            print(f"no baseline at {exc.filename}; run with --write first")
            return 1
        current = measure_kernel(ns=ns, repeats=args.repeats)
        for key, ratio in sorted(current["speedup"].items(), key=lambda kv: int(kv[0])):
            rec = baseline.get("speedup", {}).get(key)
            rec_s = f" (recorded x{rec:.2f})" if rec is not None else ""
            print(f"n={key}: fast/reference speedup x{ratio:.2f}{rec_s}")
        problems = compare_to_baseline(current, baseline)
        for p in problems:
            print(f"REGRESSION: {p}")
        print("kernel perf check:", "FAIL" if problems else "OK")
        return 1 if problems else 0
    ap.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

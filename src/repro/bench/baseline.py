"""Kernel throughput baseline: measure, persist, compare.

Times the round engine itself (not any algorithm) on a fixed workload --
the 10-round broadcast program over ``union_of_forests(n, 3)`` -- and
records steps/s, msgs/s and wall-clock per sweep point in
``BENCH_kernel.json`` at the repo root, so every future PR inherits a perf
trajectory and a regression gate.

Raw steps/s is machine-dependent, so the committed file stores *all three*
engines' numbers: the throughput-optimised :class:`SyncNetwork` ("fast"),
the specification engine :class:`ReferenceSyncNetwork` ("reference"), and
the columnar bulk engine (:func:`repro.runtime.bulk_broadcast_kernel`,
measured on the same workload plus an extra large-n point).  The
regression gate compares *speedup ratios*, which are stable across
machines: fast/reference on steps/s, and bulk/fast on msgs/s (the bulk
engine has no per-vertex steps; delivered messages are the common
currency).  A change that slows either optimised path shows up as a
falling ratio no matter the hardware.

The file also records the *null-sink instrumentation overhead*: the fast
engine **and** the bulk engine run with an ``EventBus(NullSink())``
attached must each stay within 5% of the uninstrumented path in CPU time
(the ``repro.obs`` layer's cost contract; the gate fails otherwise).
Sharded shard_scaling points additionally carry a compute / barrier-wait
/ allreduce / publish breakdown summed over shards, from the
cross-process phase profiler (:mod:`repro.obs.telemetry`).

Usage::

    PYTHONPATH=src python -m repro.bench.baseline --write   # refresh file
    PYTHONPATH=src python -m repro.bench.baseline --check   # regression gate
    PYTHONPATH=src python -m repro.bench.baseline --check --quick  # CI smoke

"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Sequence

from repro.graphs import generators as gen
from repro.runtime.network import SyncNetwork
from repro.runtime.reference import ReferenceSyncNetwork

#: the fixed kernel workload: n-sweep of the 10-round broadcast program
DEFAULT_NS: tuple[int, ...] = (2000, 8000, 32000)
QUICK_NS: tuple[int, ...] = (2000, 8000)
BROADCAST_ROUNDS = 10
#: fail the gate when the fast/reference speedup falls below
#: ``(1 - MAX_REGRESSION)`` of the recorded one
MAX_REGRESSION = 0.30
#: best-of repeats for the CLI write/check paths.  Single-sample walls at
#: small n are bimodal under CPU frequency scaling (observed ~40% swing
#: at n=2000), so a lone fast-engine sample paired with a lucky
#: reference sample can push the ratio through the regression floor on a
#: healthy machine; best-of-3 per cell makes the ratio reproducible
CLI_REPEATS = 3
#: the instrumentation guard: attaching an EventBus whose only sink is a
#: NullSink must keep the fast engine within this percentage of the
#: uninstrumented wall-clock
MAX_NULL_SINK_OVERHEAD_PCT = 5.0
#: sweep point used for the overhead measurement (big enough that the
#: per-call branch cost, if any, dominates noise)
OVERHEAD_N = 8000
#: the bulk engine's overhead point: the columnar kernel finishes n=8000
#: in ~a millisecond, too short for a stable CPU-time ratio, so its
#: overhead arm runs at the large-n throughput cell instead
BULK_OVERHEAD_N = 100_000

#: the extra sweep point the bulk engine is measured at (cheap for the
#: columnar path, prohibitive for the coroutine engines)
BULK_N = 100_000

#: shard-scaling series (the sharded bulk executor measured on bulk
#: Procedure Partition): sweep points, shard counts, and the self-speedup
#: gate.  ``shards=0`` in a recorded point means the unsharded bulk
#: engine on the same workload.
SHARD_NS: tuple[int, ...] = (100_000, 1_000_000)
SHARD_COUNTS: tuple[int, ...] = (1, 2, 4)
#: the n = 10^7 cell: only reachable through the int32/chunked CSR layout
SHARD_LARGE_N = 10_000_000
#: the gate point: 4-shard self-speedup over 1 shard at n = 10^6 ...
SHARD_GATE_N = 1_000_000
SHARD_GATE_SHARDS = 4
SHARD_SPEEDUP_FLOOR = 2.5
#: ... measured only on machines with enough usable cores; a 1-core
#: runner cannot demonstrate parallel speedup, so the gate skips there
MIN_SHARD_CORES = 4


def usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1

ENGINES: dict[str, type[SyncNetwork]] = {
    "fast": SyncNetwork,
    "reference": ReferenceSyncNetwork,
}

#: every engine :func:`measure_engine` accepts; "bulk" runs the columnar
#: kernel function, not a :class:`SyncNetwork` subclass
ENGINE_NAMES = tuple(ENGINES) + ("bulk",)


def default_path() -> str:
    """``BENCH_kernel.json`` at the repository root (next to ``src/``)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(here, "..", "..", "..", "BENCH_kernel.json")


def broadcast_program(rounds: int = BROADCAST_ROUNDS) -> Callable:
    """The kernel workload program: broadcast every round, then halt."""

    def ping(ctx):
        for _ in range(rounds):
            ctx.broadcast(("p", ctx.round))
            yield
        return None

    return ping


def measure_engine(
    engine: str = "fast",
    ns: Sequence[int] = DEFAULT_NS,
    rounds: int = BROADCAST_ROUNDS,
    repeats: int = 1,
) -> list[dict[str, Any]]:
    """Time one engine over the kernel workload; best-of-``repeats``.

    ``"bulk"`` times :func:`repro.runtime.bulk_broadcast_kernel` -- the
    columnar twin of the broadcast program, bit-identical in its
    accounting -- rather than a network class.
    """
    if engine == "bulk":
        from repro.runtime.bulk import bulk_broadcast_kernel

        def run_once(g):
            return bulk_broadcast_kernel(g, rounds=rounds)

    elif engine in ENGINES:
        cls = ENGINES[engine]
        program = broadcast_program(rounds)

        def run_once(g):
            return cls(g).run(program)

    else:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
        )
    points = []
    for n in ns:
        g = gen.union_of_forests(n, 3, seed=0)
        g.csr_rows()  # build the CSR cache outside the timed region
        best = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            res = run_once(g)
            wall = time.perf_counter() - t0
            if best is None or wall < best[0]:
                best = (wall, res)
        wall, res = best
        steps = res.metrics.round_sum
        msgs = res.metrics.total_messages
        points.append(
            {
                "n": n,
                "rounds": rounds,
                "steps": steps,
                "msgs": msgs,
                "wall_s": round(wall, 4),
                "steps_per_s": round(steps / wall, 1),
                "msgs_per_s": round(msgs / wall, 1),
            }
        )
    return points


def measure_null_sink_overhead(
    n: int = OVERHEAD_N,
    rounds: int = BROADCAST_ROUNDS,
    repeats: int = 9,
    engine: str = "fast",
) -> dict[str, Any]:
    """The instrumentation overhead gate's measurement.

    Times ``engine`` (``"fast"`` or ``"bulk"``) on the kernel workload
    twice per repeat -- uninstrumented, and with an
    :class:`repro.obs.EventBus` whose only sink is a
    :class:`repro.obs.NullSink` attached -- in adjacent pairs
    (alternating which arm goes first), in CPU time
    (``time.process_time``, so scheduler preemption stays out of the
    measurement).  The bulk arm installs the bus as the process default
    (:func:`repro.obs.install`), which is how real callers attach it;
    with no live sink the bulk path pays one ``obs.current()`` lookup
    per run plus the ``finalize`` skip.  Two statistics come back:

    * ``overhead_pct`` -- the *median* of the per-pair ratios: the best
      single estimate, reported for humans.
    * ``overhead_floor_pct`` -- the *minimum* of the per-pair ratios:
      a noise-robust lower bound on the true overhead, and what the
      gate compares against :data:`MAX_NULL_SINK_OVERHEAD_PCT`.  On a
      loaded shared machine, cache pressure from neighbors inflates CPU
      time by up to ~10% in minutes-long windows, so any single pair
      (and hence the median) can read high spuriously; but a *spurious*
      gate failure would need every pair skewed the same way, while a
      *real* regression shows up in every pair and still trips the
      floor.  (Medians and per-arm best-of were tried first and flaked
      at the few-percent level under a churned heap.)

    With no live sink the engine never constructs an event, so the
    expected overhead is a handful of per-round branches -- truly ~0%.
    """
    import repro.obs as obs
    from repro.obs import EventBus, NullSink

    g = gen.union_of_forests(n, 3, seed=0)
    bus = EventBus(NullSink())

    if engine == "bulk":
        from repro.runtime.bulk import bulk_broadcast_kernel

        g.csr(dtype="auto")  # build the CSR cache outside the timed region

        def timed(with_bus: bool) -> float:
            previous = obs.install(bus) if with_bus else None
            t0 = time.process_time()
            try:
                bulk_broadcast_kernel(g, rounds=rounds)
            finally:
                dt = time.process_time() - t0
                if with_bus:
                    obs.install(previous)
            return dt

    elif engine == "fast":
        g.csr_rows()  # build the CSR cache outside the timed region
        program = broadcast_program(rounds)

        def timed(with_bus: bool) -> float:
            t0 = time.process_time()
            if with_bus:
                SyncNetwork(g).run(program, bus=bus)
            else:
                SyncNetwork(g).run(program)
            return time.process_time() - t0

    else:
        raise ValueError(
            f"overhead measurement supports 'fast' and 'bulk', got {engine!r}"
        )

    timed(False)  # one untimed warm-up for allocator/cache state
    ratios = []
    bare_best = instrumented_best = float("inf")
    for i in range(max(1, repeats)):
        # alternate which arm goes first so ordering bias cancels too
        if i % 2:
            instrumented = timed(True)
            bare = timed(False)
        else:
            bare = timed(False)
            instrumented = timed(True)
        ratios.append(instrumented / bare)
        bare_best = min(bare_best, bare)
        instrumented_best = min(instrumented_best, instrumented)
    ratios.sort()
    median_ratio = ratios[len(ratios) // 2]
    return {
        "engine": engine,
        "n": n,
        "rounds": rounds,
        "repeats": repeats,
        "bare_cpu_s": round(bare_best, 4),
        "null_sink_cpu_s": round(instrumented_best, 4),
        "overhead_pct": round((median_ratio - 1.0) * 100.0, 2),
        "overhead_floor_pct": round((ratios[0] - 1.0) * 100.0, 2),
    }


def measure_kernel(
    ns: Sequence[int] = DEFAULT_NS,
    rounds: int = BROADCAST_ROUNDS,
    repeats: int = 1,
    bulk_ns: Sequence[int] | None = None,
) -> dict[str, Any]:
    """Measure all three engines and derive the per-point speedup ratios,
    plus the null-sink instrumentation overhead.

    The bulk engine is swept over ``bulk_ns`` (default: ``ns`` plus the
    :data:`BULK_N` large-n point that only the columnar path can afford);
    ``bulk_speedup`` compares msgs/s on the points shared with the fast
    engine."""
    if bulk_ns is None:
        bulk_ns = tuple(ns) + (BULK_N,)
    result: dict[str, Any] = {
        "workload": f"union_of_forests(n, 3) x {rounds}-round broadcast",
        "engines": {
            name: measure_engine(name, ns=ns, rounds=rounds, repeats=repeats)
            for name in ENGINES
        },
    }
    result["engines"]["bulk"] = measure_engine(
        "bulk", ns=bulk_ns, rounds=rounds, repeats=repeats
    )
    fast = result["engines"]["fast"]
    ref = result["engines"]["reference"]
    result["speedup"] = {
        str(f["n"]): round(f["steps_per_s"] / r["steps_per_s"], 2)
        for f, r in zip(fast, ref)
    }
    bulk_by_n = {p["n"]: p for p in result["engines"]["bulk"]}
    result["bulk_speedup"] = {
        str(f["n"]): round(bulk_by_n[f["n"]]["msgs_per_s"] / f["msgs_per_s"], 2)
        for f in fast
        if f["n"] in bulk_by_n
    }
    result["null_sink_overhead"] = measure_null_sink_overhead(
        rounds=rounds, repeats=max(9, repeats)
    )
    result["bulk_null_sink_overhead"] = measure_null_sink_overhead(
        n=BULK_OVERHEAD_N,
        rounds=rounds,
        repeats=max(9, repeats),
        engine="bulk",
    )
    return result


def _time_shard_partition(
    graph, shards: int, repeats: int = 1, breakdown: bool = False
) -> tuple[float, int, dict[str, float] | None]:
    """Best-of wall time of bulk Procedure Partition on ``graph``;
    ``shards=0`` runs the unsharded bulk engine, otherwise the sharded
    executor with that many workers.

    ``breakdown=True`` on a sharded run additionally attaches a
    :class:`~repro.obs.PhaseProfiler` and returns the best run's
    compute / barrier-wait / allreduce / publish seconds summed over
    shards (the cross-process timing block; see
    :data:`repro.runtime.shard.SHARD_PHASES`).
    """
    from contextlib import ExitStack

    import repro.obs as obs
    from repro.core.partition import run_partition
    from repro.obs import PhaseProfiler
    from repro.runtime import engine_session, shard_session

    best = None
    for _ in range(max(1, repeats)):
        prof = PhaseProfiler() if (breakdown and shards) else None
        t0 = time.perf_counter()
        with ExitStack() as stack:
            stack.enter_context(engine_session("bulk"))
            if shards:
                stack.enter_context(shard_session(shards))
            if prof is not None:
                stack.enter_context(obs.session(profiler=prof))
            res = run_partition(graph, a=3, seed=0)
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, res, prof)
    wall, res, prof = best
    phases: dict[str, float] | None = None
    if prof is not None:
        phases = {p: 0.0 for p in ("compute", "barrier", "allreduce", "publish")}
        for per_shard in prof.shard_seconds.values():
            for phase, secs in per_shard.items():
                phases[phase] = phases.get(phase, 0.0) + secs
        # the parent-side publish cost rides the flat phase store
        phases["publish"] += prof.seconds.get("publish", 0.0)
        phases = {k: round(v, 4) for k, v in phases.items()}
    return wall, int(res.metrics.total_messages), phases


def measure_shard_scaling(
    ns: Sequence[int] = SHARD_NS,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    large_n: int | None = SHARD_LARGE_N,
    repeats: int = 1,
) -> dict[str, Any]:
    """Measure the sharded bulk executor against its own 1-shard run.

    Workload: bulk Procedure Partition (a = 3) over
    ``forest_union_csr(n, 3)`` -- the CSR-native generator that reaches
    n = 10^7 (``union_of_forests`` builds a Python object layer first and
    cannot).  Each sweep point records wall time and msgs/s; ``shards=0``
    is the unsharded bulk engine on the same graph.  ``self_speedup``
    maps n -> shard count -> (1-shard wall / s-shard wall); the recorded
    ``cores`` makes a 1-core measurement honest rather than misleading.

    ``large_n`` adds the n = 10^7 cell, measured unsharded and at the
    gate shard count only (the full matrix there costs minutes per cell).

    Sharded points (``shards > 0``) also record the cross-process phase
    breakdown -- ``compute_s`` / ``barrier_s`` / ``allreduce_s`` /
    ``publish_s`` summed over shards -- so the series answers not just
    "how fast" but "where the time went" (barrier wait vs kernel work is
    exactly the scaling diagnosis ROADMAP item 2 asks for).
    """
    points: list[dict[str, Any]] = []

    def sweep(n: int, counts: Sequence[int]) -> None:
        g = gen.forest_union_csr(n, 3, seed=0)
        g.csr(dtype="auto")  # build the CSR cache outside the timed region
        for s in counts:
            wall, msgs, phases = _time_shard_partition(
                g, s, repeats=repeats, breakdown=True
            )
            point = {
                "n": n,
                "shards": s,
                "msgs": msgs,
                "wall_s": round(wall, 4),
                "msgs_per_s": round(msgs / wall, 1),
            }
            if phases is not None:
                point.update(
                    {f"{phase}_s": secs for phase, secs in phases.items()}
                )
            points.append(point)

    for n in ns:
        sweep(n, (0, *shard_counts))
    if large_n:
        sweep(large_n, (0, SHARD_GATE_SHARDS))

    by_cell = {(p["n"], p["shards"]): p["wall_s"] for p in points}
    self_speedup: dict[str, dict[str, float]] = {}
    for n in ns:
        base = by_cell.get((n, 1))
        if not base:
            continue
        self_speedup[str(n)] = {
            str(s): round(base / by_cell[(n, s)], 2)
            for s in shard_counts
            if s != 1 and by_cell.get((n, s))
        }
    return {
        "workload": "bulk Procedure Partition (a=3) over forest_union_csr(n, 3)",
        "cores": usable_cores(),
        "points": points,
        "self_speedup": self_speedup,
        "gate": {
            "n": SHARD_GATE_N,
            "shards": SHARD_GATE_SHARDS,
            "floor": SHARD_SPEEDUP_FLOOR,
            "min_cores": MIN_SHARD_CORES,
        },
    }


def shard_points(data: dict[str, Any]) -> list[dict[str, Any]]:
    """The recorded shard-scaling sweep points in a baseline dict.

    The sharded sibling of :func:`engine_points`: raises a clear
    ``ValueError`` -- never a bare ``KeyError`` -- when the file predates
    the sharded executor, naming the regeneration command.
    """
    series = data.get("shard_scaling") or {}
    pts = series.get("points")
    if not pts:
        raise ValueError(
            "baseline file has no 'shard_scaling' series (BENCH_kernel.json "
            "predates the sharded executor); re-run "
            "`python -m repro.bench.baseline --write-shards` to add it"
        )
    return pts


def check_shard_scaling(
    baseline: dict[str, Any], quick: bool = False
) -> tuple[list[str], str | None]:
    """The shard-scaling gate: ``(problems, skip_reason)``.

    On a machine with >= :data:`MIN_SHARD_CORES` usable cores, measures
    the current 4-shard self-speedup at the gate point and requires
    >= :data:`SHARD_SPEEDUP_FLOOR`; the recorded file must carry the
    series at all (clear :func:`shard_points` error otherwise).  With
    fewer cores the live measurement is meaningless -- sharding cannot
    beat itself without parallel hardware -- so the gate returns a skip
    reason instead of a spurious failure.  ``quick`` restricts to the
    structural check (series present) regardless of cores.
    """
    problems: list[str] = []
    try:
        shard_points(baseline)
    except ValueError as exc:
        return [str(exc)], None
    if quick:
        return problems, "quick mode: shard series present, live gate not run"
    cores = usable_cores()
    if cores < MIN_SHARD_CORES:
        return problems, (
            f"{cores} usable core(s) < {MIN_SHARD_CORES}: sharding cannot "
            "demonstrate parallel self-speedup on this machine"
        )
    g = gen.forest_union_csr(SHARD_GATE_N, 3, seed=0)
    g.csr(dtype="auto")
    wall1, _, _ = _time_shard_partition(g, 1)
    wall4, _, _ = _time_shard_partition(g, SHARD_GATE_SHARDS)
    speedup = wall1 / wall4
    if speedup < SHARD_SPEEDUP_FLOOR:
        problems.append(
            f"shard scaling: {SHARD_GATE_SHARDS}-shard self-speedup "
            f"x{speedup:.2f} at n={SHARD_GATE_N} is below the "
            f"x{SHARD_SPEEDUP_FLOOR} floor ({cores} cores; "
            f"1-shard {wall1:.2f}s vs {SHARD_GATE_SHARDS}-shard {wall4:.2f}s)"
        )
    return problems, None


def write_baseline(path: str | None = None, **kwargs) -> dict[str, Any]:
    """Measure and persist the baseline; returns what was written.

    An existing ``shard_scaling`` series in the file is carried over
    (it is refreshed separately via :func:`write_shard_scaling` --
    the n = 10^7 cell is too expensive to remeasure on every refresh).
    """
    path = path or default_path()
    result = measure_kernel(**kwargs)
    try:
        previous = load_baseline(path)
    except (FileNotFoundError, json.JSONDecodeError):
        previous = {}
    if "shard_scaling" in previous:
        result["shard_scaling"] = previous["shard_scaling"]
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return result


def write_shard_scaling(path: str | None = None, **kwargs) -> dict[str, Any]:
    """Measure the shard-scaling series and merge it into the baseline
    file (which must already exist); returns the series written."""
    path = path or default_path()
    data = load_baseline(path)
    series = measure_shard_scaling(**kwargs)
    data["shard_scaling"] = series
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return series


def load_baseline(path: str | None = None) -> dict[str, Any]:
    with open(path or default_path()) as fh:
        return json.load(fh)


def engine_points(data: dict[str, Any], engine: str) -> list[dict[str, Any]]:
    """The recorded sweep points for ``engine`` in a baseline dict.

    Raises a clear ``ValueError`` -- never a bare ``KeyError`` -- when
    the file predates the engine (e.g. a ``BENCH_kernel.json`` written
    before the bulk engine existed), telling the caller how to fix it.
    """
    engines = data.get("engines") or {}
    if engine not in engines:
        recorded = ", ".join(sorted(engines)) or "<none>"
        raise ValueError(
            f"baseline file has no {engine!r} engine entry "
            f"(recorded engines: {recorded}); re-run "
            f"`python -m repro.bench.baseline --write` to refresh it"
        )
    return engines[engine]


def compare_to_baseline(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = MAX_REGRESSION,
) -> list[str]:
    """Regression check; returns human-readable violations (empty = pass).

    Compares the fast/reference speedup ratio per sweep point against the
    recorded one (machine-independent), and additionally requires the fast
    engine to actually be faster than the reference engine.  When the
    current measurement carries bulk numbers, the bulk/fast msgs/s ratio
    is gated the same way (and must clear x1.0 outright), the recorded
    file must have a bulk entry at all (clear error, not a ``KeyError``),
    and the current sweep must include the :data:`BULK_N` cell CI watches.
    """
    problems = []
    recorded = baseline.get("speedup", {})
    for key, cur_ratio in current.get("speedup", {}).items():
        if cur_ratio < 1.0:
            problems.append(
                f"n={key}: fast engine is slower than the reference engine "
                f"(speedup x{cur_ratio:.2f})"
            )
        base_ratio = recorded.get(key)
        if base_ratio is None:
            continue
        floor = base_ratio * (1.0 - max_regression)
        if cur_ratio < floor:
            problems.append(
                f"n={key}: speedup regressed to x{cur_ratio:.2f} "
                f"(recorded x{base_ratio:.2f}, floor x{floor:.2f})"
            )
    cur_bulk = current.get("bulk_speedup")
    if cur_bulk is not None:
        recorded_bulk = baseline.get("bulk_speedup")
        if recorded_bulk is None:
            try:
                engine_points(baseline, "bulk")
            except ValueError as exc:
                problems.append(str(exc))
            recorded_bulk = {}
        for key, cur_ratio in cur_bulk.items():
            if cur_ratio < 1.0:
                problems.append(
                    f"n={key}: bulk engine is slower than the fast engine "
                    f"(msgs/s ratio x{cur_ratio:.2f})"
                )
            base_ratio = recorded_bulk.get(key)
            if base_ratio is None:
                continue
            floor = base_ratio * (1.0 - max_regression)
            if cur_ratio < floor:
                problems.append(
                    f"n={key}: bulk/fast msgs/s ratio regressed to "
                    f"x{cur_ratio:.2f} (recorded x{base_ratio:.2f}, "
                    f"floor x{floor:.2f})"
                )
        cur_bulk_ns = {p["n"] for p in current.get("engines", {}).get("bulk", ())}
        if cur_bulk_ns and BULK_N not in cur_bulk_ns:
            problems.append(
                f"bulk sweep is missing the n={BULK_N} throughput cell "
                f"(measured: {sorted(cur_bulk_ns)})"
            )
    for key, label in (
        ("null_sink_overhead", "fast"),
        ("bulk_null_sink_overhead", "bulk"),
    ):
        overhead = current.get(key)
        if overhead is None:
            continue
        # gate on the noise-robust lower bound, not the median estimate
        floor = overhead.get("overhead_floor_pct", overhead["overhead_pct"])
        if floor > MAX_NULL_SINK_OVERHEAD_PCT:
            problems.append(
                f"{label}-engine null-sink instrumentation overhead >= "
                f"{floor:.2f}% (median estimate "
                f"{overhead['overhead_pct']:.2f}%) exceeds "
                f"{MAX_NULL_SINK_OVERHEAD_PCT:.0f}% "
                f"(n={overhead['n']}, bare {overhead['bare_cpu_s']}s vs "
                f"instrumented {overhead['null_sink_cpu_s']}s CPU)"
            )
    return problems


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--write", action="store_true", help="refresh the baseline file")
    ap.add_argument(
        "--write-shards",
        action="store_true",
        help="measure the shard-scaling series (bulk partition, sharded "
        f"executor, incl. the n={SHARD_LARGE_N} cell) and merge it into "
        "the baseline file",
    )
    ap.add_argument("--check", action="store_true", help="regression gate vs the file")
    ap.add_argument("--path", default=None, help="baseline JSON path")
    ap.add_argument(
        "--quick",
        action="store_true",
        help=f"small-n smoke sweep {QUICK_NS} (for CI)",
    )
    ap.add_argument(
        "--repeats",
        type=int,
        default=CLI_REPEATS,
        help="best-of repeats per sweep cell (default %(default)s; "
        "single samples are too noisy to gate on at small n)",
    )
    args = ap.parse_args(argv)
    ns = QUICK_NS if args.quick else DEFAULT_NS

    if args.write:
        result = write_baseline(args.path, ns=ns, repeats=args.repeats)
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    if args.write_shards:
        series = write_shard_scaling(args.path, repeats=args.repeats)
        print(json.dumps(series, indent=2, sort_keys=True))
        return 0
    if args.check:
        try:
            baseline = load_baseline(args.path)
        except FileNotFoundError as exc:
            print(f"no baseline at {exc.filename}; run with --write first")
            return 1
        current = measure_kernel(ns=ns, repeats=args.repeats)
        for key, ratio in sorted(current["speedup"].items(), key=lambda kv: int(kv[0])):
            rec = baseline.get("speedup", {}).get(key)
            rec_s = f" (recorded x{rec:.2f})" if rec is not None else ""
            print(f"n={key}: fast/reference speedup x{ratio:.2f}{rec_s}")
        for key, ratio in sorted(
            current["bulk_speedup"].items(), key=lambda kv: int(kv[0])
        ):
            rec = baseline.get("bulk_speedup", {}).get(key)
            rec_s = f" (recorded x{rec:.2f})" if rec is not None else ""
            print(f"n={key}: bulk/fast msgs/s x{ratio:.2f}{rec_s}")
        for point in current["engines"]["bulk"]:
            if point["n"] == BULK_N:
                print(
                    f"n={BULK_N}: bulk {point['msgs_per_s']:,.0f} msgs/s "
                    f"({point['wall_s']}s wall)"
                )
        for key, label in (
            ("null_sink_overhead", "fast"),
            ("bulk_null_sink_overhead", "bulk"),
        ):
            overhead = current.get(key, {})
            if overhead:
                print(
                    f"{label} null-sink overhead: "
                    f"{overhead['overhead_pct']:+.2f}% "
                    f"(floor {overhead['overhead_floor_pct']:+.2f}%) at "
                    f"n={overhead['n']} (gate "
                    f"{MAX_NULL_SINK_OVERHEAD_PCT:.0f}%)"
                )
        problems = compare_to_baseline(current, baseline)
        shard_problems, skip = check_shard_scaling(baseline, quick=args.quick)
        problems += shard_problems
        if skip is not None:
            print(f"shard-scaling gate: skipped ({skip})")
        elif not shard_problems:
            print(
                f"shard-scaling gate: {SHARD_GATE_SHARDS}-shard self-speedup "
                f">= x{SHARD_SPEEDUP_FLOOR} at n={SHARD_GATE_N} OK"
            )
        for p in problems:
            print(f"REGRESSION: {p}")
        print("kernel perf check:", "FAIL" if problems else "OK")
        return 1 if problems else 0
    ap.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Registry-driven paper-table generation.

Table 1 and Table 2 of the paper are *per-algorithm rows*; the registry
(:mod:`repro.zoo.registry`) declares which spec belongs to which row and
what it is compared against, so this module can render the paper-shaped
comparison tables without any hand-maintained row list.  ``repro compare
ALGO`` renders one row; ``repro compare --all`` renders every registered
row of both tables; the row id and theorem reference in each table title
come straight from :class:`~repro.zoo.spec.PaperRow`, making the output
directly citable against PAPER.md.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.bench.runner import Series, sweep
from repro.bench.tables import render_rows
from repro.bench.workloads import Workload, make_workload

#: table number -> section heading for ``paper_tables``
TABLE_TITLES = {
    1: "Table 1 -- vertex coloring: vertex-averaged vs worst-case",
    2: "Table 2 -- MIS, edge-coloring, matching: vertex-averaged vs worst-case",
}


def _colors_of(spec) -> Callable | None:
    """Palette extraction for the kinds that report colors."""
    if spec.problem in ("coloring", "edge-coloring"):
        return lambda r: r.colors_used
    return None


def spec_series(
    spec,
    workload: Workload | str,
    ns: Sequence[int],
    seeds: int = 2,
    baseline: bool = False,
    parallel: bool | None = None,
) -> Series:
    """Sweep one spec's driver (or its baseline) with registry labels."""
    wl = make_workload(workload) if isinstance(workload, str) else workload
    ref = spec.baseline if baseline else spec.driver
    if ref is None:
        raise ValueError(f"spec {spec.name!r} declares no baseline")
    label = "worst-case baseline" if baseline else spec.name
    return sweep(
        label,
        ref.resolve(),
        wl,
        ns,
        seeds=seeds,
        colors_of=_colors_of(spec),
        parallel=parallel,
    )


def render_spec_comparison(
    spec,
    workload: str,
    ns: Sequence[int],
    seeds: int = 2,
    parallel: bool | None = None,
) -> str:
    """One paper-shaped row table for ``spec`` (vs its baseline if any)."""
    ours = spec_series(spec, workload, ns, seeds=seeds, parallel=parallel)
    base = (
        spec_series(
            spec, workload, ns, seeds=seeds, baseline=True, parallel=parallel
        )
        if spec.has_baseline
        else None
    )
    return render_rows(
        f"{spec.name} on {workload}: vertex-averaged vs worst-case",
        ours,
        base,
        row_id=spec.paper_row.cite() if spec.paper_row else None,
    )


def paper_tables(
    ns: Sequence[int],
    seeds: int = 2,
    workload: str = "forest_union_a3",
    tables: Sequence[int] = (1, 2),
    parallel: bool | None = None,
) -> str:
    """Every registered Table 1/2 row, grouped by table, in row order."""
    from repro import zoo

    blocks: list[str] = []
    for table in tables:
        rows = zoo.by_table(table)
        if not rows:
            continue
        blocks.append(TABLE_TITLES.get(table, f"Table {table}"))
        for spec in rows:
            blocks.append(
                render_spec_comparison(
                    spec, workload, ns, seeds=seeds, parallel=parallel
                )
            )
    return "\n\n".join(blocks)

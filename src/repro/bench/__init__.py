"""Benchmark harness: workload builders, sweep runners and paper-table
renderers shared by ``benchmarks/`` and ``examples/``."""

from repro.bench.workloads import WORKLOADS, Workload, make_workload
from repro.bench.runner import (
    Series,
    SweepDegradedWarning,
    SweepPoint,
    SweepTimeout,
    sweep,
    summarize,
)
from repro.bench.tables import render_table, render_rows
from repro.bench.paper import (
    paper_tables,
    render_spec_comparison,
    spec_series,
)

__all__ = [
    "paper_tables",
    "render_spec_comparison",
    "spec_series",
    "WORKLOADS",
    "Workload",
    "make_workload",
    "Series",
    "SweepDegradedWarning",
    "SweepPoint",
    "SweepTimeout",
    "sweep",
    "summarize",
    "render_table",
    "render_rows",
]

"""Benchmark workloads.

Each named workload is a family ``n -> (graph, a)`` drawn from the graph
classes the paper's rows quantify over:

* ``forest_union_a{2,3,5}`` -- bounded-arboricity general graphs (the
  canonical Table 1/2 workload; density close to the prescribed a),
* ``planar_grid`` -- constant-arboricity planar (a = 2),
* ``tri_grid`` -- planar with diagonals (a = 3, Delta <= 6),
* ``caterpillar`` -- trees with Delta >> a (the a-vs-Delta separation),
* ``star_forest`` -- extreme Delta >> a = 1,
* ``gnp_sparse`` -- Erdos-Renyi with constant average degree,
* ``ring`` -- the [12] reference topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isqrt
from typing import Callable

from repro.graphs import generators as gen
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class Workload:
    name: str
    build: Callable[[int, int], tuple[Graph, int]]  # (n, seed) -> (graph, a)

    def __call__(self, n: int, seed: int = 0) -> tuple[Graph, int]:
        return self.build(n, seed)


def _forest_union(a: int):
    def build(n: int, seed: int) -> tuple[Graph, int]:
        return gen.union_of_forests(n, a, seed=seed), a

    return build


def _grid(n: int, seed: int) -> tuple[Graph, int]:
    side = max(2, isqrt(n))
    return gen.grid(side, side), 2


def _tri_grid(n: int, seed: int) -> tuple[Graph, int]:
    side = max(2, isqrt(n))
    return gen.triangular_grid(side, side), 3


def _caterpillar(n: int, seed: int) -> tuple[Graph, int]:
    legs = 15
    spine = max(2, n // (legs + 1))
    return gen.caterpillar(spine, legs), 1


def _star_forest(n: int, seed: int) -> tuple[Graph, int]:
    leaves = 24
    stars = max(1, n // (leaves + 1))
    return gen.star_forest(stars, leaves), 1


def _gnp_sparse(n: int, seed: int) -> tuple[Graph, int]:
    g = gen.gnp(n, min(6.0 / max(n - 1, 1), 1.0), seed=seed)
    from repro.graphs.arboricity import degeneracy

    return g, max(1, degeneracy(g))


def _ring(n: int, seed: int) -> tuple[Graph, int]:
    return gen.ring(max(n, 3)), 2


def _deep_tree(n: int, seed: int) -> tuple[Graph, int]:
    # branching 4 > A = 3 (a = 1, eps = 1): one leaf layer peels per round,
    # so the partition genuinely takes Theta(log n) rounds.
    return gen.kary_tree(n, 4), 1


WORKLOADS: dict[str, Workload] = {
    "forest_union_a2": Workload("forest_union_a2", _forest_union(2)),
    "forest_union_a3": Workload("forest_union_a3", _forest_union(3)),
    "forest_union_a5": Workload("forest_union_a5", _forest_union(5)),
    "planar_grid": Workload("planar_grid", _grid),
    "tri_grid": Workload("tri_grid", _tri_grid),
    "caterpillar": Workload("caterpillar", _caterpillar),
    "star_forest": Workload("star_forest", _star_forest),
    "gnp_sparse": Workload("gnp_sparse", _gnp_sparse),
    "ring": Workload("ring", _ring),
    "deep_tree": Workload("deep_tree", _deep_tree),
}


def make_workload(name: str) -> Workload:
    """Look up a named workload family."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(WORKLOADS)}")

"""ASCII renderers producing paper-table-shaped output."""

from __future__ import annotations

from typing import Sequence

from repro.bench.runner import Series


def render_table(
    title: str, header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render ``rows`` under ``header`` as an ASCII box table."""
    cols = len(header)
    cells = [[str(h) for h in header]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(cols)]
    rendered = [
        " | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells
    ]
    sep = "-" * len(rendered[0])
    out = [title, sep, rendered[0], sep, *rendered[1:], sep]
    return "\n".join(out)


def render_rows(
    title: str,
    ours: Series,
    baseline: Series | None = None,
    row_id: str | None = None,
) -> str:
    """Render a Table 1/2-shaped comparison row: our vertex-averaged series
    against the baseline's (worst-case-schedule) series.

    ``row_id`` (the registry's paper-row citation, e.g. ``"T2.R1
    (Section 8.4)"``) is appended to the title so the output is directly
    citable against PAPER.md.
    """
    if row_id:
        title = f"{title} [{row_id}]"
    header = ["n", f"{ours.label} avg", f"{ours.label} worst"]
    if baseline is not None:
        header += [f"{baseline.label} avg", f"{baseline.label} worst"]
    rows = []
    base_by_n = {p.n: p for p in (baseline.points if baseline else [])}
    for p in ours.points:
        row = [p.n, f"{p.avg_mean:.2f}", f"{p.worst_mean:.1f}"]
        if baseline is not None:
            bp = base_by_n.get(p.n)
            row += (
                [f"{bp.avg_mean:.2f}", f"{bp.worst_mean:.1f}"]
                if bp
                else ["-", "-"]
            )
        rows.append(row)
    footer = [f"fitted shape: ours = {ours.fit_avg().shape}"]
    if baseline is not None:
        footer.append(f"baseline = {baseline.fit_avg().shape}")
        last = ours.points[-1]
        blast = baseline.points[-1]
        footer.append(
            f"win at n={last.n}: x{blast.avg_mean / max(last.avg_mean, 1e-9):.1f}"
        )
    return render_table(title, header, rows) + "\n" + "; ".join(footer)

"""Sweep runner: execute an algorithm over an n-sweep of a workload with
several ID-assignment seeds and collect the paper's quantities.

The vertex-averaged measure maximizes over ID assignments; we approximate
the max by running ``seeds`` random assignments and reporting both the mean
and the max over them.

Sweeps fan the independent ``(n, seed)`` points out across a
``concurrent.futures.ProcessPoolExecutor`` when ``parallel`` is enabled
(the default auto-enables for sweeps with enough points on platforms with
``fork``).  Each point is a pure function of ``(n, seed)`` -- the workload
builder, the ID assignment and the algorithm are all seeded -- so the
parallel path returns results identical to the serial path, in
deterministic order; only the recorded wall-clock differs.  Workers
inherit the (frequently unpicklable: lambdas, closures) ``run`` callable
through fork-time module state rather than pickling, which is why the
pool requires the ``fork`` start method.  ``parallel=False`` is the
explicit escape hatch.

Degradation is never silent: every sweep records how it actually executed
on :attr:`Series.mode` (``"parallel"``, ``"serial"``, or ``"salvaged"``),
and any downgrade from the selected parallel path raises a
:class:`SweepDegradedWarning`.  A worker process dying (OOM kill,
segfault in a native extension) does not lose the sweep: completed cells
are kept and only the lost ``(n, seed)`` cells are re-run serially --
identical values, ``mode == "salvaged"``.  A per-cell ``timeout`` converts
a hung worker into a typed :class:`SweepTimeout` naming the cell.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.fitting import ShapeFit, fit_shape
from repro.bench.workloads import Workload
from repro.graphs import generators as gen


@dataclass
class SweepPoint:
    """Measurements at one n of a sweep (mean/max over ID seeds)."""

    n: int
    avg_mean: float
    avg_max: float
    worst_mean: float
    worst_max: int
    colors: int | None = None
    #: wall-clock seconds spent producing this point (sum over its ID
    #: seeds, including graph construction).  Excluded from equality so
    #: serial and parallel sweeps compare equal; under the parallel
    #: runner the sum over points exceeds the elapsed time -- that gap is
    #: the measured speedup.
    wall: float = field(default=0.0, compare=False)


class SweepDegradedWarning(RuntimeWarning):
    """The sweep could not run (fully) on the selected parallel path.

    Raised as a warning whenever parallelism was selected but the sweep
    executed serially or had to salvage a broken worker pool; the
    resulting values are still correct (both paths are deterministic),
    only the execution strategy changed.  Check :attr:`Series.mode` for
    what actually happened.
    """


class SweepTimeout(TimeoutError):
    """A sweep cell exceeded the per-cell ``timeout``; names the cell."""

    def __init__(self, n: int, seed: int, timeout: float) -> None:
        self.n = n
        self.seed = seed
        self.timeout = timeout
        super().__init__(
            f"sweep cell (n={n}, seed={seed}) exceeded the per-cell "
            f"timeout of {timeout:g}s"
        )


@dataclass
class Series:
    """One algorithm's measured series over an n-sweep."""

    label: str
    points: list[SweepPoint]
    #: how the sweep actually executed: ``"parallel"`` (process pool),
    #: ``"serial"``, or ``"salvaged"`` (pool broke mid-sweep; completed
    #: cells kept, lost cells re-run serially).  Excluded from equality:
    #: all modes produce identical values.
    mode: str = field(default="serial", compare=False)

    @property
    def ns(self) -> list[int]:
        return [p.n for p in self.points]

    @property
    def avgs(self) -> list[float]:
        return [p.avg_mean for p in self.points]

    @property
    def worsts(self) -> list[float]:
        return [p.worst_mean for p in self.points]

    @property
    def total_wall(self) -> float:
        """Total wall-clock across points (CPU-seconds under parallel)."""
        return sum(p.wall for p in self.points)

    def fit_avg(self, tolerance: float = 0.10) -> ShapeFit:
        return fit_shape(self.ns, self.avgs, tolerance=tolerance)

    def fit_worst(self, tolerance: float = 0.10) -> ShapeFit:
        return fit_shape(self.ns, self.worsts, tolerance=tolerance)

    def final_gap(self) -> float:
        """worst / avg at the largest n: the measured benefit of the
        vertex-averaged view of the same execution."""
        last = self.points[-1]
        return last.worst_mean / max(last.avg_mean, 1e-9)


#: minimum number of (n, seed) points before a sweep auto-parallelizes
#: (below this the pool startup outweighs the win)
_AUTO_PARALLEL_MIN_TASKS = 8

#: fork-time state workers read instead of pickling the run callable
_WORKER_STATE: dict = {}


def _fork_available() -> bool:
    if os.environ.get("REPRO_NO_PARALLEL_SWEEP"):
        return False
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def _measure_point(
    run: Callable[[object, int, Sequence[int], int], object],
    workload: Workload,
    colors_of: Callable[[object], int] | None,
    n: int,
    s: int,
) -> tuple[float, int, int | None, float]:
    """One (n, seed) cell: build the instance, run, extract quantities."""
    t0 = time.perf_counter()
    g, a = workload(n, seed=s)
    ids = gen.random_ids(g.n, seed=1000 + s)
    res = run(g, a, ids, s)
    m = res.metrics
    color = colors_of(res) if colors_of is not None else None
    return (m.vertex_averaged, m.worst_case, color, time.perf_counter() - t0)


def _pool_task(args: tuple[int, int]) -> tuple[float, int, int | None, float]:
    n, s = args
    state = _WORKER_STATE
    return _measure_point(
        state["run"], state["workload"], state["colors_of"], n, s
    )


def _run_points_parallel(
    run,
    workload,
    colors_of,
    tasks: list[tuple[int, int]],
    max_workers: int | None,
    timeout: float | None,
) -> tuple[list[tuple[float, int, int | None, float]] | None, str]:
    """Execute the (n, seed) tasks across forked workers.

    Returns ``(results, mode)`` with results in task order; ``(None,
    reason)`` if the pool cannot be set up (caller falls back to the
    serial path).  A broken pool (worker killed mid-sweep) is *salvaged*:
    futures that already completed keep their results and only the lost
    cells are re-run serially in this process, so the sweep still returns
    a complete, deterministic result set (``mode == "salvaged"``).

    ``timeout`` bounds the additional wait for each cell once its
    predecessors (in task order) have been collected; a cell exceeding it
    raises :class:`SweepTimeout` naming the cell.
    """
    import multiprocessing
    from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
    from concurrent.futures import TimeoutError as _FuturesTimeout

    try:
        mp_ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return None, "fork start method unavailable"
    if max_workers is None:
        max_workers = min(len(tasks), os.cpu_count() or 1)
    results: list = [None] * len(tasks)
    lost: list[int] = []
    # Stash the callables *before* the pool forks so workers inherit them;
    # this sidesteps pickling (benchmarks pass lambdas and closures).  The
    # stash lives inside the try so any failure -- including pool setup --
    # still clears it (a leak here would leak the graphs closed over).
    try:
        _WORKER_STATE["run"] = run
        _WORKER_STATE["workload"] = workload
        _WORKER_STATE["colors_of"] = colors_of
        ex = ProcessPoolExecutor(max_workers=max_workers, mp_context=mp_ctx)
        try:
            futures = [ex.submit(_pool_task, t) for t in tasks]
            broken = False
            for i, fut in enumerate(futures):
                if broken:
                    # The pool already died: keep whatever finished
                    # before the breakage, mark the rest as lost.
                    if (
                        fut.done()
                        and not fut.cancelled()
                        and fut.exception() is None
                    ):
                        results[i] = fut.result()
                    else:
                        lost.append(i)
                    continue
                try:
                    results[i] = fut.result(timeout=timeout)
                except _FuturesTimeout:
                    n, s = tasks[i]
                    raise SweepTimeout(n, s, timeout) from None
                except BrokenExecutor:
                    broken = True
                    lost.append(i)
        finally:
            # wait=False: on SweepTimeout the hung worker must not block
            # the shutdown; pending futures are cancelled either way.
            ex.shutdown(wait=False, cancel_futures=True)
    finally:
        _WORKER_STATE.clear()

    if not lost:
        return results, "parallel"
    warnings.warn(
        f"sweep worker pool broke after {len(tasks) - len(lost)} of "
        f"{len(tasks)} cells; re-running the {len(lost)} lost cells "
        "serially",
        SweepDegradedWarning,
        stacklevel=3,
    )
    for i in lost:
        n, s = tasks[i]
        results[i] = _measure_point(run, workload, colors_of, n, s)
    return results, "salvaged"


def sweep(
    label: str,
    run: Callable[[object, int, Sequence[int], int], object],
    workload: Workload,
    ns: Sequence[int],
    seeds: int = 2,
    colors_of: Callable[[object], int] | None = None,
    parallel: bool | None = None,
    max_workers: int | None = None,
    timeout: float | None = None,
) -> Series:
    """Run ``run(graph, a, ids, seed)`` across the sweep.

    ``run`` must return an object with a ``metrics`` attribute
    (:class:`repro.runtime.metrics.RoundMetrics`).

    ``parallel=None`` (default) auto-enables the process pool for sweeps
    with at least ``_AUTO_PARALLEL_MIN_TASKS`` points when ``fork`` is
    available; ``parallel=True`` forces it, ``parallel=False`` is the
    serial escape hatch.  All paths return identical Series values; how
    the sweep actually executed is recorded on :attr:`Series.mode`, and
    any downgrade from a selected parallel path (fork unavailable, pool
    setup failure, worker death mid-sweep) raises a
    :class:`SweepDegradedWarning` rather than passing silently.

    ``timeout`` (parallel path only) bounds the per-cell wait; a cell
    exceeding it raises :class:`SweepTimeout` naming the ``(n, seed)``
    cell instead of hanging the sweep.
    """
    tasks = [(n, s) for n in ns for s in range(seeds)]
    if parallel is None:
        parallel = len(tasks) >= _AUTO_PARALLEL_MIN_TASKS and _fork_available()
    results: list[tuple[float, int, int | None, float]] | None = None
    mode = "serial"
    if parallel and len(tasks) > 1:
        if _fork_available():
            results, mode = _run_points_parallel(
                run, workload, colors_of, tasks, max_workers, timeout
            )
            if results is None:
                warnings.warn(
                    f"parallel sweep unavailable ({mode}); running serially",
                    SweepDegradedWarning,
                    stacklevel=2,
                )
                mode = "serial"
        else:
            reason = (
                "disabled by REPRO_NO_PARALLEL_SWEEP"
                if os.environ.get("REPRO_NO_PARALLEL_SWEEP")
                else "fork start method unavailable"
            )
            warnings.warn(
                f"parallel sweep unavailable ({reason}); running serially",
                SweepDegradedWarning,
                stacklevel=2,
            )
    if results is None:
        results = [
            _measure_point(run, workload, colors_of, n, s) for n, s in tasks
        ]

    points: list[SweepPoint] = []
    for i, n in enumerate(ns):
        cells = results[i * seeds : (i + 1) * seeds]
        avgs = [c[0] for c in cells]
        worsts = [c[1] for c in cells]
        colors: int | None = None
        for c in cells:
            if c[2] is not None:
                colors = c[2] if colors is None else max(colors, c[2])
        points.append(
            SweepPoint(
                n=n,
                avg_mean=sum(avgs) / len(avgs),
                avg_max=max(avgs),
                worst_mean=sum(worsts) / len(worsts),
                worst_max=max(worsts),
                colors=colors,
                wall=sum(c[3] for c in cells),
            )
        )
    return Series(label=label, points=points, mode=mode)


def summarize(series: Series) -> str:
    """One-line summary: fitted shape + endpoint values."""
    fit = series.fit_avg()
    first, last = series.points[0], series.points[-1]
    return (
        f"{series.label}: avg {first.avg_mean:.2f}@n={first.n} -> "
        f"{last.avg_mean:.2f}@n={last.n} [{fit.shape}], "
        f"worst {last.worst_mean:.1f}, gap x{series.final_gap():.1f}"
    )

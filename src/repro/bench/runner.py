"""Sweep runner: execute an algorithm over an n-sweep of a workload with
several ID-assignment seeds and collect the paper's quantities.

The vertex-averaged measure maximizes over ID assignments; we approximate
the max by running ``seeds`` random assignments and reporting both the mean
and the max over them.

Sweeps fan the independent ``(n, seed)`` points out across a
``concurrent.futures.ProcessPoolExecutor`` when ``parallel`` is enabled
(the default auto-enables for sweeps with enough points on platforms with
``fork``).  Each point is a pure function of ``(n, seed)`` -- the workload
builder, the ID assignment and the algorithm are all seeded -- so the
parallel path returns results identical to the serial path, in
deterministic order; only the recorded wall-clock differs.  Workers
inherit the (frequently unpicklable: lambdas, closures) ``run`` callable
through fork-time module state rather than pickling, which is why the
pool requires the ``fork`` start method; anywhere it is unavailable the
sweep silently degrades to the serial path.  ``parallel=False`` is the
explicit escape hatch.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.fitting import ShapeFit, fit_shape
from repro.bench.workloads import Workload
from repro.graphs import generators as gen


@dataclass
class SweepPoint:
    """Measurements at one n of a sweep (mean/max over ID seeds)."""

    n: int
    avg_mean: float
    avg_max: float
    worst_mean: float
    worst_max: int
    colors: int | None = None
    #: wall-clock seconds spent producing this point (sum over its ID
    #: seeds, including graph construction).  Excluded from equality so
    #: serial and parallel sweeps compare equal; under the parallel
    #: runner the sum over points exceeds the elapsed time -- that gap is
    #: the measured speedup.
    wall: float = field(default=0.0, compare=False)


@dataclass
class Series:
    """One algorithm's measured series over an n-sweep."""

    label: str
    points: list[SweepPoint]

    @property
    def ns(self) -> list[int]:
        return [p.n for p in self.points]

    @property
    def avgs(self) -> list[float]:
        return [p.avg_mean for p in self.points]

    @property
    def worsts(self) -> list[float]:
        return [p.worst_mean for p in self.points]

    @property
    def total_wall(self) -> float:
        """Total wall-clock across points (CPU-seconds under parallel)."""
        return sum(p.wall for p in self.points)

    def fit_avg(self, tolerance: float = 0.10) -> ShapeFit:
        return fit_shape(self.ns, self.avgs, tolerance=tolerance)

    def fit_worst(self, tolerance: float = 0.10) -> ShapeFit:
        return fit_shape(self.ns, self.worsts, tolerance=tolerance)

    def final_gap(self) -> float:
        """worst / avg at the largest n: the measured benefit of the
        vertex-averaged view of the same execution."""
        last = self.points[-1]
        return last.worst_mean / max(last.avg_mean, 1e-9)


#: minimum number of (n, seed) points before a sweep auto-parallelizes
#: (below this the pool startup outweighs the win)
_AUTO_PARALLEL_MIN_TASKS = 8

#: fork-time state workers read instead of pickling the run callable
_WORKER_STATE: dict = {}


def _fork_available() -> bool:
    if os.environ.get("REPRO_NO_PARALLEL_SWEEP"):
        return False
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def _measure_point(
    run: Callable[[object, int, Sequence[int], int], object],
    workload: Workload,
    colors_of: Callable[[object], int] | None,
    n: int,
    s: int,
) -> tuple[float, int, int | None, float]:
    """One (n, seed) cell: build the instance, run, extract quantities."""
    t0 = time.perf_counter()
    g, a = workload(n, seed=s)
    ids = gen.random_ids(g.n, seed=1000 + s)
    res = run(g, a, ids, s)
    m = res.metrics
    color = colors_of(res) if colors_of is not None else None
    return (m.vertex_averaged, m.worst_case, color, time.perf_counter() - t0)


def _pool_task(args: tuple[int, int]) -> tuple[float, int, int | None, float]:
    n, s = args
    state = _WORKER_STATE
    return _measure_point(
        state["run"], state["workload"], state["colors_of"], n, s
    )


def _run_points_parallel(
    run, workload, colors_of, tasks: list[tuple[int, int]], max_workers: int | None
) -> list[tuple[float, int, int | None, float]] | None:
    """Execute the (n, seed) tasks across forked workers.

    Returns None if the pool cannot be set up (caller falls back to the
    serial path).  Results come back in task order via ``Executor.map``.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    try:
        mp_ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return None
    if max_workers is None:
        max_workers = min(len(tasks), os.cpu_count() or 1)
    # Stash the callables *before* the pool forks so workers inherit them;
    # this sidesteps pickling (benchmarks pass lambdas and closures).
    _WORKER_STATE["run"] = run
    _WORKER_STATE["workload"] = workload
    _WORKER_STATE["colors_of"] = colors_of
    try:
        with ProcessPoolExecutor(max_workers=max_workers, mp_context=mp_ctx) as ex:
            return list(ex.map(_pool_task, tasks))
    finally:
        _WORKER_STATE.clear()


def sweep(
    label: str,
    run: Callable[[object, int, Sequence[int], int], object],
    workload: Workload,
    ns: Sequence[int],
    seeds: int = 2,
    colors_of: Callable[[object], int] | None = None,
    parallel: bool | None = None,
    max_workers: int | None = None,
) -> Series:
    """Run ``run(graph, a, ids, seed)`` across the sweep.

    ``run`` must return an object with a ``metrics`` attribute
    (:class:`repro.runtime.metrics.RoundMetrics`).

    ``parallel=None`` (default) auto-enables the process pool for sweeps
    with at least ``_AUTO_PARALLEL_MIN_TASKS`` points when ``fork`` is
    available; ``parallel=True`` forces it, ``parallel=False`` is the
    serial escape hatch.  Both paths return identical Series (wall-clock
    fields aside, which are excluded from equality).
    """
    tasks = [(n, s) for n in ns for s in range(seeds)]
    if parallel is None:
        parallel = len(tasks) >= _AUTO_PARALLEL_MIN_TASKS and _fork_available()
    results: list[tuple[float, int, int | None, float]] | None = None
    if parallel and len(tasks) > 1 and _fork_available():
        results = _run_points_parallel(run, workload, colors_of, tasks, max_workers)
    if results is None:
        results = [
            _measure_point(run, workload, colors_of, n, s) for n, s in tasks
        ]

    points: list[SweepPoint] = []
    for i, n in enumerate(ns):
        cells = results[i * seeds : (i + 1) * seeds]
        avgs = [c[0] for c in cells]
        worsts = [c[1] for c in cells]
        colors: int | None = None
        for c in cells:
            if c[2] is not None:
                colors = c[2] if colors is None else max(colors, c[2])
        points.append(
            SweepPoint(
                n=n,
                avg_mean=sum(avgs) / len(avgs),
                avg_max=max(avgs),
                worst_mean=sum(worsts) / len(worsts),
                worst_max=max(worsts),
                colors=colors,
                wall=sum(c[3] for c in cells),
            )
        )
    return Series(label=label, points=points)


def summarize(series: Series) -> str:
    """One-line summary: fitted shape + endpoint values."""
    fit = series.fit_avg()
    first, last = series.points[0], series.points[-1]
    return (
        f"{series.label}: avg {first.avg_mean:.2f}@n={first.n} -> "
        f"{last.avg_mean:.2f}@n={last.n} [{fit.shape}], "
        f"worst {last.worst_mean:.1f}, gap x{series.final_gap():.1f}"
    )

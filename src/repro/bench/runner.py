"""Sweep runner: execute an algorithm over an n-sweep of a workload with
several ID-assignment seeds and collect the paper's quantities.

The vertex-averaged measure maximizes over ID assignments; we approximate
the max by running ``seeds`` random assignments and reporting both the mean
and the max over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.fitting import ShapeFit, fit_shape
from repro.bench.workloads import Workload
from repro.graphs import generators as gen


@dataclass
class SweepPoint:
    """Measurements at one n of a sweep (mean/max over ID seeds)."""

    n: int
    avg_mean: float
    avg_max: float
    worst_mean: float
    worst_max: int
    colors: int | None = None
    extra: dict = field(default_factory=dict)


@dataclass
class Series:
    """One algorithm's measured series over an n-sweep."""

    label: str
    points: list[SweepPoint]

    @property
    def ns(self) -> list[int]:
        return [p.n for p in self.points]

    @property
    def avgs(self) -> list[float]:
        return [p.avg_mean for p in self.points]

    @property
    def worsts(self) -> list[float]:
        return [p.worst_mean for p in self.points]

    def fit_avg(self, tolerance: float = 0.10) -> ShapeFit:
        return fit_shape(self.ns, self.avgs, tolerance=tolerance)

    def fit_worst(self, tolerance: float = 0.10) -> ShapeFit:
        return fit_shape(self.ns, self.worsts, tolerance=tolerance)

    def final_gap(self) -> float:
        """worst / avg at the largest n: the measured benefit of the
        vertex-averaged view of the same execution."""
        last = self.points[-1]
        return last.worst_mean / max(last.avg_mean, 1e-9)


RunFn = Callable[..., object]  # driver(graph, a?, ids=..., seed=...) -> result


def sweep(
    label: str,
    run: Callable[[object, int, Sequence[int], int], object],
    workload: Workload,
    ns: Sequence[int],
    seeds: int = 2,
    colors_of: Callable[[object], int] | None = None,
) -> Series:
    """Run ``run(graph, a, ids, seed)`` across the sweep.

    ``run`` must return an object with a ``metrics`` attribute
    (:class:`repro.runtime.metrics.RoundMetrics`).
    """
    points: list[SweepPoint] = []
    for n in ns:
        avgs, worsts, colors = [], [], None
        for s in range(seeds):
            g, a = workload(n, seed=s)
            ids = gen.random_ids(g.n, seed=1000 + s)
            res = run(g, a, ids, s)
            m = res.metrics
            avgs.append(m.vertex_averaged)
            worsts.append(m.worst_case)
            if colors_of is not None:
                c = colors_of(res)
                colors = c if colors is None else max(colors, c)
        points.append(
            SweepPoint(
                n=n,
                avg_mean=sum(avgs) / len(avgs),
                avg_max=max(avgs),
                worst_mean=sum(worsts) / len(worsts),
                worst_max=max(worsts),
                colors=colors,
            )
        )
    return Series(label=label, points=points)


def summarize(series: Series) -> str:
    """One-line summary: fitted shape + endpoint values."""
    fit = series.fit_avg()
    first, last = series.points[0], series.points[-1]
    return (
        f"{series.label}: avg {first.avg_mean:.2f}@n={first.n} -> "
        f"{last.avg_mean:.2f}@n={last.n} [{fit.shape}], "
        f"worst {last.worst_mean:.1f}, gap x{series.final_gap():.1f}"
    )

"""Analysis utilities: iterated logarithms and complexity-shape fitting."""

from repro.analysis.logstar import ilog, iterated_log, log_star, rho
from repro.analysis.fitting import fit_shape, ShapeFit

__all__ = ["ilog", "iterated_log", "log_star", "rho", "fit_shape", "ShapeFit"]

"""Iterated logarithms: log^(k) n, log* n and the paper's rho(n).

All logarithms are base 2.  The paper's conventions:

* ``log^(k) n`` is the k-times iterated logarithm (log^(0) n = n).
* ``log* n`` is the number of times log must be applied before the value
  drops to at most 1.
* ``rho(n)`` (Section 7.5) is the largest integer such that
  ``log^(rho(n) - 1) n >= log* n``; it caps the segment count k of the
  segmentation scheme and satisfies rho(n) = O(log* n).
"""

from __future__ import annotations

from math import log2


def ilog(n: float, k: int) -> float:
    """log^(k) n, the k-times iterated base-2 logarithm.

    Once the value drops to <= 0 it is clamped at 0 (further logs are
    undefined; the paper only uses ilog in regimes where it stays >= 1,
    and clamping keeps schedule formulas total).
    """
    x = float(n)
    for _ in range(k):
        if x <= 1.0:
            return 0.0
        x = log2(x)
    return max(x, 0.0)


def iterated_log(n: float, k: int) -> float:
    """Alias of :func:`ilog` matching the paper's log^(k) notation."""
    return ilog(n, k)


def log_star(n: float) -> int:
    """log* n: iterations of log2 until the value is <= 1."""
    count = 0
    x = float(n)
    while x > 1.0:
        x = log2(x)
        count += 1
    return count


def rho(n: int) -> int:
    """The largest k with log^(k-1) n >= log* n (Section 7.5).

    For k = rho(n) the segmentation scheme yields the O(a^2 log* n)- and
    O(a log* n)-coloring corollaries.  Always >= 1; rho(n) <= log* n.
    """
    ls = log_star(n)
    k = 1
    while ilog(n, k) >= ls:  # tests k+1 feasibility: log^(k) n >= log* n
        k += 1
    return max(1, k)

"""Complexity-shape fitting.

The benchmarks measure series (n, rounds) and must answer the paper-shaped
question "is this O(1) / O(log* n) / O(log log n) / O(log n) / poly(n)?".
We fit y ~ alpha * f(n) + beta for every candidate shape f by least squares
(alpha clamped non-negative) and pick the *simplest* shape whose residual is
within a tolerance of the best, so that e.g. a flat series is reported as
constant rather than as log* n with a microscopic slope.

Caveat inherited from the problem domain: at laptop-feasible n, log* n is
indistinguishable from a constant (it is 4 or 5 for every n between 2^16 and
2^65536); EXPERIMENTS.md reports both labels together where they tie.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2, sqrt
from typing import Callable, Sequence

from repro.analysis.logstar import ilog, log_star

#: candidate shapes, ordered from simplest to fastest-growing
SHAPES: list[tuple[str, Callable[[float], float]]] = [
    ("O(1)", lambda n: 1.0),
    ("O(log* n)", lambda n: float(log_star(n))),
    ("O(log log n)", lambda n: max(ilog(n, 2), 0.0)),
    ("O(log n)", lambda n: max(log2(n), 0.0)),
    ("O(sqrt n)", lambda n: sqrt(n)),
    ("O(n)", lambda n: float(n)),
]

_ORDER = {name: i for i, (name, _) in enumerate(SHAPES)}


@dataclass(frozen=True)
class ShapeFit:
    """The result of fitting a measured series to the shape library."""

    shape: str
    alpha: float
    beta: float
    residual: float
    residuals: dict[str, float]

    def at_most(self, shape: str) -> bool:
        """Whether the fitted shape grows no faster than ``shape``."""
        return _ORDER[self.shape] <= _ORDER[shape]

    def grows_at_least(self, shape: str) -> bool:
        """Whether the fitted shape grows at least as fast as ``shape``."""
        return _ORDER[self.shape] >= _ORDER[shape]


def _lstsq(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float, float]:
    """One-feature least squares with intercept, slope clamped to >= 0.
    Returns (alpha, beta, rms residual)."""
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    alpha = (sxy / sxx) if sxx > 0 else 0.0
    if alpha < 0:
        alpha = 0.0
    beta = my - alpha * mx
    rss = sum((y - (alpha * x + beta)) ** 2 for x, y in zip(xs, ys))
    return alpha, beta, sqrt(rss / n)


def fit_shape(
    ns: Sequence[float], ys: Sequence[float], tolerance: float = 0.10
) -> ShapeFit:
    """Fit the series (ns, ys) and return the simplest adequate shape.

    ``tolerance``: a simpler shape wins if its residual is within
    ``(1 + tolerance)`` of the overall best residual plus a small absolute
    slack (half a round), which absorbs measurement quantisation.
    """
    if len(ns) != len(ys) or len(ns) < 2:
        raise ValueError("need at least two (n, y) points")
    fits: dict[str, tuple[float, float, float]] = {}
    for name, f in SHAPES:
        xs = [f(float(n)) for n in ns]
        if max(xs) == min(xs):
            # degenerate feature on this range (e.g. log* n constant):
            # equivalent to the constant fit.
            mean = sum(ys) / len(ys)
            rss = sum((y - mean) ** 2 for y in ys)
            fits[name] = (0.0, mean, sqrt(rss / len(ys)))
        else:
            fits[name] = _lstsq(xs, ys)
    best = min(r for (_, _, r) in fits.values())
    budget = best * (1.0 + tolerance) + 0.5
    for name, _ in SHAPES:  # simplest first
        alpha, beta, resid = fits[name]
        if resid <= budget:
            return ShapeFit(
                shape=name,
                alpha=alpha,
                beta=beta,
                residual=resid,
                residuals={k: v[2] for k, v in fits.items()},
            )
    raise AssertionError("unreachable: the best fit is always within budget")


def growth_factor(ns: Sequence[float], ys: Sequence[float]) -> float:
    """y(max n) / y(min n): a crude scale-free growth indicator (1.0 means
    flat).  Guards against zero by flooring measurements at 1."""
    pairs = sorted(zip(ns, ys))
    y0 = max(pairs[0][1], 1.0)
    y1 = max(pairs[-1][1], 1.0)
    return y1 / y0

"""The paper's quantitative promises, as executable predicates.

For every algorithm this module records (a) the a-priori palette bound as a
function of the instance parameters, and (b) the growth shape the
vertex-averaged complexity must fit (in the shape library of
:mod:`repro.analysis.fitting`).  Tests and EXPERIMENTS.md check measured
executions against these records, so the claim table is code, not prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor
from typing import Callable

from repro.analysis.logstar import ilog
from repro.core.common import degree_bound
from repro.core.coverfree import build_family, fixpoint_palette


@dataclass(frozen=True)
class Instance:
    """The parameters a bound may depend on."""

    n: int
    a: int
    delta: int
    eps: float = 1.0
    id_space: int | None = None
    k: int = 2

    @property
    def ids(self) -> int:
        return self.id_space if self.id_space is not None else self.n

    @property
    def A(self) -> int:
        return degree_bound(self.a, self.eps)


@dataclass(frozen=True)
class PaperBound:
    """One row's promise: palette bound + averaged-complexity shape."""

    section: str
    palette: Callable[[Instance], int] | None
    avg_shape: str  # a shape name from repro.analysis.fitting.SHAPES
    worst_shape_baseline: str  # the prior work's (worst-case) shape
    notes: str = ""


def _t_split(inst: Instance) -> int:
    return max(1, floor(2 * ilog(inst.n, 2)))


BOUNDS: dict[str, PaperBound] = {
    "partition": PaperBound(
        section="6.1 / Thm 6.3",
        palette=None,
        avg_shape="O(1)",
        worst_shape_baseline="O(log n)",
    ),
    "forest_decomposition": PaperBound(
        section="7.1 / Thm 7.1",
        palette=lambda i: i.A,  # number of forests
        avg_shape="O(1)",
        worst_shape_baseline="O(log n)",
    ),
    "a2logn": PaperBound(
        section="7.2 / Thm 7.2",
        palette=lambda i: build_family(i.ids, i.A).ground_size,
        avg_shape="O(1)",
        worst_shape_baseline="O(log n)",
        notes="palette O(a^2 log n)",
    ),
    "a2": PaperBound(
        section="7.3 / Thm 7.6",
        palette=lambda i: 2 * fixpoint_palette(i.A),
        avg_shape="O(log log n)",
        worst_shape_baseline="O(log n)",
        notes="palette O(a^2)",
    ),
    "oa": PaperBound(
        section="7.4 / Thm 7.9",
        palette=lambda i: 2 * (i.A + 1),
        avg_shape="O(log log n)",
        worst_shape_baseline="O(log n)",
        notes="palette O(a); avg O(a log log n)",
    ),
    "ka2": PaperBound(
        section="7.6 / Thm 7.13",
        palette=lambda i: i.k * fixpoint_palette(i.A),
        avg_shape="O(log log n)",
        worst_shape_baseline="O(log n)",
        notes="avg O(log^(k) n); k = rho(n) gives O(log* n)",
    ),
    "ka": PaperBound(
        section="7.7 / Thm 7.16",
        palette=lambda i: i.k * (i.A + 1),
        avg_shape="O(log log n)",
        worst_shape_baseline="O(log n)",
        notes="avg O(a log^(k) n)",
    ),
    "one_plus_eta": PaperBound(
        section="7.8 / Thm 7.21",
        palette=None,  # O(a^{1+eta}): checked against a^2 in tests
        avg_shape="O(log log n)",
        worst_shape_baseline="O(log n)",
        notes="avg O(log a log log n)",
    ),
    "delta_plus_one": PaperBound(
        section="8 / Cor 8.3",
        palette=lambda i: i.delta + 1,
        avg_shape="O(log log n)",
        worst_shape_baseline="O(log n)",
        notes="avg depends on a, not Delta (substituted subroutine)",
    ),
    "mis": PaperBound(
        section="8 / Cor 8.4",
        palette=None,
        avg_shape="O(log log n)",
        worst_shape_baseline="O(log n)",
    ),
    "edge_coloring": PaperBound(
        section="8 / Cor 8.6",
        palette=lambda i: max(2 * i.delta - 1, 1),
        avg_shape="O(log log n)",
        worst_shape_baseline="O(log n)",
    ),
    "maximal_matching": PaperBound(
        section="8 / Cor 8.8",
        palette=None,
        avg_shape="O(log log n)",
        worst_shape_baseline="O(log n)",
    ),
    "rand_delta_plus_one": PaperBound(
        section="9.2 / Thm 9.1",
        palette=lambda i: i.delta + 1,
        avg_shape="O(log* n)",  # O(1) w.h.p.; log* indistinguishable at scale
        worst_shape_baseline="O(log n)",
    ),
    "aloglogn": PaperBound(
        section="9.3 / Thm 9.2",
        palette=lambda i: (_t_split(i) + 1) * (i.A + 1),
        avg_shape="O(log* n)",
        worst_shape_baseline="O(log n)",
        notes="palette O(a log log n)",
    ),
}


def palette_bound(key: str, inst: Instance) -> int | None:
    """The a-priori palette bound for algorithm ``key``, or None when the
    paper states no closed-form palette."""
    b = BOUNDS[key]
    return b.palette(inst) if b.palette else None

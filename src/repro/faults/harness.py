"""The self-checking fault harness: run, classify, shrink, replay.

One fuzz *case* is a seed triple -- ``(algorithm, workload, n, seed,
FaultPlan)`` -- everything needed to rebuild the instance, the ID
assignment and the adversary, so a case is a complete, replayable
reproduction.  :func:`run_case` executes the driver under the plan and
classifies the outcome:

``valid``
    The driver completed and the output satisfies the problem's *safety*
    property restricted to the surviving (non-crashed) subgraph.
``violation``
    The safety check failed: the survivors silently mis-coordinated.
``non-termination``
    The :class:`~repro.runtime.network.RoundLimitExceeded` watchdog fired
    -- typically stragglers waiting forever on a crashed neighbor.
``error``
    The driver raised anything else (e.g. a multi-phase composition that
    cannot digest a crashed vertex's missing phase-1 output).

Safety vs. liveness: a crash adversary legitimately destroys
*completeness* (a maximal independent set cannot stay maximal around a
dead vertex), so the harness checks only the safety half on the surviving
subgraph -- proper coloring among survivors, independence, matching
disjointness, the H-partition degree bound.  Survivor-to-survivor
communication is untouched by a crash-only plan, which is why the seed
algorithm zoo is expected to stay violation-free under it (the ``repro
fuzz --smoke`` CI gate); message-level faults *can* break safety, and
finding such cases is the fuzzer's purpose, not a harness bug.

:func:`shrink_case` greedily minimises a failing case (smaller n, fewer
fault components) while the failure reproduces, and
:func:`write_artifact`/:func:`replay_artifact` round-trip the result
through JSON.

The algorithm population and the survivor-restricted safety checks come
from the declarative registry (:mod:`repro.zoo`): a case's ``algorithm``
names an :class:`~repro.zoo.spec.AlgorithmSpec`, the spec's problem kind
selects the check, and :func:`repro.zoo.execute` drives the run.  The
old hand-maintained ``_ZOO`` dict this module carried (which silently
missed ``ka2``, ``one-plus-eta`` and ``aloglogn``) is gone; the fuzz
population can no longer drift from the CLI's.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.faults.plan import CrashSpec, FaultPlan
from repro.verify import VerificationError

#: artifact schema version (bump on incompatible layout changes)
ARTIFACT_SCHEMA = 1

OUTCOME_VALID = "valid"
OUTCOME_VIOLATION = "violation"
OUTCOME_NONTERMINATION = "non-termination"
OUTCOME_ERROR = "error"


@dataclass(frozen=True)
class FuzzCase:
    """One replayable (algorithm x workload x fault plan) seed triple."""

    algorithm: str
    workload: str
    n: int
    seed: int
    plan: FaultPlan = field(default_factory=FaultPlan)

    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "workload": self.workload,
            "n": self.n,
            "seed": self.seed,
            "plan": self.plan.to_dict(),
        }

    @classmethod
    def from_dict(cls, rec: Mapping[str, Any]) -> "FuzzCase":
        return cls(
            algorithm=rec["algorithm"],
            workload=rec["workload"],
            n=int(rec["n"]),
            seed=int(rec["seed"]),
            plan=FaultPlan.from_dict(rec.get("plan", {})),
        )

    def describe(self) -> str:
        return (
            f"{self.algorithm} on {self.workload} n={self.n} "
            f"seed={self.seed} [{self.plan.describe()}]"
        )


@dataclass
class FaultOutcome:
    """What happened when one case ran."""

    case: FuzzCase
    status: str
    detail: str = ""
    crashed: tuple[int, ...] = ()
    worst_rounds: int = 0

    @property
    def failed(self) -> bool:
        """Violations and errors are fuzz failures; valid outputs and
        watchdog-caught non-termination are expected fault responses."""
        return self.status in (OUTCOME_VIOLATION, OUTCOME_ERROR)

    def describe(self) -> str:
        line = f"{self.status:15s} {self.case.describe()}"
        if self.crashed:
            line += f" crashed={list(self.crashed)}"
        if self.detail and self.status != OUTCOME_VALID:
            line += f"\n    {self.detail.splitlines()[0][:200]}"
        return line


# ---------------------------------------------------------------------------
# run + classify
# ---------------------------------------------------------------------------

def run_case(
    case: FuzzCase,
    checks: Mapping[str, Callable] | None = None,
) -> FaultOutcome:
    """Execute one case under its fault plan and classify the outcome.

    The algorithm is resolved through the registry; the survivor-safety
    check comes from the spec's problem kind.  ``checks`` optionally
    overrides the check per algorithm name (the fuzz self-test injects a
    deliberately broken verifier through it).
    """
    from repro import zoo
    from repro.bench.workloads import make_workload
    from repro.graphs import generators as gen

    spec = zoo.get(case.algorithm)  # KeyError lists the known names
    check = zoo.survivor_check(spec.problem)
    if checks is not None and case.algorithm in checks:
        check = checks[case.algorithm]

    workload = make_workload(case.workload)
    g, a = workload(case.n, seed=case.seed)
    ids = gen.random_ids(g.n, seed=1000 + case.seed)

    ex = zoo.execute(
        spec, g, a, ids, case.seed, faults=case.plan, capture_errors=True
    )
    if ex.watchdog is not None:
        return FaultOutcome(
            case, OUTCOME_NONTERMINATION, detail=str(ex.watchdog), crashed=ex.crashed
        )
    if ex.error is not None:
        return FaultOutcome(
            case,
            OUTCOME_ERROR,
            detail=f"{type(ex.error).__name__}: {ex.error}",
            crashed=ex.crashed,
        )

    try:
        check(g, ex.result, ex.alive(g))
    except VerificationError as e:
        return FaultOutcome(
            case, OUTCOME_VIOLATION, detail=str(e), crashed=ex.crashed
        )
    return FaultOutcome(
        case,
        OUTCOME_VALID,
        crashed=ex.crashed,
        worst_rounds=ex.result.metrics.worst_case,
    )


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------

#: n values the shrinker steps down through (stops at the smallest that
#: still reproduces)
_N_LADDER = (8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256)


def _shrink_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Strictly-simpler variants of ``case``, most aggressive first."""
    from dataclasses import replace

    plan = case.plan
    # 1. shrink the instance
    for n in reversed([x for x in _N_LADDER if x < case.n]):
        yield replace(case, n=n)
    # 2. drop whole fault components
    if plan.messages is not None and plan.messages.active:
        yield replace(case, plan=replace(plan, messages=None))
    if plan.crashes is not None and plan.crashes.active:
        yield replace(case, plan=replace(plan, crashes=None))
    # 3. simplify the crash spec
    c = plan.crashes
    if c is not None:
        if c.hazard and c.at:
            yield replace(case, plan=replace(plan, crashes=CrashSpec(at=c.at)))
        if c.hazard:
            yield replace(
                case, plan=replace(plan, crashes=CrashSpec(at=c.at, hazard=c.hazard / 2))
            )
        for v in sorted(c.at):
            rest = {u: r for u, r in c.at.items() if u != v}
            yield replace(
                case,
                plan=replace(plan, crashes=CrashSpec(at=rest, hazard=c.hazard)),
            )
    # 4. simplify the message spec one channel at a time
    m = plan.messages
    if m is not None:
        for name in ("drop", "duplicate", "delay"):
            if getattr(m, name):
                yield replace(
                    case, plan=replace(plan, messages=replace(m, **{name: 0.0}))
                )


def shrink_case(
    case: FuzzCase,
    reproduces: Callable[[FuzzCase], bool],
    budget: int = 60,
) -> tuple[FuzzCase, int]:
    """Greedily minimise ``case`` while ``reproduces`` stays true.

    Returns ``(minimal case, attempts spent)``.  Greedy first-improvement
    descent over :func:`_shrink_candidates`; each accepted candidate
    restarts the scan, so the result is a local minimum under the moves
    (smaller n always tried first).
    """
    spent = 0
    improved = True
    while improved and spent < budget:
        improved = False
        for cand in _shrink_candidates(case):
            spent += 1
            if reproduces(cand):
                case = cand
                improved = True
                break
            if spent >= budget:
                break
    return case, spent


# ---------------------------------------------------------------------------
# artifacts
# ---------------------------------------------------------------------------

def write_artifact(path: str, outcome: FaultOutcome, shrunk_from: FuzzCase | None = None) -> None:
    """Persist a failing case as a replayable JSON artifact."""
    rec: dict[str, Any] = {
        "schema": ARTIFACT_SCHEMA,
        "case": outcome.case.to_dict(),
        "status": outcome.status,
        "detail": outcome.detail,
        "crashed": list(outcome.crashed),
    }
    if shrunk_from is not None:
        rec["shrunk_from"] = shrunk_from.to_dict()
    with open(path, "w") as fh:
        json.dump(rec, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_artifact(path: str) -> tuple[FuzzCase, dict[str, Any]]:
    """Read an artifact back: ``(case, full record)``."""
    with open(path) as fh:
        rec = json.load(fh)
    if rec.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"artifact schema {rec.get('schema')!r} unsupported "
            f"(expected {ARTIFACT_SCHEMA})"
        )
    return FuzzCase.from_dict(rec["case"]), rec


def replay_artifact(
    path: str, checks: Mapping[str, Callable] | None = None
) -> FaultOutcome:
    """Re-run the case stored in an artifact and return the fresh outcome."""
    case, _rec = load_artifact(path)
    return run_case(case, checks=checks)

"""``repro.faults``: seeded fault adversaries and the self-checking harness.

Three layers:

* :mod:`repro.faults.plan` -- the adversary itself: a composable,
  serialisable :class:`FaultPlan` (crash-stop vertices, message
  drop/duplication/delay) compiled into the :class:`FaultInjector` both
  engines drive at their deliver/route boundary, emitting typed
  ``fault_*`` events on the :mod:`repro.obs` bus.
* :mod:`repro.faults.harness` -- run an algorithm driver under a plan and
  *classify* what happened: output valid on the surviving subgraph
  (safety checks via :mod:`repro.verify`), violation detected,
  non-termination caught by the :class:`~repro.runtime.network
  .RoundLimitExceeded` watchdog, or driver error.  Plus a greedy shrinker
  and replayable JSON artifacts.
* :mod:`repro.faults.fuzz` -- the ``repro fuzz`` CLI backend: randomly
  sample (algorithm x workload x fault plan) triples, shrink every
  failure to a minimal seed-triple reproduction, write it as an artifact.

Quick use::

    from repro import faults

    plan = faults.FaultPlan(seed=7, crashes=faults.CrashSpec(hazard=0.01))
    with faults.session(plan):
        res = repro.run_partition(g, a=3)      # both phases see the plan
    res.crashed                                # who the adversary killed

See ``docs/faults.md`` for the fault model and its determinism contract.
"""

from repro.faults.plan import (
    CrashSpec,
    FaultInjector,
    FaultPlan,
    MessageFaults,
    current,
    install,
    session,
)
from repro.faults.harness import (
    OUTCOME_ERROR,
    OUTCOME_NONTERMINATION,
    OUTCOME_VALID,
    OUTCOME_VIOLATION,
    FaultOutcome,
    FuzzCase,
    load_artifact,
    replay_artifact,
    run_case,
    shrink_case,
    write_artifact,
)

__all__ = [
    "CrashSpec",
    "FaultInjector",
    "FaultOutcome",
    "FaultPlan",
    "FuzzCase",
    "MessageFaults",
    "OUTCOME_ERROR",
    "OUTCOME_NONTERMINATION",
    "OUTCOME_VALID",
    "OUTCOME_VIOLATION",
    "current",
    "install",
    "load_artifact",
    "replay_artifact",
    "run_case",
    "session",
    "shrink_case",
    "write_artifact",
]

"""The ``repro fuzz`` backend: sample, run, shrink, persist.

The fuzzer samples :class:`~repro.faults.harness.FuzzCase` triples
(algorithm x workload x fault plan) from a seeded case space, runs each
through :func:`~repro.faults.harness.run_case`, and turns every safety
*violation* into a minimal replayable artifact via
:func:`~repro.faults.harness.shrink_case`.

Outcome taxonomy vs. exit status: crashes legitimately cause
``non-termination`` (stragglers waiting on a dead neighbor -- the
watchdog's job) and ``error`` (a multi-phase driver choking on a crashed
vertex's missing phase output); neither indicates the survivors
mis-coordinated.  Only ``violation`` -- a safety property broken on the
surviving subgraph -- fails the fuzz run, because the engines guarantee
that crash-stop faults never corrupt survivor-to-survivor communication.
Errors are still counted, reported, and written as artifacts so they can
be replayed, but they gate nothing.

``--smoke`` is the CI configuration: a small seeded budget over a
crash-only plan space and the full seed algorithm zoo, asserting zero
violations.  Message-level faults (drop/duplicate/delay) are excluded
there by design: the paper's algorithms assume reliable synchronous
links, so a dropped message *can* legally produce an improper coloring --
finding those is the full fuzzer's job, not a CI regression.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.faults.harness import (
    OUTCOME_ERROR,
    OUTCOME_NONTERMINATION,
    OUTCOME_VALID,
    OUTCOME_VIOLATION,
    FaultOutcome,
    FuzzCase,
    run_case,
    shrink_case,
    write_artifact,
)
from repro.faults.plan import CrashSpec, FaultPlan, MessageFaults


def default_population() -> tuple[str, ...]:
    """Every crash-safe registered algorithm, in registry order.

    The fuzz population is *derived* from the registry rather than
    hand-listed, so a newly registered algorithm is fuzzed by default and
    the population cannot silently drift from the CLI's (the old ``_ZOO``
    dict missed ``ka2``, ``one-plus-eta`` and ``aloglogn`` for exactly
    that reason).  Lazy import: the algorithm stack must not load at
    module import time (repro -> runtime -> faults cycle).
    """
    from repro import zoo

    return tuple(s.name for s in zoo.crash_safe())

#: workload families the fuzzer samples from (a representative slice of
#: the bench registry: bounded arboricity, planar, Delta >> a, random)
FUZZ_WORKLOADS: tuple[str, ...] = (
    "forest_union_a2",
    "forest_union_a3",
    "planar_grid",
    "tri_grid",
    "caterpillar",
    "star_forest",
    "gnp_sparse",
    "ring",
    "deep_tree",
)

#: instance sizes for the full fuzzer / the CI smoke run
FUZZ_NS: tuple[int, ...] = (24, 40, 60, 90, 140)
SMOKE_NS: tuple[int, ...] = (16, 24, 40)


def sample_plan(rng: random.Random, crash_only: bool = False) -> FaultPlan:
    """Draw one fault plan from the seeded space.

    Always includes a crash component (the empty plan is not worth a
    fuzz slot); message faults join with probability 1/2 unless
    ``crash_only``.
    """
    plan_seed = rng.randrange(2**31)
    if rng.random() < 0.5:
        crashes = CrashSpec(hazard=rng.choice((0.005, 0.01, 0.02, 0.05)))
    else:
        k = rng.randint(1, 4)
        at = {
            rng.randrange(200): rng.randint(1, 12)
            for _ in range(k)
        }
        crashes = CrashSpec(at=at)
    messages = None
    if not crash_only and rng.random() < 0.5:
        messages = MessageFaults(
            drop=rng.choice((0.0, 0.01, 0.05)),
            duplicate=rng.choice((0.0, 0.01, 0.05)),
            delay=rng.choice((0.0, 0.01, 0.05)),
        )
        if not messages.active:
            messages = None
    return FaultPlan(seed=plan_seed, crashes=crashes, messages=messages)


def _workloads_for(algorithm: str, workloads: Sequence[str]) -> list[str]:
    """The workload pool one algorithm's cases may sample from.

    A spec with a :attr:`~repro.zoo.spec.AlgorithmSpec.workloads`
    restriction (e.g. ring-only leader election) is only ever paired
    with its declared topologies; everything else draws from the shared
    pool.  Unknown names (tests inject fake specs) fall back to the
    shared pool and fail at run time instead.
    """
    from repro import zoo

    try:
        restricted = zoo.get(algorithm).workloads
    except KeyError:
        restricted = ()
    return list(restricted) if restricted else list(workloads)


def sample_cases(
    budget: int,
    seed: int = 0,
    algorithms: Sequence[str] | None = None,
    workloads: Sequence[str] = FUZZ_WORKLOADS,
    ns: Sequence[int] = FUZZ_NS,
    crash_only: bool = False,
) -> Iterable[FuzzCase]:
    """Yield ``budget`` seeded cases (deterministic for a given seed)."""
    rng = random.Random(seed)
    algos = (
        list(algorithms) if algorithms is not None else sorted(default_population())
    )
    for _ in range(budget):
        algorithm = rng.choice(algos)
        yield FuzzCase(
            algorithm=algorithm,
            workload=rng.choice(_workloads_for(algorithm, workloads)),
            n=rng.choice(list(ns)),
            seed=rng.randrange(10_000),
            plan=sample_plan(rng, crash_only=crash_only),
        )


@dataclass
class FuzzReport:
    """Aggregate of one fuzz run."""

    outcomes: list[FaultOutcome] = field(default_factory=list)
    violations: list[tuple[FaultOutcome, FuzzCase, str | None]] = field(
        default_factory=list
    )  # (shrunk outcome, original case, artifact path)
    errors: list[tuple[FaultOutcome, str | None]] = field(default_factory=list)

    def count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        return (
            f"{len(self.outcomes)} cases: "
            f"{self.count(OUTCOME_VALID)} valid, "
            f"{self.count(OUTCOME_NONTERMINATION)} non-terminating, "
            f"{self.count(OUTCOME_ERROR)} errors, "
            f"{self.count(OUTCOME_VIOLATION)} VIOLATIONS"
        )


def _artifact_path(out_dir: str, outcome: FaultOutcome, idx: int) -> str:
    c = outcome.case
    tag = outcome.status.replace("-", "")[:5]
    return os.path.join(
        out_dir, f"{tag}-{idx:03d}-{c.algorithm}-{c.workload}-n{c.n}.json"
    )


def fuzz(
    budget: int = 40,
    seed: int = 0,
    out_dir: str | None = None,
    algorithms: Sequence[str] | None = None,
    workloads: Sequence[str] = FUZZ_WORKLOADS,
    ns: Sequence[int] = FUZZ_NS,
    crash_only: bool = False,
    shrink_budget: int = 40,
    checks=None,
    log=None,
) -> FuzzReport:
    """Run the fuzz loop; returns the full report.

    Every violation is shrunk to a minimal reproduction; violations and
    errors are written as replayable JSON artifacts under ``out_dir``
    (created on first failure; no directory appears on a clean run).
    """
    report = FuzzReport()
    artifact_idx = 0

    def _persist(outcome: FaultOutcome, shrunk_from: FuzzCase | None) -> str | None:
        nonlocal artifact_idx
        if out_dir is None:
            return None
        os.makedirs(out_dir, exist_ok=True)
        path = _artifact_path(out_dir, outcome, artifact_idx)
        artifact_idx += 1
        write_artifact(path, outcome, shrunk_from=shrunk_from)
        return path

    for case in sample_cases(
        budget,
        seed=seed,
        algorithms=algorithms,
        workloads=workloads,
        ns=ns,
        crash_only=crash_only,
    ):
        outcome = run_case(case, checks=checks)
        report.outcomes.append(outcome)
        if log is not None:
            log(outcome.describe())
        if outcome.status == OUTCOME_VIOLATION:
            small, _spent = shrink_case(
                case,
                lambda c: run_case(c, checks=checks).status == OUTCOME_VIOLATION,
                budget=shrink_budget,
            )
            small_outcome = run_case(small, checks=checks)
            path = _persist(small_outcome, shrunk_from=case)
            report.violations.append((small_outcome, case, path))
        elif outcome.status == OUTCOME_ERROR:
            path = _persist(outcome, shrunk_from=None)
            report.errors.append((outcome, path))
    return report


def smoke(
    budget: int = 30,
    seed: int = 0,
    out_dir: str | None = None,
    algorithms: Sequence[str] | None = None,
    log=None,
) -> FuzzReport:
    """The CI gate: crash-only plans over the whole zoo (or the
    ``algorithms`` subset), zero violations."""
    return fuzz(
        budget=budget,
        seed=seed,
        out_dir=out_dir,
        algorithms=algorithms,
        ns=SMOKE_NS,
        crash_only=True,
        log=log,
    )

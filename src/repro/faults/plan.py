"""Seeded, deterministic fault adversaries for the round engines.

The paper's vertex-averaged measure is a statement about graceful
degradation -- most vertices finish in O(1) rounds even when a few
stragglers run long -- and a fault adversary is the natural way to probe
it: crash-stop a few vertices, or drop/duplicate/delay messages, and ask
how the per-vertex termination behavior (the quantity Feuilloley [12] and
Balliu et al. study per node) responds.

The model
---------
* **Crash-stop** (:class:`CrashSpec`): a crashed vertex performs no
  computation from its crash round onward.  Unlike graceful termination it
  announces *nothing*: neighbors never see it in ``ctx.halted``, keep
  broadcasting to it, and may wait on it forever (which the engines'
  watchdog converts into a typed
  :class:`~repro.runtime.network.RoundLimitExceeded`).  Crashes are
  scheduled explicitly (``at``: vertex -> round) or drawn per active
  vertex per round with probability ``hazard``.
* **Message faults** (:class:`MessageFaults`): each routed copy is
  independently dropped, duplicated (one extra copy, delivered normally),
  or delayed by 1..``max_delay`` extra rounds.  Message faults apply to
  explicit ``ctx.send``/``broadcast`` traffic only; halt notices are part
  of the termination semantics and are never perturbed.

Determinism
-----------
Every fault decision is a pure function of ``(plan.seed, round, vertex)``
or ``(plan.seed, round, src, dst, k)`` -- counter-based draws via
dedicated ``random.Random`` instances, never shared-stream state -- so the
same plan produces bit-identical injections regardless of the order in
which the engine evaluates them.  That is what lets the fast and the
reference engine replay the *same* faulted execution (enforced by
``tests/runtime/test_fault_equivalence.py``).

The injector boundary
---------------------
A :class:`FaultPlan` compiles into a :class:`FaultInjector`, the single
hook both engines drive at the deliver/route boundary:

* ``begin_run(emit)`` -- a new engine execution starts: in-flight delayed
  messages are discarded, already-crashed vertices (from earlier runs in
  the same session: crash-stop persists across algorithm phases) are
  reported so the engine removes them before round 1;
* ``on_round(rnd, active)`` -- the round begins: returns the vertices to
  crash now and the delayed messages due for delivery this round;
* ``fate(rnd, src, dst)`` -- called per routed copy from
  :meth:`repro.runtime.context.Context.send`/``broadcast`` (shared by
  both engines): returns the extra-delay values of the copies to route.

Each injection emits a typed ``fault_*`` event on the run's
:class:`~repro.obs.events.EventBus`, so traces and ``repro inspect`` show
exactly what was injected.  An injector is stateful (crashed set, delay
buffer): never share one between two engine runs you want to compare --
pass the *plan* and let each run compile its own.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.obs.events import FaultCrash, FaultDelay, FaultDrop, FaultDup


def _msg_key(seed: int, rnd: int, src: int, dst: int, k: int) -> str:
    """The counter-based message-fate stream name (one RNG per copy)."""
    return f"{seed}:msg:{rnd}:{src}:{dst}:{k}"


def message_fates(
    mf: "MessageFaults", seed: int, rnd: int, src: int, dst: int, k: int
) -> tuple[int, ...]:
    """The full counter-based fate draw for one routed copy, as a pure
    function: the extra-delay values of the copies to route.

    ``()`` is a drop, ``(0,)`` normal delivery, ``(d,)`` a delay by ``d``
    extra rounds, ``(0, 0)``/``(d, 0)`` a duplication.  This is the draw
    :meth:`FaultInjector.fate` makes, factored out so executors that
    evaluate fates outside an injector -- the sharded bulk workers and
    the asynchronous event-queue scheduler, where ``rnd`` is the sender's
    *local* round -- replay the identical fault stream.  The draw order
    (drop, then delay, then duplicate, all off one keyed RNG) is part of
    the determinism contract; do not reorder.
    """
    rng = random.Random(_msg_key(seed, rnd, src, dst, k))
    if mf.drop and rng.random() < mf.drop:
        return ()
    fates: tuple[int, ...] = (0,)
    if mf.delay and rng.random() < mf.delay:
        fates = (1 + rng.randrange(mf.max_delay),)
    if mf.duplicate and rng.random() < mf.duplicate:
        fates = fates + (0,)
    return fates


def drop_fate(seed: int, rnd: int, src: int, dst: int, k: int, drop: float) -> bool:
    """The counter-based drop draw: is copy ``k`` of ``src -> dst`` in
    session round ``rnd`` dropped?

    Pure function of its arguments — the same draw
    :meth:`FaultInjector.fate` makes first, factored out so the sharded
    pull-based executor (:mod:`repro.runtime.shard`), which evaluates
    message fates receiver-side and possibly in a different order and
    process, reproduces the identical drop stream under any shard count.
    """
    return random.Random(_msg_key(seed, rnd, src, dst, k)).random() < drop


@dataclass(frozen=True)
class CrashSpec:
    """Crash-stop schedule: explicit per-vertex rounds plus a hazard rate.

    ``at`` maps vertex -> earliest round at which it crashes (it crashes
    in the first round >= that in which it is still active).  ``hazard``
    is an independent per-active-vertex, per-round crash probability.
    """

    at: Mapping[int, int] = field(default_factory=dict)
    hazard: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.hazard <= 1.0:
            raise ValueError(f"hazard must be a probability, got {self.hazard}")
        for v, r in self.at.items():
            if r < 1:
                raise ValueError(f"crash round for vertex {v} must be >= 1, got {r}")

    @property
    def active(self) -> bool:
        return bool(self.at) or self.hazard > 0.0

    def strikes(self, seed: int, rnd: int, v: int) -> bool:
        """Does vertex ``v`` (still active) crash in round ``rnd``?"""
        at = self.at.get(v)
        if at is not None and rnd >= at:
            return True
        if self.hazard:
            return random.Random(f"{seed}:crash:{rnd}:{v}").random() < self.hazard
        return False


@dataclass(frozen=True)
class MessageFaults:
    """Per-copy network misbehavior probabilities.

    ``drop``, ``duplicate`` and ``delay`` are independent probabilities;
    a delayed copy arrives 1..``max_delay`` rounds later than normal, a
    duplicated copy adds one extra normally-delivered copy (even when the
    original was delayed).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    max_delay: int = 3

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {self.max_delay}")

    @property
    def active(self) -> bool:
        return bool(self.drop or self.duplicate or self.delay)


@dataclass(frozen=True)
class FaultPlan:
    """A composable, seeded description of what the adversary does.

    The plan is pure data: it serialises losslessly via
    :meth:`to_dict`/:meth:`from_dict` (the fuzz artifacts), and compiles
    into a fresh stateful :class:`FaultInjector` per run/session via
    :meth:`injector`.
    """

    seed: int = 0
    crashes: CrashSpec | None = None
    messages: MessageFaults | None = None

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing (the null adversary)."""
        return not (
            (self.crashes is not None and self.crashes.active)
            or (self.messages is not None and self.messages.active)
        )

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)

    # -- serialisation (fuzz artifacts) --------------------------------
    def to_dict(self) -> dict[str, Any]:
        rec: dict[str, Any] = {"seed": self.seed}
        if self.crashes is not None:
            rec["crashes"] = {
                "at": {str(v): r for v, r in sorted(self.crashes.at.items())},
                "hazard": self.crashes.hazard,
            }
        if self.messages is not None:
            m = self.messages
            rec["messages"] = {
                "drop": m.drop,
                "duplicate": m.duplicate,
                "delay": m.delay,
                "max_delay": m.max_delay,
            }
        return rec

    @classmethod
    def from_dict(cls, rec: Mapping[str, Any]) -> "FaultPlan":
        crashes = None
        if rec.get("crashes") is not None:
            c = rec["crashes"]
            crashes = CrashSpec(
                at={int(v): int(r) for v, r in c.get("at", {}).items()},
                hazard=float(c.get("hazard", 0.0)),
            )
        messages = None
        if rec.get("messages") is not None:
            m = rec["messages"]
            messages = MessageFaults(
                drop=float(m.get("drop", 0.0)),
                duplicate=float(m.get("duplicate", 0.0)),
                delay=float(m.get("delay", 0.0)),
                max_delay=int(m.get("max_delay", 3)),
            )
        return cls(seed=int(rec.get("seed", 0)), crashes=crashes, messages=messages)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.crashes is not None and self.crashes.active:
            c = self.crashes
            if c.at:
                parts.append(
                    "crash@{" + ", ".join(f"{v}:r{r}" for v, r in sorted(c.at.items())) + "}"
                )
            if c.hazard:
                parts.append(f"hazard={c.hazard:g}")
        if self.messages is not None and self.messages.active:
            m = self.messages
            parts.append(
                f"drop={m.drop:g} dup={m.duplicate:g} "
                f"delay={m.delay:g}(<= {m.max_delay})"
            )
        if len(parts) == 1:
            parts.append("no faults")
        return " ".join(parts)


class FaultInjector:
    """Compiled, stateful adversary: the hook both engines drive.

    State spans a *session*: the round counter and the crashed set persist
    across consecutive engine runs (multi-phase algorithm drivers), so a
    vertex crashed in phase 1 stays crashed in phase 2.  Rounds named in
    the plan refer to this session-wide counter; for a single engine run
    it coincides with the engine's round number.
    """

    __slots__ = (
        "plan",
        "crashed",
        "messages_active",
        "_round",
        "_held",
        "_pair_k",
        "_delayed_sent",
        "_emit",
    )

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: vertices crashed so far in this session (monotone)
        self.crashed: set[int] = set()
        self.messages_active = plan.messages is not None and plan.messages.active
        self._round = 0
        #: session round -> [(src, dst, payload)] delayed copies due then
        self._held: dict[int, list[tuple[int, int, Any]]] = {}
        #: per-round (src, dst) -> next copy index, for counter-based draws
        self._pair_k: dict[tuple[int, int], int] = {}
        #: delayed copies sent (held) this round, for traffic accounting
        self._delayed_sent = 0
        self._emit = None

    # -- engine boundary ------------------------------------------------
    def begin_run(self, emit) -> frozenset[int]:
        """A new engine execution starts.

        In-flight delayed messages die with the previous network; the
        returned set is the vertices already crashed in earlier runs of
        this session, which the engine removes before round 1.
        """
        self._held.clear()
        self._pair_k.clear()
        self._delayed_sent = 0
        self._emit = emit
        return frozenset(self.crashed)

    def on_round(
        self, rnd: int, active: list[int]
    ) -> tuple[list[int], list[tuple[int, int, Any]]]:
        """The deliver boundary of one round.

        Advances the session round counter and returns ``(crashes, due)``:
        the still-active vertices that crash *now* (they perform no
        computation this round) and the delayed ``(src, dst, payload)``
        copies whose delivery round has arrived (already filtered of
        crashed receivers; the engine filters terminated ones).
        """
        self._round += 1
        srnd = self._round
        self._pair_k.clear()
        self._delayed_sent = 0
        crashes: list[int] = []
        spec = self.plan.crashes
        if spec is not None and spec.active:
            seed = self.plan.seed
            emit = self._emit
            for v in active:
                if spec.strikes(seed, srnd, v):
                    crashes.append(v)
                    self.crashed.add(v)
                    if emit is not None:
                        emit(FaultCrash(rnd, v))
        due = self._held.pop(srnd, None)
        if not due:
            return crashes, []
        if self.crashed:
            due = [(s, d, p) for (s, d, p) in due if d not in self.crashed]
        return crashes, due

    def absorb_rounds(self, rounds: int, crashed) -> None:
        """Fold a sharded/bulk execution's outcome into the session state.

        The sharded executor evaluates the adversary's pure draws inside
        its workers instead of driving :meth:`on_round`/:meth:`fate`;
        afterwards the parent advances the session round counter by the
        rounds the run consumed and records who crashed, so a later run
        in the same fault session sees the identical adversary state a
        generator-engine run would have left behind.
        """
        self._round += rounds
        self.crashed.update(crashed)

    def take_delayed_count(self) -> int:
        """Copies held for later delivery this round (they left their
        senders, so they count as this round's traffic)."""
        return self._delayed_sent

    # -- route boundary (driven from Context.send/broadcast) ------------
    def fate(self, rnd: int, src: int, dst: int) -> tuple[int, ...]:
        """Decide what happens to one routed copy.

        Returns the extra-delay values of the copies to route: ``(0,)``
        is normal delivery, ``()`` a drop, ``(d,)`` a delay by ``d``
        extra rounds, ``(0, 0)``/``(d, 0)`` a duplication.  Pure function
        of ``(plan.seed, session round, src, dst, copy index)``.
        """
        mf = self.plan.messages
        key = (src, dst)
        k = self._pair_k.get(key, 0)
        self._pair_k[key] = k + 1
        fates = message_fates(mf, self.plan.seed, self._round, src, dst, k)
        emit = self._emit
        if emit is not None:
            if not fates:
                emit(FaultDrop(rnd, src, dst))
            else:
                if fates[0]:
                    emit(FaultDelay(rnd, src, dst, fates[0]))
                if len(fates) > 1:
                    emit(FaultDup(rnd, src, dst))
        return fates

    def hold(self, extra: int, src: int, dst: int, payload: Any) -> None:
        """Buffer a delayed copy for delivery ``extra`` rounds late."""
        self._held.setdefault(self._round + 1 + extra, []).append(
            (src, dst, payload)
        )
        self._delayed_sent += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector({self.plan.describe()}, round={self._round}, "
            f"crashed={sorted(self.crashed)})"
        )


# ---------------------------------------------------------------------------
# process-wide default injector (mirrors repro.obs.install / session)
# ---------------------------------------------------------------------------

#: the default injector the engines fall back to (usually None).  Needed
#: because algorithm drivers construct their networks internally, exactly
#: like the default EventBus in :mod:`repro.obs`.
_default_injector: FaultInjector | None = None


def install(injector: FaultInjector | None) -> FaultInjector | None:
    """Set the default injector; returns the previous one (for restoring)."""
    global _default_injector
    previous = _default_injector
    _default_injector = injector
    return previous


def current() -> FaultInjector | None:
    """The currently-installed default injector, if any."""
    return _default_injector


@contextmanager
def session(plan_or_injector: FaultPlan | FaultInjector) -> Iterator[FaultInjector]:
    """Install a fault adversary for every engine run in the ``with`` body.

    Accepts a :class:`FaultPlan` (compiled into a fresh injector) or an
    existing :class:`FaultInjector`.  Crash-stop state persists across
    the runs inside one session -- that is the point: multi-phase drivers
    see a consistent adversary.
    """
    injector = (
        plan_or_injector.injector()
        if isinstance(plan_or_injector, FaultPlan)
        else plan_or_injector
    )
    previous = install(injector)
    try:
        yield injector
    finally:
        install(previous)

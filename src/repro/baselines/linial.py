"""Linial's coloring algorithm [19] on the whole graph, and the derived
worst-case (Delta+1)-coloring.

``run_linial_coloring`` iterates the cover-free color reduction against
*all* neighbors: O(Delta^2) colors in O(log* n) rounds, every vertex active
throughout -- vertex-averaged == worst-case, the classic situation the
paper contrasts with.

``run_delta_plus_one_worstcase`` appends the greedy pick-wave in
temp-color order, producing Delta+1 colors.  This is the substituted
stand-in for the worst-case (Delta+1) algorithms ([13], [7]) in the
comparison columns; its average equals its worst case up to the wave
stagger, again the pre-paper situation.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.arb_linial import arb_linial_steps, priority_wave, _step_tag
from repro.core.coloring import ColoringResult
from repro.core.common import LocalView
from repro.core.coverfree import palette_schedule
from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.network import SyncNetwork


def run_linial_coloring(
    graph: Graph,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    degree_bound: int | None = None,
) -> ColoringResult:
    """O(Delta^2)-coloring in O(log* n) rounds (worst case == average)."""
    delta = degree_bound if degree_bound is not None else graph.max_degree()
    delta = max(delta, 1)

    def program(ctx: Context):
        schedule = ctx.config["schedule"]
        view = LocalView()
        c = yield from arb_linial_steps(
            ctx, view, ctx.neighbors, schedule, tag="ln"
        )
        return (1, c)

    net = SyncNetwork(graph, ids=ids, seed=seed)
    schedule = palette_schedule(net.config["id_space"], delta)
    net.config["schedule"] = schedule
    fixpoint = schedule[-1].ground_size if schedule else net.config["id_space"]
    res = net.run(program, max_rounds=4 * len(schedule) + 64)
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=fixpoint,
    )


def run_delta_plus_one_worstcase(
    graph: Graph,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ColoringResult:
    """(Delta+1)-coloring without the H-partition machinery: Linial to the
    O(Delta^2) fixpoint, then a global greedy pick-wave in temp-color
    order.  The whole graph marches together, so the vertex-averaged
    complexity tracks the worst case -- the baseline row for Corollary
    8.3 / Theorem 9.1."""
    delta = max(graph.max_degree(), 1)

    def program(ctx: Context):
        schedule = ctx.config["schedule"]
        view = LocalView()
        tmp = yield from arb_linial_steps(
            ctx, view, ctx.neighbors, schedule, tag="ln"
        )
        last = _step_tag("ln", len(schedule))
        ctx.broadcast((last, tmp))
        missing = [u for u in ctx.neighbors if not view.heard(last, u)]
        while missing:
            yield
            view.absorb(ctx)
            missing = [u for u in missing if not view.heard(last, u)]
        temps = view.get(last)
        smaller = [u for u in ctx.neighbors if temps[u] < tmp]

        def choose(pred: dict[int, int]) -> int:
            used = set(pred.values())
            for col in range(delta + 1):
                if col not in used:
                    return col
            raise AssertionError("Delta+1 palette exhausted")

        color = yield from priority_wave(ctx, view, smaller, "pk", choose)
        return (1, color)

    net = SyncNetwork(graph, ids=ids, seed=seed)
    schedule = palette_schedule(net.config["id_space"], delta)
    net.config["schedule"] = schedule
    fixpoint = schedule[-1].ground_size if schedule else net.config["id_space"]
    res = net.run(program, max_rounds=4 * len(schedule) + 4 * fixpoint + graph.n + 64)
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=delta + 1,
    )

"""Luby's randomized MIS algorithm [22] -- the classic O(log n) w.h.p.
baseline for Table 2.

Per attempt (three rounds): every active vertex draws a random priority
and broadcasts it; a vertex that beats all its active neighbors joins the
MIS, announces, and terminates; vertices hearing an MIS neighbor leave,
announce, and terminate.  A constant fraction of *edges* disappears per
attempt in expectation, giving O(log n) rounds w.h.p. -- for both the
worst case and (up to constants) the average, since the survival
probability decays per attempt, not per vertex neighborhood-size class.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.common import LocalView
from repro.core.extension import MISResult
from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.network import SyncNetwork, current_engine

PRIO = "lp"
STATE = "ls"  # payload: True (joined MIS) / False (left: neighbor joined)


def run_luby_mis(
    graph: Graph,
    ids: Sequence[int] | None = None,
    seed: int = 0,
    max_rounds: int | None = None,
) -> MISResult:
    """Run Luby's randomized MIS; returns the MIS with round accounting
    (worst case O(log n) w.h.p. -- the Table 2 randomized reference)."""
    if current_engine() == "bulk":
        from repro.runtime.shard import current_shards

        if current_shards() is not None:
            from repro.core.shard import sharded_luby_mis

            return sharded_luby_mis(graph, ids=ids, seed=seed, max_rounds=max_rounds)
        from repro.core.bulk import bulk_luby_mis

        return bulk_luby_mis(graph, ids=ids, seed=seed, max_rounds=max_rounds)

    def program(ctx: Context):
        view = LocalView()
        active = set(ctx.neighbors)
        attempt = 0
        while True:
            attempt += 1
            prio = (ctx.rng.random(), ctx.id)
            ctx.broadcast((PRIO, (attempt, prio)))
            yield
            view.absorb(ctx)
            # Process state announcements first (from the previous attempt).
            for u, st in view.get(STATE).items():
                if u in active:
                    active.discard(u)
                    if st is True:
                        ctx.broadcast((STATE, False))
                        return (attempt, False)
            prios = view.get(PRIO)
            wins = all(
                u in prios and prios[u][0] <= attempt and (
                    prios[u][0] < attempt or prios[u][1] < prio
                )
                for u in active
            )
            if wins:
                ctx.broadcast((STATE, True))
                return (attempt, True)
            yield
            view.absorb(ctx)
            for u, st in view.get(STATE).items():
                if u in active:
                    active.discard(u)
                    if st is True:
                        ctx.broadcast((STATE, False))
                        return (attempt, False)

    net = SyncNetwork(graph, ids=ids, seed=seed)
    if max_rounds is None:
        max_rounds = 64 * (graph.n.bit_length() + 4) + 64
    res = net.run(program, max_rounds=max_rounds)
    return MISResult(
        in_mis={v: flag for v, (att, flag) in res.outputs.items()},
        h_index={v: att for v, (att, flag) in res.outputs.items()},
        metrics=res.metrics,
        times=res.times,
    )

"""Worst-case-scheduled arboricity colorings: the [8] comparison rows.

The prior algorithms (Barenboim-Elkin [8]) run Procedure
Forest-Decomposition to completion -- Theta(log n) rounds for *every*
vertex -- before any coloring happens.  These baselines reproduce that
schedule exactly (using the same primitives as the averaged algorithms, so
the comparison isolates the scheduling discipline):

* :func:`run_arb_linial_worstcase` -- forest decomposition, then iterated
  Arb-Linial to the O(a^2) fixpoint: O(a^2) colors in
  Theta(log n + log* n) rounds, average == worst.  (Table 1's
  "O(log n) (Det.) [8]" column for the O(a^2)-flavoured rows.)
* :func:`run_arb_color_worstcase` -- Procedure Arb-Color: forest
  decomposition, then the "wait for your parents" recoloring wave over the
  whole H-partition: O(a) colors in Theta(log n) + wave rounds, matching
  the O(a log n) [8] column of the O(a)-flavoured rows.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.arb_linial import arb_linial_steps, priority_wave
from repro.core.coloring import ColoringResult
from repro.core.common import JOIN, LocalView, degree_bound, partition_length_bound
from repro.core.coverfree import palette_schedule
from repro.core.partition import join_h_set
from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.network import SyncNetwork


def _worstcase_preamble(ctx: Context, view: LocalView, A: int, ell: int):
    """Join an H-set, then idle until the global partition bound has
    elapsed (the [8] schedule: the decomposition is a barrier)."""
    h = yield from join_h_set(ctx, view, A)
    while ctx.round < ell + 1:
        yield
        view.absorb(ctx)
    joined = dict(view.get(JOIN))
    my_id = ctx.id
    parents = [
        u
        for u in ctx.neighbors
        if joined.get(u, ell + 1) > h
        or (joined.get(u) == h and ctx.neighbor_ids[u] > my_id)
    ]
    return h, parents


def run_arb_linial_worstcase(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ColoringResult:
    """O(a^2)-coloring on the worst-case schedule (avg == worst ==
    Theta(log n))."""
    A = degree_bound(a, eps)
    ell = partition_length_bound(graph.n, eps)

    def program(ctx: Context):
        schedule = ctx.config["schedule"]
        view = LocalView()
        h, parents = yield from _worstcase_preamble(ctx, view, A, ell)
        color = yield from arb_linial_steps(ctx, view, parents, schedule, tag="wl")
        return (h, color)

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    schedule = palette_schedule(net.config["id_space"], A)
    net.config["schedule"] = schedule
    fixpoint = schedule[-1].ground_size if schedule else net.config["id_space"]
    res = net.run(program, max_rounds=ell + 4 * len(schedule) + 64)
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=fixpoint,
    )


def run_arb_color_worstcase(
    graph: Graph,
    a: int,
    eps: float = 1.0,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ColoringResult:
    """Procedure Arb-Color's shape ([8] Theorem 5.15): O(a) colors via the
    recoloring wave over the complete H-partition, on the worst-case
    schedule.  The wave runs backward from H_ell, so a vertex's rounds are
    Theta(log n) + its wave depth: the O(a log n) comparison column."""
    A = degree_bound(a, eps)
    ell = partition_length_bound(graph.n, eps)

    def program(ctx: Context):
        view = LocalView()
        h, parents = yield from _worstcase_preamble(ctx, view, A, ell)

        def choose(pred: dict[int, int]) -> int:
            used = set(pred.values())
            for col in range(A + 1):
                if col not in used:
                    return col
            raise AssertionError("palette {0..A} exhausted")

        color = yield from priority_wave(ctx, view, parents, "wc", choose)
        return (h, color)

    net = SyncNetwork(graph, ids=ids, seed=seed, config={"a": a, "eps": eps})
    res = net.run(program, max_rounds=ell * (A + 3) + graph.n + 64)
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=A + 1,
    )

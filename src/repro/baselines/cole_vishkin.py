"""Cole-Vishkin deterministic 3-coloring of oriented rings [10].

This is the algorithm behind the paper's reference point from [12]: on
rings, O(1)-coloring takes Theta(log* n) rounds in the worst case *and* in
the vertex-averaged sense -- no improvement is possible (Feuilloley), in
contrast to the general-graph results of this paper.  We include it both
as that negative-result exhibit and as a classic substrate algorithm.

The ring must come with a sense of direction (each vertex knows its
successor); :func:`run_ring_three_coloring` derives it from the canonical
layout of :func:`repro.graphs.generators.ring`.

Each Cole-Vishkin step: compare your color with your successor's as bit
strings, find the lowest differing bit index i with your bit b, and take
2*i + b as the new color.  The palette drops from B bits to
2 ceil(log2 B) + ... ~ log-fold per step, reaching {0..5} in log* n steps;
three final rounds recolor classes 5, 4, 3 greedily into {0, 1, 2}.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.coloring import ColoringResult
from repro.core.common import LocalView
from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.network import SyncNetwork, current_engine


def _cv_steps(id_space: int) -> int:
    """Number of Cole-Vishkin halving steps until the palette is <= 6."""
    p = max(id_space, 2)
    steps = 0
    while p > 6:
        bits = max((p - 1).bit_length(), 1)
        p = 2 * bits
        steps += 1
        if steps > 64:  # pragma: no cover - defensive
            break
    return steps


def _cv_reduce(c_self: int, c_succ: int) -> int:
    diff = c_self ^ c_succ
    i = (diff & -diff).bit_length() - 1  # lowest differing bit
    b = (c_self >> i) & 1
    return 2 * i + b


def run_ring_three_coloring(
    graph: Graph,
    successor: Sequence[int] | None = None,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> ColoringResult:
    """3-color an oriented ring in Theta(log* n) rounds (avg == worst).

    ``successor[v]`` must be a neighbor of v and the successor map must
    form a single directed cycle; defaults to v -> (v+1) mod n, matching
    :func:`repro.graphs.generators.ring`.
    """
    n = graph.n
    if successor is None:
        successor = [(v + 1) % n for v in range(n)]
    for v in range(n):
        if not graph.has_edge(v, successor[v]):
            raise ValueError(f"successor[{v}] = {successor[v]} is not a neighbor")
    if current_engine() == "bulk":
        from repro.runtime.shard import current_shards

        if current_shards() is not None:
            from repro.core.shard import sharded_ring_three_coloring

            return sharded_ring_three_coloring(graph, successor, ids=ids, seed=seed)
        from repro.core.bulk import bulk_ring_three_coloring

        return bulk_ring_three_coloring(graph, successor, ids=ids, seed=seed)

    def program(ctx: Context):
        succ = ctx.config["successor"][ctx.v]
        steps = ctx.config["cv_steps"]
        view = LocalView()
        c = ctx.id
        for k in range(steps):
            tag = f"cv#{k}"
            ctx.broadcast((tag, c))
            yield
            view.absorb(ctx)
            cm = view.value(tag, succ)
            if cm is not None and cm != c:
                # keep the current color when the successor's step went
                # missing (crashed sender / dropped copy) or collided
                # with ours (possible once a step has been skipped):
                # the step degrades gracefully instead of crashing the
                # program, at the cost of the coloring invariant
                # (detected by the validators as a `violation` outcome).
                c = _cv_reduce(c, cm)
        # Reduce {0..5} -> {0..2}: classes 5, 4, 3 recolor greedily, one
        # class per exchange (a color class is an independent set).
        for cls in (5, 4, 3):
            tag = f"cvr{cls}"
            ctx.broadcast((tag, c))
            yield
            view.absorb(ctx)
            if c == cls:
                used = set(view.get(tag).values())
                c = next(col for col in (0, 1, 2) if col not in used)
        return (1, c)

    net = SyncNetwork(graph, ids=ids, seed=seed)
    net.config["successor"] = list(successor)
    net.config["cv_steps"] = _cv_steps(net.config["id_space"])
    res = net.run(program, max_rounds=net.config["cv_steps"] + 16)
    return ColoringResult(
        colors={v: c for v, (h, c) in res.outputs.items()},
        h_index={v: h for v, (h, c) in res.outputs.items()},
        metrics=res.metrics,
        palette_bound=3,
    )

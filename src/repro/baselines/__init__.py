"""Worst-case baseline algorithms: the "previous running time" column of
Tables 1 and 2.

These reproduce the *shape* of the prior algorithms' executions: the known
deterministic algorithms spend Theta(log n) rounds in forest-decomposition
or network-decomposition phases that every vertex sits through, and
Theta(log* n) in Linial-style color reduction; the classic randomized
algorithms (Luby) run O(log n) rounds until the last vertex finishes.  For
all of them the vertex-averaged and worst-case complexities coincide up to
constants -- which is exactly the gap this paper's algorithms open.
"""

from repro.baselines.linial import (
    run_linial_coloring,
    run_delta_plus_one_worstcase,
)
from repro.baselines.luby import run_luby_mis
from repro.baselines.cole_vishkin import run_ring_three_coloring
from repro.baselines.worstcase import (
    run_arb_linial_worstcase,
    run_arb_color_worstcase,
)

__all__ = [
    "run_linial_coloring",
    "run_delta_plus_one_worstcase",
    "run_luby_mis",
    "run_ring_three_coloring",
    "run_arb_linial_worstcase",
    "run_arb_color_worstcase",
]

"""Leader election on rings with O(log n) vertex-averaged *output* time
(Feuilloley [12]; paper Sections 2-3).

Algorithm: Hirschberg-Sinclair probe doubling on a bidirectional oriented
ring.  In phase i every surviving candidate sends probes 2^i hops in both
directions; a relay forwards a probe only if its origin ID beats the
relay's own, the turnaround vertex echoes it back, and a candidate that
receives both echoes survives into phase i+1.  A probe that travels full
circle identifies the leader, which circulates an "elected" token; every
vertex terminates when the token passes.

The measure-theoretic point (why this lives here): termination takes
Theta(n) rounds for *everyone* (the token must tour the ring), but a vertex
can *commit* its output -- "non-leader" -- the moment it first sees an ID
larger than its own, which for most vertices happens within a couple of
rounds.  A candidate beaten in phase i commits after O(2^i) rounds and at
most ~n/2^i candidates survive i phases, so the committed-output average is
O(log n): the exponential average/worst gap of [12], under Feuilloley's
first definition (choose the output, keep relaying), which
:meth:`repro.runtime.context.Context.commit` implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graphs.graph import Graph
from repro.runtime.context import Context
from repro.runtime.metrics import RoundMetrics, TimeMetrics
from repro.runtime.network import SyncNetwork

PROBE = "probe"      # (origin_id, direction, remaining_hops)
ECHO = "echo"        # (origin_id, direction)
ELECTED = "elected"  # (leader_id, remaining_hops)

CW, CCW = 0, 1  # clockwise probes travel successor-wards


@dataclass(frozen=True)
class LeaderElectionResult:
    """The elected leader plus both round accountings (termination-based
    and commit-based)."""

    leader: int  # vertex index of the leader
    outputs: dict[int, str]
    metrics: RoundMetrics          # termination-based (Theta(n) for all)
    output_metrics: RoundMetrics   # commit-based (O(log n) averaged)
    times: TimeMetrics | None = None  # virtual-time accounting (async runs)


def run_leader_election(
    graph: Graph,
    successor: Sequence[int] | None = None,
    ids: Sequence[int] | None = None,
    seed: int = 0,
) -> LeaderElectionResult:
    """Elect the maximum-ID vertex of an oriented ring."""
    n = graph.n
    if n < 3:
        raise ValueError("leader election needs a ring of >= 3 vertices")
    if successor is None:
        successor = [(v + 1) % n for v in range(n)]
    predecessor = [0] * n
    for v, s in enumerate(successor):
        if not graph.has_edge(v, s):
            raise ValueError(f"successor[{v}] = {s} is not a neighbor")
        predecessor[s] = v

    def program(ctx: Context):
        succ = ctx.config["successor"][ctx.v]
        pred = ctx.config["predecessor"][ctx.v]
        n = ctx.n
        my = ctx.id

        def out_link(direction: int) -> int:
            return succ if direction == CW else pred

        def back_link(direction: int) -> int:
            return pred if direction == CW else succ

        phase = 0
        candidate = True
        echoes = {CW: False, CCW: False}

        def launch(ph: int) -> None:
            hops = min(1 << ph, n)
            ctx.send(succ, (PROBE, (my, CW, hops)))
            ctx.send(pred, (PROBE, (my, CCW, hops)))

        launch(0)
        leader_seen: int | None = None
        while True:
            yield
            for sender, payloads in ctx.inbox.items():
                for tag, payload in payloads:
                    if tag == PROBE:
                        origin, direction, hops = payload
                        if origin == my:
                            # full circle: we are the leader
                            leader_seen = my
                            continue
                        if origin > my:
                            if candidate:
                                candidate = False
                            if not ctx.committed:
                                ctx.commit("non-leader")
                            if hops > 1:
                                ctx.send(out_link(direction), (PROBE, (origin, direction, hops - 1)))
                            else:
                                ctx.send(back_link(direction), (ECHO, (origin, direction)))
                        # origin < my: swallow the probe.
                    elif tag == ECHO:
                        origin, direction = payload
                        if origin == my:
                            echoes[direction] = True
                        else:
                            if origin > my and not ctx.committed:
                                ctx.commit("non-leader")
                            ctx.send(back_link(direction), (ECHO, (origin, direction)))
                    elif tag == ELECTED:
                        leader_id, hops = payload
                        if not ctx.committed:
                            ctx.commit("non-leader")
                        if hops > 1:
                            ctx.send(succ, (ELECTED, (leader_id, hops - 1)))
                        return None  # committed value is the output
            if leader_seen is not None:
                # Leader: announce and terminate.
                ctx.commit("leader")
                ctx.send(succ, (ELECTED, (my, n - 1)))
                return None
            if candidate and echoes[CW] and echoes[CCW]:
                phase += 1
                echoes = {CW: False, CCW: False}
                launch(phase)

    net = SyncNetwork(graph, ids=ids, seed=seed)
    net.config["successor"] = list(successor)
    net.config["predecessor"] = predecessor
    res = net.run(program, max_rounds=8 * n + 64)
    leaders = [v for v, out in res.outputs.items() if out == "leader"]
    if len(leaders) != 1:
        raise AssertionError(f"expected exactly one leader, got {leaders}")
    return LeaderElectionResult(
        leader=leaders[0],
        outputs=dict(res.outputs),
        metrics=res.metrics,
        output_metrics=res.output_metrics,
        times=res.times,
    )

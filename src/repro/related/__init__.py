"""Related-work results the paper builds on.

Feuilloley [12] introduced the vertex-averaged measure and proved two
reference points on rings that frame the paper's question (Sections 2-3):

* leader election admits an *exponential* average/worst-case gap --
  O(log n) averaged output time vs Omega(n) worst case
  (:mod:`repro.related.leader_election`), and
* O(1)-coloring of rings admits *no* gap -- Theta(log* n) both ways
  (:mod:`repro.baselines.cole_vishkin`).

The paper's contribution is showing that for symmetry breaking on
*general* graphs the gap exists after all.
"""

from repro.related.leader_election import run_leader_election

__all__ = ["run_leader_election"]

"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's artifacts (a Table 1/2 row,
Figure 1, or an internal lemma/theorem) as a rendered table, printed and
saved under ``benchmarks/reports/``, asserts the paper's qualitative shape
("who wins, by roughly what factor"), and times one representative run at
the largest n via pytest-benchmark.
"""

from __future__ import annotations

import os

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")

#: default n-sweeps (kept moderate so the whole suite runs in minutes)
SWEEP_FAST = (500, 1000, 2000, 4000, 8000)
SWEEP_MED = (400, 800, 1600, 3200)
SWEEP_SLOW = (250, 500, 1000, 2000)


def emit(name: str, text: str) -> None:
    """Print a rendered artifact and persist it under reports/."""
    os.makedirs(REPORT_DIR, exist_ok=True)
    print("\n" + text)
    with open(os.path.join(REPORT_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def time_once(benchmark, fn) -> None:
    """Wall-clock one representative execution (the rounds-based metrics
    are computed outside the timed region)."""
    benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

"""The [12] reference points the paper frames its question with (Sections
2-3): leader election on rings has an exponential averaged/worst gap;
O(1)-coloring of rings has none.  The paper's contribution -- reproduced by
the other benchmarks -- is that general-graph symmetry breaking behaves
like the former, not the latter."""

import repro
from repro.bench import render_table
from repro.graphs import generators as gen
from repro.related import run_leader_election
from _common import emit, time_once


def test_feuilloley_reference_points(benchmark):
    rows = []
    for n in (64, 256, 1024):
        g = gen.ring(n)
        ids = gen.random_ids(n, seed=n)
        le = run_leader_election(g, ids=ids)
        cv = repro.run_ring_three_coloring(g, ids=ids)
        rows.append(
            [
                n,
                f"{le.output_metrics.vertex_averaged:.2f}",
                f"{le.metrics.vertex_averaged:.1f}",
                f"{cv.metrics.vertex_averaged:.2f}",
                cv.metrics.worst_case,
            ]
        )
    emit(
        "related_feuilloley",
        render_table(
            "[12] reference points on rings",
            [
                "n",
                "leader election: avg output rounds",
                "leader election: avg termination (Theta(n))",
                "3-coloring: avg rounds",
                "3-coloring: worst rounds (== avg)",
            ],
            rows,
        )
        + "\nleader election: exponential averaged/worst gap; "
        "3-coloring: no gap -- the paper's open question was which side "
        "general-graph symmetry breaking falls on.",
    )
    # exponential gap for leader election
    le_out = [float(r[1]) for r in rows]
    le_term = [float(r[2]) for r in rows]
    assert le_term[-1] / le_term[0] > 8
    assert le_out[-1] / le_out[0] < 4
    # no gap for ring coloring
    cv_avg = [float(r[3]) for r in rows]
    cv_worst = [float(r[4]) for r in rows]
    assert all(w - a < 1.0 for a, w in zip(cv_avg, cv_worst))

    g = gen.ring(1024)
    time_once(benchmark, lambda: run_leader_election(g, ids=gen.random_ids(1024, seed=3)))

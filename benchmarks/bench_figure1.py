"""Figure 1 -- an execution of the segmentation scheme for k = rho(n):
segments of ~c log^(i) n H-sets each, populations decaying geometrically,
per-segment palettes (DESIGN.md F1).

Workload: a complete 5-ary tree with eps = 2 (A = 4 < 5), the canonical
slow-peeling family -- Procedure Partition removes exactly one leaf layer
per round, so the H-partition is deep enough to populate every segment.
"""

import repro
from repro.analysis.logstar import ilog, rho
from repro.bench import make_workload, render_table
from repro.core.common import partition_length_bound
from repro.core.segmentation import make_segment_plan, segmentation_trace
from repro.graphs import generators as gen
from _common import emit, time_once

EPS = 2.0
N = 20000


def test_figure1_segmentation_trace(benchmark):
    g = gen.kary_tree(N, 5)
    a = 1
    k = max(rho(g.n), 2)
    res = repro.run_ka2_coloring(g, a=a, k=k, eps=EPS)
    plan = make_segment_plan(g.n, k, EPS)
    ell = partition_length_bound(g.n, EPS)
    rows = segmentation_trace(res, plan, ell)

    header = [
        "segment i",
        "H-sets planned (~c log^(i) n)",
        "H-sets used",
        "vertices",
        "fraction",
        "mean rounds",
        "palette slice",
    ]
    fixpoint = res.palette_bound // k
    table_rows = []
    for r in rows:
        planned = plan.upper_bound(r.segment, ell) - plan.lower_bound(r.segment) + 1
        table_rows.append(
            [
                r.segment,
                planned if r.segment > 1 else f"rest (<= {planned})",
                r.num_h_sets,
                r.vertices,
                f"{r.fraction:.4f}",
                f"{r.mean_rounds:.2f}",
                f"[{(r.segment - 1) * fixpoint}..{r.segment * fixpoint - 1}]",
            ]
        )
    text = render_table(
        f"Figure 1: segmentation execution, 5-ary tree, n={g.n}, a={a}, k=rho(n)={k}",
        header,
        table_rows,
    )
    text += (
        f"\nlog^(i) n for i=1..{k}: "
        + ", ".join(f"{ilog(g.n, i):.2f}" for i in range(1, k + 1))
        + f"; partition bound ell={ell}; colors used={res.colors_used}"
    )
    emit("figure1_segmentation", text)

    # Figure-1 shape assertions: every segment is populated; segment k
    # (formed first) holds the bulk; later segments shrink; early-segment
    # vertices finish sooner on average.
    assert all(r.vertices > 0 for r in rows), rows
    pops = [r.vertices for r in rows]  # ordered k, k-1, ..., 1
    assert pops[0] > 0.5 * g.n
    assert all(pops[i] >= pops[i + 1] for i in range(len(pops) - 1))
    assert rows[0].mean_rounds < rows[-1].mean_rounds

    time_once(benchmark, lambda: repro.run_ka2_coloring(g, a=a, k=k, eps=EPS))

"""Ablations of the design choices DESIGN.md Section 5 calls out:

* immediate (pipelined) vs batch orientation in the forest decomposition
  (the entire content of Section 7.1),
* the eps trade-off in Procedure Partition (degree bound vs decay rate),
* the segment count k in the segmentation scheme (colors vs rounds),
* event-driven vs blocked scheduling in the extension framework.
"""

import repro
from repro.bench import make_workload, render_table
from _common import emit, time_once

WL = make_workload("forest_union_a3")


def test_ablation_pipelined_vs_batch_orientation(benchmark):
    """Section 7.1's point: orienting per H-set immediately gives O(1)
    average; waiting for the full partition gives Theta(log n)."""
    rows = []
    for n in (1000, 4000):
        g, a = WL(n, 0)
        fast = repro.run_parallelized_forest_decomposition(g, a=a)
        slow = repro.run_worstcase_forest_decomposition(g, a=a)
        assert fast.edge_labels() == slow.edge_labels()
        rows.append(
            [
                n,
                f"{fast.metrics.vertex_averaged:.2f}",
                f"{slow.metrics.vertex_averaged:.2f}",
                f"x{slow.metrics.vertex_averaged / fast.metrics.vertex_averaged:.1f}",
            ]
        )
    emit(
        "ablation_pipelining",
        render_table(
            "Ablation: immediate vs batch orientation (same output)",
            ["n", "pipelined avg (7.1)", "batch avg ([8])", "win"],
            rows,
        ),
    )
    g, a = WL(4000, 0)
    time_once(benchmark, lambda: repro.run_parallelized_forest_decomposition(g, a=a))


def test_ablation_epsilon(benchmark):
    """eps trades the H-set degree bound A = (2+eps)a (palette sizes)
    against the per-round decay eps/(2+eps) (rounds)."""
    n = 4000
    rows = []
    for eps in (0.25, 0.5, 1.0, 2.0):
        g, a = WL(n, 0)
        pr = repro.run_partition(g, a=a, eps=eps)
        col = repro.run_oa_coloring(g, a=a, eps=eps)
        rows.append(
            [
                eps,
                pr.A,
                pr.num_sets,
                f"{pr.metrics.vertex_averaged:.2f}",
                col.palette_bound,
                f"{col.metrics.vertex_averaged:.2f}",
            ]
        )
    emit(
        "ablation_epsilon",
        render_table(
            "Ablation: Procedure Partition's eps",
            ["eps", "A=(2+eps)a", "H-sets", "partition avg", "O(a) palette", "coloring avg"],
            rows,
        ),
    )
    g, a = WL(n, 0)
    time_once(benchmark, lambda: repro.run_partition(g, a=a, eps=0.5))


def test_ablation_segment_count(benchmark):
    """k trades the palette O(k a^2) against rounds O(log^(k) n)."""
    n = 4000
    rows = []
    for k in (1, 2, 3):
        g, a = WL(n, 0)
        res = repro.run_ka2_coloring(g, a=a, k=k, eps=0.5)
        rows.append(
            [k, res.palette_bound, res.colors_used, f"{res.metrics.vertex_averaged:.2f}"]
        )
    emit(
        "ablation_segments",
        render_table(
            "Ablation: segmentation k (7.6)",
            ["k", "palette bound", "colors used", "avg rounds"],
            rows,
        ),
    )
    g, a = WL(n, 0)
    time_once(benchmark, lambda: repro.run_ka2_coloring(g, a=a, k=2, eps=0.5))


def test_ablation_event_driven_vs_blocked(benchmark):
    """Event-driven waves finish no later than the paper's blocked
    schedules; the gap is the measured cost of global barriers."""
    n = 3200
    rows = []
    g, a = WL(n, 0)
    for label, kwargs in (("event-driven", {}), ("blocked (worst-case)", {"worstcase_schedule": True})):
        res = repro.run_maximal_matching(g, a=a, **kwargs)
        rows.append([label, f"{res.metrics.vertex_averaged:.2f}", res.metrics.worst_case])
    emit(
        "ablation_scheduling",
        render_table(
            "Ablation: scheduling discipline (maximal matching)",
            ["schedule", "avg rounds", "worst rounds"],
            rows,
        ),
    )
    assert float(rows[0][1]) < float(rows[1][1])
    time_once(benchmark, lambda: repro.run_maximal_matching(g, a=a))


def test_ablation_delta_dependence(benchmark):
    """Table 1 row 7's content: our (Delta+1) extension's rounds track a,
    not Delta -- sweep Delta at fixed n on caterpillars (a = 1)."""
    from repro.graphs import generators as gen

    rows = []
    ours_avgs, base_avgs = [], []
    for legs in (4, 16, 64):
        g = gen.caterpillar(3000 // (legs + 1), legs)
        ours = repro.run_delta_plus_one_coloring(g, a=1)
        base = repro.run_delta_plus_one_worstcase(g)
        ours_avgs.append(ours.metrics.vertex_averaged)
        base_avgs.append(base.metrics.vertex_averaged)
        rows.append(
            [
                g.max_degree(),
                f"{ours.metrics.vertex_averaged:.2f}",
                f"{base.metrics.vertex_averaged:.2f}",
            ]
        )
    emit(
        "ablation_delta_dependence",
        render_table(
            "Ablation: (Delta+1)-coloring rounds vs Delta at a = 1",
            ["Delta", "extension (8.3) avg", "whole-graph baseline avg"],
            rows,
        ),
    )
    # ours stays flat as Delta grows 16-fold
    assert max(ours_avgs) - min(ours_avgs) < 3.0
    g = gen.caterpillar(3000 // 17, 16)
    time_once(benchmark, lambda: repro.run_delta_plus_one_coloring(g, a=1))

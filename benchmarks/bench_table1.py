"""Table 1 -- vertex-coloring algorithms: our vertex-averaged time vs the
previous worst-case time (one bench per row; see DESIGN.md experiment
index T1.R1 - T1.R9)."""

import pytest

import repro
from repro.analysis.logstar import rho
from repro.bench import make_workload, render_rows, summarize, sweep
from _common import SWEEP_FAST, SWEEP_MED, SWEEP_SLOW, emit, time_once

WL = make_workload("forest_union_a3")
WL2 = make_workload("forest_union_a2")
EPS = 0.5


def _series(label, fn, ns, seeds=2, colors=True):
    # fan the (n, seed) points out across worker processes; results are
    # identical to the serial path (see repro.bench.runner)
    return sweep(
        label,
        fn,
        WL,
        ns,
        seeds=seeds,
        colors_of=(lambda r: r.colors_used) if colors else None,
        parallel=True,
    )


def test_row_oka(benchmark):
    """T1.R1: O(ka) colors in O(a log^(k) n) avg vs O(a log n) worst [8]."""
    ours = _series(
        "O(ka)-color (7.7)",
        lambda g, a, ids, s: repro.run_ka_coloring(g, a=a, k=2, eps=EPS, ids=ids),
        SWEEP_MED,
    )
    base = _series(
        "Arb-Color worst-case [8]",
        lambda g, a, ids, s: repro.run_arb_color_worstcase(g, a=a, eps=EPS, ids=ids),
        SWEEP_MED,
    )
    emit("table1_row_oka", render_rows("Table 1 row: O(ka)-coloring", ours, base))
    assert ours.fit_avg().at_most("O(log log n)")
    assert base.fit_avg().grows_at_least("O(log log n)")
    assert base.points[-1].avg_mean > ours.points[-1].avg_mean
    g, a = WL(SWEEP_MED[-1], 0)
    time_once(benchmark, lambda: repro.run_ka_coloring(g, a=a, k=2, eps=EPS))
    benchmark.extra_info["ours_avg_rounds"] = ours.points[-1].avg_mean


def test_row_alogstar(benchmark):
    """T1.R2: O(a log* n) colors in O(a log* n) avg (k = rho(n))."""
    ours = _series(
        "O(a log* n)-color (Cor 7.17)",
        lambda g, a, ids, s: repro.run_ka_coloring(g, a=a, k=None, eps=EPS, ids=ids),
        SWEEP_MED,
    )
    base = _series(
        "Arb-Color worst-case [8]",
        lambda g, a, ids, s: repro.run_arb_color_worstcase(g, a=a, eps=EPS, ids=ids),
        SWEEP_MED,
    )
    emit(
        "table1_row_alogstar",
        render_rows("Table 1 row: O(a log* n)-coloring, k=rho(n)", ours, base),
    )
    assert ours.fit_avg().at_most("O(log log n)")
    assert base.points[-1].avg_mean > ours.points[-1].avg_mean
    g, a = WL(SWEEP_MED[-1], 0)
    time_once(benchmark, lambda: repro.run_ka_coloring(g, a=a, eps=EPS))


def test_row_one_plus_eta(benchmark):
    """T1.R3: O(a^{1+eta}) colors in O(log a log log n) avg vs
    O(log a log n) worst [5] (Legal-Coloring)."""
    wl = make_workload("forest_union_a5")
    ours = sweep(
        "One-Plus-Eta (7.8)",
        lambda g, a, ids, s: repro.run_one_plus_eta_coloring(g, a=a, C=3, ids=ids),
        wl,
        SWEEP_SLOW,
        seeds=2,
        colors_of=lambda r: r.colors_used,
        parallel=True,
    )
    base = sweep(
        "Legal-Coloring worst-case [5]",
        lambda g, a, ids, s: repro.run_legal_coloring(g, a=a, p=4, ids=ids),
        wl,
        SWEEP_SLOW,
        seeds=2,
        colors_of=lambda r: r.colors_used,
        parallel=True,
    )
    emit(
        "table1_row_one_plus_eta",
        render_rows("Table 1 row: O(a^{1+eta})-coloring", ours, base),
    )
    # both use few colors; ours must not be slower-growing than the baseline
    assert ours.points[-1].colors < 5 * 5  # sub-a^2 colors
    g, a = wl(SWEEP_SLOW[-1], 0)
    time_once(benchmark, lambda: repro.run_one_plus_eta_coloring(g, a=a, C=3))


def test_row_a2logn(benchmark):
    """T1.R4: O(a^2 log n) colors in O(1) avg vs Omega(log n /
    (log a + log log n)) worst [8]."""
    ours = _series(
        "O(a^2 log n)-color (7.2)",
        lambda g, a, ids, s: repro.run_a2logn_coloring(g, a=a, eps=EPS, ids=ids),
        SWEEP_FAST,
    )
    base = _series(
        "Forest-Dec + Arb-Linial worst-case [8]",
        lambda g, a, ids, s: repro.run_arb_linial_worstcase(g, a=a, eps=EPS, ids=ids),
        SWEEP_FAST,
    )
    emit("table1_row_a2logn", render_rows("Table 1 row: O(a^2 log n)-coloring", ours, base))
    assert ours.fit_avg().at_most("O(log* n)")  # O(1): flat at feasible n
    assert base.fit_avg().grows_at_least("O(log log n)")
    assert base.points[-1].avg_mean / ours.points[-1].avg_mean > 4
    g, a = WL(SWEEP_FAST[-1], 0)
    time_once(benchmark, lambda: repro.run_a2logn_coloring(g, a=a, eps=EPS))


def test_row_ka2(benchmark):
    """T1.R5: O(k a^2) colors in O(log^(k) n) avg vs O(log n) worst [8]."""
    rows = []
    for k in (2, 3):
        ours = _series(
            f"O(ka^2)-color k={k} (7.6)",
            lambda g, a, ids, s, k=k: repro.run_ka2_coloring(
                g, a=a, k=k, eps=EPS, ids=ids
            ),
            SWEEP_MED,
        )
        rows.append(ours)
        assert ours.fit_avg().at_most("O(log log n)")
    base = _series(
        "Arb-Linial worst-case [8]",
        lambda g, a, ids, s: repro.run_arb_linial_worstcase(g, a=a, eps=EPS, ids=ids),
        SWEEP_MED,
    )
    text = "\n\n".join(
        render_rows(f"Table 1 row: O(ka^2)-coloring ({r.label})", r, base)
        for r in rows
    )
    emit("table1_row_ka2", text)
    assert base.points[-1].avg_mean > rows[0].points[-1].avg_mean
    g, a = WL(SWEEP_MED[-1], 0)
    time_once(benchmark, lambda: repro.run_ka2_coloring(g, a=a, k=2, eps=EPS))


def test_row_a2logstar(benchmark):
    """T1.R6: O(a^2 log* n) colors in O(log* n) avg (k = rho(n)) vs
    O(log n) worst [8]."""
    ours = _series(
        "O(a^2 log* n)-color (Cor 7.14)",
        lambda g, a, ids, s: repro.run_ka2_coloring(g, a=a, k=None, eps=EPS, ids=ids),
        SWEEP_MED,
    )
    base = _series(
        "Arb-Linial worst-case [8]",
        lambda g, a, ids, s: repro.run_arb_linial_worstcase(g, a=a, eps=EPS, ids=ids),
        SWEEP_MED,
    )
    emit(
        "table1_row_a2logstar",
        render_rows("Table 1 row: O(a^2 log* n)-coloring, k=rho(n)", ours, base),
    )
    assert ours.fit_avg().at_most("O(log* n)")
    assert base.fit_avg().grows_at_least("O(log log n)")
    g, a = WL(SWEEP_MED[-1], 0)
    time_once(benchmark, lambda: repro.run_ka2_coloring(g, a=a, eps=EPS))


def test_row_delta_plus_one_det(benchmark):
    """T1.R7: Delta+1 colors, deterministic: avg depends on a, not Delta
    (substituted subroutine, DESIGN.md #1) vs the whole-graph worst-case
    algorithm."""
    wl = make_workload("caterpillar")  # Delta = 17, a = 1
    ours = sweep(
        "Delta+1 via extension (8.3)",
        lambda g, a, ids, s: repro.run_delta_plus_one_coloring(g, a=a, ids=ids),
        wl,
        SWEEP_MED,
        seeds=2,
        colors_of=lambda r: r.colors_used,
        parallel=True,
    )
    base = sweep(
        "Delta+1 whole-graph worst-case",
        lambda g, a, ids, s: repro.run_delta_plus_one_worstcase(g, ids=ids),
        wl,
        SWEEP_MED,
        seeds=2,
        colors_of=lambda r: r.colors_used,
        parallel=True,
    )
    emit(
        "table1_row_delta_plus_one_det",
        render_rows("Table 1 row: (Delta+1)-coloring, Det., Delta >> a", ours, base),
    )
    assert ours.fit_avg().at_most("O(log log n)")
    assert ours.points[-1].avg_mean < 10  # a = 1: constant-ish
    g, a = wl(SWEEP_MED[-1], 0)
    time_once(benchmark, lambda: repro.run_delta_plus_one_coloring(g, a=a))


def test_row_delta_plus_one_rand(benchmark):
    """T1.R8: Delta+1, randomized: O(1) avg w.h.p. while the same
    executions' worst case grows (Theorem 9.1)."""
    ours = sweep(
        "Rand-Delta-Plus1 (9.2)",
        lambda g, a, ids, s: repro.run_rand_delta_plus_one(g, ids=ids, seed=s),
        WL,
        SWEEP_FAST,
        seeds=3,
        colors_of=lambda r: r.colors_used,
        parallel=True,
    )
    emit(
        "table1_row_delta_plus_one_rand",
        render_rows("Table 1 row: (Delta+1)-coloring, Rand.", ours)
        + f"\nworst-case series (same executions): "
        + ", ".join(f"{p.worst_mean:.1f}" for p in ours.points),
    )
    assert ours.fit_avg().at_most("O(log* n)")
    assert ours.final_gap() > 3  # avg << worst on the same runs
    g, a = WL(SWEEP_FAST[-1], 0)
    time_once(benchmark, lambda: repro.run_rand_delta_plus_one(g, seed=0))


def test_row_aloglogn_rand(benchmark):
    """T1.R9: O(a log log n) colors in O(1) avg w.h.p. (Theorem 9.2) vs
    the deterministic O(a log n)-flavoured worst case."""
    ours = _series(
        "O(a loglog n)-color Rand. (9.3)",
        lambda g, a, ids, s: repro.run_aloglogn_coloring(g, a=a, eps=EPS, ids=ids, seed=s),
        SWEEP_FAST,
        seeds=3,
    )
    base = _series(
        "Arb-Color worst-case [8]",
        lambda g, a, ids, s: repro.run_arb_color_worstcase(g, a=a, eps=EPS, ids=ids),
        SWEEP_FAST,
    )
    emit(
        "table1_row_aloglogn_rand",
        render_rows("Table 1 row: O(a log log n)-coloring, Rand.", ours, base),
    )
    assert ours.fit_avg().at_most("O(log* n)")
    assert base.points[-1].avg_mean / ours.points[-1].avg_mean > 2
    g, a = WL(SWEEP_FAST[-1], 0)
    time_once(benchmark, lambda: repro.run_aloglogn_coloring(g, a=a, eps=EPS, seed=0))

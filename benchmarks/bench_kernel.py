"""Simulator throughput: vertex-steps per second of the round engine
itself, so adopters can size their experiments.  (The algorithmic
benchmarks measure rounds; this one measures the machine.)

Also the home of the engine-speedup acceptance gates: the fast engine must
beat the reference (seed) engine by >= 3x on the 10-round broadcast
workload at n = 32000, the columnar bulk engine must beat the fast engine
by >= 10x in msgs/s at the same point, and the measured numbers are
persisted to ``BENCH_kernel.json`` via ``repro.bench.baseline`` so future
PRs have a perf trajectory.
"""

import repro
from repro.bench import baseline, make_workload, render_table
from repro.graphs import generators as gen
from repro.runtime.network import SyncNetwork
from _common import emit, time_once


def test_kernel_throughput(benchmark):
    result = baseline.measure_kernel()
    rows = []
    for point in result["engines"]["fast"]:
        n = point["n"]
        bulk = result["bulk_speedup"].get(str(n))
        rows.append(
            [
                n,
                point["steps"],
                point["msgs"],
                f"{point['steps_per_s']:,.0f}",
                f"{point['msgs_per_s']:,.0f}",
                f"x{result['speedup'][str(n)]:.1f}",
                f"x{bulk:.1f}" if bulk is not None else "-",
            ]
        )
    emit(
        "kernel_throughput",
        render_table(
            "Round-engine throughput (10-round broadcast workload)",
            [
                "n",
                "vertex-steps",
                "messages",
                "steps/s",
                "msgs/s",
                "vs reference",
                "bulk vs fast",
            ],
            rows,
        ),
    )
    # The acceptance gates: fast >= 3x over the seed engine, and the
    # columnar bulk engine >= 10x over fast (msgs/s), both at n=32000.
    assert result["speedup"]["32000"] >= 3.0, result["speedup"]
    assert result["bulk_speedup"]["32000"] >= 10.0, result["bulk_speedup"]

    g = gen.union_of_forests(8000, 3, seed=0)
    ping = baseline.broadcast_program()
    time_once(benchmark, lambda: SyncNetwork(g).run(ping))


def test_null_sink_overhead(benchmark):
    """The instrumentation cost contract: running the kernel workload
    with an ``EventBus(NullSink())`` attached stays within 5% of the
    uninstrumented path, on the fast engine *and* the columnar bulk
    engine (whose ``profiled()`` telemetry seam costs one bus lookup per
    run), so BENCH_kernel numbers hold under observation."""
    rows = []
    for engine in ("fast", "bulk"):
        if engine == "bulk":
            result = baseline.measure_null_sink_overhead(
                n=baseline.BULK_OVERHEAD_N, engine="bulk"
            )
        else:
            result = baseline.measure_null_sink_overhead()
        rows.append(
            [
                engine,
                f"n={result['n']}",
                f"{result['bare_cpu_s']:.4f}s",
                f"{result['null_sink_cpu_s']:.4f}s",
                f"{result['overhead_pct']:+.2f}%",
                f"{result['overhead_floor_pct']:+.2f}%",
            ]
        )
        # gate on the noise-robust lower bound (see
        # measure_null_sink_overhead)
        assert (
            result["overhead_floor_pct"] < baseline.MAX_NULL_SINK_OVERHEAD_PCT
        ), result
    emit(
        "kernel_null_sink_overhead",
        render_table(
            "Null-sink instrumentation overhead (10-round broadcast, "
            f"{result['repeats']} CPU-time pairs per engine)",
            [
                "engine",
                "workload",
                "bare CPU",
                "EventBus(NullSink()) CPU",
                "overhead",
                "floor",
            ],
            rows,
        ),
    )

    g = gen.union_of_forests(8000, 3, seed=0)
    from repro.obs import EventBus, NullSink

    bus = EventBus(NullSink())
    ping = baseline.broadcast_program()
    time_once(benchmark, lambda: SyncNetwork(g).run(ping, bus=bus))


def test_shard_scaling(benchmark):
    """The sharded-executor scaling artifact: wall and msgs/s versus
    shard count at n in {10^5, 10^6, 10^7}, rendered from the recorded
    ``shard_scaling`` series in BENCH_kernel.json (the 10^7 cell is too
    expensive to remeasure per run; ``--write-shards`` refreshes it).

    The >= 2.5x 4-shard self-speedup gate only means anything on real
    parallel hardware, so it is asserted only when the recording machine
    had >= MIN_SHARD_CORES usable cores; otherwise the skip is noted in
    the report instead of failing spuriously."""
    data = baseline.load_baseline()
    series = data["shard_scaling"]
    points = baseline.shard_points(data)
    gate = series["gate"]
    cores = series["cores"]

    rows = []
    wall_by_cell = {(p["n"], p["shards"]) for p in points}
    assert (baseline.SHARD_LARGE_N, gate["shards"]) in wall_by_cell
    for point in points:
        label = "unsharded" if point["shards"] == 0 else str(point["shards"])
        rows.append(
            [
                f"{point['n']:,}",
                label,
                point["msgs"],
                f"{point['wall_s']:.3f}s",
                f"{point['msgs_per_s']:,.0f}",
            ]
        )
    gated = cores >= gate["min_cores"]
    if gated:
        speedup = series["self_speedup"][str(gate["n"])][str(gate["shards"])]
        note = (
            f"gate: {gate['shards']}-shard self-speedup x{speedup:.2f} at "
            f"n={gate['n']:,} (floor x{gate['floor']}, {cores} cores)"
        )
    else:
        note = (
            f"gate: SKIPPED -- recorded on {cores} usable core(s) < "
            f"{gate['min_cores']}; self-speedup is meaningless without "
            "parallel hardware"
        )
    emit(
        "shard_scaling",
        render_table(
            f"Sharded executor scaling ({series['workload']})",
            ["n", "shards", "messages", "wall", "msgs/s"],
            rows,
        )
        + "\n" + note,
    )
    # sharding must be invisible in the message counts at every cell
    by_n = {}
    for p in points:
        by_n.setdefault(p["n"], set()).add(p["msgs"])
    assert all(len(msgs) == 1 for msgs in by_n.values()), by_n
    if gated:
        assert speedup >= gate["floor"], note

    # one representative sharded run, small enough for the bench budget
    g = gen.forest_union_csr(100_000, 3, seed=0)
    g.csr(dtype="auto")
    from repro.runtime import engine_session, shard_session

    def sharded_run():
        with engine_session("bulk"), shard_session(2):
            repro.run_partition(g, a=3)

    time_once(benchmark, sharded_run)


def test_algorithm_wallclock_scaling(benchmark):
    """Wall-clock of the O(1)-averaged coloring is ~linear in n (work is
    proportional to RoundSum = O(n)): the Section 1.2 simulation story."""
    import time

    rows = []
    walls = []
    for n in (4000, 16000):
        g = gen.union_of_forests(n, 3, seed=1)
        t0 = time.perf_counter()
        repro.run_a2logn_coloring(g, a=3)
        wall = time.perf_counter() - t0
        walls.append(wall)
        rows.append([n, f"{wall:.2f}s"])
    emit(
        "kernel_scaling",
        render_table(
            "Wall-clock scaling of the O(1)-averaged coloring",
            ["n", "wall"],
            rows,
        ),
    )
    # 4x the vertices should cost clearly less than 8x the time
    assert walls[1] / walls[0] < 8.0
    g = gen.union_of_forests(8000, 3, seed=1)
    time_once(benchmark, lambda: repro.run_a2logn_coloring(g, a=3))

"""Simulator throughput: vertex-steps per second of the round engine
itself, so adopters can size their experiments.  (The algorithmic
benchmarks measure rounds; this one measures the machine.)"""

import repro
from repro.bench import make_workload, render_table
from repro.graphs import generators as gen
from repro.runtime.network import SyncNetwork
from _common import emit, time_once


def test_kernel_throughput(benchmark):
    rows = []
    for n in (2000, 8000, 32000):
        g = gen.union_of_forests(n, 3, seed=0)

        def ping(ctx):
            for _ in range(10):
                ctx.broadcast(("p", ctx.round))
                yield
            return None

        import time

        t0 = time.perf_counter()
        res = SyncNetwork(g).run(ping)
        wall = time.perf_counter() - t0
        steps = res.metrics.round_sum
        msgs = res.metrics.total_messages
        rows.append(
            [
                n,
                steps,
                msgs,
                f"{steps / wall:,.0f}",
                f"{msgs / wall:,.0f}",
            ]
        )
    emit(
        "kernel_throughput",
        render_table(
            "Round-engine throughput (10-round broadcast workload)",
            ["n", "vertex-steps", "messages", "steps/s", "msgs/s"],
            rows,
        ),
    )
    g = gen.union_of_forests(8000, 3, seed=0)

    def ping(ctx):
        for _ in range(10):
            ctx.broadcast(("p", ctx.round))
            yield
        return None

    time_once(benchmark, lambda: SyncNetwork(g).run(ping))


def test_algorithm_wallclock_scaling(benchmark):
    """Wall-clock of the O(1)-averaged coloring is ~linear in n (work is
    proportional to RoundSum = O(n)): the Section 1.2 simulation story."""
    import time

    rows = []
    walls = []
    for n in (4000, 16000):
        g = gen.union_of_forests(n, 3, seed=1)
        t0 = time.perf_counter()
        repro.run_a2logn_coloring(g, a=3)
        wall = time.perf_counter() - t0
        walls.append(wall)
        rows.append([n, f"{wall:.2f}s"])
    emit(
        "kernel_scaling",
        render_table(
            "Wall-clock scaling of the O(1)-averaged coloring",
            ["n", "wall"],
            rows,
        ),
    )
    # 4x the vertices should cost clearly less than 8x the time
    assert walls[1] / walls[0] < 8.0
    g = gen.union_of_forests(8000, 3, seed=1)
    time_once(benchmark, lambda: repro.run_a2logn_coloring(g, a=3))

"""Section 9 claims: Theorems 9.1 and 9.2 hold with high probability --
measured across many seeds (DESIGN.md T9.1)."""

import repro
from repro.bench import make_workload, render_table
from _common import emit, time_once

WL = make_workload("forest_union_a3")


def test_rand_delta_plus_one_whp(benchmark):
    """Theorem 9.1: over many seeds, the vertex-averaged complexity
    concentrates at a small constant, while the worst case of the same
    executions is log n-sized."""
    n = 4000
    g, a = WL(n, 0)
    avgs, worsts = [], []
    for s in range(10):
        m = repro.run_rand_delta_plus_one(g, seed=s).metrics
        avgs.append(m.vertex_averaged)
        worsts.append(m.worst_case)
    rows = [
        ["mean", f"{sum(avgs)/len(avgs):.2f}", f"{sum(worsts)/len(worsts):.1f}"],
        ["max over seeds", f"{max(avgs):.2f}", f"{max(worsts)}"],
        ["min over seeds", f"{min(avgs):.2f}", f"{min(worsts)}"],
    ]
    emit(
        "randomized_theorem91",
        render_table(
            f"Theorem 9.1: Rand-Delta-Plus1, n={n}, 10 seeds",
            ["statistic", "vertex-averaged", "worst-case"],
            rows,
        ),
    )
    assert max(avgs) < 7.0  # O(1) w.h.p.
    assert min(worsts) > 3 * max(avgs)
    time_once(benchmark, lambda: repro.run_rand_delta_plus_one(g, seed=0))


def test_aloglogn_whp(benchmark):
    """Theorem 9.2: O(1) vertex-averaged w.h.p. with an O(a log log n)
    palette."""
    n = 4000
    g, a = WL(n, 0)
    avgs, colors = [], []
    for s in range(8):
        res = repro.run_aloglogn_coloring(g, a=a, seed=s)
        avgs.append(res.metrics.vertex_averaged)
        colors.append(res.colors_used)
    emit(
        "randomized_theorem92",
        render_table(
            f"Theorem 9.2: O(a loglog n)-coloring, n={n}, 8 seeds",
            ["statistic", "value"],
            [
                ["avg rounds (mean)", f"{sum(avgs)/len(avgs):.2f}"],
                ["avg rounds (max)", f"{max(avgs):.2f}"],
                ["colors used (max)", max(colors)],
                ["palette bound", repro.run_aloglogn_coloring(g, a=a, seed=0).palette_bound],
            ],
        ),
    )
    assert max(avgs) < 9.0
    time_once(benchmark, lambda: repro.run_aloglogn_coloring(g, a=a, seed=0))

"""Table 2 -- MIS, (2 Delta - 1)-edge-coloring and maximal matching:
vertex-averaged O(a + log* n)-flavoured algorithms vs the worst-case
schedules of previous work (DESIGN.md T2.R1 - T2.R3)."""

import repro
from repro.bench import make_workload, render_rows, sweep
from repro.verify import (
    assert_maximal_independent_set,
    assert_maximal_matching,
    assert_proper_edge_coloring,
)
from _common import SWEEP_MED, emit, time_once

WL = make_workload("forest_union_a3")
EPS = 0.5


def test_row_mis(benchmark):
    """T2.R1: MIS in O(a + log* n) avg vs the Theta(log n)-schedule
    deterministic previous work, plus Luby as the classic randomized
    reference."""
    ours = sweep(
        "MIS via extension (8.4)",
        lambda g, a, ids, s: repro.run_mis(g, a=a, eps=EPS, ids=ids),
        WL,
        SWEEP_MED,
    )
    base = sweep(
        "MIS, worst-case schedule",
        lambda g, a, ids, s: repro.run_mis(
            g, a=a, eps=EPS, ids=ids, worstcase_schedule=True
        ),
        WL,
        SWEEP_MED,
    )
    luby = sweep(
        "Luby MIS (rand.)",
        lambda g, a, ids, s: repro.run_luby_mis(g, ids=ids, seed=s),
        WL,
        SWEEP_MED,
        seeds=3,
    )
    emit(
        "table2_row_mis",
        render_rows("Table 2 row: MIS", ours, base)
        + "\n\n"
        + render_rows("reference: Luby (randomized, worst case O(log n))", luby),
    )
    assert ours.fit_avg().at_most("O(log log n)")
    assert base.fit_avg().grows_at_least("O(log log n)")
    assert base.points[-1].avg_mean > 2 * ours.points[-1].avg_mean
    # Luby's *worst case* grows; our average stays flat.
    assert luby.points[-1].worst_mean > luby.points[0].worst_mean
    g, a = WL(SWEEP_MED[-1], 0)
    res = repro.run_mis(g, a=a, eps=EPS)
    assert_maximal_independent_set(g, res.mis)
    time_once(benchmark, lambda: repro.run_mis(g, a=a, eps=EPS))


def test_row_edge_coloring(benchmark):
    """T2.R2: (2 Delta - 1)-edge-coloring, averaged vs worst-case
    schedule (the [6, 7] O(a + log n) shape)."""
    ours = sweep(
        "(2D-1)-edge-color (8.6)",
        lambda g, a, ids, s: repro.run_edge_coloring(g, a=a, eps=EPS, ids=ids),
        WL,
        SWEEP_MED,
        colors_of=lambda r: r.colors_used,
    )
    base = sweep(
        "(2D-1)-edge-color, worst-case schedule",
        lambda g, a, ids, s: repro.run_edge_coloring(
            g, a=a, eps=EPS, ids=ids, worstcase_schedule=True
        ),
        WL,
        SWEEP_MED,
        colors_of=lambda r: r.colors_used,
    )
    emit(
        "table2_row_edge_coloring",
        render_rows("Table 2 row: (2Delta-1)-edge-coloring", ours, base),
    )
    assert ours.fit_avg().at_most("O(log log n)")
    assert base.fit_avg().grows_at_least("O(log log n)")
    assert base.points[-1].avg_mean > ours.points[-1].avg_mean
    g, a = WL(SWEEP_MED[-1], 0)
    res = repro.run_edge_coloring(g, a=a, eps=EPS)
    assert_proper_edge_coloring(g, res.edge_colors, max_colors=res.palette_bound)
    time_once(benchmark, lambda: repro.run_edge_coloring(g, a=a, eps=EPS))


def test_row_mm(benchmark):
    """T2.R3: maximal matching, averaged vs worst-case schedule."""
    ours = sweep(
        "MM (8.8)",
        lambda g, a, ids, s: repro.run_maximal_matching(g, a=a, eps=EPS, ids=ids),
        WL,
        SWEEP_MED,
    )
    base = sweep(
        "MM, worst-case schedule",
        lambda g, a, ids, s: repro.run_maximal_matching(
            g, a=a, eps=EPS, ids=ids, worstcase_schedule=True
        ),
        WL,
        SWEEP_MED,
    )
    emit("table2_row_mm", render_rows("Table 2 row: maximal matching", ours, base))
    assert ours.fit_avg().at_most("O(log log n)")
    assert base.fit_avg().grows_at_least("O(log log n)")
    assert base.points[-1].avg_mean > ours.points[-1].avg_mean
    g, a = WL(SWEEP_MED[-1], 0)
    res = repro.run_maximal_matching(g, a=a, eps=EPS)
    assert_maximal_matching(g, res.matching)
    time_once(benchmark, lambda: repro.run_maximal_matching(g, a=a, eps=EPS))

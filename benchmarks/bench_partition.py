"""Internal quantitative claims of Section 6: Lemma 6.1 (exponential decay
of active vertices), Theorem 6.3 (Partition: O(1) average vs Theta(log n)
worst case) and Corollary 6.4 (composition) -- DESIGN.md L6.1 / T6.3 / C6.4."""

import repro
from repro import obs
from repro.bench import make_workload, render_table, sweep
from repro.runtime.program import wait_rounds
from _common import SWEEP_FAST, emit, time_once

WL = make_workload("forest_union_a3")


def test_decay_lemma_61(benchmark):
    """Lemma 6.1: n_i <= (2/(2+eps))^(i-1) n, for several eps."""
    n = 4000
    rows = []
    ok = True
    for eps in (0.25, 0.5, 1.0, 2.0):
        g, a = WL(n, 0)
        res = repro.run_partition(g, a=a, eps=eps)
        ratio = 2.0 / (2.0 + eps)
        for i, n_i in enumerate(res.metrics.active_trace, start=1):
            bound = ratio ** (i - 1) * g.n
            rows.append([eps, i, n_i, f"{bound:.1f}", "ok" if n_i <= bound + 1e-9 else "VIOLATION"])
            ok &= n_i <= bound + 1e-9
    emit(
        "partition_decay_lemma61",
        render_table(
            "Lemma 6.1: active vertices n_i vs the (2/(2+eps))^(i-1) n bound",
            ["eps", "round i", "n_i", "bound", "check"],
            rows,
        ),
    )
    assert ok
    g, a = WL(n, 0)
    time_once(benchmark, lambda: repro.run_partition(g, a=a, eps=0.5))


def test_decay_curve_via_collector(benchmark):
    """The measured Lemma 6.1 decay curve, observed through the
    ``repro.obs`` event layer rather than the engine's own counters:
    a MetricsCollector on the bus must reproduce ``active_trace``
    exactly, and the measured shape must be monotone non-increasing
    with per-round ratio <= 1/2 after the warm-up round."""
    n = 4000
    g, a = WL(n, 0)
    with obs.collecting() as col:
        res = repro.run_partition(g, a=a, eps=0.5)
    curve = col.decay_curve()
    # the event stream sees exactly what the engine recorded
    assert curve == list(res.metrics.active_trace)
    assert col.delivered == list(res.metrics.messages_per_round)
    assert col.vertex_averaged() == res.metrics.vertex_averaged
    # Lemma 6.1 shape check on the measured curve
    assert col.check_decay(warmup=1, ratio=0.5), curve
    ratios = col.decay_ratios()
    rows = [
        [
            i + 1,
            n_i,
            f"{ratios[i - 1]:.4f}" if i else "-",
            len(col.terminated[i]) if i < len(col.terminated) else 0,
        ]
        for i, n_i in enumerate(curve)
    ]
    emit(
        "partition_decay_curve",
        render_table(
            "Measured active-vertex decay (Partition, eps=0.5, via the "
            "repro.obs collector): monotone, ratio <= 1/2 after warm-up",
            ["round i", "n_i", "n_i/n_{i-1}", "terminated"],
            rows,
        ),
    )
    g, a = WL(n, 0)

    def run_collected():
        with obs.collecting():
            repro.run_partition(g, a=a, eps=0.5)

    time_once(benchmark, run_collected)


def test_partition_avg_vs_worst(benchmark):
    """Theorem 6.3: Partition's vertex-averaged complexity is O(1) while
    the worst-case-scheduled variant pays Theta(log n)."""
    ours = sweep(
        "Partition (6.1)",
        lambda g, a, ids, s: repro.run_partition(g, a=a, eps=0.5, ids=ids),
        WL,
        SWEEP_FAST,
        parallel=True,
    )
    base = sweep(
        "Forest-Dec worst-case schedule",
        lambda g, a, ids, s: repro.run_worstcase_forest_decomposition(
            g, a=a, eps=0.5, ids=ids
        ),
        WL,
        SWEEP_FAST,
        parallel=True,
    )
    from repro.bench import render_rows

    emit(
        "partition_theorem63",
        render_rows("Theorem 6.3: Partition avg vs worst-case schedule", ours, base),
    )
    assert ours.fit_avg().at_most("O(log* n)")
    assert base.fit_avg().grows_at_least("O(log log n)")
    assert base.points[-1].avg_mean / ours.points[-1].avg_mean > 8
    g, a = WL(SWEEP_FAST[-1], 0)
    time_once(benchmark, lambda: repro.run_partition(g, a=a, eps=0.5))


def test_composition_corollary_64(benchmark):
    """Corollary 6.4: composing Partition with a T_A-round per-H-set
    algorithm costs O(T_A) vertex-averaged rounds, for a range of T_A."""
    n = 2000
    rows = []
    for t_aux in (1, 4, 16):

        def dummy(ctx, view, h, same, t=t_aux):
            yield from wait_rounds(ctx, t)
            return h

        g, a = WL(n, 0)
        res = repro.compose_with_algorithm(g, a=a, per_set_algorithm=dummy, t_aux=t_aux)
        avg = res.metrics.vertex_averaged
        rows.append([t_aux, f"{avg:.2f}", f"{avg / (t_aux + 2):.2f}"])
        assert t_aux <= avg <= 6 * (t_aux + 2)
    emit(
        "partition_corollary64",
        render_table(
            "Corollary 6.4: vertex-averaged cost of composition ~ O(T_A)",
            ["T_A", "measured avg", "avg / (T_A + 2)"],
            rows,
        ),
    )
    g, a = WL(n, 0)

    def dummy1(ctx, view, h, same):
        yield from wait_rounds(ctx, 4)
        return h

    time_once(
        benchmark,
        lambda: repro.compose_with_algorithm(g, a=a, per_set_algorithm=dummy1, t_aux=4),
    )

#!/usr/bin/env python3
"""Large-scale network simulation (paper Section 1.2, third motivation).

"A distributed execution of a large-scale network is simulated by a
smaller number of processors, or just by a single processor ... a
complexity measure that takes into account the *sum* of rounds is of great
interest."

Our round engine is exactly such a single-processor simulator, and its
work is proportional to RoundSum(V): simulating a vertex-averaged O(1)
algorithm costs O(n) vertex-steps regardless of the worst case.  This
example simulates the same coloring task under both disciplines and
reports simulated vertex-steps *and* the simulator's actual wall-clock --
the measure predicting the machine time is the point.

Run:  python examples/bigdata_simulation.py
"""

import time

from repro import generators, run_a2logn_coloring, run_arb_linial_worstcase


def simulate(label, fn):
    t0 = time.perf_counter()
    res = fn()
    wall = time.perf_counter() - t0
    m = res.metrics
    print(f"{label:28s}: RoundSum = {m.round_sum:9d} vertex-steps | "
          f"avg {m.vertex_averaged:6.2f} | worst {m.worst_case:3d} | "
          f"wall {wall:6.2f}s")
    return m.round_sum, wall


def main() -> None:
    a = 3
    print("simulating an O(a^2 log n)-coloring under both schedules\n")
    for n in (4000, 16000, 64000):
        g = generators.union_of_forests(n, a, seed=7)
        ids = generators.random_ids(n, seed=8)
        print(f"-- n = {n} --")
        s1, w1 = simulate(
            "vertex-averaged (Thm 7.2)",
            lambda: run_a2logn_coloring(g, a=a, ids=ids),
        )
        s2, w2 = simulate(
            "worst-case schedule ([8])",
            lambda: run_arb_linial_worstcase(g, a=a, ids=ids),
        )
        print(f"{'':28s}  simulation work saved: x{s2 / s1:.1f} "
              f"(wall-clock: x{w2 / max(w1, 1e-9):.1f})\n")
    print("RoundSum -- n times the vertex-averaged complexity -- is the "
          "quantity a simulator actually pays; minimizing it is the "
          "paper's third motivation.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Leaderboard: every algorithm in the suite on one shared workload.

Shows the paper's palette/rounds trade-off space at a glance: the
O(a)-flavoured palettes cost more rounds than the O(a^2 log n) ones, the
randomized algorithms are round-cheapest, and every worst-case baseline
pays the Theta(log n) schedule.

Run:  python examples/compare_all.py
"""

import time

import repro
from repro.bench import render_table
from repro.graphs import generators as gen

N, A, SEED = 3000, 3, 0


def main() -> None:
    g = gen.union_of_forests(N, A, seed=SEED)
    ids = gen.random_ids(N, seed=SEED + 1)
    print(f"workload: {g}, arboricity <= {A}, Delta = {g.max_degree()}\n")

    entries = [
        ("Partition (6.1)", lambda: repro.run_partition(g, a=A, ids=ids), None),
        ("Forest-Dec (7.1)", lambda: repro.run_parallelized_forest_decomposition(g, a=A, ids=ids), None),
        ("O(a^2 log n)-color (7.2)", lambda: repro.run_a2logn_coloring(g, a=A, ids=ids), "colors"),
        ("O(a^2)-color (7.3)", lambda: repro.run_a2_coloring(g, a=A, ids=ids), "colors"),
        ("O(a)-color (7.4)", lambda: repro.run_oa_coloring(g, a=A, ids=ids), "colors"),
        ("O(ka^2)-color k=2 (7.6)", lambda: repro.run_ka2_coloring(g, a=A, k=2, ids=ids), "colors"),
        ("O(ka)-color k=2 (7.7)", lambda: repro.run_ka_coloring(g, a=A, k=2, ids=ids), "colors"),
        ("One-Plus-Eta (7.8)", lambda: repro.run_one_plus_eta_coloring(g, a=A, C=3, ids=ids), "colors"),
        ("(Delta+1)-color (8.3)", lambda: repro.run_delta_plus_one_coloring(g, a=A, ids=ids), "colors"),
        ("MIS (8.4)", lambda: repro.run_mis(g, a=A, ids=ids), None),
        ("(2D-1)-edge-color (8.6)", lambda: repro.run_edge_coloring(g, a=A, ids=ids), "colors"),
        ("Matching (8.8)", lambda: repro.run_maximal_matching(g, a=A, ids=ids), None),
        ("Rand (Delta+1) (9.2)", lambda: repro.run_rand_delta_plus_one(g, ids=ids, seed=SEED), "colors"),
        ("Rand O(a loglog n) (9.3)", lambda: repro.run_aloglogn_coloring(g, a=A, ids=ids, seed=SEED), "colors"),
        ("-- baseline: Arb-Linial wc [8]", lambda: repro.run_arb_linial_worstcase(g, a=A, ids=ids), "colors"),
        ("-- baseline: Arb-Color wc [8]", lambda: repro.run_arb_color_worstcase(g, a=A, ids=ids), "colors"),
        ("-- baseline: Luby MIS", lambda: repro.run_luby_mis(g, ids=ids, seed=SEED), None),
    ]

    rows = []
    for label, fn, kind in entries:
        t0 = time.perf_counter()
        res = fn()
        wall = time.perf_counter() - t0
        m = res.metrics
        colors = getattr(res, "colors_used", "-") if kind else "-"
        rows.append(
            [
                label,
                f"{m.vertex_averaged:.2f}",
                m.worst_case,
                m.quantile(0.5),
                colors,
                f"{wall:.2f}s",
            ]
        )
    print(
        render_table(
            f"all algorithms, n={N}, a={A}",
            ["algorithm", "avg rounds", "worst", "median", "colors", "sim wall"],
            rows,
        )
    )


if __name__ == "__main__":
    main()

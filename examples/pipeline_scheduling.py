#!/usr/bin/env python3
"""Task pipelining (paper Section 1.2, second motivation).

A job consists of two subtasks A then B.  With a barrier between them,
every processor waits for the slowest to finish A.  If instead each
processor starts B the moment *it* finishes A (asynchronous start), the
completion time of processor v is r_A(v) + T_B(v) -- and when the
vertex-averaged complexity of A is o(worst case), the majority of the
network finishes dramatically earlier.

Here A = maximal independent set (Corollary 8.4) and B = a fixed 10-round
local aggregation; we compare the completion-time distribution of the two
schedules.

Run:  python examples/pipeline_scheduling.py
"""

from repro import generators, run_mis
from repro.verify import assert_maximal_independent_set

T_B = 10  # rounds of subtask B per vertex


def quantiles(values, qs=(0.5, 0.9, 0.99, 1.0)):
    ordered = sorted(values)
    out = []
    for q in qs:
        idx = min(len(ordered) - 1, max(0, int(q * len(ordered)) - (1 if q == 1.0 else 0)))
        out.append(ordered[idx])
    return out


def main() -> None:
    n, a = 8000, 3
    g = generators.union_of_forests(n, a, seed=5)
    ids = generators.random_ids(n, seed=6)

    res = run_mis(g, a=a, ids=ids)
    assert_maximal_independent_set(g, res.mis)
    r_a = res.metrics.rounds
    t_a_worst = res.metrics.worst_case

    async_completion = [r + T_B for r in r_a]
    barrier_completion = [t_a_worst + T_B] * n

    print(f"network: {g}; subtask A = MIS, subtask B = {T_B} rounds\n")
    print(f"A: vertex-averaged {res.metrics.vertex_averaged:.2f} rounds, "
          f"worst case {t_a_worst} rounds\n")
    header = f"{'schedule':22s} {'p50':>6s} {'p90':>6s} {'p99':>6s} {'max':>6s} {'mean':>8s}"
    print(header)
    print("-" * len(header))
    for label, comp in (("asynchronous start", async_completion),
                        ("barrier between A, B", barrier_completion)):
        p50, p90, p99, mx = quantiles(comp)
        mean = sum(comp) / len(comp)
        print(f"{label:22s} {p50:6d} {p90:6d} {p99:6d} {mx:6d} {mean:8.2f}")

    p50_async = quantiles(async_completion)[0]
    p50_barrier = quantiles(barrier_completion)[0]
    frac_early = sum(1 for c in async_completion if c < p50_barrier) / n
    print(f"\nmedian speedup: x{p50_barrier / p50_async:.2f}; "
          f"{100 * frac_early:.1f}% of processors finish before the barrier "
          f"schedule lets anyone finish.")
    print("(The worst-case completion is identical -- the gain is for the "
          "majority, which is what the vertex-averaged measure captures.)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Energy efficiency (paper Section 1.2, first motivation).

"In a network of processors fed by a common energy source", energy is
consumed while a processor is active (computing + communicating); once it
terminates it draws nothing.  Total energy is therefore proportional to
RoundSum(V) = sum of rounds -- n times the vertex-averaged complexity --
while a worst-case-scheduled algorithm burns n * T rounds.

This example prices both executions of the *same* problem (an
O(a)-flavoured coloring) in energy units and reports the savings, plus a
message-count comparison as a second energy proxy.

Run:  python examples/energy_efficiency.py
"""

from repro import generators, run_arb_color_worstcase, run_oa_coloring
from repro.verify import assert_proper_coloring

ENERGY_PER_ACTIVE_ROUND = 1.0  # joules, say
ENERGY_PER_MESSAGE = 0.05


def price(metrics) -> tuple[float, float]:
    compute = metrics.round_sum * ENERGY_PER_ACTIVE_ROUND
    comms = metrics.total_messages * ENERGY_PER_MESSAGE
    return compute, comms


def main() -> None:
    n, a = 8000, 3
    g = generators.union_of_forests(n, a, seed=3)
    ids = generators.random_ids(n, seed=4)
    print(f"network: {g}, arboricity <= {a}")
    print(f"pricing: {ENERGY_PER_ACTIVE_ROUND} J per active round, "
          f"{ENERGY_PER_MESSAGE} J per message\n")

    ours = run_oa_coloring(g, a=a, ids=ids)
    assert_proper_coloring(g, ours.colors, max_colors=ours.palette_bound)
    base = run_arb_color_worstcase(g, a=a, ids=ids)
    assert_proper_coloring(g, base.colors, max_colors=base.palette_bound)

    for label, res in (("vertex-averaged (7.4)", ours), ("worst-case-schedule [8]", base)):
        compute, comms = price(res.metrics)
        print(f"{label:24s}: colors={res.colors_used:3d}  "
              f"avg={res.metrics.vertex_averaged:6.2f}  "
              f"worst={res.metrics.worst_case:3d}  "
              f"energy = {compute:10.0f} J compute + {comms:8.0f} J comms")

    c1, m1 = price(ours.metrics)
    c2, m2 = price(base.metrics)
    print(f"\ncompute-energy savings: x{c2 / c1:.1f}")
    print(f"total-energy savings  : x{(c2 + m2) / (c1 + m1):.1f}")
    print("\nBoth executions solve the same problem with O(a) colors; the "
          "only difference is when each processor gets to power down.")


if __name__ == "__main__":
    main()

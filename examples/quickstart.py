#!/usr/bin/env python3
"""Quickstart: build a bounded-arboricity network, run the paper's
algorithms, and see the vertex-averaged vs worst-case gap.

Run:  python examples/quickstart.py
"""

from repro import (
    generators,
    run_a2logn_coloring,
    run_arb_linial_worstcase,
    run_maximal_matching,
    run_mis,
    run_partition,
)
from repro.verify import (
    assert_h_partition,
    assert_maximal_independent_set,
    assert_maximal_matching,
    assert_proper_coloring,
)


def main() -> None:
    # A graph of arboricity <= 3 on 5000 vertices (union of 3 random
    # spanning forests) -- the canonical workload of the paper's tables.
    n, a = 5000, 3
    g = generators.union_of_forests(n, a, seed=0)
    ids = generators.random_ids(n, seed=1)
    print(f"network: {g} (arboricity <= {a}, Delta = {g.max_degree()})\n")

    # 1. Procedure Partition (Section 6.1): Theta(log n) worst case but
    #    O(1) vertex-averaged rounds (Theorem 6.3).
    part = run_partition(g, a=a, ids=ids)
    assert_h_partition(g, part.h_index, part.A)
    m = part.metrics
    print(f"Partition        : avg {m.vertex_averaged:5.2f} rounds | "
          f"worst {m.worst_case:3d} | H-sets {part.num_sets}")

    # 2. O(a^2 log n)-coloring in O(1) vertex-averaged rounds (Thm 7.2) vs
    #    the worst-case-scheduled [8]-style algorithm.
    ours = run_a2logn_coloring(g, a=a, ids=ids)
    assert_proper_coloring(g, ours.colors, max_colors=ours.palette_bound)
    base = run_arb_linial_worstcase(g, a=a, ids=ids)
    assert_proper_coloring(g, base.colors, max_colors=base.palette_bound)
    print(f"Coloring (ours)  : avg {ours.metrics.vertex_averaged:5.2f} rounds | "
          f"worst {ours.metrics.worst_case:3d} | {ours.colors_used} colors")
    print(f"Coloring ([8])   : avg {base.metrics.vertex_averaged:5.2f} rounds | "
          f"worst {base.metrics.worst_case:3d} | {base.colors_used} colors")
    print(f"  -> averaged algorithm wins by "
          f"x{base.metrics.vertex_averaged / ours.metrics.vertex_averaged:.1f}\n")

    # 3. Symmetry breaking via the extension framework (Section 8).
    mis = run_mis(g, a=a, ids=ids)
    assert_maximal_independent_set(g, mis.mis)
    print(f"MIS (Cor 8.4)    : avg {mis.metrics.vertex_averaged:5.2f} rounds | "
          f"|MIS| = {len(mis.mis)}")
    mm = run_maximal_matching(g, a=a, ids=ids)
    assert_maximal_matching(g, mm.matching)
    print(f"MM  (Cor 8.8)    : avg {mm.metrics.vertex_averaged:5.2f} rounds | "
          f"|M| = {len(mm.matching)}")

    # 4. The measure itself: most vertices finish very early.
    med = ours.metrics.quantile(0.5)
    p99 = ours.metrics.quantile(0.99)
    print(f"\ncoloring round distribution: median {med}, 99th pct {p99}, "
          f"max {ours.metrics.worst_case}")


if __name__ == "__main__":
    main()

"""Tests for the solution validators themselves (a wrong validator would
silently bless wrong algorithms, so they get their own adversarial tests)."""

import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.orientation import Orientation, orientation_by_order
from repro.verify import (
    VerificationError,
    assert_acyclic_orientation,
    assert_defective_coloring,
    assert_forest_decomposition,
    assert_h_partition,
    assert_list_coloring,
    assert_maximal_independent_set,
    assert_maximal_matching,
    assert_proper_coloring,
    assert_proper_edge_coloring,
    color_count,
    defect_of,
)
from repro.verify.structures import assert_arbdefective_coloring, assert_partition_covers


@pytest.fixture
def p3():
    return gen.path(3)  # 0 - 1 - 2


class TestProperColoring:
    def test_accepts_valid(self, p3):
        assert_proper_coloring(p3, {0: "a", 1: "b", 2: "a"})

    def test_rejects_monochromatic_edge(self, p3):
        with pytest.raises(VerificationError, match="monochromatic"):
            assert_proper_coloring(p3, {0: 1, 1: 1, 2: 2})

    def test_rejects_missing_vertex(self, p3):
        with pytest.raises(VerificationError, match="without a color"):
            assert_proper_coloring(p3, {0: 1, 1: 2})

    def test_rejects_none_color(self, p3):
        with pytest.raises(VerificationError):
            assert_proper_coloring(p3, {0: 1, 1: None, 2: 1})

    def test_color_budget(self, p3):
        with pytest.raises(VerificationError, match="colors"):
            assert_proper_coloring(p3, {0: 1, 1: 2, 2: 3}, max_colors=2)

    def test_color_count(self):
        assert color_count({0: "x", 1: "y", 2: "x"}) == 2


class TestListColoring:
    def test_accepts(self, p3):
        assert_list_coloring(p3, {0: 1, 1: 2, 2: 1}, {0: {1}, 1: {2}, 2: {1, 3}})

    def test_rejects_off_list(self, p3):
        with pytest.raises(VerificationError, match="not in its list"):
            assert_list_coloring(p3, {0: 1, 1: 2, 2: 1}, {0: {1}, 1: {2}, 2: {3}})


class TestEdgeColoring:
    def test_accepts(self, p3):
        assert_proper_edge_coloring(p3, {(0, 1): 1, (1, 2): 2})

    def test_rejects_conflict_at_endpoint(self, p3):
        with pytest.raises(VerificationError, match="share endpoint"):
            assert_proper_edge_coloring(p3, {(0, 1): 1, (1, 2): 1})

    def test_rejects_uncolored_edge(self, p3):
        with pytest.raises(VerificationError, match="no color"):
            assert_proper_edge_coloring(p3, {(0, 1): 1})

    def test_budget(self, p3):
        with pytest.raises(VerificationError):
            assert_proper_edge_coloring(p3, {(0, 1): 1, (1, 2): 2}, max_colors=1)


class TestDefective:
    def test_defect_of(self):
        g = gen.star(4)
        col = {0: 1, 1: 1, 2: 1, 3: 2}
        assert defect_of(g, col, 0) == 2
        assert defect_of(g, col, 1) == 1  # leaf sharing the hub's color
        assert defect_of(g, col, 3) == 0

    def test_accepts_within_defect(self):
        g = gen.ring(4)
        assert_defective_coloring(g, {0: 1, 1: 1, 2: 1, 3: 1}, max_defect=2)

    def test_rejects_excess_defect(self):
        g = gen.star(5)
        with pytest.raises(VerificationError, match="defect"):
            assert_defective_coloring(g, {v: 1 for v in range(5)}, max_defect=3)


class TestMIS:
    def test_accepts(self, p3):
        assert_maximal_independent_set(p3, {1})
        assert_maximal_independent_set(p3, {0, 2})

    def test_rejects_dependent(self, p3):
        with pytest.raises(VerificationError, match="adjacent"):
            assert_maximal_independent_set(p3, {0, 1})

    def test_rejects_non_maximal(self, p3):
        with pytest.raises(VerificationError, match="no MIS neighbor"):
            assert_maximal_independent_set(p3, {0})

    def test_rejects_non_vertex(self, p3):
        with pytest.raises(VerificationError, match="non-vertex"):
            assert_maximal_independent_set(p3, {7})

    def test_isolated_vertices_must_join(self):
        g = Graph(2)
        with pytest.raises(VerificationError):
            assert_maximal_independent_set(g, {0})
        assert_maximal_independent_set(g, {0, 1})


class TestMatching:
    def test_accepts(self):
        g = gen.path(4)
        assert_maximal_matching(g, {(0, 1), (2, 3)})

    def test_rejects_intersecting(self, p3):
        with pytest.raises(VerificationError, match="intersect"):
            assert_maximal_matching(p3, {(0, 1), (1, 2)})

    def test_rejects_non_maximal(self):
        g = gen.path(5)
        with pytest.raises(VerificationError, match="not maximal"):
            assert_maximal_matching(g, {(1, 2)})

    def test_rejects_non_edge(self, p3):
        with pytest.raises(VerificationError, match="not in G"):
            assert_maximal_matching(p3, {(0, 2)})

    def test_rejects_duplicate(self, p3):
        with pytest.raises(VerificationError, match="repeated|intersect"):
            assert_maximal_matching(p3, [(0, 1), (1, 0)])


class TestStructures:
    def test_h_partition_accepts(self):
        g = gen.star(5)
        # hub last: leaves have 1 neighbor at a later level, hub has none.
        assert_h_partition(g, {0: 2, 1: 1, 2: 1, 3: 1, 4: 1}, degree_bound=1)

    def test_h_partition_rejects_degree_violation(self):
        g = gen.star(5)
        with pytest.raises(VerificationError, match="bound"):
            assert_h_partition(g, {v: 1 for v in range(5)}, degree_bound=1)

    def test_h_partition_rejects_unassigned(self):
        g = gen.path(3)
        with pytest.raises(VerificationError, match="never assigned"):
            assert_h_partition(g, {0: 1, 1: 1}, degree_bound=5)

    def test_acyclic_orientation_validator(self):
        g = gen.ring(4)
        good = orientation_by_order(g, [0, 1, 2, 3])
        assert_acyclic_orientation(good, max_out_degree=2, max_length=3)
        bad = Orientation(g)
        for i in range(4):
            bad.orient(i, (i + 1) % 4, (i + 1) % 4)
        with pytest.raises(VerificationError, match="cycle"):
            assert_acyclic_orientation(bad)

    def test_acyclic_orientation_partial_rejected_when_total_required(self):
        g = gen.path(3)
        o = Orientation(g, {(0, 1): 1})
        with pytest.raises(VerificationError, match="covers"):
            assert_acyclic_orientation(o)
        assert_acyclic_orientation(o, require_total=False)

    def test_forest_decomposition_accepts(self):
        g = gen.ring(4)
        labels = {(0, 1): 1, (1, 2): 1, (2, 3): 1, (0, 3): 2}
        assert_forest_decomposition(g, labels, max_forests=2)

    def test_forest_decomposition_rejects_cycle_in_label(self):
        g = gen.ring(3)
        with pytest.raises(VerificationError, match="forest"):
            assert_forest_decomposition(g, {e: 1 for e in g.edges()})

    def test_forest_decomposition_rejects_missing_label(self):
        g = gen.path(3)
        with pytest.raises(VerificationError, match="no forest label"):
            assert_forest_decomposition(g, {(0, 1): 1})

    def test_forest_decomposition_out_label_uniqueness(self):
        g = gen.path(3)
        o = Orientation(g, {(0, 1): 1, (1, 2): 1})
        # vertex 2 -> 1 and 0 -> 1: different tails, fine; make vertex 1
        # own two out-edges with the same label to trigger the check.
        g2 = Graph(3, [(0, 1), (1, 2)])
        o2 = Orientation(g2, {(0, 1): 0, (1, 2): 2})
        labels = {(0, 1): 1, (1, 2): 1}
        with pytest.raises(VerificationError, match="two outgoing"):
            assert_forest_decomposition(g2, labels, orientation=o2)

    def test_arbdefective_coloring(self):
        g = gen.complete(4)
        # two classes of two vertices each: each class induces one edge,
        # arboricity 1.
        assert_arbdefective_coloring(g, {0: 0, 1: 0, 2: 1, 3: 1}, max_arboricity=1)
        with pytest.raises(VerificationError, match="arboricity"):
            assert_arbdefective_coloring(g, {v: 0 for v in range(4)}, max_arboricity=1)

    def test_partition_covers(self):
        assert_partition_covers(4, [[0, 1], [2], [3]])
        with pytest.raises(VerificationError, match="twice"):
            assert_partition_covers(3, [[0, 1], [1, 2]])
        with pytest.raises(VerificationError, match="covers"):
            assert_partition_covers(3, [[0, 1]])

"""Registry completeness and drift pins.

The registry is only useful if every derived surface (CLI, fuzzer,
bench, validators) provably agrees with it; these tests pin that, plus
the historical regression the registry exists to prevent: ``ka2``,
``one-plus-eta`` and ``aloglogn`` were registered in the CLI but missing
from the fuzz population.
"""

import pytest

import repro
from repro import zoo
from repro.bench.workloads import make_workload
from repro.graphs import generators as gen


class TestCompleteness:
    def test_check_registry_is_clean(self):
        assert zoo.check_registry() == []

    def test_every_run_driver_registered_or_exempt(self):
        referenced = set()
        for spec in zoo.all_specs():
            for ref in (spec.driver, spec.baseline):
                if ref is not None and ref.fn is None:
                    referenced.add(ref.func)
        for func in (x for x in repro.__all__ if x.startswith("run_")):
            assert func in referenced or func in zoo.EXEMPT_DRIVERS, (
                f"{func} is exported but neither registered nor exempted"
            )

    def test_exemptions_are_not_also_registered(self):
        referenced = {
            ref.func
            for spec in zoo.all_specs()
            for ref in (spec.driver, spec.baseline)
            if ref is not None and ref.fn is None
        }
        assert not referenced & set(zoo.EXEMPT_DRIVERS)

    def test_stale_exemption_is_reported(self):
        zoo.EXEMPT_DRIVERS["run_does_not_exist"] = "test entry"
        try:
            problems = zoo.check_registry()
        finally:
            del zoo.EXEMPT_DRIVERS["run_does_not_exist"]
        assert any("run_does_not_exist" in p and "stale" in p for p in problems)

    def test_every_problem_kind_has_both_checks(self):
        for spec in zoo.all_specs():
            assert spec.problem in zoo.FULL_VALIDATORS
            assert spec.problem in zoo.SURVIVOR_CHECKS

    def test_drivers_resolve_to_callables(self):
        for spec in zoo.all_specs():
            assert callable(spec.driver.resolve())
            if spec.baseline is not None:
                assert callable(spec.baseline.resolve())

    def test_paper_rows_unique(self):
        rows = [s.paper_row.row for s in zoo.all_specs() if s.paper_row]
        assert len(rows) == len(set(rows))

    def test_table_views_cover_the_paper(self):
        t1 = [s.paper_row.row for s in zoo.by_table(1)]
        t2 = [s.paper_row.row for s in zoo.by_table(2)]
        assert t1 == sorted(t1)  # row order
        assert set(t2) == {"T2.R1", "T2.R2", "T2.R3"}
        for s in zoo.by_table(1):
            assert s.problem == "coloring"


class TestDriftPins:
    def test_fuzz_population_includes_the_formerly_missing_three(self):
        """Regression: the old hand-maintained faults zoo missed these."""
        from repro.faults.fuzz import default_population

        pop = set(default_population())
        assert {"ka2", "one-plus-eta", "aloglogn"} <= pop

    def test_fuzz_population_equals_crash_safe_view(self):
        from repro.faults.fuzz import default_population

        assert tuple(default_population()) == tuple(
            s.name for s in zoo.crash_safe()
        )

    def test_cli_run_choices_equal_registry_names(self):
        from repro.cli import build_parser

        parser = build_parser()
        choices = None
        for action in parser._subparsers._group_actions[0].choices[
            "run"
        ]._actions:
            if action.dest == "algorithm":
                choices = tuple(action.choices)
        assert choices == zoo.names()

    def test_old_module_level_tables_are_gone(self):
        """The hand-maintained per-consumer lists must not resurface."""
        import repro.cli as cli
        import repro.faults.harness as harness

        assert not hasattr(cli, "ALGORITHMS")
        assert not hasattr(cli, "BASELINES")
        assert not hasattr(harness, "_ZOO")
        assert not hasattr(harness, "zoo")


class TestViews:
    def test_get_unknown_lists_known(self):
        with pytest.raises(KeyError, match="known:"):
            zoo.get("nonsense")

    def test_register_unregister_round_trip(self):
        spec = zoo.AlgorithmSpec(
            name="_tmp",
            problem="coloring",
            driver=zoo.DriverRef.make(fn=lambda g, ids=None, a=None: None),
        )
        zoo.register(spec)
        try:
            assert zoo.get("_tmp") is spec
            with pytest.raises(ValueError, match="already registered"):
                zoo.register(spec)
        finally:
            zoo.unregister("_tmp")
        assert "_tmp" not in zoo.names()

    def test_unknown_problem_kind_rejected(self):
        with pytest.raises(ValueError, match="problem kind"):
            zoo.AlgorithmSpec(
                name="bad", problem="sorting", driver=zoo.DriverRef.make("run_mis")
            )

    def test_with_baseline_excludes_baselineless_specs(self):
        names = {s.name for s in zoo.with_baseline()}
        assert "one-plus-eta" not in names
        assert "rand-delta-plus-one" not in names
        assert "partition" in names

    def test_by_problem_partitions_the_registry(self):
        total = sum(len(zoo.by_problem(k)) for k in zoo.PROBLEM_KINDS)
        assert total == len(zoo.all_specs())


# direct repro.* calls the registry specs must stay bit-identical to:
# the exact invocations the deleted cli.ALGORITHMS / cli.BASELINES and
# faults.harness._ZOO tables used to make.
_DIRECT = {
    "partition": (
        lambda g, a, ids, s: repro.run_partition(g, a=a, ids=ids),
        lambda g, a, ids, s: repro.run_worstcase_forest_decomposition(
            g, a=a, ids=ids
        ),
        lambda r: r.h_index,
    ),
    "a2logn": (
        lambda g, a, ids, s: repro.run_a2logn_coloring(g, a=a, ids=ids),
        lambda g, a, ids, s: repro.run_arb_linial_worstcase(g, a=a, ids=ids),
        lambda r: r.colors,
    ),
    "delta-plus-one": (
        lambda g, a, ids, s: repro.run_delta_plus_one_coloring(g, a=a, ids=ids),
        lambda g, a, ids, s: repro.run_delta_plus_one_worstcase(g, ids=ids),
        lambda r: r.colors,
    ),
    "mis": (
        lambda g, a, ids, s: repro.run_mis(g, a=a, ids=ids),
        lambda g, a, ids, s: repro.run_mis(
            g, a=a, ids=ids, worstcase_schedule=True
        ),
        lambda r: sorted(r.mis),
    ),
    "matching": (
        lambda g, a, ids, s: repro.run_maximal_matching(g, a=a, ids=ids),
        lambda g, a, ids, s: repro.run_maximal_matching(
            g, a=a, ids=ids, worstcase_schedule=True
        ),
        lambda r: sorted(r.matching),
    ),
    "rand-delta-plus-one": (
        lambda g, a, ids, s: repro.run_rand_delta_plus_one(g, ids=ids, seed=s),
        None,
        lambda r: r.colors,
    ),
}


class TestMigrationIdentity:
    """The registry must reproduce the deleted lambda tables bit-for-bit."""

    @pytest.mark.parametrize("name", sorted(_DIRECT))
    @pytest.mark.parametrize("seed", [0, 3])
    def test_driver_matches_direct_call(self, name, seed):
        direct, _base, payload = _DIRECT[name]
        g, a = make_workload("forest_union_a3")(60, seed=seed)
        ids = gen.random_ids(g.n, seed=1000 + seed)
        spec = zoo.get(name)
        ours = spec.run(g, a, ids, seed)
        theirs = direct(g, a, ids, seed)
        assert payload(ours) == payload(theirs)
        assert ours.metrics.worst_case == theirs.metrics.worst_case
        assert ours.metrics.vertex_averaged == theirs.metrics.vertex_averaged

    @pytest.mark.parametrize(
        "name", sorted(n for n in _DIRECT if _DIRECT[n][1] is not None)
    )
    @pytest.mark.parametrize("seed", [0, 3])
    def test_baseline_matches_direct_call(self, name, seed):
        _direct, base, payload = _DIRECT[name]
        g, a = make_workload("forest_union_a3")(60, seed=seed)
        ids = gen.random_ids(g.n, seed=1000 + seed)
        spec = zoo.get(name)
        ours = spec.run_baseline(g, a, ids, seed)
        theirs = base(g, a, ids, seed)
        assert payload(ours) == payload(theirs)
        assert ours.metrics.worst_case == theirs.metrics.worst_case

"""The unified `zoo.execute` pipeline: engines, faults, obs, validation."""

import json

import pytest

from repro import zoo
from repro.bench.workloads import make_workload
from repro.faults import CrashSpec, FaultPlan
from repro.graphs import generators as gen
from repro.verify import VerificationError


def _instance(n=60, seed=0, workload="forest_union_a3"):
    g, a = make_workload(workload)(n, seed=seed)
    ids = gen.random_ids(g.n, seed=1000 + seed)
    return g, a, ids


class TestBasics:
    def test_execute_by_name_and_by_spec_agree(self):
        g, a, ids = _instance()
        by_name = zoo.execute("a2", g, a, ids, 0)
        by_spec = zoo.execute(zoo.get("a2"), g, a, ids, 0)
        assert by_name.result.colors == by_spec.result.colors
        assert by_name.completed and not by_name.faulted

    def test_clean_run_validates_with_full_validator(self):
        g, a, ids = _instance()
        ex = zoo.execute("mis", g, a, ids, 0)
        summary = ex.validate(g)
        assert isinstance(summary, str) and summary

    @pytest.mark.parametrize("name", [s.name for s in zoo.all_specs()])
    def test_every_registered_algorithm_executes_and_validates(self, name):
        spec = zoo.get(name)
        workload = spec.workloads[0] if spec.workloads else "forest_union_a3"
        g, a, ids = _instance(n=40, workload=workload)
        ex = zoo.execute(name, g, a, ids, 0)
        assert ex.completed
        ex.validate(g)

    def test_baseline_execution(self):
        g, a, ids = _instance(n=40)
        ex = zoo.execute("partition", g, a, ids, 0, baseline=True)
        assert ex.completed
        assert ex.result.metrics.worst_case > 0

    def test_baselineless_spec_rejects_baseline(self):
        g, a, ids = _instance(n=24)
        with pytest.raises(ValueError, match="no baseline"):
            zoo.execute("one-plus-eta", g, a, ids, 0, baseline=True)

    def test_unknown_engine_rejected(self):
        g, a, ids = _instance(n=24)
        with pytest.raises(ValueError, match="engine"):
            zoo.execute("a2", g, a, ids, 0, engine="turbo")

    def test_unknown_name_rejected(self):
        g, a, ids = _instance(n=24)
        with pytest.raises(KeyError, match="known:"):
            zoo.execute("nonsense", g, a, ids, 0)


_PAYLOAD = {
    "coloring": lambda r: r.colors,
    "edge-coloring": lambda r: r.edge_colors,
    "mis": lambda r: sorted(r.mis),
    "matching": lambda r: sorted(r.matching),
    "partition": lambda r: r.h_index,
    "leader-election": lambda r: r.leader,
    "consensus": lambda r: r.decisions,
}


class TestEngines:
    @pytest.mark.parametrize("name", ["a2", "mis", "partition", "matching"])
    def test_engines_agree_through_execute(self, name):
        g, a, ids = _instance(n=80)
        fast = zoo.execute(name, g, a, ids, 0, engine="fast")
        ref = zoo.execute(name, g, a, ids, 0, engine="reference")
        payload = _PAYLOAD[zoo.get(name).problem]
        assert payload(fast.result) == payload(ref.result)
        assert (
            fast.result.metrics.worst_case == ref.result.metrics.worst_case
        )
        assert fast.engine == "fast" and ref.engine == "reference"

    @pytest.mark.parametrize(
        "name", [s.name for s in zoo.all_specs() if s.bulk_capable]
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("workload", ["forest_union_a3", "gnp_sparse"])
    def test_bulk_agrees_through_execute(self, name, seed, workload):
        g, a, ids = _instance(n=80, seed=seed, workload=workload)
        fast = zoo.execute(name, g, a, ids, seed, engine="fast")
        bulk = zoo.execute(name, g, a, ids, seed, engine="bulk")
        payload = _PAYLOAD[zoo.get(name).problem]
        assert payload(bulk.result) == payload(fast.result)
        m_fast, m_bulk = fast.result.metrics, bulk.result.metrics
        assert m_bulk.rounds == m_fast.rounds
        assert m_bulk.active_trace == m_fast.active_trace
        assert m_bulk.messages_per_round == m_fast.messages_per_round
        assert bulk.engine == "bulk"
        bulk.validate(g)

    def test_bulk_rejected_for_non_capable_spec(self):
        g, a, ids = _instance(n=24)
        assert not zoo.get("a2").bulk_capable
        with pytest.raises(ValueError, match="no bulk driver") as exc:
            zoo.execute("a2", g, a, ids, 0, engine="bulk")
        # the error lists what *is* bulk-capable
        assert "partition" in str(exc.value)

    def test_bulk_rejected_for_baselines(self):
        g, a, ids = _instance(n=24)
        with pytest.raises(ValueError, match="baseline.*no bulk driver"):
            zoo.execute("partition", g, a, ids, 0, baseline=True, engine="bulk")

    def test_bulk_accepts_crash_plans_and_agrees_with_fast(self):
        # bulk drivers delegate to their fault-aware sharded twins under
        # an active plan; the counter-based adversary replays exactly
        g, a, ids = _instance(n=24)
        plan = FaultPlan(seed=1, crashes=CrashSpec(hazard=0.1))
        ref = zoo.execute("partition", g, a, ids, 0, faults=plan)
        got = zoo.execute("partition", g, a, ids, 0, engine="bulk", faults=plan)
        assert got.completed and got.faulted
        assert got.crashed == ref.crashed
        assert got.result.h_index == ref.result.h_index
        got.validate(g)  # survivor-restricted check under a live plan

    def test_bulk_rejects_duplicate_and_delay_plans(self):
        from repro.faults import MessageFaults
        from repro.runtime import BulkUnsupported

        g, a, ids = _instance(n=24)
        plan = FaultPlan(seed=1, messages=MessageFaults(duplicate=0.5))
        ex = zoo.execute(
            "partition", g, a, ids, 0, engine="bulk", faults=plan,
            capture_errors=True,
        )
        assert isinstance(ex.error, BulkUnsupported)

    def test_bulk_accepts_empty_fault_plan(self):
        g, a, ids = _instance(n=24)
        ex = zoo.execute("partition", g, a, ids, 0, engine="bulk", faults=FaultPlan())
        assert ex.completed and not ex.faulted


class TestModes:
    @pytest.mark.parametrize("name", ["partition", "mis", "consensus"])
    def test_async_agrees_with_sync_through_execute(self, name):
        workload = zoo.get(name).workloads or ("forest_union_a3",)
        g, a, ids = _instance(n=60, workload=workload[0])
        sync = zoo.execute(name, g, a, ids, 0)
        from repro.runtime import DelaySpec

        delays = DelaySpec(dist="uniform", scale=2.0, seed=7)
        async_ = zoo.execute(name, g, a, ids, 0, mode="async", delays=delays)
        payload = _PAYLOAD[zoo.get(name).problem]
        assert payload(async_.result) == payload(sync.result)
        assert async_.result.metrics.rounds == sync.result.metrics.rounds
        assert async_.mode == "async" and sync.mode == "sync"
        async_.validate(g)

    def test_async_fills_time_metrics_sync_leaves_none(self):
        g, a, ids = _instance(n=40)
        sync = zoo.execute("partition", g, a, ids, 0)
        async_ = zoo.execute("partition", g, a, ids, 0, mode="async")
        assert getattr(sync.result, "times", None) is None
        t = async_.result.times
        assert t is not None and t.vertex_averaged_time > 0

    def test_unknown_mode_rejected(self):
        g, a, ids = _instance(n=24)
        with pytest.raises(ValueError, match="mode"):
            zoo.execute("partition", g, a, ids, 0, mode="warp")

    def test_async_requires_fast_engine(self):
        g, a, ids = _instance(n=24)
        with pytest.raises(ValueError, match="fast"):
            zoo.execute("partition", g, a, ids, 0, mode="async", engine="bulk")

    def test_sync_rejects_delays(self):
        from repro.runtime import DelaySpec

        g, a, ids = _instance(n=24)
        with pytest.raises(ValueError, match="delays"):
            zoo.execute(
                "partition", g, a, ids, 0, delays=DelaySpec(dist="exp")
            )

    def test_manifest_records_mode_and_key_stability(self, tmp_path):
        from repro.obs import telemetry
        from repro.runtime import DelaySpec

        g, a, ids = _instance(n=40)
        p_sync = str(tmp_path / "s.jsonl")
        p_async = str(tmp_path / "a.jsonl")
        zoo.execute("partition", g, a, ids, 0, trace=p_sync)
        delays = DelaySpec(dist="exp", scale=1.5, seed=2)
        zoo.execute(
            "partition", g, a, ids, 0, mode="async", delays=delays,
            trace=p_async,
        )
        m_sync = telemetry.latest_manifest(telemetry.manifest_path(p_sync))
        m_async = telemetry.latest_manifest(telemetry.manifest_path(p_async))
        assert m_sync["mode"] == "sync" and m_async["mode"] == "async"
        assert m_async["delays"] == delays.to_dict()
        # mode folds into the content-address only for non-sync runs,
        # so pre-existing sync keys stay byte-stable
        assert m_sync["key"] != m_async["key"]


class TestFaults:
    def test_empty_plan_counts_as_fault_free(self):
        g, a, ids = _instance(n=40)
        ex = zoo.execute("partition", g, a, ids, 0, faults=FaultPlan())
        assert not ex.faulted
        assert ex.plan is None

    def test_crash_plan_reports_crashed_and_survivor_validates(self):
        g, a, ids = _instance(n=60)
        plan = FaultPlan(seed=9, crashes=CrashSpec(hazard=0.02))
        ex = zoo.execute("partition", g, a, ids, 0, faults=plan)
        assert ex.faulted
        assert ex.crashed  # this seed does crash vertices
        summary = ex.validate(g)
        assert "survivor-safety OK" in summary
        assert ex.alive(g) == set(g.vertices()) - set(ex.crashed)

    def test_watchdog_is_always_captured(self):
        # a crashed MIS participant leaves neighbors waiting forever
        g, a, ids = _instance(n=40, seed=5, workload="gnp_sparse")
        plan = FaultPlan(seed=2, crashes=CrashSpec(at={3: 2, 7: 1}))
        ex = zoo.execute("mis", g, a, ids, 5, faults=plan)
        assert ex.watchdog is not None
        assert not ex.completed
        with pytest.raises(RuntimeError, match="did not complete"):
            ex.validate(g)


class TestErrors:
    def _broken_spec(self):
        def chokes(g, ids=None, a=None):
            raise RuntimeError("deliberate")

        return zoo.AlgorithmSpec(
            name="_broken",
            problem="coloring",
            driver=zoo.DriverRef.make(fn=chokes),
        )

    def test_errors_raise_by_default(self):
        g, a, ids = _instance(n=24)
        with pytest.raises(RuntimeError, match="deliberate"):
            zoo.execute(self._broken_spec(), g, a, ids, 0)

    def test_capture_errors_returns_them(self):
        g, a, ids = _instance(n=24)
        ex = zoo.execute(
            self._broken_spec(), g, a, ids, 0, capture_errors=True
        )
        assert isinstance(ex.error, RuntimeError)
        assert not ex.completed


class TestObs:
    def test_trace_written_with_registry_meta(self, tmp_path):
        g, a, ids = _instance(n=40)
        path = str(tmp_path / "run.jsonl")
        ex = zoo.execute(
            "a2", g, a, ids, 0, trace=path, trace_meta={"extra": "x"}
        )
        assert ex.completed
        with open(path) as fh:
            head = json.loads(fh.readline())
        meta = head.get("meta", head)
        assert meta["algo"] == "a2"
        assert meta["engine"] == "fast"
        assert meta["extra"] == "x"

    def test_bulk_trace_meta_records_engine(self, tmp_path):
        g, a, ids = _instance(n=40)
        path = str(tmp_path / "bulk.jsonl")
        ex = zoo.execute("partition", g, a, ids, 0, engine="bulk", trace=path)
        assert ex.completed
        with open(path) as fh:
            head = json.loads(fh.readline())
        meta = head.get("meta", head)
        assert meta["engine"] == "bulk"

    def test_profile_attaches_phase_profiler(self):
        g, a, ids = _instance(n=40)
        ex = zoo.execute("mis", g, a, ids, 0, profile=True)
        assert ex.profiler is not None
        report = ex.profiler.report()
        assert "step" in report

    def test_validation_failure_propagates(self):
        g, a, ids = _instance(n=40)
        ex = zoo.execute("a2", g, a, ids, 0)
        u, v = next(iter(g.edges()))
        ex.result.colors[u] = ex.result.colors[v]
        with pytest.raises(VerificationError):
            ex.validate(g)

"""Exhaustive validation on *every* graph with up to 5 vertices (and a
dense sample of 6-vertex graphs): the algorithms and the exact-arboricity
oracle are checked against brute force, leaving no small-case corner
untested."""

import itertools

import pytest

import repro
from repro.graphs.arboricity import arboricity_exact
from repro.graphs.graph import Graph
from repro.verify import (
    assert_h_partition,
    assert_maximal_independent_set,
    assert_maximal_matching,
    assert_proper_coloring,
    assert_proper_edge_coloring,
)


def all_graphs(n: int):
    pairs = list(itertools.combinations(range(n), 2))
    for mask in range(1 << len(pairs)):
        yield Graph(n, [e for i, e in enumerate(pairs) if mask >> i & 1])


def brute_force_arboricity(g: Graph) -> int:
    """Minimal k such that the edges split into k forests, by exhaustive
    assignment with pruning."""
    edges = list(g.edges())
    if not edges:
        return 0

    def feasible(k: int) -> bool:
        forests = [Graph(g.n) for _ in range(k)]
        assignment = [[] for _ in range(k)]

        def rec(i: int) -> bool:
            if i == len(edges):
                return True
            for j in range(k):
                cand = assignment[j] + [edges[i]]
                if Graph(g.n, cand).is_forest():
                    assignment[j] = cand
                    if rec(i + 1):
                        return True
                    assignment[j] = cand[:-1]
            return False

        return rec(0)

    k = 1
    while not feasible(k):
        k += 1
    return k


@pytest.mark.parametrize("n", [1, 2, 3, 4])
def test_exhaustive_arboricity_matches_brute_force(n):
    for g in all_graphs(n):
        assert arboricity_exact(g) == brute_force_arboricity(g)


def test_arboricity_brute_force_sample_n5():
    import random

    rng = random.Random(0)
    graphs = list(all_graphs(5))
    for g in rng.sample(graphs, 60):
        assert arboricity_exact(g) == brute_force_arboricity(g)


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
def test_exhaustive_partition_and_mis(n):
    for idx, g in enumerate(all_graphs(n)):
        a = max(1, arboricity_exact(g))
        part = repro.run_partition(g, a=a)
        assert_h_partition(g, part.h_index, part.A)
        mis = repro.run_mis(g, a=a)
        assert_maximal_independent_set(g, mis.mis)


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_exhaustive_colorings_and_matchings(n):
    for g in all_graphs(n):
        a = max(1, arboricity_exact(g))
        col = repro.run_a2logn_coloring(g, a=a)
        assert_proper_coloring(g, col.colors, max_colors=col.palette_bound)
        dp1 = repro.run_delta_plus_one_coloring(g, a=a)
        assert_proper_coloring(g, dp1.colors, max_colors=g.max_degree() + 1)
        mm = repro.run_maximal_matching(g, a=a)
        assert_maximal_matching(g, mm.matching)
        ec = repro.run_edge_coloring(g, a=a)
        assert_proper_edge_coloring(
            g, ec.edge_colors, max_colors=max(2 * g.max_degree() - 1, 1)
        )

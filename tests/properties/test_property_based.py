"""Property-based tests (hypothesis): algorithm invariants over random
graphs, ID assignments and parameters."""

from hypothesis import given, settings, strategies as st

import repro
from repro.graphs import generators as gen
from repro.graphs.arboricity import arboricity_exact, degeneracy
from repro.verify import (
    assert_h_partition,
    assert_maximal_independent_set,
    assert_maximal_matching,
    assert_proper_coloring,
    assert_proper_edge_coloring,
)

graphs = st.builds(
    gen.gnp,
    n=st.integers(min_value=1, max_value=40),
    p=st.floats(min_value=0.0, max_value=0.35),
    seed=st.integers(min_value=0, max_value=10**6),
)

eps_values = st.sampled_from([0.25, 0.5, 1.0, 2.0])


def _a_bound(g):
    return max(1, degeneracy(g))


@settings(max_examples=30, deadline=None)
@given(g=graphs, eps=eps_values)
def test_partition_invariants(g, eps):
    res = repro.run_partition(g, a=_a_bound(g), eps=eps)
    assert_h_partition(g, res.h_index, res.A)
    m = res.metrics
    assert m.check_active_trace()
    assert m.vertex_averaged <= m.worst_case
    # Lemma 6.1 decay
    ratio = 2.0 / (2.0 + eps)
    for i, n_i in enumerate(m.active_trace, start=1):
        assert n_i <= ratio ** (i - 1) * g.n + 1e-9


@settings(max_examples=20, deadline=None)
@given(g=graphs, seed=st.integers(min_value=0, max_value=1000))
def test_coloring_invariants_random_ids(g, seed):
    if g.n == 0:
        return
    ids = gen.random_ids(g.n, seed=seed, id_space=4 * g.n + 17)
    res = repro.run_a2logn_coloring(g, a=_a_bound(g), ids=ids)
    assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)


@settings(max_examples=20, deadline=None)
@given(g=graphs)
def test_oa_coloring_invariants(g):
    if g.n == 0:
        return
    a = _a_bound(g)
    res = repro.run_oa_coloring(g, a=a)
    assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)


@settings(max_examples=20, deadline=None)
@given(g=graphs)
def test_mis_invariants(g):
    if g.n == 0:
        return
    res = repro.run_mis(g, a=_a_bound(g))
    assert_maximal_independent_set(g, res.mis)


@settings(max_examples=15, deadline=None)
@given(g=graphs)
def test_matching_and_edge_coloring_invariants(g):
    if g.n == 0:
        return
    a = _a_bound(g)
    mm = repro.run_maximal_matching(g, a=a)
    assert_maximal_matching(g, mm.matching)
    ec = repro.run_edge_coloring(g, a=a)
    assert_proper_edge_coloring(
        g, ec.edge_colors, max_colors=max(2 * g.max_degree() - 1, 1)
    )


@settings(max_examples=15, deadline=None)
@given(g=graphs, seed=st.integers(min_value=0, max_value=100))
def test_randomized_invariants(g, seed):
    if g.n == 0:
        return
    res = repro.run_rand_delta_plus_one(g, seed=seed)
    assert_proper_coloring(g, res.colors, max_colors=g.max_degree() + 1)


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    a=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_one_plus_eta_invariants(n, a, seed):
    g = gen.union_of_forests(n, a, seed=seed)
    res = repro.run_one_plus_eta_coloring(g, a=a, C=3)
    assert_proper_coloring(g, res.colors)


@settings(max_examples=10, deadline=None)
@given(
    g=graphs,
    d=st.integers(min_value=0, max_value=4),
)
def test_defective_invariants(g, d):
    if g.n == 0:
        return
    res = repro.run_defective_coloring(g, d=d)
    from repro.verify import assert_defective_coloring

    assert_defective_coloring(g, res.colors, max_defect=d, max_colors=res.palette_bound)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=200),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_ring_three_coloring_invariants(n, seed):
    g = gen.ring(n)
    ids = gen.random_ids(n, seed=seed, id_space=2 * n + 3)
    res = repro.run_ring_three_coloring(g, ids=ids)
    assert_proper_coloring(g, res.colors, max_colors=3)


@settings(max_examples=12, deadline=None)
@given(g=graphs, k=st.integers(min_value=1, max_value=3))
def test_segmentation_invariants(g, k):
    if g.n == 0:
        return
    res = repro.run_ka2_coloring(g, a=_a_bound(g), k=k)
    assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)

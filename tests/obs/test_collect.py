"""MetricsCollector: per-vertex/per-round aggregation and the Lemma 6.1
shape check, pinned against the engine's own RoundMetrics."""

import repro
from repro import obs
from repro.graphs import generators as gen
from repro.obs.collect import MetricsCollector
from repro.obs.events import Broadcast, EventBus, Halt, RoundEnd, RoundStart
from repro.runtime.network import SyncNetwork


def test_collector_matches_engine_metrics_on_partition():
    g = gen.union_of_forests(300, 3, seed=1)
    with obs.collecting() as col:
        res = repro.run_partition(g, a=3)
    m = res.metrics
    assert col.decay_curve() == list(m.active_trace)
    assert col.delivered == list(m.messages_per_round)
    assert col.vertex_averaged() == m.vertex_averaged
    assert col.worst_case() == m.worst_case
    assert col.n == g.n
    assert sorted(col.termination_round.items()) == [
        (v, r) for v, r in enumerate(m.rounds)
    ]


def test_round_histogram_and_terminations():
    g = gen.path(4)

    def program(ctx):
        for _ in range(ctx.v):
            yield
        return None

    col = MetricsCollector()
    SyncNetwork(g).run(program, bus=EventBus(col))
    assert col.round_histogram() == {1: 1, 2: 1, 3: 1, 4: 1}
    assert col.terminations_per_round() == [1, 1, 1, 1]
    assert col.worst_case() == 4
    assert col.vertex_averaged() == 2.5


def test_commit_rounds_follow_feuilloley_definition():
    g = gen.ring(4)

    def program(ctx):
        yield
        ctx.commit(ctx.v * 10)
        yield
        yield
        return None

    col = MetricsCollector()
    res = SyncNetwork(g).run(program, bus=EventBus(col))
    assert set(col.commit_round.values()) == {2}
    assert col.commits_per_round() == [0, 4]
    assert res.output_rounds == (2, 2, 2, 2)


def test_sent_vs_delivered_vs_dropped_accounting():
    """sent counts program payloads; delivered is the engine's traffic
    (net of same-round drops, plus halt notices); dropped explains the
    difference."""
    g = gen.path(3)

    def program(ctx):
        if ctx.v == 0:
            return None
            yield
        ctx.broadcast("x")
        yield
        return None

    col = MetricsCollector()
    res = SyncNetwork(g).run(program, bus=EventBus(col))
    # Vertices 1 and 2 broadcast in round 1 (2 + 1 payloads); vertex 0
    # halts the same round, so the payload addressed to it is dropped.
    assert col.total_sent() == 3
    assert col.total_dropped() == 1
    assert col.total_delivered() == 5  # 2 surviving payloads + 3 halt notices
    assert col.delivered == list(res.metrics.messages_per_round)


def test_decay_shape_check():
    col = MetricsCollector()
    for rnd, active in enumerate([100, 40, 12, 3, 1], start=1):
        col.emit(RoundStart(rnd, active))
    assert col.decay_curve() == [100, 40, 12, 3, 1]
    ratios = col.decay_ratios()
    assert ratios[0] == 0.4
    # round 4 -> 5 ratio is 1/3 <= 1/2; everything passes at warmup 0
    assert col.check_decay(warmup=0, ratio=0.5)
    # tighter ratio fails on the first transition but passes after warm-up
    assert not col.check_decay(warmup=0, ratio=0.35)
    assert col.check_decay(warmup=1, ratio=0.35)


def test_decay_check_rejects_non_monotone():
    col = MetricsCollector()
    for rnd, active in enumerate([10, 4, 6, 1], start=1):
        col.emit(RoundStart(rnd, active))
    assert not col.check_decay(warmup=10, ratio=1.0)


def test_inbox_occupancy():
    col = MetricsCollector()
    col.emit(RoundStart(1, 4))
    col.emit(Broadcast(1, 0, 3))
    col.emit(Broadcast(1, 1, 3))
    col.emit(RoundEnd(1, 6, 3, 0))
    col.emit(RoundStart(2, 4))
    col.emit(RoundEnd(2, 0, 0, 4))
    for v in range(4):
        col.emit(Halt(2, v))
    assert col.inbox_occupancy() == [2.0, 0.0]
    assert col.receivers == [3, 0]


def test_summary_renders():
    g = gen.star(5)

    def program(ctx):
        ctx.broadcast("m")
        yield
        return None

    col = MetricsCollector()
    SyncNetwork(g).run(program, bus=EventBus(col))
    s = col.summary()
    assert "n=5" in s and "avg=" in s and "sent=" in s


def test_round_sends_is_authoritative_no_double_count():
    """An aggregate ``round_sends`` record owns its round: per-call
    send/broadcast events for the same round are ignored whether they
    arrive before or after it, so mixed-granularity streams never
    double-count."""
    from repro.obs.events import RoundSends, Send

    col = MetricsCollector()
    col.emit(RoundStart(1, 3))
    col.emit(Broadcast(1, 0, 2))
    col.emit(Send(1, 1, 0))
    col.emit(RoundEnd(1, 3, 2, 1))
    col.emit(RoundStart(2, 2))
    col.emit(Broadcast(2, 0, 5))  # before the aggregate: overwritten
    col.emit(RoundSends(2, 7))
    col.emit(Broadcast(2, 1, 5))  # after the aggregate: ignored
    col.emit(Send(2, 1, 0))
    col.emit(RoundEnd(2, 7, 1, 2))
    assert col.sent == [3, 7]
    assert col.total_sent() == 10


def test_aggregate_only_stream_supports_per_vertex_accessors():
    """A pure aggregate-granularity trace (the bulk engine: no per-vertex
    ``halt`` events at all) still answers every per-vertex question from
    the ``round_end.halts`` counts."""
    from repro.obs.events import RoundSends

    col = MetricsCollector()
    col.emit(RoundStart(1, 4))
    col.emit(RoundSends(1, 6))
    col.emit(RoundEnd(1, 6, 3, 1))
    col.emit(RoundStart(2, 3))
    col.emit(RoundSends(2, 4))
    col.emit(RoundEnd(2, 4, 0, 3))
    assert col.n == 4
    assert col.round_histogram() == {1: 1, 2: 3}
    assert col.terminations_per_round() == [1, 3]
    assert col.vertex_averaged() == (1 * 1 + 2 * 3) / 4
    assert col.worst_case() == 2
    assert col.decay_curve() == [4, 3]
    assert col.sent == [6, 4] and col.delivered == [6, 4]


def test_mixed_granularity_rounds_histogram_totals():
    """A stream that switches granularity *between rounds* -- per-vertex
    events in round 1, pure aggregates in round 2, both granularities in
    round 3 -- must keep the send totals and the termination-round
    histogram exact: every vertex counted exactly once, sends never
    double-counted."""
    from repro.obs.events import RoundSends, Send

    col = MetricsCollector()
    # round 1: per-vertex granularity (generator engines)
    col.emit(RoundStart(1, 6))
    col.emit(Broadcast(1, 0, 3))
    col.emit(Send(1, 1, 0))
    col.emit(Halt(1, 5))
    col.emit(RoundEnd(1, 4, 2, 1))
    # round 2: aggregate granularity (bulk engine)
    col.emit(RoundStart(2, 5))
    col.emit(RoundSends(2, 8))
    col.emit(RoundEnd(2, 8, 3, 2))
    # round 3: both -- the aggregate owns sends, per-vertex halts win
    col.emit(RoundStart(3, 3))
    col.emit(Broadcast(3, 0, 4))  # ignored: RoundSends is authoritative
    col.emit(RoundSends(3, 5))
    col.emit(Halt(3, 0))
    col.emit(Halt(3, 1))
    col.emit(Halt(3, 2))
    col.emit(RoundEnd(3, 5, 0, 3))
    assert col.sent == [4, 8, 5]
    assert col.total_sent() == 17
    # histogram totals: 6 vertices, each terminating exactly once
    hist = col.round_histogram()
    assert hist == {1: 1, 2: 2, 3: 3}
    assert sum(hist.values()) == col.n == 6
    assert col.terminations_per_round() == [1, 2, 3]
    assert col.vertex_averaged() == (1 * 1 + 2 * 2 + 3 * 3) / 6
    assert col.worst_case() == 3


def test_per_vertex_halts_take_precedence_over_aggregate_halts():
    """When both granularities are present (a generator-engine trace:
    ``halt`` events *and* ``round_end.halts``), the per-vertex record wins
    and nothing is counted twice."""
    col = MetricsCollector()
    col.emit(RoundStart(1, 2))
    col.emit(Halt(1, 0))
    col.emit(Halt(1, 1))
    col.emit(RoundEnd(1, 2, 0, 2))
    assert col.n == 2
    assert col.terminations_per_round() == [2]
    assert col.round_histogram() == {1: 2}
    assert col.vertex_averaged() == 1.0


def test_bulk_and_fast_traces_collect_identically():
    """End-to-end: collecting a bulk run and a fast run of the same
    driver yields the same statistics despite the different event
    granularities."""
    from repro.runtime import engine_session

    g = gen.union_of_forests(300, 3, seed=1)
    with obs.collecting() as col_fast:
        repro.run_partition(g, a=3)
    with engine_session("bulk"):
        with obs.collecting() as col_bulk:
            repro.run_partition(g, a=3)
    assert col_bulk.decay_curve() == col_fast.decay_curve()
    assert col_bulk.sent == col_fast.sent
    assert col_bulk.delivered == col_fast.delivered
    assert col_bulk.receivers == col_fast.receivers
    assert col_bulk.n == col_fast.n
    assert col_bulk.vertex_averaged() == col_fast.vertex_averaged()
    assert col_bulk.worst_case() == col_fast.worst_case()
    assert (
        col_bulk.terminations_per_round() == col_fast.terminations_per_round()
    )
    # the one documented granularity gap: aggregate traces carry no
    # per-destination drop records (sent/delivered already embed them)
    assert col_fast.total_dropped() == sum(col_fast.sent) - sum(
        d - h for d, h in zip(col_fast.delivered, col_fast.halts)
    )
    assert col_bulk.total_dropped() == 0

"""The event layer itself: typed events, the bus, and the sinks."""

import json

import pytest

from repro import obs
from repro.graphs import generators as gen
from repro.obs.events import (
    EVENT_TYPES,
    Broadcast,
    Checkpoint,
    Commit,
    Delivery,
    Drop,
    EventBus,
    FaultCrash,
    FaultDelay,
    FaultDrop,
    FaultDup,
    Halt,
    RoundEnd,
    RoundSends,
    RoundStart,
    Send,
    WorkerLost,
    WorkerRestart,
    from_record,
)
from repro.obs.sinks import JsonlSink, MemorySink, NullSink
from repro.runtime.network import SyncNetwork


def _sample_events():
    return [
        RoundStart(1, 5),
        Send(1, 0, 1),
        Broadcast(1, 2, 3),
        RoundSends(1, 7),
        Commit(1, 4),
        Halt(1, 4),
        Drop(1, 4, 2),
        Delivery(2, 0, 1, 1.5),
        FaultCrash(1, 4),
        FaultDrop(2, 0, 1),
        FaultDup(2, 0, 1),
        FaultDelay(2, 0, 1, 3),
        WorkerLost(3, 1),
        WorkerRestart(3, 2),
        Checkpoint(3, 4),
        RoundEnd(1, 4, 3, 1),
    ]


def test_every_kind_roundtrips_through_records():
    for ev in _sample_events():
        rec = ev.to_record()
        assert rec["ev"] == ev.kind
        back = from_record(json.loads(json.dumps(rec)))
        assert back == ev
        assert type(back) is type(ev)


def test_unknown_and_meta_records_deserialize_to_none():
    assert from_record({"ev": "meta", "schema": 1}) is None
    assert from_record({"ev": "warp", "round": 3}) is None
    assert from_record({}) is None


def test_registry_covers_the_issue_event_vocabulary():
    assert set(EVENT_TYPES) == {
        "round_start",
        "round_end",
        "round_sends",
        "send",
        "broadcast",
        "commit",
        "halt",
        "drop",
        "fault_crash",
        "fault_drop",
        "fault_dup",
        "fault_delay",
        "delivery",
        "worker_lost",
        "worker_restart",
        "checkpoint",
    }


def test_bus_partitions_live_and_inert_sinks():
    mem = MemorySink()
    bus = EventBus(NullSink(), mem)
    assert bus.active
    bus.emit(RoundStart(1, 2))
    assert mem.events == [RoundStart(1, 2)]

    null_only = EventBus(NullSink())
    assert not null_only.active
    assert EventBus().active is False


def test_null_sink_bus_never_wires_contexts():
    """The cost contract's mechanism: with no live sink the engine leaves
    ``ctx._bus`` unset, so send/broadcast never construct events."""
    g = gen.ring(6)

    seen = []

    def program(ctx):
        seen.append(ctx._bus)
        ctx.broadcast("x")
        yield
        return None

    SyncNetwork(g).run(program, bus=EventBus(NullSink()))
    assert seen and all(b is None for b in seen)

    seen.clear()
    bus = EventBus(MemorySink())
    SyncNetwork(g).run(program, bus=bus)
    assert seen and all(b is bus for b in seen)


def test_jsonl_sink_writes_meta_header_and_events(tmp_path):
    path = str(tmp_path / "t.jsonl")
    sink = JsonlSink(path, meta={"algo": "demo", "n": 4})
    for ev in _sample_events():
        sink.emit(ev)
    sink.close()
    sink.close()  # idempotent

    lines = [json.loads(s) for s in open(path).read().splitlines()]
    assert lines[0]["ev"] == "meta"
    assert lines[0]["schema"] == obs.SCHEMA_VERSION
    assert lines[0]["algo"] == "demo"
    rebuilt = [from_record(rec) for rec in lines[1:]]
    assert rebuilt == _sample_events()


def test_session_installs_and_restores_default_bus():
    assert obs.current() is None
    with obs.session(MemorySink()) as bus:
        assert obs.current() is bus
        with obs.session(MemorySink()) as inner:
            assert obs.current() is inner
        assert obs.current() is bus
    assert obs.current() is None


def test_run_picks_up_installed_default_bus():
    g = gen.path(3)

    def program(ctx):
        ctx.broadcast("hello")
        yield
        return ctx.v

    mem = MemorySink()
    with obs.session(mem):
        SyncNetwork(g).run(program)
    kinds = {e.kind for e in mem.events}
    assert {"round_start", "broadcast", "halt", "round_end"} <= kinds

    # outside the session nothing is observed
    mem.clear()
    SyncNetwork(g).run(program)
    assert mem.events == []


def test_explicit_bus_overrides_installed_default():
    g = gen.path(3)

    def program(ctx):
        yield
        return None

    default_mem, explicit_mem = MemorySink(), MemorySink()
    with obs.session(default_mem):
        SyncNetwork(g).run(program, bus=EventBus(explicit_mem))
    assert default_mem.events == []
    assert explicit_mem.events


def test_profiler_collects_engine_phases_even_on_inactive_bus():
    g = gen.ring(8)

    def program(ctx):
        for _ in range(3):
            ctx.broadcast("x")
            yield
        return None

    prof = obs.PhaseProfiler()
    SyncNetwork(g).run(program, bus=EventBus(NullSink(), profiler=prof))
    assert set(prof.seconds) == {"deliver", "step", "route"}
    # one hit per phase per round (4 rounds: 3 broadcasts + final return)
    assert prof.counts["step"] == 4
    assert prof.total() > 0.0
    report = prof.report()
    assert "step" in report and "share" in report
    d = prof.as_dict()
    assert pytest.approx(sum(p["share"] for p in d.values())) == 1.0

"""The telemetry layer: metrics registry + exporters, run manifests,
and the timeline renderer.

Three contracts are pinned here:

* the registry's exposition invariants -- kind safety, Prometheus text
  grammar, cumulative histogram buckets whose ``_sum/_count`` recover
  the vertex-averaged complexity T-bar;
* the manifest content address -- stable across repeat runs of the same
  experiment, different the moment any identity field (spec, workload,
  n, seed, fault plan) changes, and *insensitive* to mechanics like the
  engine (all engines are pinned bit-identical);
* the manifest file format -- JSONL appended next to the trace, with
  the same torn-final-line crash tolerance as the event-trace reader.
"""

import json

import pytest

import repro
from repro import obs, zoo
from repro.graphs import generators as gen
from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunManifest,
    build_manifest,
    latest_manifest,
    manifest_path,
    plan_fingerprint,
    read_manifests,
    registry_from_collector,
    render_timeline,
    spec_fingerprint,
    write_manifest,
)


# ---------------------------------------------------------------------------
# typed metrics
# ---------------------------------------------------------------------------


def test_counter_only_goes_up():
    c = Counter("repro_test_total")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError, match="only go up"):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("repro_rounds")
    g.set(7)
    g.inc(2)
    g.dec(4)
    assert g.value == 5


def test_histogram_mean_quantile_and_bulk_observe():
    h = Histogram("repro_termination_round")
    h.observe(1, count=3)
    h.observe(2, count=1)
    h.observe(2)  # singleton observe merges into the same bucket
    assert h.count == 5
    assert h.sum == 7
    assert h.mean() == 1.4
    assert h.quantile(0.5) == 1
    assert h.quantile(1.0) == 2
    h.observe(9, count=0)  # a zero-count observation is a no-op
    assert 9.0 not in h.buckets


def test_metric_names_follow_prometheus_grammar():
    with pytest.raises(ValueError, match="invalid metric name"):
        Counter("bad-name")
    with pytest.raises(ValueError, match="invalid metric name"):
        Gauge("0starts_with_digit")


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------


def test_registry_get_or_create_is_keyed_by_name_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("repro_msgs_total", labels={"engine": "fast"})
    b = reg.counter("repro_msgs_total", labels={"engine": "fast"})
    c = reg.counter("repro_msgs_total", labels={"engine": "bulk"})
    assert a is b
    assert a is not c
    assert len(reg) == 2


def test_registry_rejects_kind_conflicts():
    reg = MetricsRegistry()
    reg.counter("repro_x")
    with pytest.raises(TypeError, match="already registered as counter"):
        reg.gauge("repro_x")


def test_json_export_round_trips():
    reg = MetricsRegistry()
    reg.counter("repro_msgs_total", labels={"engine": "fast"}).inc(10)
    reg.histogram("repro_rounds_hist").observe(2, count=4)
    data = json.loads(reg.to_json())
    assert data["repro_msgs_total"][0]["value"] == 10
    assert data["repro_rounds_hist"][0]["buckets"] == {"2": 4}
    assert data["repro_rounds_hist"][0]["count"] == 4


def test_prometheus_exposition_format():
    reg = MetricsRegistry()
    reg.counter("repro_msgs_total", "messages", {"engine": "fast"}).inc(3)
    h = reg.histogram("repro_round", "termination rounds")
    h.observe(1, count=2)
    h.observe(3, count=1)
    text = reg.to_prometheus()
    lines = text.splitlines()
    assert "# HELP repro_msgs_total messages" in lines
    assert "# TYPE repro_msgs_total counter" in lines
    assert 'repro_msgs_total{engine="fast"} 3' in lines
    assert "# TYPE repro_round histogram" in lines
    # cumulative buckets over the exact observed values, then +Inf
    assert 'repro_round_bucket{le="1"} 2' in lines
    assert 'repro_round_bucket{le="3"} 3' in lines
    assert 'repro_round_bucket{le="+Inf"} 3' in lines
    assert "repro_round_sum 5" in lines
    assert "repro_round_count 3" in lines
    assert text.endswith("\n")


def test_registry_from_collector_carries_the_tbar_distribution():
    """The exported termination-round histogram *is* Lemma 6.1's
    distribution: count n, sum RoundSum, mean T-bar, max bucket T."""
    g = gen.union_of_forests(200, 3, seed=1)
    with obs.collecting() as col:
        res = repro.run_partition(g, a=3)
    m = res.metrics
    reg = registry_from_collector(col, labels={"algo": "partition"})
    hist = reg.histogram("repro_termination_round", labels={"algo": "partition"})
    assert hist.count == g.n
    assert hist.sum == m.round_sum
    assert hist.mean() == m.vertex_averaged
    assert max(hist.buckets) == m.worst_case
    assert (
        reg.counter(
            "repro_messages_sent_total", labels={"algo": "partition"}
        ).value
        == col.total_sent()
    )
    text = reg.to_prometheus()
    assert 'repro_termination_round_bucket{algo="partition",le=' in text


# ---------------------------------------------------------------------------
# fingerprints and the manifest content address
# ---------------------------------------------------------------------------


def test_spec_fingerprint_distinguishes_baseline_from_averaged():
    spec = zoo.get("partition")
    assert spec_fingerprint(spec) == spec_fingerprint(spec)
    assert spec_fingerprint(spec) != spec_fingerprint(spec, baseline=True)
    assert spec_fingerprint(spec) != spec_fingerprint(zoo.get("mis"))


def test_plan_fingerprint_empty_and_stable():
    from repro.faults import CrashSpec, FaultPlan

    assert plan_fingerprint(None) == ""
    assert plan_fingerprint(FaultPlan(seed=1)) == ""  # empty plan
    plan = FaultPlan(seed=1, crashes=CrashSpec(at={3: 1}))
    assert plan_fingerprint(plan) == plan_fingerprint(plan)
    other = FaultPlan(seed=2, crashes=CrashSpec(at={3: 1}))
    assert plan_fingerprint(plan) != plan_fingerprint(other)


def _execute(seed=0, engine="fast", **kw):
    g = gen.union_of_forests(80, 3, seed=5)
    return zoo.execute("partition", g, 3, None, seed, engine=engine, **kw)


def test_manifest_key_stable_across_repeat_runs():
    assert _execute().manifest.key == _execute().manifest.key


def test_manifest_key_sensitive_to_identity_insensitive_to_engine():
    base = _execute().manifest
    assert _execute(seed=9).manifest.key != base.key
    # engines are bit-identical: same experiment, same content address
    bulk = _execute(engine="bulk").manifest
    assert bulk.key == base.key
    assert bulk.engine == "bulk" and base.engine == "fast"


def test_manifest_mode_folds_into_key_only_when_async():
    from repro.runtime import DelaySpec

    base = _execute().manifest
    assert base.mode == "sync" and base.delays == {}
    # sync keys must not mention the mode: every pre-existing sync
    # content address stays byte-stable across this feature
    assert "mode" not in json.dumps(base.to_record()["key"])
    d = DelaySpec(dist="uniform", scale=2.0, seed=3)
    async_ = _execute(mode="async", delays=d).manifest
    assert async_.mode == "async" and async_.delays == d.to_dict()
    assert async_.key != base.key
    # the delay model is identity for async runs: a different seed is a
    # different experiment
    other = _execute(mode="async", delays=DelaySpec(dist="uniform",
                                                    scale=2.0, seed=4))
    assert other.manifest.key != async_.key
    # round-trip keeps the mode block
    back = RunManifest.from_record(
        json.loads(json.dumps(async_.to_record()))
    )
    assert back == async_


def test_manifest_records_timing_and_metrics_digest():
    ex = _execute(profile=True)
    man = ex.manifest
    assert man.status == "ok"
    assert man.timing["wall_s"] > 0
    assert "phases" in man.timing  # the profiler's flat phase store
    assert man.metrics["vertex_averaged"] == ex.result.metrics.vertex_averaged
    assert man.metrics["total_messages"] == ex.result.metrics.total_messages
    assert man.env["python"]  # runtime env block is populated


def test_manifest_record_round_trip():
    man = _execute().manifest
    rec = man.to_record()
    assert rec["ev"] == "manifest"
    back = RunManifest.from_record(json.loads(json.dumps(rec)))
    assert back == man
    assert back.key == man.key == rec["key"]


# ---------------------------------------------------------------------------
# the manifest file next to the trace
# ---------------------------------------------------------------------------


def test_execute_writes_manifest_next_to_trace(tmp_path):
    trace = str(tmp_path / "run.jsonl")
    ex = _execute(trace=trace)
    mpath = manifest_path(trace)
    assert mpath == trace + ".manifest.jsonl"
    rec = latest_manifest(mpath)
    assert rec is not None
    assert rec["key"] == ex.manifest.key
    assert RunManifest.from_record(rec) == ex.manifest


def test_manifest_file_accumulates_history(tmp_path):
    trace = str(tmp_path / "run.jsonl")
    _execute(trace=trace)
    _execute(seed=9, trace=trace)
    records, truncated = read_manifests(manifest_path(trace))
    assert len(records) == 2 and not truncated
    assert records[0]["key"] != records[1]["key"]
    assert latest_manifest(manifest_path(trace)) == records[1]


def test_read_manifests_tolerates_torn_final_line(tmp_path):
    path = str(tmp_path / "m.jsonl")
    spec = zoo.get("partition")
    write_manifest(build_manifest(spec, n=10, seed=0), path)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"ev": "manifest", "torn')  # writer died mid-record
    records, truncated = read_manifests(path)
    assert len(records) == 1 and truncated


def test_read_manifests_rejects_mid_file_corruption(tmp_path):
    path = str(tmp_path / "m.jsonl")
    spec = zoo.get("partition")
    write_manifest(build_manifest(spec, n=10, seed=0), path)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("garbage\n")
    write_manifest(build_manifest(spec, n=10, seed=1), path)
    with pytest.raises(ValueError, match="corrupt manifest record on line 2"):
        read_manifests(path)


# ---------------------------------------------------------------------------
# timeline rendering
# ---------------------------------------------------------------------------


def test_render_timeline_with_shard_breakdown():
    timing = {
        "wall_s": 1.25,
        "phases": {"finalize": {"seconds": 0.2, "count": 1}},
        "shards": {
            "0": {
                "compute": {"seconds": 0.5, "count": 1},
                "barrier": {"seconds": 0.1, "count": 8},
            },
            "1": {
                "compute": {"seconds": 0.4, "count": 1},
                "barrier": {"seconds": 0.2, "count": 8},
            },
        },
    }
    text = render_timeline(timing)
    assert "wall" in text and "1.2500" in text
    assert "finalize" in text
    assert "shard" in text and "compute" in text and "barrier" in text
    lines = text.splitlines()
    assert any(line.lstrip().startswith("0 ") for line in lines)
    assert any(line.lstrip().startswith("1 ") for line in lines)
    assert any(line.lstrip().startswith("sum") for line in lines)


def test_render_timeline_empty_points_at_profile_flag():
    assert "--profile" in render_timeline({})
    assert "--profile" in render_timeline({"phases": {}, "shards": {}})

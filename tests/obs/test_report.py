"""Offline trace analysis: loading, segmentation, narrative, decay table,
and trace-vs-trace diffing."""

import json

import repro
from repro import obs
from repro.graphs import generators as gen
from repro.obs import report
from repro.obs.collect import MetricsCollector
from repro.obs.events import EventBus, RoundStart
from repro.obs.sinks import MemorySink
from repro.runtime.network import SyncNetwork
from repro.runtime.reference import ReferenceSyncNetwork


def _capture_partition(tmp_path, name, cls=None):
    path = str(tmp_path / name)
    g = gen.union_of_forests(200, 3, seed=2)
    if cls is None:
        with obs.capture(path, meta={"algo": "partition"}):
            repro.run_partition(g, a=3)
    else:
        from repro.core.common import LocalView, degree_bound
        from repro.core.partition import join_h_set

        A = degree_bound(3, 1.0)

        def program(ctx):
            view = LocalView()
            h = yield from join_h_set(ctx, view, A)
            return h

        with obs.capture(path, meta={"algo": "partition"}):
            cls(g, config={"a": 3, "eps": 1.0, "A": A}).run(program)
    return path


def test_load_records_and_meta(tmp_path):
    path = _capture_partition(tmp_path, "trace.jsonl")
    meta, records = report.load_records(path)
    assert meta["ev"] == "meta" and meta["algo"] == "partition"
    assert all(r["ev"] != "meta" for r in records)
    assert any(r["ev"] == "round_start" for r in records)


def test_run_report_reproduces_engine_statistics(tmp_path):
    g = gen.union_of_forests(250, 3, seed=3)
    path = str(tmp_path / "trace.jsonl")
    with obs.capture(path):
        res = repro.run_partition(g, a=3)
    rep = report.RunReport.from_path(path)
    assert len(rep.collectors) == 1
    col = rep.main
    assert col.decay_curve() == list(res.metrics.active_trace)
    assert col.delivered == list(res.metrics.messages_per_round)
    assert col.vertex_averaged() == res.metrics.vertex_averaged
    assert col.worst_case() == res.metrics.worst_case


def test_segmentation_splits_consecutive_executions(tmp_path):
    """Two engine runs into one trace file segment at the round reset."""
    g = gen.ring(5)

    def program(ctx):
        ctx.broadcast("x")
        yield
        yield
        return None

    path = str(tmp_path / "two.jsonl")
    with obs.capture(path):
        SyncNetwork(g).run(program)
        SyncNetwork(g).run(program)
    rep = report.RunReport.from_path(path)
    assert len(rep.collectors) == 2
    assert [c.n for c in rep.collectors] == [5, 5]
    assert rep.main.n == 5


def test_narrative_and_decay_table(tmp_path):
    path = _capture_partition(tmp_path, "trace.jsonl")
    col = report.RunReport.from_path(path).main
    text = report.narrative(col)
    assert "round    1:" in text and "active" in text and "terminated" in text
    table = report.decay_table(col)
    assert "n_i" in table and "shape:" in table


def test_narrative_truncates(tmp_path):
    col = MetricsCollector()
    for rnd in range(1, 30):
        col.emit(RoundStart(rnd, 100 - rnd))
    text = report.narrative(col, limit=5)
    assert "more rounds" in text


def test_diff_identical_fast_vs_reference(tmp_path):
    a = _capture_partition(tmp_path, "fast.jsonl", cls=SyncNetwork)
    b = _capture_partition(tmp_path, "ref.jsonl", cls=ReferenceSyncNetwork)
    col_a = report.RunReport.from_path(a).main
    col_b = report.RunReport.from_path(b).main
    identical, text = report.diff(col_a, col_b)
    assert identical, text
    assert "identical" in text


def test_diff_flags_divergence():
    a, b = MetricsCollector(), MetricsCollector()
    for rnd, n_i in enumerate([10, 5, 2], start=1):
        a.emit(RoundStart(rnd, n_i))
    for rnd, n_i in enumerate([10, 6, 2], start=1):
        b.emit(RoundStart(rnd, n_i))
    identical, text = report.diff(a, b, label_a="fast", label_b="ref")
    assert not identical
    assert "DIVERGENT" in text and "round 2" in text


def test_diff_handles_length_mismatch():
    a, b = MetricsCollector(), MetricsCollector()
    a.emit(RoundStart(1, 3))
    a.emit(RoundStart(2, 1))
    b.emit(RoundStart(1, 3))
    identical, text = report.diff(a, b)
    assert not identical and "(absent)" in text


def test_report_tolerates_blank_lines_and_missing_meta(tmp_path):
    path = str(tmp_path / "bare.jsonl")
    with open(path, "w") as fh:
        fh.write("\n")
        fh.write(json.dumps({"ev": "round_start", "round": 1, "active": 2}) + "\n")
        fh.write("\n")
        fh.write(
            json.dumps({"ev": "round_end", "round": 1, "msgs": 0, "receivers": 0, "halts": 2})
            + "\n"
        )
    rep = report.RunReport.from_path(path)
    assert rep.meta == {}
    assert rep.describe_meta() == "(no metadata)"
    assert rep.main.decay_curve() == [2]


def test_memory_sink_stream_equals_jsonl_roundtrip(tmp_path):
    """Serialising to JSONL and loading back loses nothing: the rebuilt
    events equal the in-memory stream."""
    g = gen.star(6)

    def program(ctx):
        ctx.broadcast(("x", ctx.v))
        yield
        return ctx.v

    mem = MemorySink()
    path = str(tmp_path / "t.jsonl")
    bus = EventBus(mem, obs.JsonlSink(path))
    SyncNetwork(g).run(program, bus=bus)
    bus.close()
    _meta, records = report.load_records(path)
    rebuilt = [e for e in map(obs.from_record, records) if e is not None]
    assert rebuilt == mem.events

"""Crash-safe JSONL traces: batch flushing, idempotent close, and
torn-write tolerance in the loader."""

import json

import pytest

from repro.obs.events import Halt, RoundStart
from repro.obs.report import RunReport, load_records
from repro.obs.sinks import JsonlSink


def _fill(sink, events):
    for e in events:
        sink.emit(e)


class TestFlushing:
    def test_header_is_flushed_immediately(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path, meta={"algo": "x"})
        try:
            meta, records = load_records(path)  # readable before any event
            assert meta["algo"] == "x"
            assert records == []
        finally:
            sink.close()

    def test_events_visible_after_each_batch(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        try:
            _fill(sink, [RoundStart(r + 1, 10) for r in range(sink.FLUSH_EVERY)])
            # one full batch: all of it is on disk without any close()
            _, records = load_records(path)
            assert len(records) == sink.FLUSH_EVERY
        finally:
            sink.close()

    def test_loss_bounded_to_the_last_partial_batch(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        try:
            _fill(sink, [RoundStart(r + 1, 10) for r in range(150)])
            _, records = load_records(path)
            # 150 = 2 full batches of 64 + 22 pending: at least the full
            # batches are durable even if the process dies right now
            assert len(records) >= 2 * sink.FLUSH_EVERY
        finally:
            sink.close()

    def test_close_flushes_the_tail(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlSink(path) as sink:
            _fill(sink, [RoundStart(r + 1, 5) for r in range(7)])
        _, records = load_records(path)
        assert len(records) == 7


class TestClose:
    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()  # second close must not raise on the released handle
        sink.close()

    def test_borrowed_handle_not_closed(self, tmp_path):
        with open(tmp_path / "t.jsonl", "w") as fh:
            sink = JsonlSink(fh)
            sink.emit(RoundStart(1, 3))
            sink.close()
            assert not fh.closed  # caller owns it
            sink.close()


class TestTornWrites:
    def _trace_lines(self, tmp_path, n_events=5):
        path = str(tmp_path / "t.jsonl")
        with JsonlSink(path, meta={"algo": "a2"}) as sink:
            _fill(sink, [RoundStart(r + 1, 9) for r in range(n_events)])
        with open(path) as fh:
            return path, fh.read().splitlines()

    def test_torn_final_line_is_tolerated_and_flagged(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        lines[-1] = lines[-1][: len(lines[-1]) // 2]  # kill mid-write
        with open(path, "w") as fh:
            fh.write("\n".join(lines))
        meta, records = load_records(path)
        assert meta["_truncated"] is True
        assert meta["algo"] == "a2"
        assert len(records) == 4  # the torn record is discarded
        rep = RunReport.from_path(path)
        assert "TRUNCATED" in rep.describe_meta()

    def test_intact_trace_is_not_flagged(self, tmp_path):
        path, _ = self._trace_lines(tmp_path)
        meta, records = load_records(path)
        assert "_truncated" not in meta
        assert len(records) == 5
        assert "TRUNCATED" not in RunReport.from_path(path).describe_meta()

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        lines[2] = lines[2][:10]  # corruption NOT at the tail
        with open(path, "w") as fh:
            fh.write("\n".join(lines))
        with pytest.raises(ValueError, match="corrupt trace record"):
            load_records(path)

    def test_torn_trace_still_analyzable(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlSink(path) as sink:
            for r in range(3):
                sink.emit(RoundStart(r + 1, 10 - r))
            sink.emit(Halt(3, 7))
            sink.emit(RoundStart(4, 6))
        with open(path) as fh:
            data = fh.read()
        with open(path, "w") as fh:
            fh.write(data[:-9])  # tear the final record
        rep = RunReport.from_path(path)
        col = rep.main
        assert col.rounds == 3  # the torn round_start is gone
        assert col.termination_round == {7: 3}

    def test_torn_json_payload_not_just_truncated_string(self, tmp_path):
        # a torn line that is itself valid-prefix JSON garbage
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"ev": "meta", "schema": 1}) + "\n")
            fh.write('{"ev": "round_start", "round": 1, "act')
        meta, records = load_records(path)
        assert meta["_truncated"] is True
        assert records == []

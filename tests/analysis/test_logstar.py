"""Tests for iterated logarithms and rho(n)."""

import pytest

from repro.analysis.logstar import ilog, iterated_log, log_star, rho


class TestIlog:
    def test_zero_iterations(self):
        assert ilog(100, 0) == 100

    def test_one_iteration(self):
        assert ilog(8, 1) == 3.0
        assert ilog(2, 1) == 1.0

    def test_two_iterations(self):
        assert ilog(256, 2) == 3.0

    def test_clamps_at_zero(self):
        assert ilog(2, 3) == 0.0
        assert ilog(1, 1) == 0.0

    def test_monotone_in_k(self):
        vals = [ilog(10**6, k) for k in range(6)]
        assert vals == sorted(vals, reverse=True)

    def test_alias(self):
        assert iterated_log(65536, 2) == ilog(65536, 2)


class TestLogStar:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (16, 3), (17, 4), (65536, 4), (65537, 5)],
    )
    def test_known_values(self, n, expected):
        assert log_star(n) == expected

    def test_grows_extremely_slowly(self):
        assert log_star(10**30) == 5


class TestRho:
    def test_small(self):
        assert rho(2) >= 1

    def test_definition(self):
        """rho(n) is the largest k with log^(k-1) n >= log* n."""
        for n in (10, 1000, 10**5, 10**9):
            k = rho(n)
            assert ilog(n, k - 1) >= log_star(n)
            assert ilog(n, k) < log_star(n)

    def test_bounded_by_log_star(self):
        for n in (10, 10**4, 10**8):
            assert 1 <= rho(n) <= log_star(n)

"""Tests for the complexity-shape fitter the benchmarks rely on."""

from math import log2, sqrt

import pytest

from repro.analysis.fitting import ShapeFit, fit_shape, growth_factor

NS = [256, 1024, 4096, 16384, 65536, 262144]


def test_constant_series():
    fit = fit_shape(NS, [3.0] * len(NS))
    assert fit.shape == "O(1)"
    assert fit.residual < 1e-9


def test_log_series():
    ys = [2.5 * log2(n) + 1 for n in NS]
    fit = fit_shape(NS, ys)
    assert fit.shape == "O(log n)"
    assert fit.alpha == pytest.approx(2.5, rel=0.05)


def test_loglog_series():
    ys = [4 * log2(log2(n)) for n in NS]
    fit = fit_shape(NS, ys)
    assert fit.shape == "O(log log n)"


def test_linear_series():
    fit = fit_shape(NS, [0.5 * n for n in NS])
    assert fit.shape == "O(n)"


def test_sqrt_series():
    fit = fit_shape(NS, [2 * sqrt(n) for n in NS])
    assert fit.shape == "O(sqrt n)"


def test_noisy_constant_prefers_simplest():
    ys = [3.0, 3.4, 2.8, 3.1, 3.2, 2.9]
    fit = fit_shape(NS, ys)
    assert fit.shape in ("O(1)", "O(log* n)")


def test_ordering_helpers():
    fit = fit_shape(NS, [log2(n) for n in NS])
    assert fit.at_most("O(log n)")
    assert fit.at_most("O(n)")
    assert not fit.at_most("O(1)")
    assert fit.grows_at_least("O(log log n)")
    assert not fit.grows_at_least("O(n)")


def test_requires_two_points():
    with pytest.raises(ValueError):
        fit_shape([10], [1.0])


def test_negative_slope_clamped():
    # decreasing series: alpha clamps at 0 and the constant model wins
    fit = fit_shape(NS, [10.0, 9.0, 8.5, 8.2, 8.0, 7.9])
    assert fit.shape == "O(1)"


def test_residuals_reported_for_all_shapes():
    fit = fit_shape(NS, [log2(n) for n in NS])
    assert set(fit.residuals) == {
        "O(1)", "O(log* n)", "O(log log n)", "O(log n)", "O(sqrt n)", "O(n)"
    }


def test_growth_factor():
    assert growth_factor([10, 100], [2.0, 8.0]) == 4.0
    assert growth_factor([100, 10], [8.0, 2.0]) == 4.0  # order-insensitive
    assert growth_factor([10, 100], [0.0, 0.5]) == 1.0  # floored at 1

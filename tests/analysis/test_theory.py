"""Tests that measured executions respect the executable paper-bound
registry (repro.analysis.theory)."""

import pytest

import repro
from repro.analysis.theory import BOUNDS, Instance, palette_bound
from repro.graphs import generators as gen


@pytest.fixture(scope="module")
def setting():
    g = gen.union_of_forests(400, 3, seed=11)
    inst = Instance(n=g.n, a=3, delta=g.max_degree(), eps=1.0, k=2)
    return g, inst


def test_registry_covers_all_headline_algorithms():
    expected = {
        "partition", "forest_decomposition", "a2logn", "a2", "oa", "ka2",
        "ka", "one_plus_eta", "delta_plus_one", "mis", "edge_coloring",
        "maximal_matching", "rand_delta_plus_one", "aloglogn",
    }
    assert expected <= set(BOUNDS)


def test_every_bound_names_its_section():
    for key, b in BOUNDS.items():
        assert b.section, key
        assert b.avg_shape in {"O(1)", "O(log* n)", "O(log log n)"}, key
        assert b.worst_shape_baseline == "O(log n)", key


@pytest.mark.parametrize(
    "key,run,colors",
    [
        ("a2logn", lambda g: repro.run_a2logn_coloring(g, a=3), lambda r: r.colors_used),
        ("a2", lambda g: repro.run_a2_coloring(g, a=3), lambda r: r.colors_used),
        ("oa", lambda g: repro.run_oa_coloring(g, a=3), lambda r: r.colors_used),
        ("ka2", lambda g: repro.run_ka2_coloring(g, a=3, k=2), lambda r: r.colors_used),
        ("ka", lambda g: repro.run_ka_coloring(g, a=3, k=2), lambda r: r.colors_used),
        (
            "delta_plus_one",
            lambda g: repro.run_delta_plus_one_coloring(g, a=3),
            lambda r: r.colors_used,
        ),
        (
            "edge_coloring",
            lambda g: repro.run_edge_coloring(g, a=3),
            lambda r: r.colors_used,
        ),
        (
            "rand_delta_plus_one",
            lambda g: repro.run_rand_delta_plus_one(g, seed=0),
            lambda r: r.colors_used,
        ),
        (
            "aloglogn",
            lambda g: repro.run_aloglogn_coloring(g, a=3, seed=0),
            lambda r: r.colors_used,
        ),
    ],
)
def test_measured_palettes_within_paper_bounds(setting, key, run, colors):
    g, inst = setting
    bound = palette_bound(key, inst)
    assert bound is not None
    res = run(g)
    assert colors(res) <= bound, (key, colors(res), bound)


def test_forest_decomposition_bound(setting):
    g, inst = setting
    fd = repro.run_parallelized_forest_decomposition(g, a=3)
    assert fd.num_forests <= palette_bound("forest_decomposition", inst)


def test_no_palette_keys_return_none(setting):
    _, inst = setting
    for key in ("partition", "mis", "maximal_matching", "one_plus_eta"):
        assert palette_bound(key, inst) is None


def test_instance_helpers():
    inst = Instance(n=100, a=2, delta=9, eps=1.0)
    assert inst.A == 6
    assert inst.ids == 100
    assert Instance(n=100, a=2, delta=9, id_space=999).ids == 999

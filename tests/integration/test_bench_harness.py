"""Unit tests for the benchmark harness itself (workloads, runner,
table renderers)."""

import pytest

import repro
from repro.bench import WORKLOADS, make_workload, render_rows, render_table, summarize, sweep


class TestWorkloads:
    def test_all_workloads_build(self):
        for name, wl in WORKLOADS.items():
            g, a = wl(200, seed=0)
            assert g.n > 0, name
            assert a >= 1, name

    def test_workloads_deterministic(self):
        wl = make_workload("forest_union_a3")
        assert wl(100, seed=1)[0] == wl(100, seed=1)[0]
        assert wl(100, seed=1)[0] != wl(100, seed=2)[0]

    def test_declared_arboricity_is_valid_bound(self):
        from repro.graphs.arboricity import arboricity_exact

        for name in ("forest_union_a2", "planar_grid", "caterpillar", "ring", "deep_tree"):
            g, a = make_workload(name)(120, seed=0)
            assert arboricity_exact(g) <= a, name

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            make_workload("nope")

    def test_deep_tree_peels_slowly(self):
        """The slow-peeling family really produces a deep H-partition."""
        g, a = make_workload("deep_tree")(2000, seed=0)
        res = repro.run_partition(g, a=a, eps=1.0)
        assert res.num_sets >= 4


class TestRunner:
    def _series(self, ns=(100, 200)):
        wl = make_workload("forest_union_a2")
        return sweep(
            "partition",
            lambda g, a, ids, s: repro.run_partition(g, a=a, ids=ids),
            wl,
            ns,
            seeds=2,
        )

    def test_sweep_points(self):
        s = self._series()
        assert s.ns == [100, 200]
        assert all(p.avg_mean <= p.avg_max for p in s.points)
        assert all(p.avg_mean <= p.worst_mean for p in s.points)

    def test_fit_and_gap(self):
        s = self._series((100, 200, 400))
        fit = s.fit_avg()
        assert fit.shape in ("O(1)", "O(log* n)")
        assert s.final_gap() >= 1.0

    def test_colors_of_hook(self):
        wl = make_workload("forest_union_a2")
        s = sweep(
            "coloring",
            lambda g, a, ids, _s: repro.run_a2logn_coloring(g, a=a, ids=ids),
            wl,
            (100,),
            seeds=2,
            colors_of=lambda r: r.colors_used,
        )
        assert s.points[0].colors >= 1

    def test_summarize_line(self):
        line = summarize(self._series())
        assert "partition" in line and "gap x" in line


class TestTables:
    def test_render_table_alignment(self):
        text = render_table("T", ["col", "x"], [[1, "long-value"], [22, "y"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1  # perfectly rectangular

    def test_render_rows_with_and_without_baseline(self):
        s = TestRunner()._series()
        solo = render_rows("solo", s)
        assert "fitted shape" in solo and "win at" not in solo
        both = render_rows("both", s, s)
        assert "win at n=200: x1.0" in both

"""Parameter-matrix coverage: the headline algorithms across the
epsilon x ID-space x workload grid (every cell validated)."""

import pytest

import repro
from repro.bench import make_workload
from repro.graphs import generators as gen
from repro.verify import (
    assert_maximal_independent_set,
    assert_maximal_matching,
    assert_proper_coloring,
)

EPS_GRID = [0.25, 1.0, 2.0]
ID_SPACES = [None, 10**6]  # permutation IDs vs sparse large-space IDs
WORKLOADS = ["forest_union_a3", "planar_grid", "star_forest", "deep_tree"]


def _ids(n, id_space, seed=3):
    return gen.random_ids(n, seed=seed, id_space=id_space)


@pytest.mark.parametrize("eps", EPS_GRID)
@pytest.mark.parametrize("id_space", ID_SPACES, ids=["perm-ids", "sparse-ids"])
def test_a2logn_matrix(eps, id_space):
    g, a = make_workload("forest_union_a3")(250, seed=0)
    res = repro.run_a2logn_coloring(g, a=a, eps=eps, ids=_ids(g.n, id_space))
    assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)


@pytest.mark.parametrize("eps", EPS_GRID)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_oa_matrix(eps, workload):
    g, a = make_workload(workload)(250, seed=1)
    res = repro.run_oa_coloring(g, a=a, eps=eps)
    assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("id_space", ID_SPACES, ids=["perm-ids", "sparse-ids"])
def test_mis_matrix(workload, id_space):
    g, a = make_workload(workload)(250, seed=2)
    res = repro.run_mis(g, a=a, ids=_ids(g.n, id_space))
    assert_maximal_independent_set(g, res.mis)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_matching_matrix(workload):
    g, a = make_workload(workload)(250, seed=3)
    res = repro.run_maximal_matching(g, a=a)
    assert_maximal_matching(g, res.matching)


@pytest.mark.parametrize("eps", EPS_GRID)
def test_randomized_matrix(eps):
    g, a = make_workload("forest_union_a3")(250, seed=4)
    res = repro.run_aloglogn_coloring(g, a=a, eps=eps, seed=5)
    assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_segmentation_matrix(workload):
    g, a = make_workload(workload)(250, seed=6)
    res = repro.run_ka_coloring(g, a=a, k=2)
    assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)

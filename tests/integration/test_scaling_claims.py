"""Scaling tests: the paper's headline quantitative claims, asserted on
n-sweeps.  These are the test-suite versions of the benchmark assertions
(smaller sweeps; the benchmarks run the full ones)."""

import pytest

import repro
from repro.analysis.fitting import fit_shape
from repro.graphs import generators as gen

SWEEP = (250, 500, 1000, 2000, 4000)


def _avg_series(algo, a=3, eps=0.5, seeds=(0,)):
    out = []
    for n in SWEEP:
        vals = []
        for s in seeds:
            g = gen.union_of_forests(n, a, seed=s)
            vals.append(algo(g, n, s).metrics.vertex_averaged)
        out.append(sum(vals) / len(vals))
    return out


def test_partition_average_is_constant_shaped():
    ys = _avg_series(lambda g, n, s: repro.run_partition(g, a=3, eps=0.5))
    fit = fit_shape(SWEEP, ys)
    assert fit.at_most("O(log* n)"), (ys, fit)


def test_partition_worstcase_baseline_is_log_shaped():
    ys = []
    for n in SWEEP:
        g = gen.union_of_forests(n, 3, seed=0)
        ys.append(repro.run_worstcase_forest_decomposition(g, a=3).metrics.vertex_averaged)
    fit = fit_shape(SWEEP, ys)
    assert fit.grows_at_least("O(log log n)"), (ys, fit)


def test_a2logn_average_constant_vs_worstcase_log():
    ours = _avg_series(lambda g, n, s: repro.run_a2logn_coloring(g, a=3, eps=0.5))
    base = _avg_series(lambda g, n, s: repro.run_arb_linial_worstcase(g, a=3, eps=0.5))
    assert fit_shape(SWEEP, ours).at_most("O(log* n)"), ours
    assert fit_shape(SWEEP, base).grows_at_least("O(log log n)"), base
    # who wins, by what factor: ours beats the baseline increasingly
    assert base[-1] / ours[-1] > base[0] / ours[0]
    assert base[-1] / ours[-1] > 3


def test_mis_average_flat_vs_worstcase_growing():
    ours = _avg_series(lambda g, n, s: repro.run_mis(g, a=3))
    fit = fit_shape(SWEEP, ours)
    assert fit.at_most("O(log log n)"), (ours, fit)


def test_mm_average_flat():
    ours = _avg_series(lambda g, n, s: repro.run_maximal_matching(g, a=3))
    assert fit_shape(SWEEP, ours).at_most("O(log log n)"), ours


def test_randomized_delta_plus_one_average_constant():
    ours = _avg_series(
        lambda g, n, s: repro.run_rand_delta_plus_one(g, seed=s), seeds=(0, 1, 2)
    )
    assert fit_shape(SWEEP, ours).at_most("O(log* n)"), ours


def test_randomized_worst_case_grows():
    ys = []
    for n in SWEEP:
        g = gen.union_of_forests(n, 3, seed=0)
        vals = [
            repro.run_rand_delta_plus_one(g, seed=s).metrics.worst_case
            for s in range(3)
        ]
        ys.append(sum(vals) / 3)
    assert ys[-1] > ys[0]  # Theta(log n) w.h.p. for the last vertex


@pytest.mark.slow
def test_large_scale_gap():
    """At n = 20000 the averaged algorithms stay single-digit while the
    worst-case schedules pay tens of rounds."""
    n = 20000
    g = gen.union_of_forests(n, 3, seed=1)
    ours = repro.run_a2logn_coloring(g, a=3).metrics.vertex_averaged
    base = repro.run_worstcase_forest_decomposition(g, a=3).metrics.vertex_averaged
    assert ours < 5
    assert base > 15
    assert base / ours > 4

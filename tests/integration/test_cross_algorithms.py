"""Integration tests: algorithms composed, compared against each other,
and validated end-to-end on shared workloads."""

import pytest

import repro
from repro.graphs import generators as gen
from repro.verify import (
    assert_maximal_independent_set,
    assert_maximal_matching,
    assert_proper_coloring,
    assert_proper_edge_coloring,
)


@pytest.fixture(scope="module")
def workload():
    return gen.union_of_forests(500, 3, seed=42)


# every registered coloring spec, via the registry (new registrations are
# covered automatically), plus the unregistered Legal-Coloring subroutine
from repro import zoo

ALL_COLORINGS = [
    (spec.name, lambda g, s=spec: s.run(g, 3, None, 1))
    for spec in zoo.by_problem("coloring")
] + [
    ("legal", lambda g: repro.run_legal_coloring(g, a=3, p=4)),
]


@pytest.mark.parametrize("name,algo", ALL_COLORINGS, ids=[n for n, _ in ALL_COLORINGS])
def test_every_coloring_proper_on_shared_workload(workload, name, algo):
    res = algo(workload)
    assert_proper_coloring(workload, res.colors)
    assert res.metrics.vertex_averaged <= res.metrics.worst_case
    assert res.metrics.check_active_trace()


def test_color_frugality_ordering(workload):
    """The paper's palette hierarchy on a constant-arboricity workload:
    O(a)-flavoured palettes < O(a^2)-flavoured < O(a^2 log n)-flavoured."""
    oa = repro.run_oa_coloring(workload, a=3)
    a2 = repro.run_a2_coloring(workload, a=3)
    a2logn = repro.run_a2logn_coloring(workload, a=3)
    assert oa.palette_bound < a2.palette_bound <= a2logn.palette_bound * 2


def test_mis_and_coloring_agree_on_structure(workload):
    """A (Delta+1)-coloring's first color class is an independent set and
    the MIS contains no adjacent pair: cross-validated via the verifiers."""
    mis = repro.run_mis(workload, a=3)
    assert_maximal_independent_set(workload, mis.mis)
    col = repro.run_delta_plus_one_coloring(workload, a=3)
    class0 = {v for v, c in col.colors.items() if c == 0}
    for u, v in workload.edges():
        assert not (u in class0 and v in class0)


def test_edge_problems_consistent(workload):
    ec = repro.run_edge_coloring(workload, a=3)
    assert_proper_edge_coloring(workload, ec.edge_colors)
    mm = repro.run_maximal_matching(workload, a=3)
    assert_maximal_matching(workload, mm.matching)
    # any single edge-color class is a matching (not necessarily maximal)
    from collections import defaultdict

    by_color = defaultdict(list)
    for e, c in ec.edge_colors.items():
        by_color[c].append(e)
    touched = set()
    cls = by_color[min(by_color)]
    for u, v in cls:
        assert u not in touched and v not in touched
        touched.update((u, v))


def test_partition_reused_consistently(workload):
    """All partition-based algorithms agree on the H-decomposition (it is
    a pure function of the topology and eps)."""
    h1 = repro.run_partition(workload, a=3).h_index
    h2 = repro.run_parallelized_forest_decomposition(workload, a=3).h_index
    h3 = {v: h for v, h in repro.run_a2logn_coloring(workload, a=3).h_index.items()}
    assert h1 == h2 == h3


def test_disconnected_graph_all_algorithms():
    g = gen.disjoint_union([gen.ring(10), gen.star(8), gen.path(5)])
    assert_proper_coloring(g, repro.run_a2_coloring(g, a=2).colors)
    assert_maximal_independent_set(g, repro.run_mis(g, a=2).mis)
    assert_maximal_matching(g, repro.run_maximal_matching(g, a=2).matching)


def test_running_with_loose_arboricity_bound_still_correct(workload):
    """The algorithms only need an upper bound on a; a loose bound costs
    colors, never correctness."""
    tight = repro.run_oa_coloring(workload, a=3)
    loose = repro.run_oa_coloring(workload, a=6)
    assert_proper_coloring(workload, loose.colors, max_colors=loose.palette_bound)
    assert loose.palette_bound > tight.palette_bound


def test_adversarial_id_assignment(workload):
    ids = gen.adversarial_ids_descending_degree(workload)
    res = repro.run_delta_plus_one_coloring(workload, a=3, ids=ids)
    assert_proper_coloring(workload, res.colors, max_colors=res.palette_bound)
    mis = repro.run_mis(workload, a=3, ids=ids)
    assert_maximal_independent_set(workload, mis.mis)

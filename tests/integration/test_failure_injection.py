"""Failure-injection tests: wrong parameters, model violations and
liveness bugs must fail loudly, not silently corrupt results."""

import pytest

import repro
from repro.core.coverfree import build_family
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.runtime.network import MaxRoundsExceeded, SyncNetwork


class TestWrongParameters:
    def test_underestimated_arboricity_stalls_loudly(self):
        """Running Partition with a declared below the true arboricity can
        stall (no vertex reaches degree <= A); the liveness guard raises
        instead of looping forever."""
        g = gen.complete(30)  # arboricity 15
        with pytest.raises(MaxRoundsExceeded):
            repro.run_partition(g, a=1)

    def test_underestimated_arboricity_in_coloring(self):
        g = gen.complete(24)
        with pytest.raises(MaxRoundsExceeded):
            repro.run_a2logn_coloring(g, a=1)

    def test_overestimated_arboricity_is_safe(self):
        """Too-large a costs palette, never correctness."""
        g = gen.ring(40)
        res = repro.run_a2_coloring(g, a=10)
        from repro.verify import assert_proper_coloring

        assert_proper_coloring(g, res.colors, max_colors=res.palette_bound)

    def test_coverfree_pick_fails_loudly_when_bound_exceeded(self):
        fam = build_family(64, 2)  # built for at most 2 neighbors
        with pytest.raises(AssertionError, match="cover-free"):
            fam.pick(0, list(range(1, 60)))


class TestModelViolations:
    def test_send_to_non_neighbor_rejected(self):
        g = Graph(3, [(0, 1)])  # 0 and 2 are not adjacent

        def program(ctx):
            if ctx.v == 0:
                ctx.send(2, "illegal")
            yield
            return None

        with pytest.raises(ValueError, match="non-neighbor"):
            SyncNetwork(g).run(program)

    def test_yielding_values_rejected(self):
        g = Graph(1)

        def program(ctx):
            yield {"messages": "wrong protocol"}
            return None

        with pytest.raises(RuntimeError, match="bare `yield`"):
            SyncNetwork(g).run(program)

    def test_infinite_program_hits_round_budget(self):
        g = gen.ring(5)

        def chatty(ctx):
            while True:
                ctx.broadcast("spam")
                yield

        with pytest.raises(MaxRoundsExceeded):
            SyncNetwork(g).run(chatty, max_rounds=50)

    def test_deadlocked_wave_detected(self):
        """Two vertices each waiting for the other's announcement: the
        guard converts the deadlock into a diagnosable exception."""
        g = Graph(2, [(0, 1)])

        def program(ctx):
            from repro.core.arb_linial import priority_wave
            from repro.core.common import LocalView

            view = LocalView()
            # cyclic predecessor relation: both wait for each other
            value = yield from priority_wave(
                ctx, view, [1 - ctx.v], "w", lambda pv: 0
            )
            return value

        with pytest.raises(MaxRoundsExceeded):
            SyncNetwork(g).run(program, max_rounds=30)


class TestCrashedNeighborSemantics:
    def test_early_terminator_does_not_wedge_neighbors(self):
        """A vertex that terminates immediately (a 'crash' with output)
        leaves neighbors able to complete: its halted-notice is the only
        signal they need."""
        g = gen.star(6)

        def program(ctx):
            if ctx.v != 0:
                return "leaf-out"
            # the hub waits for every leaf's termination notice
            while len(ctx.halted) < ctx.degree:
                yield
            return sorted(ctx.halted.values())

        res = SyncNetwork(g).run(program, max_rounds=10)
        assert res.outputs[0] == ["leaf-out"] * 5

    def test_validators_catch_corrupted_solutions(self):
        """End-to-end: corrupt one vertex's color and the verifier that
        guards every benchmark flags it."""
        from repro.verify import VerificationError, assert_proper_coloring

        g = gen.ring(20)
        res = repro.run_a2_coloring(g, a=2)
        bad = dict(res.colors)
        bad[0] = bad[1]
        with pytest.raises(VerificationError):
            assert_proper_coloring(g, bad)

"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import ALGORITHMS, BASELINES, build_parser, cmd_compare, cmd_list, cmd_run, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "algorithms:" in out and "workloads:" in out
    assert "mis" in out and "forest_union_a3" in out


@pytest.mark.parametrize("algo", ["partition", "a2logn", "mis", "matching"])
def test_run_algorithms(algo, capsys):
    assert main(["run", algo, "-n", "300"]) == 0
    out = capsys.readouterr().out
    assert "vertex-averaged" in out
    assert algo in out


def test_run_on_other_workload(capsys):
    assert main(["run", "oa", "-n", "200", "--workload", "planar_grid"]) == 0
    out = capsys.readouterr().out
    assert "planar_grid" in out


def test_compare(capsys):
    assert main(["compare", "a2logn", "--sweep", "200,400", "--seeds", "1"]) == 0
    out = capsys.readouterr().out
    assert "fitted shape" in out
    assert "win at n=400" in out


def test_unknown_algorithm_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nonsense"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_every_baseline_key_is_an_algorithm():
    assert set(BASELINES) <= set(ALGORITHMS)

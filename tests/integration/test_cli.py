"""Tests for the command-line interface."""

import io

import pytest

from repro import zoo
from repro.cli import build_parser, cmd_compare, cmd_list, cmd_run, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "algorithms:" in out and "workloads:" in out
    assert "mis" in out and "forest_union_a3" in out


def test_list_shows_registry_metadata(capsys):
    """`repro list` is registry-driven: problem kind, paper row and
    baseline presence appear for every algorithm."""
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for spec in zoo.all_specs():
        assert spec.name in out
    assert "paper row" in out
    assert "T2.R1" in out  # mis row anchor
    assert "rand" in out  # randomized flag column


def test_list_check_gate(capsys):
    assert main(["list", "--check"]) == 0
    out = capsys.readouterr().out
    assert "registry consistent" in out


@pytest.mark.parametrize("algo", ["partition", "a2logn", "mis", "matching"])
def test_run_algorithms(algo, capsys):
    assert main(["run", algo, "-n", "300"]) == 0
    out = capsys.readouterr().out
    assert "vertex-averaged" in out
    assert algo in out


def test_run_on_other_workload(capsys):
    assert main(["run", "oa", "-n", "200", "--workload", "planar_grid"]) == 0
    out = capsys.readouterr().out
    assert "planar_grid" in out


def test_compare(capsys):
    assert main(["compare", "a2logn", "--sweep", "200,400", "--seeds", "1"]) == 0
    out = capsys.readouterr().out
    assert "fitted shape" in out
    assert "win at n=400" in out


def test_unknown_algorithm_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nonsense"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_compare_choices_are_registry_baselines():
    """The `compare` subcommand only offers specs that declare a baseline."""
    with pytest.raises(SystemExit):
        build_parser().parse_args(["compare", "one-plus-eta"])  # no baseline
    args = build_parser().parse_args(["compare", "a2logn"])
    assert args.algorithm == "a2logn"


def test_run_choices_equal_registry_names():
    parser = build_parser()
    args = parser.parse_args(["run", "ka2"])  # registered but formerly unfuzzed
    assert args.algorithm == "ka2"


def test_run_trace_out_then_inspect(tmp_path, capsys):
    path = str(tmp_path / "run.jsonl")
    assert main(["run", "partition", "-n", "300", "--trace-out", path]) == 0
    out = capsys.readouterr().out
    assert f"repro inspect {path}" in out

    assert main(["inspect", path, "--decay"]) == 0
    out = capsys.readouterr().out
    assert "algo=partition" in out
    assert "round    1:" in out
    assert "n_i" in out and "shape:" in out


def test_inspect_reproduces_trace_counts(tmp_path, capsys):
    """Acceptance: the counts `repro inspect` derives from a JSONL trace
    equal what a live Trace records for the same seeded run."""
    import repro
    from repro import obs
    from repro.bench import make_workload
    from repro.graphs import generators as gen
    from repro.obs.report import RunReport
    from repro.runtime.trace import TraceRecorder

    path = str(tmp_path / "run.jsonl")
    assert main(["run", "partition", "-n", "400", "--seed", "3", "--trace-out", path]) == 0
    capsys.readouterr()

    # replay the exact run cmd_run performs, recording a live Trace
    g, a = make_workload("forest_union_a3")(400, seed=3)
    ids = gen.random_ids(g.n, seed=4)
    rec = TraceRecorder()
    with obs.session(rec):
        repro.run_partition(g, a=a, ids=ids)
    trace = rec.trace

    col = RunReport.from_path(path).main
    assert col.terminations_per_round() == trace.terminations_per_round()
    # commits_per_round stops at the last commit; pad to the run's length
    commits = col.commits_per_round()
    commits += [0] * (len(trace.records) - len(commits))
    assert commits == [len(r.committed) for r in trace.records]
    assert col.sent == trace.messages_per_round()


def test_inspect_diff_identical_and_divergent(tmp_path, capsys):
    a = str(tmp_path / "a.jsonl")
    b = str(tmp_path / "b.jsonl")
    c = str(tmp_path / "c.jsonl")
    assert main(["run", "partition", "-n", "200", "--trace-out", a]) == 0
    assert main(["run", "partition", "-n", "200", "--trace-out", b]) == 0
    assert main(["run", "partition", "-n", "200", "--seed", "9", "--trace-out", c]) == 0
    capsys.readouterr()

    assert main(["inspect", a, "--diff", b]) == 0
    assert "identical" in capsys.readouterr().out

    assert main(["inspect", a, "--diff", c]) == 1
    assert "DIVERGENT" in capsys.readouterr().out


def test_run_profile_prints_phases(capsys):
    assert main(["run", "mis", "-n", "200", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "engine phase profile:" in out
    assert "step" in out and "route" in out and "deliver" in out


def test_run_profile_bulk_engine_prints_kernel_phase(capsys):
    """Satellite: --profile works on the columnar bulk engine too."""
    assert main(
        ["run", "partition", "-n", "300", "--engine", "bulk", "--profile"]
    ) == 0
    out = capsys.readouterr().out
    assert "engine phase profile:" in out
    assert "kernel" in out and "finalize" in out


def test_run_trace_out_prints_manifest_key(tmp_path, capsys):
    path = str(tmp_path / "run.jsonl")
    assert main(["run", "partition", "-n", "200", "--trace-out", path]) == 0
    out = capsys.readouterr().out
    assert f"manifest : {path}.manifest.jsonl" in out
    assert "(key " in out


def test_inspect_missing_file_clear_error(tmp_path, capsys):
    missing = str(tmp_path / "nope.jsonl")
    assert main(["inspect", missing]) == 2
    out = capsys.readouterr().out
    assert "inspect: cannot read trace" in out
    assert "Traceback" not in out


def test_inspect_headerless_trace_clear_error(tmp_path, capsys):
    """A JSONL file without the meta header a JsonlSink always writes
    first is diagnosed in one line, not a traceback."""
    import json

    path = str(tmp_path / "headerless.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"ev": "round_start", "round": 1, "active": 3}))
        fh.write("\n")
    assert main(["inspect", path]) == 2
    out = capsys.readouterr().out
    assert "has no meta header" in out
    assert "Traceback" not in out
    # the same diagnosis guards the --diff second operand
    good = str(tmp_path / "good.jsonl")
    assert main(["run", "partition", "-n", "200", "--trace-out", good]) == 0
    capsys.readouterr()
    assert main(["inspect", good, "--diff", path]) == 2
    assert "has no meta header" in capsys.readouterr().out


def test_inspect_timeline_sharded_run(tmp_path, capsys):
    """Acceptance: a profiled sharded run's manifest renders as the
    per-shard x per-phase timing table."""
    path = str(tmp_path / "sharded.jsonl")
    assert main(
        [
            "run", "partition", "-n", "400", "--engine", "bulk",
            "--shards", "2", "--profile", "--trace-out", path,
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "shard" in out  # cmd_run --profile already shows the table

    assert main(["inspect", path, "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "timeline : partition" in out
    assert "engine=bulk mode=sync shards=2" in out
    for phase in ("compute", "barrier", "allreduce", "publish"):
        assert phase in out
    assert "wall" in out


def test_inspect_timeline_without_manifest_clear_error(tmp_path, capsys):
    path = str(tmp_path / "no_manifest.jsonl")
    assert main(["inspect", path, "--timeline"]) == 2
    out = capsys.readouterr().out
    assert "no manifest at" in out and "Traceback" not in out


def test_inspect_timeline_unprofiled_run_exits_nonzero(tmp_path, capsys):
    """A manifest exists (every traced run writes one) but carries no
    phase timing: the timeline command says so and exits 2 -- this is
    what lets CI smoke-check that --profile actually recorded phases."""
    path = str(tmp_path / "unprofiled.jsonl")
    assert main(["run", "partition", "-n", "200", "--trace-out", path]) == 0
    capsys.readouterr()
    assert main(["inspect", path, "--timeline"]) == 2
    out = capsys.readouterr().out
    assert "--profile" in out


def test_inspect_shows_manifest_line(tmp_path, capsys):
    path = str(tmp_path / "run.jsonl")
    assert main(["run", "partition", "-n", "200", "--trace-out", path]) == 0
    capsys.readouterr()
    assert main(["inspect", path]) == 0
    out = capsys.readouterr().out
    assert "manifest : key" in out
    assert "engine=fast" in out and "status=ok" in out

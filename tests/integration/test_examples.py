"""Smoke tests for the example scripts: they must at least compile, and
the fast ones run end-to-end with shrunken workloads."""

import pathlib
import py_compile


import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parents[2].joinpath("examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "energy_efficiency.py",
        "pipeline_scheduling.py",
        "bigdata_simulation.py",
        "compare_all.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_logic_small(capsys):
    """Re-run the quickstart's content at a small scale."""
    import repro
    from repro.graphs import generators as gen
    from repro.verify import assert_h_partition, assert_proper_coloring

    g = gen.union_of_forests(300, 3, seed=0)
    part = repro.run_partition(g, a=3)
    assert_h_partition(g, part.h_index, part.A)
    ours = repro.run_a2logn_coloring(g, a=3)
    base = repro.run_arb_linial_worstcase(g, a=3)
    assert_proper_coloring(g, ours.colors)
    assert base.metrics.vertex_averaged > ours.metrics.vertex_averaged


def test_energy_accounting_consistency():
    """The energy example's pricing must equal RoundSum / message totals."""
    import repro
    from repro.graphs import generators as gen

    g = gen.union_of_forests(300, 3, seed=3)
    res = repro.run_oa_coloring(g, a=3)
    m = res.metrics
    assert m.round_sum == sum(m.rounds)
    assert m.total_messages == sum(m.messages_per_round)


def test_pipeline_quantiles_match_metrics():
    import repro
    from repro.graphs import generators as gen

    g = gen.union_of_forests(400, 3, seed=5)
    res = repro.run_mis(g, a=3)
    t_b = 10
    async_completion = [r + t_b for r in res.metrics.rounds]
    assert max(async_completion) == res.metrics.worst_case + t_b
    assert min(async_completion) >= 1 + t_b

"""Tests for graph statistics."""

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.stats import (
    average_degree,
    bfs_distances,
    degree_histogram,
    diameter_exact,
    diameter_lower_bound,
    eccentricity,
    global_density,
    summarize,
)


def test_degree_histogram():
    g = gen.star(5)
    assert degree_histogram(g) == {4: 1, 1: 4}


def test_average_degree():
    assert average_degree(gen.ring(10)) == 2.0
    assert average_degree(Graph(0)) == 0.0


def test_global_density():
    assert global_density(gen.path(5)) == 1.0
    assert global_density(Graph(1)) == 0.0


def test_bfs_distances():
    g = gen.path(5)
    assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}


def test_bfs_disconnected():
    g = Graph(4, [(0, 1)])
    assert set(bfs_distances(g, 0)) == {0, 1}


def test_eccentricity():
    g = gen.path(7)
    assert eccentricity(g, 0) == 6
    assert eccentricity(g, 3) == 3


def test_diameter_exact_known():
    assert diameter_exact(gen.path(9)) == 8
    assert diameter_exact(gen.ring(8)) == 4
    assert diameter_exact(gen.complete(5)) == 1
    assert diameter_exact(gen.hypercube(4)) == 4


def test_diameter_lower_bound_is_exact_on_trees():
    for seed in range(4):
        g = gen.random_tree(60, seed=seed)
        assert diameter_lower_bound(g) == diameter_exact(g)


def test_diameter_lower_bound_never_exceeds_exact():
    g = gen.gnp(40, 0.12, seed=5)
    assert diameter_lower_bound(g) <= diameter_exact(g)


def test_summarize_fields():
    s = summarize(gen.grid(4, 4))
    assert s["n"] == 16 and s["m"] == 24
    assert s["components"] == 1
    assert s["degeneracy"] == 2
    assert s["diameter_lb"] >= 6

"""Unit tests for the static graph substrate."""

import pytest

from repro.graphs.graph import Graph, canonical_edge


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0 and g.m == 0
        assert g.max_degree() == 0
        assert list(g.vertices()) == []

    def test_vertices_without_edges(self):
        g = Graph(5)
        assert g.n == 5 and g.m == 0
        assert all(g.degree(v) == 0 for v in g.vertices())

    def test_basic_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.m == 3
        assert g.neighbors(1) == (0, 2)
        assert g.degree(1) == 2 and g.degree(0) == 1

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1
        assert g.degree(0) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(3, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(3, [(0, 3)])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_canonical_edge(self):
        assert canonical_edge(3, 1) == (1, 3)
        assert canonical_edge(1, 3) == (1, 3)

    def test_edges_sorted_canonical(self):
        g = Graph(4, [(3, 2), (1, 0)])
        assert g.edges() == ((0, 1), (2, 3))


class TestAccessors:
    def test_has_edge(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_neighbor_set(self):
        g = Graph(4, [(0, 1), (0, 2)])
        assert g.neighbor_set(0) == frozenset({1, 2})

    def test_max_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree() == 3

    def test_degree_sequence(self):
        g = Graph(3, [(0, 1)])
        assert g.degree_sequence() == [1, 1, 0]

    def test_equality_and_hash(self):
        g1 = Graph(3, [(0, 1)])
        g2 = Graph(3, [(1, 0)])
        g3 = Graph(3, [(0, 2)])
        assert g1 == g2 and hash(g1) == hash(g2)
        assert g1 != g3
        assert g1 != "not a graph"

    def test_repr(self):
        assert repr(Graph(3, [(0, 1)])) == "Graph(n=3, m=1)"


class TestDerived:
    def test_subgraph_reindexes(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub, index = g.subgraph([1, 2, 4])
        assert sub.n == 3
        assert index == {1: 0, 2: 1, 4: 2}
        assert sub.edges() == ((0, 1),)  # only (1,2) survives

    def test_subgraph_empty_selection(self):
        g = Graph(3, [(0, 1)])
        sub, index = g.subgraph([])
        assert sub.n == 0 and index == {}

    def test_edge_subgraph_degrees(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        degs = g.edge_subgraph_degrees([0, 1, 2])
        assert degs == {0: 1, 1: 2, 2: 1}

    def test_line_graph_neighbors(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert set(g.line_graph_neighbors((1, 2))) == {(0, 1), (2, 3)}

    def test_connected_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comps = g.connected_components()
        assert comps == [[0, 1], [2, 3], [4]]

    def test_is_forest_true(self):
        assert Graph(4, [(0, 1), (1, 2), (1, 3)]).is_forest()
        assert Graph(3).is_forest()

    def test_is_forest_false(self):
        assert not Graph(3, [(0, 1), (1, 2), (0, 2)]).is_forest()


class TestInterop:
    def test_networkx_roundtrip(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert Graph.from_networkx(g.to_networkx()) == g

    def test_from_networkx_relabels(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge("b", "a")
        g = Graph.from_networkx(nxg)
        assert g.n == 2 and g.m == 1

    def test_from_adjacency_mapping(self):
        g = Graph.from_adjacency({0: [1], 1: [0, 2], 2: [1]})
        assert g.n == 3 and g.m == 2

    def test_from_adjacency_list(self):
        g = Graph.from_adjacency([[1], [0]])
        assert g.n == 2 and g.m == 1


class TestCSR:
    def test_csr_matches_neighbors(self):
        from repro.graphs import generators as gen

        g = gen.gnp(60, 0.1, seed=2)
        offsets, indices = g.csr()
        assert offsets.shape == (g.n + 1,)
        assert indices.shape == (2 * g.m,)
        assert int(offsets[0]) == 0 and int(offsets[-1]) == 2 * g.m
        for v in range(g.n):
            row = indices[int(offsets[v]) : int(offsets[v + 1])]
            assert tuple(int(u) for u in row) == g.neighbors(v)

    def test_csr_rows_match_and_are_cached(self):
        g = Graph(5, [(0, 1), (0, 2), (3, 4)])
        rows = g.csr_rows()
        assert rows == [list(g.neighbors(v)) for v in range(5)]
        # cached: same objects on repeated access (the engine relies on
        # sharing these rows copy-on-write)
        assert g.csr_rows() is rows
        assert g.csr() is g.csr()

    def test_csr_empty_and_isolated(self):
        empty = Graph(0)
        offsets, indices = empty.csr()
        assert offsets.shape == (1,) and indices.shape == (0,)
        assert empty.csr_rows() == []

        iso = Graph(3, [(0, 1)])
        assert iso.csr_rows() == [[1], [0], []]

    def test_csr_row_ints_are_native(self):
        # object-level engine loops index dicts/lists with these values;
        # they must be plain Python ints, not numpy scalars
        g = Graph(2, [(0, 1)])
        assert all(type(u) is int for row in g.csr_rows() for u in row)


class TestCsrDtype:
    """The int32/int64 CSR layout selection behind the n = 10^7 cell."""

    def test_auto_picks_int32_when_it_fits(self):
        import numpy as np

        from repro.graphs.graph import csr_index_dtype

        assert csr_index_dtype(10, 18, "auto") == np.dtype(np.int32)
        assert csr_index_dtype(2**31, 4, "auto") == np.dtype(np.int64)
        assert csr_index_dtype(4, 2**31, "auto") == np.dtype(np.int64)

    def test_forced_int32_overflow_is_loud(self):
        from repro.graphs.graph import csr_index_dtype

        with pytest.raises(ValueError, match="int32"):
            csr_index_dtype(2**31, 4, "int32")
        with pytest.raises(ValueError, match="unknown CSR dtype"):
            csr_index_dtype(4, 4, "int16")

    def test_graph_csr_dtype_variants_agree(self):
        import numpy as np

        g = Graph(6, [(0, 1), (1, 2), (2, 3), (4, 5)])
        o64, i64 = g.csr()  # default int64
        oa, ia = g.csr(dtype="auto")
        assert o64.dtype == np.int64 and i64.dtype == np.int64
        assert oa.dtype == np.int32 and ia.dtype == np.int32
        assert np.array_equal(o64, oa) and np.array_equal(i64, ia)
        # each dtype is cached independently
        assert g.csr(dtype="auto") is g.csr(dtype="auto")


class TestFromCsr:
    """CSR-direct construction: the object layer stays unmaterialised."""

    def test_roundtrip_matches_object_graph(self):
        import numpy as np

        g = Graph(6, [(0, 1), (1, 2), (2, 3), (4, 5)])
        offsets, indices = g.csr(dtype="auto")
        h = Graph.from_csr(offsets, indices)
        assert h.n == g.n and h.m == g.m
        ho, hi = h.csr(dtype="auto")
        assert np.array_equal(ho, offsets) and np.array_equal(hi, indices)
        # lazy object layer materialises on demand and agrees
        assert [h.neighbors(v) for v in h.vertices()] == [
            g.neighbors(v) for v in g.vertices()
        ]

    def test_invalid_csr_rejected(self):
        import numpy as np

        with pytest.raises(ValueError, match="offsets"):
            Graph.from_csr(np.array([1, 2]), np.array([0, 1]))
        with pytest.raises(ValueError, match="does not match"):
            Graph.from_csr(np.array([0, 1, 3]), np.array([1, 0]))
        with pytest.raises(ValueError, match="even length"):
            Graph.from_csr(np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError, match="non-decreasing"):
            Graph.from_csr(np.array([0, 2, 1, 4]), np.array([1, 2, 0, 0]))
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_csr(np.array([0, 1, 2]), np.array([1, 5]))

"""Tests for edge orientations (Section 5 objects)."""

import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.orientation import (
    Orientation,
    orientation_by_order,
    orientation_from_parent_lists,
)


class TestBasics:
    def test_orient_and_head(self):
        g = Graph(3, [(0, 1), (1, 2)])
        o = Orientation(g)
        o.orient(0, 1, 1)
        assert o.head(0, 1) == 1 and o.head(1, 0) == 1
        assert o.is_oriented(0, 1)
        assert not o.is_oriented(1, 2)
        assert o.head(1, 2) is None

    def test_orient_non_edge_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError, match="not an edge"):
            Orientation(g).orient(0, 2, 2)

    def test_orient_bad_head_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError, match="not an endpoint"):
            Orientation(g).orient(0, 1, 2)

    def test_parents_children(self):
        g = Graph(3, [(0, 1), (1, 2)])
        o = Orientation(g, {(0, 1): 1, (1, 2): 1})
        assert o.parents(0) == [1]
        assert o.children(1) == [0, 2]
        assert o.out_degree(1) == 0
        assert o.max_out_degree() == 1

    def test_is_total(self):
        g = Graph(3, [(0, 1), (1, 2)])
        o = Orientation(g, {(0, 1): 1})
        assert not o.is_total()
        o.orient(1, 2, 2)
        assert o.is_total()

    def test_oriented_edges(self):
        g = Graph(2, [(0, 1)])
        o = Orientation(g, {(0, 1): 0})
        assert list(o.oriented_edges()) == [(1, 0)]


class TestAcyclicity:
    def test_path_orientation_acyclic(self):
        g = gen.path(5)
        o = orientation_by_order(g, list(range(5)))
        assert o.is_acyclic()
        assert o.length() == 4

    def test_cycle_detected(self):
        g = gen.ring(4)
        o = Orientation(g)
        for i in range(4):
            o.orient(i, (i + 1) % 4, (i + 1) % 4)
        assert not o.is_acyclic()
        with pytest.raises(ValueError, match="cycle"):
            o.length()

    def test_ring_by_order_acyclic(self):
        g = gen.ring(6)
        o = orientation_by_order(g, list(range(6)))
        assert o.is_acyclic()

    def test_order_tie_rejected(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(ValueError, match="tie"):
            orientation_by_order(g, [1, 1])

    def test_length_star(self):
        g = gen.star(5)
        o = orientation_by_order(g, list(range(5)))
        assert o.length() == 1

    def test_from_parent_lists(self):
        g = gen.path(4)
        o = orientation_from_parent_lists(g, {0: [1], 1: [2], 2: [3]})
        assert o.is_total() and o.is_acyclic()
        assert o.parents(0) == [1]
        assert o.max_out_degree() == 1

    def test_empty_graph_orientation(self):
        o = Orientation(Graph(0))
        assert o.is_acyclic()
        assert o.length() == 0
        assert o.max_out_degree() == 0

"""Tests for the workload generators: sizes, structure, and the
properties (arboricity, degree) each family is chosen for."""

import pytest

from repro.graphs import generators as gen
from repro.graphs.arboricity import arboricity_exact


class TestDeterministicFamilies:
    def test_ring(self):
        g = gen.ring(7)
        assert g.n == 7 and g.m == 7
        assert g.max_degree() == 2
        assert not g.is_forest()

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            gen.ring(2)

    def test_path(self):
        g = gen.path(6)
        assert g.m == 5 and g.is_forest()

    def test_star(self):
        g = gen.star(10)
        assert g.degree(0) == 9 and g.is_forest()

    def test_complete(self):
        g = gen.complete(6)
        assert g.m == 15 and g.max_degree() == 5

    def test_complete_bipartite(self):
        g = gen.complete_bipartite(2, 4)
        assert g.m == 8
        assert g.degree(0) == 4 and g.degree(2) == 2

    def test_binary_tree(self):
        g = gen.binary_tree(15)
        assert g.is_forest() and g.m == 14
        assert g.max_degree() == 3

    def test_grid(self):
        g = gen.grid(3, 4)
        assert g.n == 12 and g.m == 3 * 3 + 2 * 4
        assert g.max_degree() <= 4
        assert arboricity_exact(g) == 2

    def test_triangular_grid(self):
        g = gen.triangular_grid(4, 4)
        assert g.max_degree() <= 6
        assert arboricity_exact(g) <= 3

    def test_hypercube(self):
        g = gen.hypercube(3)
        assert g.n == 8 and g.m == 12
        assert all(g.degree(v) == 3 for v in g.vertices())

    def test_caterpillar(self):
        g = gen.caterpillar(5, 3)
        assert g.n == 5 + 15 and g.is_forest()
        assert g.max_degree() == 5  # spine degree 2 + 3 legs

    def test_star_forest(self):
        g = gen.star_forest(3, 4)
        assert g.n == 15 and g.m == 12
        assert g.is_forest()
        assert len(g.connected_components()) == 3


class TestRandomFamilies:
    def test_random_tree_is_tree(self):
        g = gen.random_tree(50, seed=1)
        assert g.is_forest() and g.m == 49
        assert len(g.connected_components()) == 1

    def test_random_tree_preferential(self):
        g = gen.random_tree(50, seed=1, attachment="preferential")
        assert g.is_forest() and g.m == 49

    def test_random_tree_bad_attachment(self):
        with pytest.raises(ValueError):
            gen.random_tree(10, attachment="bogus")

    def test_random_forest_components(self):
        g = gen.random_forest(40, trees=5, seed=2)
        assert g.is_forest()
        assert len(g.connected_components()) == 5

    def test_union_of_forests_arboricity(self):
        for a in (1, 2, 4):
            g = gen.union_of_forests(60, a, seed=3)
            assert arboricity_exact(g) <= a

    def test_union_of_forests_is_dense_enough(self):
        g = gen.union_of_forests(200, 3, seed=4)
        # Close to 3*(n-1) edges up to collision loss.
        assert g.m > 2.2 * (g.n - 1)

    def test_union_of_forests_density_param(self):
        sparse = gen.union_of_forests(100, 3, seed=5, density=0.3)
        dense = gen.union_of_forests(100, 3, seed=5, density=1.0)
        assert sparse.m < dense.m

    def test_union_of_forests_bad_a(self):
        with pytest.raises(ValueError):
            gen.union_of_forests(10, 0)

    def test_gnp_determinism(self):
        assert gen.gnp(50, 0.1, seed=6) == gen.gnp(50, 0.1, seed=6)
        assert gen.gnp(50, 0.1, seed=6) != gen.gnp(50, 0.1, seed=7)

    def test_gnp_extremes(self):
        assert gen.gnp(10, 0.0).m == 0
        assert gen.gnp(10, 1.0).m == 45

    def test_gnp_bad_p(self):
        with pytest.raises(ValueError):
            gen.gnp(10, 1.5)

    def test_gnp_expected_density(self):
        g = gen.gnp(400, 0.02, seed=8)
        expected = 0.02 * 400 * 399 / 2
        assert 0.6 * expected < g.m < 1.4 * expected

    def test_random_regular(self):
        g = gen.random_regular(20, 3, seed=9)
        assert g.n == 20
        assert max(g.degree_sequence()) <= 3

    def test_random_regular_parity(self):
        with pytest.raises(ValueError):
            gen.random_regular(5, 3)

    def test_planted_partition_ring(self):
        g = gen.planted_partition_ring(50, 10, seed=10)
        assert g.n == 50 and g.m >= 50

    def test_disjoint_union(self):
        g = gen.disjoint_union([gen.ring(4), gen.path(3)])
        assert g.n == 7 and g.m == 4 + 2
        assert len(g.connected_components()) == 2


class TestIDAssignments:
    def test_sequential_ids(self):
        assert gen.sequential_ids(4) == [0, 1, 2, 3]

    def test_random_ids_permutation(self):
        ids = gen.random_ids(100, seed=1)
        assert sorted(ids) == list(range(100))
        assert ids != list(range(100))

    def test_random_ids_large_space(self):
        ids = gen.random_ids(50, seed=2, id_space=10**6)
        assert len(set(ids)) == 50
        assert all(0 <= i < 10**6 for i in ids)

    def test_random_ids_space_too_small(self):
        with pytest.raises(ValueError):
            gen.random_ids(10, id_space=5)

    def test_adversarial_ids(self):
        g = gen.star(8)
        ids = gen.adversarial_ids_descending_degree(g)
        assert ids[0] == 7  # the hub gets the highest ID
        assert sorted(ids) == list(range(8))


class TestForestUnionCsr:
    """The CSR-direct arboricity-a workload behind the n = 10^7 cell."""

    def test_structure_and_dtype(self):
        import numpy as np

        g = gen.forest_union_csr(500, 3, seed=0)
        offsets, indices = g.csr(dtype="auto")
        assert offsets.dtype == np.int32 and indices.dtype == np.int32
        assert g.n == 500
        # a union of a spanning-ish forests: close to a*(n-1) edges, with
        # only cross-forest duplicates collapsed
        assert 500 - 1 <= g.m <= 3 * (500 - 1)
        # symmetric, simple adjacency with sorted rows
        for v in range(g.n):
            row = indices[offsets[v] : offsets[v + 1]]
            assert np.all(np.diff(row) > 0)  # sorted, no duplicates
            assert v not in row  # no self loops
            for u in row:
                urow = indices[offsets[u] : offsets[u + 1]]
                assert v in urow

    def test_arboricity_bound_holds(self):
        g = gen.forest_union_csr(60, 2, seed=1)
        assert arboricity_exact(g) <= 2

    def test_deterministic_and_seed_sensitive(self):
        import numpy as np

        a = gen.forest_union_csr(200, 2, seed=7).csr()
        b = gen.forest_union_csr(200, 2, seed=7).csr()
        c = gen.forest_union_csr(200, 2, seed=8).csr()
        assert np.array_equal(a[1], b[1])
        assert not np.array_equal(a[1], c[1])

    def test_tiny_and_invalid(self):
        assert gen.forest_union_csr(1, 3).n == 1
        assert gen.forest_union_csr(0, 1).n == 0
        with pytest.raises(ValueError):
            gen.forest_union_csr(10, 0)


class TestPermutationIds:
    def test_is_a_permutation(self):
        import numpy as np

        ids = gen.permutation_ids(1000, seed=3)
        assert ids.dtype == np.int64
        assert np.array_equal(np.sort(ids), np.arange(1000))

    def test_deterministic(self):
        import numpy as np

        assert np.array_equal(
            gen.permutation_ids(64, seed=5), gen.permutation_ids(64, seed=5)
        )

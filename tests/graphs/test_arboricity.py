"""Tests for degeneracy, Nash-Williams bounds and the exact matroid-union
arboricity / forest-partition machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators as gen
from repro.graphs.arboricity import (
    arboricity_exact,
    arboricity_upper_bound,
    degeneracy,
    degeneracy_ordering,
    known_or_estimated_arboricity,
    nash_williams_lower_bound,
    partition_into_forests,
)
from repro.graphs.graph import Graph


class TestDegeneracy:
    def test_empty(self):
        assert degeneracy(Graph(0)) == 0
        assert degeneracy(Graph(5)) == 0

    def test_tree(self):
        assert degeneracy(gen.binary_tree(31)) == 1

    def test_ring(self):
        assert degeneracy(gen.ring(10)) == 2

    def test_complete(self):
        assert degeneracy(gen.complete(6)) == 5

    def test_grid(self):
        assert degeneracy(gen.grid(5, 5)) == 2

    def test_ordering_realises_degeneracy(self):
        g = gen.gnp(60, 0.1, seed=1)
        d = degeneracy(g)
        order = degeneracy_ordering(g)
        assert sorted(order) == list(range(g.n))
        pos = {v: i for i, v in enumerate(order)}
        worst = max(
            sum(1 for u in g.neighbors(v) if pos[u] > pos[v]) for v in g.vertices()
        )
        assert worst <= d


class TestNashWilliams:
    def test_empty(self):
        assert nash_williams_lower_bound(Graph(4)) == 0

    def test_complete(self):
        # K_5: ceil(10 / 4) = 3.
        assert nash_williams_lower_bound(gen.complete(5)) == 3

    def test_is_lower_bound(self):
        for _, g in [("gnp", gen.gnp(40, 0.15, seed=2)), ("grid", gen.grid(4, 5))]:
            assert nash_williams_lower_bound(g) <= arboricity_exact(g)


class TestForestPartition:
    def test_tree_one_forest(self):
        g = gen.binary_tree(15)
        parts = partition_into_forests(g, 1)
        assert parts is not None
        assert sorted(e for p in parts for e in p) == list(g.edges())

    def test_ring_needs_two(self):
        g = gen.ring(8)
        assert partition_into_forests(g, 1) is None
        assert partition_into_forests(g, 2) is not None

    def test_parts_are_forests(self):
        g = gen.gnp(40, 0.2, seed=3)
        k = degeneracy(g)
        parts = partition_into_forests(g, k)
        assert parts is not None
        for p in parts:
            assert Graph(g.n, p).is_forest()

    def test_covers_all_edges_once(self):
        g = gen.complete(7)
        parts = partition_into_forests(g, 4)
        assert parts is not None
        all_edges = sorted(e for p in parts for e in p)
        assert all_edges == list(g.edges())

    def test_k_zero(self):
        assert partition_into_forests(gen.ring(4), 0) is None
        assert partition_into_forests(Graph(3), 0) == []


class TestExactArboricity:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (gen.path(10), 1),
            (gen.binary_tree(15), 1),
            (gen.ring(9), 2),
            (gen.grid(4, 4), 2),
            (gen.complete(4), 2),
            (gen.complete(5), 3),
            (gen.complete(6), 3),
            (gen.complete(7), 4),
            (gen.complete_bipartite(3, 3), 2),  # ceil(9/5) = 2
            (gen.complete_bipartite(4, 4), 3),  # ceil(16/7) = 3
            (gen.star(20), 1),
        ],
    )
    def test_known_values(self, graph, expected):
        assert arboricity_exact(graph) == expected

    def test_empty(self):
        assert arboricity_exact(Graph(5)) == 0

    def test_bounded_by_degeneracy(self):
        g = gen.gnp(50, 0.12, seed=4)
        a = arboricity_exact(g)
        assert a <= arboricity_upper_bound(g) <= 2 * a - 1 if a else True

    def test_known_or_estimated_small(self):
        g = gen.ring(10)
        assert known_or_estimated_arboricity(g) == 2

    def test_known_or_estimated_large_uses_degeneracy(self):
        g = gen.union_of_forests(300, 2, seed=5)
        est = known_or_estimated_arboricity(g, exact_limit=10)
        assert est == degeneracy(g) >= arboricity_exact(g) - 0  # valid bound

    def test_known_or_estimated_empty(self):
        assert known_or_estimated_arboricity(Graph(3)) == 1


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=18),
    p=st.floats(min_value=0.0, max_value=0.6),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_exact_between_bounds(n, p, seed):
    """Nash-Williams lower bound <= exact arboricity <= degeneracy, and
    the certified forest partition at a(G) is valid while a(G)-1 fails."""
    g = gen.gnp(n, p, seed=seed)
    a = arboricity_exact(g)
    assert nash_williams_lower_bound(g) <= a <= max(degeneracy(g), a)
    if g.m:
        parts = partition_into_forests(g, a)
        assert parts is not None
        for part in parts:
            assert Graph(g.n, part).is_forest()
        assert partition_into_forests(g, a - 1) is None if a > 1 else True


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=40),
    a=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=50),
)
def test_property_union_of_forests_prescribed(n, a, seed):
    g = gen.union_of_forests(n, a, seed=seed)
    assert arboricity_exact(g) <= a
